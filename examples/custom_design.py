"""Add your own design point — no core edits, just a registration.

The design registry (:mod:`repro.designs`) makes a system design a
*value*: register a :class:`DesignSpec` and it immediately works in
``evaluate_workload`` / ``run_sweep`` sweeps, scenario contention runs,
LLC ablations and the CLI (``--designs my-design``), with its own
sweep-cache identity.

Two levels are shown here:

1. ``truncate-8`` — a purely parameterized variant of the built-in
   baseline-LLC family (eighth-width approximate lines).  Ten lines,
   all data.
2. ``avr-nodbuf`` — AVR with the decompression buffer ablated *as a
   design point* (baked-in ``avr_options``), so the ablation becomes a
   first-class citizen of sweeps and caches.

Run: ``python examples/custom_design.py``
"""

from repro.designs import DesignSpec, list_designs, register_design
from repro.harness import evaluate_workload

# 1. A parameterized variant: register and it exists everywhere.
register_design(DesignSpec(
    name="truncate-8",
    approximator="truncate",
    capacity_model="truncate",
    approx_line_bytes=8,
    doc="Truncation to eighth-width lines (sign+exponent values only).",
))

# 2. A baked-in ablation as a design point of its own.
register_design(DesignSpec(
    name="avr-nodbuf",
    llc="avr",
    approximator="avr",
    avr_options=(("enable_dbuf", False),),
    doc="AVR without the decompression buffer.",
))


def main() -> None:
    print("registered designs:", ", ".join(list_designs()))
    ev = evaluate_workload(
        "heat",
        scale=0.15,
        max_accesses_per_core=4000,
        designs=("baseline", "AVR", "avr-nodbuf", "truncate-8"),
    )
    print(f"\nheat (scale 0.15) — normalized to baseline:")
    print(f"{'design':>12} {'error %':>8} {'time':>6} {'traffic':>8} {'MPKI':>6}")
    for design, run in ev.runs.items():
        if design == "baseline":
            continue
        print(f"{design.value:>12} {run.output_error * 100:8.3f}"
              f" {ev.normalized(design, 'time'):6.2f}"
              f" {ev.normalized(design, 'traffic'):8.2f}"
              f" {ev.normalized(design, 'mpki'):6.2f}")

    avr = ev.runs["AVR"].timing.llc_stats
    nodbuf = ev.runs["avr-nodbuf"].timing.llc_stats
    print(f"\nDBUF hits: AVR {avr.get('req_hit_dbuf', 0):.0f}, "
          f"avr-nodbuf {nodbuf.get('req_hit_dbuf', 0):.0f} "
          "(the baked-in ablation at work)")


if __name__ == "__main__":
    main()
