"""Approximate k-means: clustering quality vs memory compression.

The paper's kmeans benchmark is the one workload whose *control flow*
depends on approximation quality (Lloyd's algorithm may need a
different number of iterations to converge on approximated points).
This example clusters a synthetic elevation profile under each design
and compares centroids, iteration counts and compression.

Run:  python examples/kmeans_clustering.py
"""

import numpy as np

from repro.common.types import Design
from repro.workloads import make_workload


def main() -> None:
    workload = make_workload("kmeans", scale=0.5)
    reference = workload.run(Design.BASELINE)
    print(f"kmeans: {workload.npoints:,} elevation points, k={workload.k}")
    print(f"  baseline converged in {reference.iterations} iterations\n")
    print(f"  {'design':>9} {'iters':>6} {'centroid err %':>15} {'ratio':>7}")

    for design in (Design.DGANGER, Design.TRUNCATE, Design.AVR):
        result = workload.run(design)
        err = workload.output_error(result, reference)
        ratio = result.memory.compression_ratio()
        print(
            f"  {design.value:>9} {result.iterations:6d} {err * 100:15.3f}"
            f" {ratio:6.1f}x"
        )

    # Show the actual clusters under AVR vs exact.
    avr = workload.run(Design.AVR)
    print("\n  centroids (m):")
    print("   exact:", np.array2string(reference.output, precision=1))
    print("   AVR:  ", np.array2string(avr.output, precision=1))


if __name__ == "__main__":
    main()
