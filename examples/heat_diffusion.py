"""Heat diffusion under approximate memory: all four designs end to end.

Runs the paper's *heat* benchmark functionally under every design point
(output error, compression) and through the timing simulator (traffic,
time, AMAT), printing a one-workload slice of Tables 3/4 and Figures
9/11/12.

Run:  python examples/heat_diffusion.py            (full scale, ~1 min)
      python examples/heat_diffusion.py --quick    (small scale, seconds)
"""

import sys

from repro.common.config import CacheConfig, SystemConfig
from repro.common.types import COMPARED_DESIGNS, Design
from repro.harness import evaluate_workload


def main(quick: bool = False) -> None:
    if quick:
        config = SystemConfig(
            num_cores=2,
            l1=CacheConfig(2 * 1024, 4, 1),
            l2=CacheConfig(8 * 1024, 8, 8),
            llc=CacheConfig(64 * 1024, 16, 15),
        )
        ev = evaluate_workload(
            "heat", config=config, scale=0.25, iterations=15,
            max_accesses_per_core=20_000,
        )
    else:
        ev = evaluate_workload("heat", config=SystemConfig.scaled(num_cores=8))

    print("heat: 2D Jacobi heat propagation")
    print(f"  footprint: {ev.footprint_bytes / 1e6:.1f} MB, "
          f"AVR ratio {ev.avr_compression_ratio:.1f}:1, "
          f"footprint vs baseline {ev.footprint_vs_baseline * 100:.0f}%\n")

    header = f"  {'design':>9} {'error %':>8} {'time':>6} {'traffic':>8} {'AMAT':>6} {'MPKI':>6}"
    print(header)
    print("  " + "-" * (len(header) - 2))
    for design in COMPARED_DESIGNS:
        run = ev.runs[design]
        print(
            f"  {design.value:>9} {run.output_error * 100:8.3f}"
            f" {ev.normalized(design, 'time'):6.2f}"
            f" {ev.normalized(design, 'traffic'):8.2f}"
            f" {ev.normalized(design, 'amat'):6.2f}"
            f" {ev.normalized(design, 'mpki'):6.2f}"
        )
    print("\n  (all columns except error are normalized to the baseline)")

    stats = ev.runs[Design.AVR].timing.llc_stats
    total = sum(
        stats.get(k, 0)
        for k in ("req_miss", "req_hit_uncompressed", "req_hit_dbuf", "req_hit_compressed")
    )
    if total:
        print(f"\n  AVR LLC requests: "
              f"{stats.get('req_hit_dbuf', 0) / total * 100:.0f}% DBUF, "
              f"{stats.get('req_hit_compressed', 0) / total * 100:.0f}% compressed, "
              f"{stats.get('req_hit_uncompressed', 0) / total * 100:.0f}% uncompressed, "
              f"{stats.get('req_miss', 0) / total * 100:.0f}% miss")


if __name__ == "__main__":
    main(quick="--quick" in sys.argv)
