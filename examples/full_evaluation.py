"""Regenerate the paper's entire evaluation section in one run.

Evaluates all seven workloads under all five designs and prints every
table and figure series (Tables 3-4, Figures 9-15) plus the §4.2
hardware-overhead accounting.

Run:  python examples/full_evaluation.py            (~5-10 min)
      python examples/full_evaluation.py --quick    (scaled down, ~2 min)
      python examples/full_evaluation.py --jobs 8   (parallel sweep)
      python examples/full_evaluation.py --cache-dir .sweep-cache
"""

import argparse
import time

from repro.common.config import SystemConfig
from repro.common.types import COMPARED_DESIGNS
from repro.harness import (
    evaluate_all,
    fig09_execution_time,
    fig10_energy,
    fig11_memory_traffic,
    fig12_amat,
    fig13_mpki,
    fig14_llc_requests,
    fig15_llc_evictions,
    format_stacked,
    format_table,
    hardware_overheads,
    table3_output_error,
    table4_compression,
)

DESIGN_ORDER = [d.value for d in COMPARED_DESIGNS]


def main(quick: bool = False, jobs: int = 1, cache_dir: str | None = None) -> None:
    t0 = time.time()
    scale = 0.5 if quick else 1.0
    accesses = 20_000 if quick else 50_000
    evals = evaluate_all(
        config=SystemConfig.scaled(num_cores=8),
        scale=scale,
        max_accesses_per_core=accesses,
        jobs=jobs,
        cache_dir=cache_dir,
    )
    workloads = list(evals)

    print(format_table("Table 3: application output error (%)",
                       table3_output_error(evals), "{:.2f}", col_order=workloads))
    print()
    print(format_table("Table 4: AVR compression ratio and footprint (%)",
                       table4_compression(evals), "{:.1f}", col_order=workloads))
    print()
    print(format_table("Figure 9: execution time (normalized to baseline)",
                       fig09_execution_time(evals), "{:.2f}", col_order=DESIGN_ORDER))
    print()
    print(format_stacked("Figure 10: energy breakdown (normalized)",
                         fig10_energy(evals)))
    print()
    print(format_stacked("Figure 11: memory traffic (normalized, approx/exact)",
                         fig11_memory_traffic(evals)))
    print()
    print(format_table("Figure 12: AMAT (normalized)",
                       fig12_amat(evals), "{:.2f}", col_order=DESIGN_ORDER))
    print()
    print(format_table("Figure 13: LLC MPKI (normalized)",
                       fig13_mpki(evals), "{:.2f}", col_order=DESIGN_ORDER))
    print()
    print(format_table("Figure 14: AVR LLC requests on approx lines (%)",
                       fig14_llc_requests(evals), "{:.1f}"))
    print()
    print(format_table("Figure 15: AVR LLC evictions of approx lines (%)",
                       fig15_llc_evictions(evals), "{:.1f}"))
    print()

    o = hardware_overheads()
    print("Hardware overheads (paper §4.2)")
    print("===============================")
    print(f"  CMT + TLB bit per page:   {o['cmt_bits_per_page']:.0f} bits"
          f"  ({o['tlb_overhead_factor']:.2f}x a TLB entry)")
    print(f"  AVR LLC tag/BPA overhead: {o['llc_extra_bits_per_entry']:.0f} bits/entry"
          f" = {o['llc_extra_kbytes']:.0f} kB"
          f" ({o['llc_overhead_fraction'] * 100:.1f}% of the LLC)")
    print(f"\ntotal {time.time() - t0:.0f}s")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("--jobs", type=int, default=1)
    parser.add_argument("--cache-dir", default=None)
    args = parser.parse_args()
    main(quick=args.quick, jobs=args.jobs, cache_dir=args.cache_dir)
