"""Quickstart: compress data with AVR and inspect the quality knob.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import AVRCompressor, ErrorThresholds
from repro.common.constants import VALUES_PER_BLOCK
from repro.compression import CompressedBlock


def main() -> None:
    rng = np.random.default_rng(7)

    # --- some approximable data: a smooth field + mild sensor noise -----
    x = np.linspace(0.0, 6.0, 64 * VALUES_PER_BLOCK)
    data = (np.sin(x) * 40.0 + 100.0).astype(np.float32)
    data += rng.normal(0.0, 0.05, data.size).astype(np.float32)
    blocks = data.reshape(-1, VALUES_PER_BLOCK)

    print("AVR quickstart: 64 KB of smooth sensor data")
    print(f"  blocks: {blocks.shape[0]} x 1 KB\n")

    # --- the tunable error knob (paper: T1 = 2 * T2) ---------------------
    print(f"  {'T2 knob':>8}  {'ratio':>7}  {'mean err':>9}  {'outliers/blk':>12}")
    for t2 in (0.04, 0.01, 0.0025, 0.001):
        comp = AVRCompressor(ErrorThresholds.from_t2(t2))
        result = comp.compress_blocks(blocks)
        err = np.abs(result.reconstructed - blocks) / np.abs(blocks)
        print(
            f"  {t2:8.4f}  {result.compression_ratio:6.1f}x"
            f"  {err.mean() * 100:8.3f}%  {result.outlier_count.mean():12.1f}"
        )

    # --- single-block API: byte-accurate memory image --------------------
    comp = AVRCompressor(ErrorThresholds.from_t2(0.01))
    block, recon = comp.compress_block(blocks[0])
    assert block is not None
    image = block.pack()
    print(f"\n  one 1024 B block -> {len(image)} B image "
          f"({block.size_cachelines} cachelines, {block.outlier_count} outliers,"
          f" method={block.method.name}, bias={block.bias})")

    rebuilt = CompressedBlock.unpack(
        image, block.method, block.bias, block.size_cachelines
    )
    out = comp.decompress_block(rebuilt)
    assert np.array_equal(out, recon)
    print("  pack -> unpack -> decompress reproduces the approximation exactly")


if __name__ == "__main__":
    main()
