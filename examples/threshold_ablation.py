"""Ablation: the error-threshold knob and the two downsampling variants.

Sweeps the paper's tunable T2 knob over the *wrf* temperature field
(the least compressible benchmark) and over *orbit* history data (the
most compressible), showing the quality/compression trade-off curve.
Also ablates the method-selection choice by forcing a single
downsampling variant.

Run:  python examples/threshold_ablation.py
"""

import numpy as np

from repro.common.constants import VALUES_PER_BLOCK
from repro.common.types import CompressionMethod, Design, ErrorThresholds
from repro.compression import AVRCompressor
from repro.compression.downsample import (
    downsample_1d,
    downsample_2d,
    reconstruct_1d,
    reconstruct_2d,
)
from repro.workloads import make_workload


def knob_sweep() -> None:
    print("T2 knob sweep (output error vs compression ratio)")
    for name in ("orbit", "wrf"):
        workload = make_workload(name, scale=0.5)
        reference = workload.run(Design.BASELINE)
        print(f"\n  {name}:")
        print(f"    {'T2':>8} {'ratio':>7} {'output err %':>13}")
        for t2 in (0.04, 0.02, 0.01, 0.005, 0.002):
            result = workload.run(Design.AVR, thresholds=ErrorThresholds.from_t2(t2))
            err = workload.output_error(result, reference)
            print(f"    {t2:8.3f} {result.memory.compression_ratio():6.1f}x"
                  f" {err * 100:12.3f}")


def method_ablation() -> None:
    """Why AVR tries both placements: 1D wins on series, 2D on tiles."""
    rng = np.random.default_rng(3)
    t = np.linspace(0, 8, VALUES_PER_BLOCK)
    series = (np.sin(t) + 2.5).astype(np.float32)[None, :].repeat(32, 0)

    yy, xx = np.mgrid[0:16, 0:16] / 16.0
    tile = (np.sin(3 * yy) * np.cos(2 * xx) + 2.5).astype(np.float32)
    tiles = tile.reshape(1, VALUES_PER_BLOCK).repeat(32, 0)

    comp = AVRCompressor(ErrorThresholds.from_t2(0.005))
    print("\nMethod ablation (outliers per block, fewer is better):")
    print(f"    {'data':>12} {'1D':>6} {'2D':>6} {'selected':>10}")
    for label, blocks in (("time series", series), ("2D field", tiles)):
        fixed = comp._to_fixed(blocks, comp._choose_biases(blocks))
        counts = {}
        for mname, down, recon in (
            ("1D", downsample_1d, reconstruct_1d),
            ("2D", downsample_2d, reconstruct_2d),
        ):
            recon_f = comp._from_fixed(recon(down(fixed)), comp._choose_biases(blocks))
            from repro.compression.outliers import detect_outliers

            mask = detect_outliers(blocks, recon_f, comp.thresholds, comp.check_mode)
            counts[mname] = mask.sum(axis=1).mean()
        res = comp.compress_blocks(blocks)
        chosen = CompressionMethod(int(res.method[0])).name.replace("DOWNSAMPLE_", "")
        print(f"    {label:>12} {counts['1D']:6.1f} {counts['2D']:6.1f} {chosen:>10}")


if __name__ == "__main__":
    knob_sweep()
    method_ablation()
