"""Byte-accurate memory images: blocks, lazy lines, and recompaction.

Walks the life of one 1 KB memory block through the backing store:
compressed image layout (Fig. 2a), lazy writebacks of dirty cachelines
into the block's free space, space exhaustion, and the
fetch-merge-recompress cycle.

Run:  python examples/memory_image.py
"""

import numpy as np

from repro.common.constants import VALUES_PER_BLOCK
from repro.common.types import ErrorThresholds
from repro.compression import AVRCompressor
from repro.memory import BackingStore


def main() -> None:
    comp = AVRCompressor(ErrorThresholds.from_t2(0.01))
    store = BackingStore(comp)

    x = np.linspace(0.0, 2.0, VALUES_PER_BLOCK, dtype=np.float32)
    values = np.sin(x) * 10.0 + 30.0
    # One spike -> one outlier.  (Note: the spike also sets the block's
    # fixed-point range, so the error bound of its neighbours is relative
    # to the spike's magnitude — keep it within an order of magnitude.)
    values[77] = 90.0

    compressed = store.write_block(0, values)
    print("block written:")
    print(f"  compressed: {compressed}, occupies "
          f"{store.stored_cachelines(0)}/16 cachelines")

    out = store.read_block(0)
    err = np.abs(out - values) / np.abs(values)
    print(f"  read-back: max rel err {err.max() * 100:.3f}%, "
          f"outlier restored exactly: {out[77] == 90.0}")

    print("\nlazy evictions into the block's free space:")
    for i in range(3):
        line = values[i * 16 : (i + 1) * 16] * 1.001  # dirty update
        ok = store.lazy_write_line(i * 64, line.astype(np.float32))
        print(f"  line {i}: lazy={ok}, block now "
              f"{store.stored_cachelines(0)}/16 cachelines")

    out = store.read_block(0)
    print(f"  lazy lines overlay on read: line0[0] = {out[0]:.4f} "
          f"(was {values[0]:.4f})")

    print("\nfilling the remaining space...")
    i = 3
    while store.lazy_write_line(i * 64, np.zeros(16, dtype=np.float32)):
        i += 1
    print(f"  space exhausted after {i} lazy lines "
          f"({store.stored_cachelines(0)}/16 cachelines)")

    store.merge_and_recompress(i * 64, np.zeros(16, dtype=np.float32))
    print(f"  fetch+merge+recompress -> back to "
          f"{store.stored_cachelines(0)}/16 cachelines")


if __name__ == "__main__":
    main()
