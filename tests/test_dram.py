"""Tests for the DDR4 timing model."""

import pytest

from repro.common.config import DRAMConfig
from repro.memory import DRAM


@pytest.fixture
def dram():
    return DRAM(DRAMConfig())


class TestRowBuffer:
    def test_first_access_misses_row(self, dram):
        lat = dram.access(0)
        assert lat >= dram.config.row_miss_cycles
        assert dram.stats["row_misses"] == 1

    def test_same_row_hits(self, dram):
        dram.access(0)
        lat = dram.access(64 * dram.config.channels)  # same channel, next line
        assert dram.stats["row_hits"] == 1
        assert lat < dram.config.row_miss_cycles + dram.config.burst_cycles + 1

    def test_row_conflict_misses(self, dram):
        dram.access(0)
        far = dram.config.row_bytes * dram.config.channels * dram.config.banks_per_channel * 64
        dram.access(far)
        # returning to the original row: bank may have been reopened
        assert dram.stats["row_misses"] >= 1

    def test_multi_line_block_pipelines(self, dram):
        lat1 = DRAM(DRAMConfig()).access(0, lines=1)
        lat8 = DRAM(DRAMConfig()).access(0, lines=8)
        assert lat8 > lat1
        assert lat8 < 8 * lat1  # streamed, not serialized row misses

    def test_invalid_lines(self, dram):
        with pytest.raises(ValueError):
            dram.access(0, lines=0)


class TestTrafficAccounting:
    def test_read_write_bytes(self, dram):
        dram.access(0, lines=2, write=False)
        dram.access(4096, lines=1, write=True)
        assert dram.stats["bytes_read"] == 128
        assert dram.stats["bytes_written"] == 64
        assert dram.total_bytes == 192

    def test_partial_transfer(self, dram):
        dram.transfer_partial(12, write=False)
        assert dram.stats["bytes_read"] == 12

    def test_channel_busy_accumulates(self, dram):
        for i in range(16):
            dram.access(i * 64)
        assert sum(dram.channel_busy) == 16 * dram.config.burst_cycles

    def test_bandwidth_bound(self, dram):
        assert dram.bandwidth_bound_cycles() == 0
        dram.access(0, lines=4)
        assert dram.bandwidth_bound_cycles() > 0

    def test_channel_interleave_balances(self, dram):
        for i in range(64):
            dram.access(i * 64)
        busy = dram.channel_busy
        assert max(busy) - min(busy) <= dram.config.burst_cycles


class TestReplayTransfers:
    """The deferred transfer log must replay bit-identically."""

    @staticmethod
    def _random_log(rng, n):
        """A mixed access/partial call log like the AVR scan emits."""
        addrs = (rng.integers(0, 1 << 14, n) * 64).astype(int)
        lines = rng.integers(1, 17, n).astype(int)
        writes = rng.random(n) < 0.4
        partial = rng.random(n) < 0.1
        lines[partial] = 0
        addrs[partial] = 188  # CMT miss traffic byte count
        writes[partial] = False
        return addrs, lines, writes

    def test_matches_sequential_calls(self, rng):
        import numpy as np

        addrs, lines, writes = self._random_log(rng, 800)
        seq = DRAM(DRAMConfig())
        seq_lat = []
        for a, nl, w in zip(addrs, lines, writes):
            if nl == 0:
                seq.transfer_partial(int(a), write=bool(w))
                seq_lat.append(0)
            else:
                seq_lat.append(seq.access(int(a), int(nl), write=bool(w)))

        bat = DRAM(DRAMConfig())
        bat_lat = bat.replay_transfers(
            np.asarray(addrs), np.asarray(lines), np.asarray(writes)
        )
        assert seq_lat == bat_lat.tolist()
        assert seq.stats.as_dict() == bat.stats.as_dict()
        assert seq.channel_busy == bat.channel_busy
        assert seq._open_rows == bat._open_rows

    def test_carries_row_state_across_batches(self, rng):
        import numpy as np

        addrs, lines, writes = self._random_log(rng, 400)
        seq = DRAM(DRAMConfig())
        for a, nl, w in zip(addrs, lines, writes):
            if nl == 0:
                seq.transfer_partial(int(a), write=bool(w))
            else:
                seq.access(int(a), int(nl), write=bool(w))
        bat = DRAM(DRAMConfig())
        half = 200
        for sl in (slice(0, half), slice(half, None)):
            bat.replay_transfers(
                np.asarray(addrs[sl]), np.asarray(lines[sl]),
                np.asarray(writes[sl]),
            )
        assert seq.stats.as_dict() == bat.stats.as_dict()
        assert seq._open_rows == bat._open_rows

    def test_empty_log(self):
        import numpy as np

        dram = DRAM(DRAMConfig())
        out = dram.replay_transfers(
            np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64),
            np.zeros(0, dtype=bool),
        )
        assert out.size == 0
        assert dram.stats.as_dict() == {}
