"""Tests for the scenario subsystem: specs, composition, contention.

Covers the composed-layout offset/overlap invariants, instance seed
spawning, instruction-count balancing, the trivial-scenario
bit-identity guarantee, reference<->vectorized engine equivalence on
heterogeneous mixes (including every shipped named mix under AVR with
per-core approx regions), and the sweep/cache integration of
scenario-qualified identities.
"""

import numpy as np
import pytest

from repro.common.config import CacheConfig, SystemConfig
from repro.common.types import Design
from repro.harness.runner import _build_layout
from repro.harness.scenario import (
    ScenarioPoint,
    build_scenario_context,
    evaluate_scenario,
    scenario_subsets,
)
from repro.harness.sweep import SweepPoint, SweepSpec, run_functional_job, run_sweep
from repro.scenario import (
    OFFSET_ALIGN,
    Scenario,
    ScenarioEntry,
    assign_offsets,
    compose_traces,
    get_scenario,
    instance_seeds,
    named_scenarios,
    parse_mix,
)
from repro.system.factory import build_system
from repro.trace.events import total_instructions
from repro.trace.generator import generate_trace

CONFIG = SystemConfig(
    num_cores=4,
    l1=CacheConfig(2 * 1024, 4, 1),
    l2=CacheConfig(8 * 1024, 8, 8),
    llc=CacheConfig(64 * 1024, 16, 15),
)
ACCESSES = 3_000


def _functional_memo():
    cache = {}

    def functional_for(point, design):
        key = (point, design)
        if key not in cache:
            cache[key] = run_functional_job(point, design)
        return cache[key]

    return functional_for


FUNCTIONAL = _functional_memo()


def _context(mix: str, config=CONFIG, accesses=ACCESSES, seed=0,
             designs=(Design.BASELINE, Design.AVR)):
    point = ScenarioPoint(
        scenario=get_scenario(mix).scaled(0.15),
        seed=seed,
        max_accesses_per_core=accesses,
    )
    return point, build_scenario_context(point, config, FUNCTIONAL, designs)


# ----------------------------------------------------------------------
# Spec: parsing, placement, registry
# ----------------------------------------------------------------------
class TestSpec:
    def test_parse_mix_forms(self):
        s = parse_mix("kmeans*4+bscholes*4")
        assert s.total_cores == 8 and s.num_instances == 8
        s = parse_mix("heat@4+lbm@4")
        assert s.total_cores == 8 and s.num_instances == 2
        s = parse_mix("kmeans*2@2+heat@4")
        assert s.total_cores == 8 and s.num_instances == 3
        # × is accepted in place of *
        assert parse_mix("kmeans×2").entries == parse_mix("kmeans*2").entries

    def test_parse_mix_rejects_garbage(self):
        with pytest.raises(ValueError, match="unknown workload"):
            parse_mix("nope+heat")
        with pytest.raises(ValueError, match="cannot parse"):
            parse_mix("heat@@2")
        with pytest.raises(ValueError, match="empty"):
            parse_mix("heat++lbm")

    def test_entry_validation(self):
        with pytest.raises(ValueError):
            ScenarioEntry("heat", cores=0)
        with pytest.raises(ValueError):
            ScenarioEntry("heat", instances=0)
        with pytest.raises(ValueError):
            Scenario(name="x", entries=())
        with pytest.raises(ValueError):
            Scenario(name="x", entries=(ScenarioEntry("heat"),),
                     placement="diagonal")

    def test_block_placement_contiguous(self):
        s = parse_mix("kmeans*2@2+heat@4")
        assert s.core_assignment() == ((0, 1), (2, 3), (4, 5, 6, 7))

    def test_interleave_placement_alternates(self):
        s = Scenario(
            name="x",
            entries=(ScenarioEntry("heat", cores=2),
                     ScenarioEntry("lbm", cores=2)),
            placement="interleave",
        )
        assert s.core_assignment() == ((0, 2), (1, 3))

    def test_named_registry(self):
        named = named_scenarios()
        assert set(named) == {"heat+lbm", "kmeans4+bscholes4", "all7"}
        assert named["all7"].num_instances == 7
        assert get_scenario("heat+lbm").entries[0].cores == 4
        # unknown names fall through to the mix parser
        assert get_scenario("heat+lbm+heat").num_instances == 3

    def test_solo_and_scaled(self):
        s = Scenario.solo("heat", cores=8, scale=0.5)
        assert s.total_cores == 8 and s.num_instances == 1
        assert s.scaled(0.5).entries[0].scale == 0.25
        assert s.scaled(1.0) is s

    def test_hashable_and_picklable(self):
        import pickle

        s = get_scenario("heat+lbm")
        assert hash(s) == hash(pickle.loads(pickle.dumps(s)))


# ----------------------------------------------------------------------
# Seeds and balancing
# ----------------------------------------------------------------------
class TestSeedsAndBalance:
    def test_single_instance_keeps_raw_seed(self):
        assert instance_seeds(7, 1) == [7]

    def test_spawned_seeds_distinct_and_deterministic(self):
        seeds = instance_seeds(0, 4)
        assert len(set(seeds)) == 4
        assert seeds == instance_seeds(0, 4)
        assert seeds != instance_seeds(1, 4)

    def test_same_workload_instances_differ_in_jitter_only(self):
        point, context = _context("kmeans*2+heat@2")
        plans = context.plans
        traces = [
            generate_trace(
                w.trace_spec(), r.memory, num_cores=p.entry.cores,
                max_accesses_per_core=ACCESSES, seed=p.seed,
            )
            for p, w, r in zip(plans, context.workloads, context.references)
        ]
        a, b = traces[0].cores[0], traces[1].cores[0]
        # identical program: same addresses (in instance-local space)...
        assert np.array_equal(a["addr"], b["addr"])
        # ...but spawned seeds de-correlate the gap jitter
        assert not np.array_equal(a["gap"], b["gap"])
        # and the composed trace separates them by the base offset
        full = context.trace()
        assert not np.array_equal(full.cores[0]["addr"], full.cores[1]["addr"])

    def test_per_core_streams_opt_in(self):
        _, context = _context("heat@2")
        ref = context.references[0]
        spec = context.workloads[0].trace_spec()
        default = generate_trace(spec, ref.memory, num_cores=2,
                                 max_accesses_per_core=ACCESSES, seed=0)
        spawned = generate_trace(spec, ref.memory, num_cores=2,
                                 max_accesses_per_core=ACCESSES, seed=0,
                                 per_core_streams=True)
        again = generate_trace(spec, ref.memory, num_cores=2,
                               max_accesses_per_core=ACCESSES, seed=0,
                               per_core_streams=True)
        for c in range(2):
            assert np.array_equal(default.cores[c]["addr"],
                                  spawned.cores[c]["addr"])
            assert np.array_equal(spawned.cores[c], again.cores[c])
        assert any(
            not np.array_equal(default.cores[c]["gap"], spawned.cores[c]["gap"])
            for c in range(2)
        )

    def test_balancing_bounds_instruction_counts(self):
        point, context = _context("kmeans*2+heat@2")
        plans = context.plans
        traces = [
            generate_trace(
                w.trace_spec(), r.memory, num_cores=p.entry.cores,
                max_accesses_per_core=ACCESSES, seed=p.seed,
            )
            for p, w, r in zip(plans, context.workloads, context.references)
        ]
        target = min(
            max(total_instructions(c) for c in t.cores) for t in traces
        )
        full = context.trace()
        assert all(total_instructions(c) <= target for c in full.cores)
        # the shortest instance anchors the target and is untouched
        # (modulo its base-offset address shift)
        anchor = min(
            range(len(traces)),
            key=lambda i: max(total_instructions(c) for c in traces[i].cores),
        )
        offset = context.offsets[anchor]
        for stream, core in zip(traces[anchor].cores, plans[anchor].cores):
            composed = full.cores[core]
            assert np.array_equal(composed["addr"],
                                  stream["addr"] + np.uint64(offset))
            assert np.array_equal(composed["write"], stream["write"])
            assert np.array_equal(composed["gap"], stream["gap"])

    def test_unbalanced_compose_keeps_everything(self):
        point, context = _context("kmeans*2+heat@2")
        plans = context.plans
        traces = [
            generate_trace(
                w.trace_spec(), r.memory, num_cores=p.entry.cores,
                max_accesses_per_core=ACCESSES, seed=p.seed,
            )
            for p, w, r in zip(plans, context.workloads, context.references)
        ]
        raw = compose_traces(traces, plans, context.offsets,
                             CONFIG.num_cores, balance=False)
        assert raw.total_accesses == sum(t.total_accesses for t in traces)


# ----------------------------------------------------------------------
# Layout composition invariants
# ----------------------------------------------------------------------
class TestComposition:
    def test_offsets_disjoint_and_aligned(self):
        spans = [3 * OFFSET_ALIGN // 2, 10, OFFSET_ALIGN]
        offsets = assign_offsets(spans)
        assert offsets[0] == 0
        for (o1, s1), o2 in zip(zip(offsets, spans), offsets[1:]):
            assert o2 >= o1 + s1
            assert o2 % OFFSET_ALIGN == 0

    def test_composed_ranges_do_not_overlap(self):
        _, context = _context("kmeans*2+heat@2")
        ranges = sorted(context.layout.ranges, key=lambda r: r.start)
        for a, b in zip(ranges, ranges[1:]):
            assert a.end <= b.start

    def test_composed_layout_preserves_block_sizes(self):
        point, context = _context("heat+lbm", config=SystemConfig.scaled(8))
        plans = context.plans
        for plan, offset, workload in zip(
            plans, context.offsets, context.workloads
        ):
            ipoint = point.instance_point(plan)
            local = _build_layout(workload, FUNCTIONAL(ipoint, Design.AVR))
            for r in local.ranges:
                for addr in (r.start, (r.start + r.end) // 2 & ~1023, r.end - 1024):
                    assert context.layout.block_size_of(addr + offset) == \
                        local.block_size_of(addr)
                    assert context.layout.is_approx(addr + offset) == \
                        local.is_approx(addr)

    def test_composed_footprint_and_approx_bytes_additive(self):
        point, context = _context("heat+lbm", config=SystemConfig.scaled(8))
        assert context.footprint_bytes == sum(context.instance_footprints)
        per_instance = sum(
            _build_layout(w, FUNCTIONAL(point.instance_point(p), Design.AVR)).approx_bytes
            for p, w in zip(context.plans, context.workloads)
        )
        assert context.layout.approx_bytes == per_instance

    def test_rejects_machine_smaller_than_mix(self):
        with pytest.raises(ValueError, match="needs 8 cores"):
            _context("heat+lbm", config=CONFIG)

    def test_subsets_enumeration(self):
        assert scenario_subsets(1) == ((0,),)
        assert scenario_subsets(2) == ((0,), (1,), (0, 1))
        assert set(scenario_subsets(3)) == {
            (0,), (1,), (2,), (0, 1), (0, 2), (1, 2), (0, 1, 2)
        }


# ----------------------------------------------------------------------
# Trivial scenario == classic single-workload path, bit for bit
# ----------------------------------------------------------------------
class TestTrivialScenario:
    def test_layout_and_trace_bit_identical(self):
        point = SweepPoint(workload="heat", scale=0.15,
                           max_accesses_per_core=ACCESSES)
        workload = point.make()
        reference = FUNCTIONAL(point, Design.BASELINE)
        legacy_layout = _build_layout(workload, FUNCTIONAL(point, Design.AVR))
        legacy_trace = generate_trace(
            workload.trace_spec(), reference.memory,
            num_cores=CONFIG.num_cores,
            max_accesses_per_core=ACCESSES, seed=0,
        )
        solo = ScenarioPoint(
            scenario=Scenario.solo("heat", cores=CONFIG.num_cores, scale=0.15),
            max_accesses_per_core=ACCESSES,
        )
        context = build_scenario_context(
            solo, CONFIG, FUNCTIONAL, designs=(Design.BASELINE, Design.AVR)
        )
        assert len(context.layout.ranges) == len(legacy_layout.ranges)
        for a, b in zip(context.layout.ranges, legacy_layout.ranges):
            assert (a.start, a.end) == (b.start, b.end)
            assert np.array_equal(a.sizes, b.sizes)
        trace = context.trace()
        assert trace.iterations_simulated == legacy_trace.iterations_simulated
        assert trace.iterations_total == legacy_trace.iterations_total
        for a, b in zip(trace.cores, legacy_trace.cores):
            assert np.array_equal(a, b)

    def test_single_instance_contention_is_trivial(self):
        ev = evaluate_scenario(
            Scenario.solo("heat", cores=CONFIG.num_cores, scale=0.15),
            config=CONFIG,
            designs=(Design.BASELINE,),
            max_accesses_per_core=ACCESSES,
        )
        run = ev.runs[Design.BASELINE]
        assert run.weighted_speedup == pytest.approx(1.0)
        inst = run.instances[0]
        assert inst.slowdown == pytest.approx(1.0)
        assert inst.per_core_slowdown == tuple([1.0] * CONFIG.num_cores)
        assert inst.induced_llc_misses == 0.0


# ----------------------------------------------------------------------
# Engine equivalence on heterogeneous mixes (every shipped mix)
# ----------------------------------------------------------------------
class TestEngineEquivalence:
    @pytest.mark.parametrize("mix", sorted(named_scenarios()))
    def test_shipped_mixes_bit_identical_under_avr(self, mix):
        """Per-core approx regions + heterogeneous streams, AVR LLC."""
        _, context = _context(
            mix, config=SystemConfig.scaled(get_scenario(mix).total_cores),
            accesses=1_500,
        )
        config = SystemConfig.scaled(context.num_cores)
        trace = context.trace()
        ref = build_system(
            Design.AVR, config, context.layout, context.footprint_bytes
        ).run(trace, engine="reference")
        vec = build_system(
            Design.AVR, config, context.layout, context.footprint_bytes
        ).run(trace, engine="vectorized")
        assert ref.metrics_equal(vec), ref.metric_diffs(vec)
        assert ref.core_cycles == vec.core_cycles

    @pytest.mark.parametrize("design", [Design.BASELINE, Design.TRUNCATE])
    def test_heterogeneous_mix_bit_identical(self, design):
        _, context = _context("kmeans*2+heat@2")
        trace = context.trace()
        ref = build_system(
            design, CONFIG, context.layout, context.footprint_bytes
        ).run(trace, engine="reference")
        vec = build_system(
            design, CONFIG, context.layout, context.footprint_bytes
        ).run(trace, engine="vectorized")
        assert ref.metrics_equal(vec), ref.metric_diffs(vec)

    def test_core_cycles_consistent_with_cycles(self):
        _, context = _context("kmeans*2+heat@2")
        sim = build_system(
            Design.BASELINE, CONFIG, context.layout, context.footprint_bytes
        ).run(context.trace())
        assert len(sim.core_cycles) == CONFIG.num_cores
        assert sim.cycles >= max(sim.core_cycles)


# ----------------------------------------------------------------------
# End-to-end evaluation + sweep/cache integration
# ----------------------------------------------------------------------
MIX_SPEC = SweepSpec(
    scenarios=(parse_mix("kmeans*2+heat@2"),),
    designs=(Design.BASELINE, Design.AVR),
    config=CONFIG,
    scales=(0.15,),
    max_accesses_per_core=ACCESSES,
)


class TestEvaluation:
    def test_contention_metrics_shape(self):
        ev = evaluate_scenario(
            parse_mix("kmeans*2+heat@2").scaled(0.15), config=CONFIG,
            designs=(Design.BASELINE, Design.AVR),
            max_accesses_per_core=ACCESSES,
        )
        for run in ev.runs.values():
            assert len(run.instances) == 3
            assert 0.0 < run.weighted_speedup <= 3.0 + 1e-9
            for inst in run.instances:
                assert len(inst.per_core_slowdown) == len(inst.cores)
                assert inst.solo_cycles > 0 and inst.corun_cycles > 0
                # Leave-one-out pressure is roughly the instance's own
                # demand plus what it induces on co-runners; timing and
                # interleave effects can shave a few misses either way,
                # but it must stay in the right ballpark.
                assert inst.pressure_llc_misses >= 0.5 * inst.solo_llc_misses
                assert inst.induced_llc_misses >= -0.5 * inst.solo_llc_misses
        assert ev.normalized_mix_time(Design.BASELINE) == 1.0
        # AVR relieves the shared LLC/DRAM: the mix must not get slower
        assert ev.normalized_mix_time(Design.AVR) <= 1.0

    def test_pure_scenario_spec_runs_no_workload_points(self):
        result = run_sweep(MIX_SPEC, jobs=1)
        assert len(result.evaluations) == 0
        assert len(result.scenario_evaluations) == 1
        ev = result.by_scenario()["kmeans*2+heat@2"]
        assert ev.runs[Design.AVR].corun.cycles > 0

    def test_scenario_sweep_serial_parallel_identical(self):
        serial = run_sweep(MIX_SPEC, jobs=1).by_scenario()["kmeans*2+heat@2"]
        parallel = run_sweep(MIX_SPEC, jobs=2).by_scenario()["kmeans*2+heat@2"]
        for design in MIX_SPEC.designs:
            a, b = serial.runs[design], parallel.runs[design]
            assert a.corun.metrics_equal(b.corun)
            assert a.weighted_speedup == b.weighted_speedup
            for ia, ib in zip(a.instances, b.instances):
                assert ia.per_core_slowdown == ib.per_core_slowdown
                assert ia.pressure_llc_misses == ib.pressure_llc_misses

    def test_scenario_cache_cold_then_warm(self, tmp_path):
        cold = run_sweep(MIX_SPEC, jobs=1, cache_dir=tmp_path)
        assert cold.stats.executed > 0
        warm = run_sweep(MIX_SPEC, jobs=1, cache_dir=tmp_path)
        assert warm.stats.executed == 0
        a = cold.by_scenario()["kmeans*2+heat@2"]
        b = warm.by_scenario()["kmeans*2+heat@2"]
        for design in MIX_SPEC.designs:
            assert a.runs[design].corun.metrics_equal(b.runs[design].corun)

    def test_mix_shares_functional_jobs_with_workload_points(self, tmp_path):
        from dataclasses import replace

        solo_spec = SweepSpec(
            workloads=("heat",),
            designs=(Design.BASELINE, Design.AVR),
            config=CONFIG,
            scales=(0.15,),
            max_accesses_per_core=ACCESSES,
        )
        run_sweep(solo_spec, jobs=1, cache_dir=tmp_path)
        mixed = run_sweep(
            replace(MIX_SPEC, scenarios=(parse_mix("heat@2+heat@2"),)),
            jobs=1, cache_dir=tmp_path,
        )
        # heat's functional runs are already cached from the solo sweep;
        # the mix re-executes only timing subsets.
        assert mixed.stats.functional_executed == 0

    def test_without_baseline_design(self):
        import math

        ev = evaluate_scenario(
            parse_mix("heat@1+lbm@1").scaled(0.15), config=CONFIG,
            designs=(Design.AVR,), max_accesses_per_core=ACCESSES,
        )
        assert [d.value for d in ev.runs] == ["AVR"]
        assert ev.runs[Design.AVR].weighted_speedup > 0
        assert math.isnan(ev.normalized_mix_time(Design.AVR))

    def test_timing_key_ignores_cosmetic_name(self):
        from dataclasses import replace

        from repro.harness.scenario import scenario_timing_key

        named = ScenarioPoint(get_scenario("heat+lbm"))
        spelled = ScenarioPoint(get_scenario("heat@4+lbm@4"))
        assert named.scenario.name != spelled.scenario.name
        key = scenario_timing_key(named, Design.AVR, CONFIG, (0, 1))
        assert key == scenario_timing_key(spelled, Design.AVR, CONFIG, (0, 1))
        # ...but real content differences still change the key
        reseeded = replace(named, seed=1)
        assert key != scenario_timing_key(reseeded, Design.AVR, CONFIG, (0, 1))
        assert key != scenario_timing_key(named, Design.AVR, CONFIG, (0,))

    def test_engine_choice_shares_scenario_cache_entries(self, tmp_path):
        from dataclasses import replace

        run_sweep(MIX_SPEC, jobs=1, cache_dir=tmp_path)
        other = run_sweep(
            replace(MIX_SPEC, engine="reference"), jobs=1, cache_dir=tmp_path
        )
        assert other.stats.executed == 0
