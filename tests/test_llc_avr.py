"""Tests for the AVR LLC: request flows (Fig. 7) and evictions (Fig. 8)."""


from repro.cache.llc_avr import AVRLLC
from repro.common.config import CacheConfig, DRAMConfig
from repro.common.constants import BLOCK_BYTES, BLOCK_CACHELINES, CACHELINE_BYTES
from repro.memory import DRAM

#: one approximable region for the tests
APPROX_BASE = 0x10000
APPROX_END = APPROX_BASE + 64 * BLOCK_BYTES


def make_llc(block_size=2, sets=64, ways=8):
    dram = DRAM(DRAMConfig())
    llc = AVRLLC(
        CacheConfig(sets * ways * 64, ways, 15),
        dram,
        block_size_of=lambda addr: block_size,
        is_approx=lambda addr: APPROX_BASE <= addr < APPROX_END,
    )
    return llc, dram


class TestRequestFlow:
    def test_exact_miss_fetches_one_line(self):
        llc, dram = make_llc()
        llc.read(0)
        assert dram.stats["bytes_read"] == 64
        assert llc.stats["llc_misses"] == 1

    def test_exact_then_hit(self):
        llc, _ = make_llc()
        llc.read(0)
        llc.read(0)
        assert llc.stats["llc_hits"] == 1

    def test_approx_miss_fetches_compressed_block(self):
        llc, dram = make_llc(block_size=2)
        llc.read(APPROX_BASE)
        assert llc.stats["req_miss"] == 1
        assert dram.stats["bytes_read"] == 2 * 64 + 12  # block + CMT miss

    def test_dbuf_serves_block_neighbors(self):
        llc, dram = make_llc()
        llc.read(APPROX_BASE)
        before = dram.stats["bytes_read"]
        llc.read(APPROX_BASE + 5 * CACHELINE_BYTES)
        assert llc.stats["req_hit_dbuf"] == 1
        assert dram.stats["bytes_read"] == before  # no new traffic

    def test_compressed_hit_after_dbuf_replaced(self):
        llc, _ = make_llc()
        llc.read(APPROX_BASE)  # block A in LLC + DBUF
        llc.read(APPROX_BASE + BLOCK_BYTES)  # block B replaces DBUF
        # A line of block A not inserted as UCL: served from CMS in LLC
        llc.read(APPROX_BASE + 7 * CACHELINE_BYTES)
        assert llc.stats["req_hit_compressed"] == 1

    def test_uncompressed_hit(self):
        llc, _ = make_llc()
        llc.read(APPROX_BASE)
        llc.read(APPROX_BASE + BLOCK_BYTES)  # flush DBUF
        llc.read(APPROX_BASE)  # the originally-requested UCL is in LLC
        assert llc.stats["req_hit_uncompressed"] == 1

    def test_uncompressible_block_fetches_single_line(self):
        llc, dram = make_llc(block_size=BLOCK_CACHELINES)
        llc.read(APPROX_BASE)
        assert dram.stats["bytes_read"] == 64 + 12  # line + CMT metadata

    def test_decompression_latency_charged(self):
        llc, _ = make_llc(block_size=2)
        lat_miss = llc.read(APPROX_BASE)
        lat_dbuf = llc.read(APPROX_BASE + CACHELINE_BYTES)
        assert lat_miss > lat_dbuf

    def test_decompression_count(self):
        llc, _ = make_llc()
        llc.read(APPROX_BASE)
        llc.read(APPROX_BASE + BLOCK_BYTES)
        assert llc.stats["decompressions"] == 2

    def test_pfe_prefetch_on_popular_block(self):
        llc, _ = make_llc()
        llc.read(APPROX_BASE)
        for i in range(1, 8):  # request >= half of the block's lines
            llc.read(APPROX_BASE + i * CACHELINE_BYTES)
        llc.read(APPROX_BASE + BLOCK_BYTES)  # replaces DBUF -> PFE fires
        assert llc.stats["pfe_prefetches"] == 8
        # prefetched lines now hit as UCLs
        llc.read(APPROX_BASE + 12 * CACHELINE_BYTES)
        assert llc.stats["req_hit_uncompressed"] >= 1


class TestEvictionFlow:
    def test_recompress_when_cms_resident(self):
        llc, dram = make_llc()
        llc.read(APPROX_BASE)  # brings CMSs into LLC (sets 0..size-1)
        before = dram.stats["bytes_written"]
        # Evict a dirty UCL whose set (5) differs from the CMS sets, so
        # the compressed copy stays resident while the UCL falls out.
        target = APPROX_BASE + 5 * CACHELINE_BYTES
        llc.writeback(target)
        self._flood_set(llc, target)
        assert llc.stats["evict_recompress"] >= 1
        assert dram.stats["bytes_written"] == before  # no memory traffic

    def test_lazy_writeback_when_block_only_in_memory(self):
        llc, dram = make_llc(block_size=2)
        llc.writeback(APPROX_BASE)  # dirty UCL; block never fetched
        self._flood_set(llc, APPROX_BASE)
        assert llc.stats["evict_lazy_writeback"] >= 1
        assert dram.stats["bytes_written"] >= 64

    def test_lazy_space_exhaustion_triggers_fetch_recompress(self):
        llc, dram = make_llc(block_size=14)  # only 2 lazy slots
        for i in range(3):
            llc.writeback(APPROX_BASE + i * CACHELINE_BYTES)
            self._flood_set(llc, APPROX_BASE + i * CACHELINE_BYTES)
        assert llc.stats["evict_lazy_writeback"] == 2
        assert llc.stats["evict_fetch_recompress"] >= 1

    def test_uncompressible_block_writes_back_plain(self):
        llc, dram = make_llc(block_size=BLOCK_CACHELINES)
        llc.writeback(APPROX_BASE)
        self._flood_set(llc, APPROX_BASE)
        assert llc.stats["evict_uncompressed_writeback"] >= 1

    def test_skip_counter_limits_attempts(self):
        """An uncompressible block fails once, then skips retries."""
        llc, _ = make_llc(block_size=BLOCK_CACHELINES)
        for _ in range(4):
            llc.writeback(APPROX_BASE)
            self._flood_set(llc, APPROX_BASE)
        entry, _ = llc.cmt.lookup(APPROX_BASE)
        assert entry.failed >= 1
        assert llc.stats["evict_uncompressed_writeback"] == 4

    def test_cms_group_eviction(self):
        """Evicting one CMS evicts every CMS of the block."""
        llc, dram = make_llc(block_size=4, sets=16, ways=2)
        llc.read(APPROX_BASE)
        # flood the CMS sets until block's CMS0 is evicted
        block_no = APPROX_BASE // BLOCK_BYTES
        set0 = llc._cms_set(block_no, 0)
        for j in range(4):
            line = (set0 + j * 16) * CACHELINE_BYTES + 0x100000 * 64
            llc.writeback(line + 64 * 16 * 100)
        self._flood_specific_set(llc, set0)
        assert llc._block_cms_present(block_no) == 0
        assert llc.stats["cms_block_evictions"] >= 1

    def test_exact_dirty_eviction_writes_line(self):
        llc, dram = make_llc()
        llc.writeback(0)
        self._flood_set(llc, 0)
        assert llc.stats["exact_writebacks"] >= 1
        assert dram.stats["bytes_written"] >= 64

    # helpers ----------------------------------------------------------
    @staticmethod
    def _flood_set(llc: AVRLLC, addr: int) -> None:
        """Insert exact lines mapping to addr's set until it is evicted."""
        line_no = addr // CACHELINE_BYTES
        set_idx = line_no % llc.num_sets
        base = 0x4000000
        for i in range(llc.ways + 2):
            other = (base // CACHELINE_BYTES // llc.num_sets + i) * llc.num_sets + set_idx
            llc.read(other * CACHELINE_BYTES)

    @staticmethod
    def _flood_specific_set(llc: AVRLLC, set_idx: int) -> None:
        base = 0x8000000
        for i in range(llc.ways + 2):
            line = (base // CACHELINE_BYTES // llc.num_sets + i) * llc.num_sets + set_idx
            llc.read(line * CACHELINE_BYTES)


class TestCMSLRURefresh:
    def test_ucl_access_keeps_cms_hot(self):
        """Accessing a block's UCLs refreshes its CMS recency, so the
        compressed copy survives streaming UCL traffic (paper §3.4)."""
        llc, _ = make_llc(block_size=1, sets=8, ways=4)
        llc.read(APPROX_BASE)
        block_no = APPROX_BASE // BLOCK_BYTES
        for i in range(200):
            llc.read(APPROX_BASE)  # keep touching a UCL of the block
            llc.read(0x4000000 + i * 64)  # exact streaming pressure
        assert llc._block_cms_present(block_no) >= 1


class TestPFESentinel:
    """PFE_DEFAULT keeps the paper policy; None genuinely disables."""

    def test_default_is_paper_threshold(self):
        from repro.cache.dbuf import PFE_THRESHOLD

        llc, _ = make_llc()
        assert llc.dbuf.pfe_threshold == PFE_THRESHOLD

    def test_explicit_sentinel_matches_default(self):
        from repro.cache.dbuf import PFE_THRESHOLD
        from repro.cache.llc_avr import PFE_DEFAULT

        dram = DRAM(DRAMConfig())
        llc = AVRLLC(
            CacheConfig(64 * 8 * 64, 8, 15), dram,
            block_size_of=lambda addr: 2,
            is_approx=lambda addr: APPROX_BASE <= addr < APPROX_END,
            pfe_threshold=PFE_DEFAULT,
        )
        assert llc.dbuf.pfe_threshold == PFE_THRESHOLD

    def test_none_disables_prefetching(self):
        dram = DRAM(DRAMConfig())
        llc = AVRLLC(
            CacheConfig(64 * 8 * 64, 8, 15), dram,
            block_size_of=lambda addr: 2,
            is_approx=lambda addr: APPROX_BASE <= addr < APPROX_END,
            pfe_threshold=None,
        )
        assert llc.dbuf.pfe_threshold is None
        for i in range(BLOCK_CACHELINES):  # request every line
            llc.read(APPROX_BASE + i * CACHELINE_BYTES)
        llc.read(APPROX_BASE + BLOCK_BYTES)  # replace DBUF
        assert llc.stats.get("pfe_prefetches", 0) == 0

    def test_sentinel_is_cache_key_safe(self):
        from repro.cache.llc_avr import PFE_DEFAULT
        from repro.harness.cache import content_key

        key = content_key("x", {"pfe_threshold": PFE_DEFAULT})
        assert key  # canonicalizes without TypeError


class TestInvariants:
    """Structural invariants of the packed array-backed data array."""

    @staticmethod
    def _workout(llc):
        """Mixed traffic: hits, misses, writebacks, floods, prefetches."""
        for i in range(40):
            llc.read(APPROX_BASE + i * CACHELINE_BYTES)
        for i in range(0, 30, 3):
            llc.writeback(APPROX_BASE + i * CACHELINE_BYTES)
        for i in range(60):  # exact pressure evicts UCLs and CMS groups
            llc.read(0x4000000 + i * CACHELINE_BYTES)
        for i in range(12):
            llc.read(APPROX_BASE + 4 * BLOCK_BYTES + i * CACHELINE_BYTES)

    def test_clean_after_workout(self):
        llc, _ = make_llc(block_size=3, sets=16, ways=4)
        self._workout(llc)
        assert llc.check_invariants() == []

    def test_no_cms_beyond_static_size(self):
        """The size-bounded eviction sweep's licence: CMS offsets stay
        strictly below the block's static compressed size."""
        from repro.cache.llc_avr import decode_cms_key

        llc, _ = make_llc(block_size=4, sets=16, ways=4)
        self._workout(llc)
        resident = [k for k in llc._slot_of if k < -1]
        assert resident, "workout should leave compressed blocks resident"
        for key in resident:
            block_no, off = decode_cms_key(key)
            assert off < llc.block_size_of(block_no * BLOCK_BYTES)

    def test_index_detects_corruption(self):
        llc, _ = make_llc()
        llc.read(APPROX_BASE)
        slot = next(iter(llc._slot_of.values()))
        llc.tags[slot] = 0xDEAD  # corrupt the tag plane
        assert llc.check_invariants()
