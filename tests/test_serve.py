"""Tests for the ``repro.serve`` evaluation service.

Three layers, matching the package: the frame codec (round-trips,
torn frames, garbage), the :class:`UnitScheduler` (cross-client dedup,
cancellation, fair-share bookkeeping) driven directly with synthetic
units, and the full daemon loop — real experiments submitted over a
socket by concurrent :class:`ServeClient`\\ s, checked bit-identical
against the equivalent one-shot ``run_experiment``.
"""

import asyncio
import json
import os
import threading
import time

import pytest

from repro.experiment import ExperimentSpec, run_experiment
from repro.harness.report import experiment_result_to_mapping
from repro.serve import (
    EvalDaemon,
    FrameDecoder,
    ProtocolError,
    ServeClient,
    SubmissionCancelled,
    UnitScheduler,
    encode_frame,
)
from repro.serve.client import ServeError
from repro.serve.protocol import MAX_FRAME_BYTES

# ----------------------------------------------------------------------
# protocol — framing
# ----------------------------------------------------------------------
class TestFrameCodec:
    def test_round_trip(self):
        message = {"op": "submit", "spec": {"name": "x", "scales": [0.1]}}
        decoder = FrameDecoder()
        frames = decoder.feed(encode_frame(message))
        assert frames == [message]
        assert decoder.pending == 0

    def test_torn_frames_reassemble_byte_at_a_time(self):
        messages = [{"n": i, "payload": "x" * i} for i in range(5)]
        wire = b"".join(encode_frame(m) for m in messages)
        decoder = FrameDecoder()
        seen = []
        for i in range(len(wire)):
            seen.extend(decoder.feed(wire[i:i + 1]))
        assert seen == messages
        assert decoder.pending == 0

    def test_multiple_frames_in_one_chunk(self):
        messages = [{"a": 1}, {"b": 2}, {"c": 3}]
        wire = b"".join(encode_frame(m) for m in messages)
        assert FrameDecoder().feed(wire) == messages

    def test_oversized_header_rejected(self):
        header = (MAX_FRAME_BYTES + 1).to_bytes(4, "big")
        with pytest.raises(ProtocolError, match="limit"):
            FrameDecoder().feed(header)

    def test_garbage_payload_rejected(self):
        wire = (3).to_bytes(4, "big") + b"\xff\xfe\xfd"
        with pytest.raises(ProtocolError):
            FrameDecoder().feed(wire)

    def test_oversized_message_refused_at_encode(self):
        with pytest.raises(ProtocolError, match="exceeds"):
            encode_frame({"blob": "x" * (MAX_FRAME_BYTES + 1)})


# ----------------------------------------------------------------------
# scheduler — dedup, cancellation, fair share
# ----------------------------------------------------------------------
def _wait_for_file(path, timeout=30.0):
    """Worker-side gate: spin until ``path`` exists (test plumbing)."""
    deadline = time.monotonic() + timeout
    while not os.path.exists(path):
        if time.monotonic() > deadline:
            raise TimeoutError(path)
        time.sleep(0.01)
    return "released"


def _double(x):
    return 2 * x


@pytest.fixture
def scheduler():
    sched = UnitScheduler(workers=1)
    yield sched
    sched.shutdown()


class TestUnitScheduler:
    def test_same_key_joins_in_flight_unit(self, scheduler, tmp_path):
        gate = tmp_path / "gate"
        h1 = scheduler.handle(label="client-a")
        h2 = scheduler.handle(label="client-b")
        # occupy the only worker so the shared unit stays queued
        blocker, _ = h1.submit_unit("blocker", _wait_for_file, str(gate))
        f1, launched1 = h1.submit_unit("shared", _double, 21)
        f2, launched2 = h2.submit_unit("shared", _double, 21)
        assert launched1 and not launched2
        assert f2 is f1
        gate.touch()
        assert blocker.result(timeout=30) == "released"
        assert f1.result(timeout=30) == 42
        assert scheduler.stats.units_launched == 2
        assert scheduler.stats.units_deduped == 1
        h1.release()
        h2.release()

    def test_done_unit_joinable_until_launcher_releases(self, scheduler):
        h1 = scheduler.handle()
        h2 = scheduler.handle()
        f1, _ = h1.submit_unit("k", _double, 5)
        assert f1.result(timeout=30) == 10
        # finished but h1 still references it: a second client joins the
        # completed future instead of re-running (the launcher has not
        # stored it to the cache yet)
        f2, launched = h2.submit_unit("k", _double, 5)
        assert not launched
        assert f2.result(timeout=30) == 10
        h1.release()
        h2.release()
        # with everyone released the key is forgotten; a fresh
        # submission launches again
        _, relaunched = h1.submit_unit("k", _double, 5)
        assert relaunched

    def test_cancel_drops_queued_orphans(self, scheduler, tmp_path):
        gate = tmp_path / "gate"
        h = scheduler.handle()
        blocker, _ = h.submit_unit("blocker", _wait_for_file, str(gate))
        queued, _ = h.submit_unit("queued", _double, 1)
        h.cancel()
        assert queued.cancelled()
        assert scheduler.stats.units_cancelled >= 1
        with pytest.raises(SubmissionCancelled):
            h.submit_unit("late", _double, 2)
        gate.touch()
        # the running unit drains; the worker is never killed mid-unit
        assert blocker.result(timeout=30) == "released"

    def test_queued_unit_survives_if_another_handle_wants_it(
        self, scheduler, tmp_path
    ):
        gate = tmp_path / "gate"
        h1 = scheduler.handle()
        h2 = scheduler.handle()
        h1.submit_unit("blocker", _wait_for_file, str(gate))
        f1, _ = h1.submit_unit("shared", _double, 3)
        f2, _ = h2.submit_unit("shared", _double, 3)
        h1.cancel()
        assert not f2.cancelled()
        gate.touch()
        assert f2.result(timeout=30) == 6
        h2.release()

    def test_priority_orders_dispatch(self, scheduler, tmp_path):
        gate = tmp_path / "gate"
        low = scheduler.handle(priority=0)
        high = scheduler.handle(priority=5)
        low.submit_unit("blocker", _wait_for_file, str(gate))
        f_low, _ = low.submit_unit("low", _double, 1)
        f_high, _ = high.submit_unit("high", _double, 2)
        gate.touch()
        assert f_high.result(timeout=30) == 4
        # the single worker must have run the high-priority unit first
        done_first = f_high.done() and not f_low.done()
        f_low.result(timeout=30)
        assert done_first or f_low.done()

    def test_shutdown_refuses_new_work(self, scheduler):
        scheduler.shutdown()
        with pytest.raises(RuntimeError, match="shut down"):
            scheduler.handle().submit_unit("k", _double, 1)


# ----------------------------------------------------------------------
# daemon — end to end over a real socket
# ----------------------------------------------------------------------
SPEC_A = {
    "name": "serve-a",
    "workloads": ["kmeans"],
    "designs": ["baseline", "AVR"],
    "scales": [0.1],
    "max_accesses_per_core": 2000,
}
#: superset of SPEC_A — the kmeans units are shared across clients
SPEC_B = {
    "name": "serve-b",
    "workloads": ["kmeans", "heat"],
    "designs": ["baseline", "AVR"],
    "scales": [0.1],
    "max_accesses_per_core": 2000,
}


def _canonical(mapping):
    """JSON round-trip so tuple/list and key order differences vanish."""
    return json.loads(json.dumps(mapping, sort_keys=True))


@pytest.fixture
def daemon(tmp_path):
    """A live daemon on a localhost port, served from a background loop."""
    inst = EvalDaemon(cache_dir=tmp_path / "served-cache", port=0, workers=2)
    loop = asyncio.new_event_loop()
    thread = threading.Thread(target=loop.run_forever, daemon=True)
    thread.start()
    asyncio.run_coroutine_threadsafe(inst.start(), loop).result(timeout=30)
    try:
        yield inst
    finally:
        asyncio.run_coroutine_threadsafe(inst.shutdown(), loop).result(
            timeout=60
        )
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=10)
        loop.close()


class TestDaemonEndToEnd:
    def test_cold_then_warm_matches_one_shot(self, daemon, tmp_path):
        spec = ExperimentSpec.from_mapping(SPEC_A)
        one_shot = run_experiment(
            spec, jobs=1, cache_dir=tmp_path / "one-shot-cache"
        )
        expected = _canonical(experiment_result_to_mapping(one_shot))
        expected.pop("stats")

        with ServeClient(port=daemon.port) as client:
            job = client.submit(SPEC_A)
            cold = client.wait(job)
        assert cold["stats"]["executed"] > 0
        served = _canonical(cold["result"])
        served.pop("stats")
        assert served == expected

        # warm resubmit: bit-identical again, entirely from the cache
        with ServeClient(port=daemon.port) as client:
            warm = client.wait(client.submit(SPEC_A))
        assert warm["stats"]["executed"] == 0
        assert warm["stats"]["cache_hits"] > 0
        rewarmed = _canonical(warm["result"])
        rewarmed.pop("stats")
        assert rewarmed == expected

    def test_overlapping_clients_execute_shared_units_once(self, daemon):
        outcomes = {}

        def drive(tag, spec, barrier):
            with ServeClient(port=daemon.port) as client:
                barrier.wait(timeout=30)
                outcomes[tag] = client.wait(client.submit(spec))

        barrier = threading.Barrier(2)
        threads = [
            threading.Thread(target=drive, args=("b", SPEC_B, barrier)),
            threading.Thread(target=drive, args=("a", SPEC_A, barrier)),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=300)
        assert set(outcomes) == {"a", "b"}

        a_stats = outcomes["a"]["stats"]
        b_stats = outcomes["b"]["stats"]
        rollup = daemon.scheduler.stats
        # 'executed' counts launched units only; joins land in
        # 'units_deduped'.  The cache started empty and B's grid covers
        # every distinct unit, so exactly-once means B's full
        # accounting equals the scheduler's launch count
        assert rollup.units_launched == (
            b_stats["executed"]
            + b_stats["units_deduped"]
            + b_stats["cache_hits"]
        )
        # every launch and every join is attributed to exactly one client
        assert rollup.units_launched == (
            a_stats["executed"] + b_stats["executed"]
        )
        assert rollup.units_deduped == (
            a_stats["units_deduped"] + b_stats["units_deduped"]
        )
        # the overlap manifested somewhere: whichever client lost the
        # race joined in flight or read from the shared cache
        assert (
            a_stats["units_deduped"] + a_stats["cache_hits"]
            + b_stats["units_deduped"] + b_stats["cache_hits"]
        ) > 0
        # both clients got full result payloads
        assert len(outcomes["a"]["result"]["evaluations"]) == 1
        assert len(outcomes["b"]["result"]["evaluations"]) == 2

    def test_cancel_mid_flight(self, daemon):
        with ServeClient(port=daemon.port) as client:
            job = client.submit(SPEC_B)
            client.cancel(job)
            with pytest.raises(ServeError, match="cancelled"):
                client.wait(job)
        # the daemon keeps serving after the cancellation
        with ServeClient(port=daemon.port) as client:
            outcome = client.wait(client.submit(SPEC_A))
        assert outcome["result"]["experiment"] == "serve-a"

    def test_client_disconnect_does_not_kill_daemon(self, daemon):
        client = ServeClient(port=daemon.port).connect()
        client.submit(SPEC_A)
        client.close()  # vanish with the job still in flight
        deadline = time.monotonic() + 60
        while daemon.sessions and time.monotonic() < deadline:
            time.sleep(0.05)
        assert not daemon.sessions
        with ServeClient(port=daemon.port) as survivor:
            outcome = survivor.wait(survivor.submit(SPEC_A))
        assert outcome["result"]["experiment"] == "serve-a"

    def test_bad_spec_reports_error_without_closing_session(self, daemon):
        with ServeClient(port=daemon.port) as client:
            with pytest.raises(ServeError, match="unknown experiment"):
                client.submit({"name": "bad", "bogus_key": 1})
            # same connection still works
            outcome = client.wait(client.submit(SPEC_A))
        assert outcome["result"]["experiment"] == "serve-a"

    def test_execution_only_keys_are_stripped(self, daemon, tmp_path):
        poisoned = dict(SPEC_A)
        poisoned["cache_dir"] = str(tmp_path / "client-says-here")
        poisoned["jobs"] = 99
        with ServeClient(port=daemon.port) as client:
            outcome = client.wait(client.submit(poisoned))
        assert outcome["result"]["experiment"] == "serve-a"
        assert not (tmp_path / "client-says-here").exists()
        # results landed in the daemon's shared cache instead
        assert len(daemon.cache) > 0

    def test_status_reports_shared_state(self, daemon):
        with ServeClient(port=daemon.port) as client:
            client.wait(client.submit(SPEC_A))
            status = client.status()
        assert status["event"] == "status"
        assert status["address"].endswith(str(daemon.port))
        assert status["scheduler"]["workers"] == 2
        assert status["scheduler"]["stats"]["units_launched"] > 0
        assert status["cache_entries"] > 0
        assert status["uptime_s"] >= 0
