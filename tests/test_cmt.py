"""Tests for the Compression Metadata Table."""

from repro.cache.cmt import CMT, CMTEntry
from repro.common.constants import BLOCK_BYTES, MAX_SKIP_COUNT


class TestCMTEntry:
    def test_defaults_uncompressed(self):
        e = CMTEntry()
        assert not e.compressed
        assert e.lazy_capacity == 0
        assert not e.lazy_possible()

    def test_lazy_capacity(self):
        e = CMTEntry(size_cachelines=3)
        assert e.compressed
        assert e.lazy_capacity == 13
        assert e.lazy_possible()
        e.lazy_count = 13
        assert not e.lazy_possible()

    def test_skip_policy_progression(self):
        e = CMTEntry()
        # never failed: no skipping
        assert not e.should_skip_recompression()
        e.record_failure()
        # one failure -> skip one attempt
        assert e.should_skip_recompression()
        e.record_skip()
        assert not e.should_skip_recompression()
        # more failures allow more skips (capped)
        for _ in range(10):
            e.record_failure()
        skips = 0
        while e.should_skip_recompression():
            e.record_skip()
            skips += 1
        assert skips == MAX_SKIP_COUNT

    def test_success_resets_counters(self):
        e = CMTEntry()
        e.record_failure()
        e.record_skip()
        e.record_success(2)
        assert e.size_cachelines == 2
        assert e.failed == 0 and e.skipped == 0

    def test_failure_counter_saturates(self):
        e = CMTEntry()
        for _ in range(100):
            e.record_failure()
        assert e.failed <= 15  # 4-bit field


class TestCMTCache:
    def test_lookup_creates_entry_with_default(self):
        cmt = CMT()
        entry, cached = cmt.lookup(5 * BLOCK_BYTES + 100, default_size=4)
        assert entry.size_cachelines == 4
        assert not cached  # first touch misses the CMT cache

    def test_same_page_hits(self):
        cmt = CMT()
        cmt.lookup(0)
        _, cached = cmt.lookup(BLOCK_BYTES)  # same 4 KB page
        assert cached

    def test_entry_identity_per_block(self):
        cmt = CMT()
        a, _ = cmt.lookup(0)
        b, _ = cmt.lookup(63)
        c, _ = cmt.lookup(BLOCK_BYTES)
        assert a is b
        assert a is not c

    def test_cache_capacity_evicts_lru(self):
        cmt = CMT()
        for page in range(CMT.CACHE_PAGES + 1):
            cmt.lookup(page * 4096)
        _, cached = cmt.lookup(0)  # oldest page was evicted
        assert not cached

    def test_cache_lru_refresh(self):
        cmt = CMT()
        cmt.lookup(0)
        for page in range(1, CMT.CACHE_PAGES):
            cmt.lookup(page * 4096)
        cmt.lookup(0)  # refresh page 0
        cmt.lookup(CMT.CACHE_PAGES * 4096)  # evicts page 1, not 0
        _, cached = cmt.lookup(0)
        assert cached

    def test_miss_traffic_bytes(self):
        # 4 entries x 23 bits per page -> 92 bits -> 12 bytes
        assert CMT.miss_traffic_bytes() == 12

    def test_block_addr_alignment(self):
        assert CMT.block_addr(BLOCK_BYTES + 5) == BLOCK_BYTES

    def test_default_size_only_seeds_first_touch(self):
        cmt = CMT()
        e, _ = cmt.lookup(0, default_size=2)
        e.record_success(5)
        e2, _ = cmt.lookup(0, default_size=2)
        assert e2.size_cachelines == 5
