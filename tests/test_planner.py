"""Tests for the design-space planner (repro.planner).

The anchors: an unbounded-budget plan *is* the exhaustive grid (same
Pareto front, independently recomputed), planning is deterministic
given (spec, seed), a budgeted plan meets the >=4x full-fidelity
savings the benchmark advertises, and a warm re-plan executes zero
sweep jobs because every probe shares the sweep engine's result cache.
"""

from __future__ import annotations

import dataclasses
import json
import pickle

import numpy as np
import pytest

from repro.common.config import SystemConfig
from repro.designs import BASELINE, get_design
from repro.harness.sweep import SweepSpec, run_sweep
from repro.planner import (
    Candidate,
    Constraint,
    PlanSpec,
    Surrogate,
    candidate_features,
    enumerate_candidates,
    metric_matrix,
    nondominated_mask,
    nondominated_rank,
    rank_candidates,
    run_plan,
    rung_schedule,
)

#: micro search space every sweep-backed test shares (4 candidates)
MICRO = dict(
    workload="heat",
    designs=("AVR", "truncate"),
    thresholds_scales=(0.5, 1.0),
    t2_thresholds=(0.01,),
    objective="traffic",
    scale=0.12,
    max_accesses_per_core=2_000,
    num_cores=2,
)


# ----------------------------------------------------------------------
# rung schedule (pure arithmetic)
# ----------------------------------------------------------------------
class TestRungSchedule:
    def test_unbounded_budget_is_one_exhaustive_rung(self):
        (rung,) = rung_schedule(8, budget=0, eta=2, full_fidelity=50_000)
        assert rung.count == 8 and rung.fidelity == 50_000

    def test_budget_covering_population_is_exhaustive(self):
        (rung,) = rung_schedule(8, budget=8, eta=2, full_fidelity=50_000)
        assert rung.count == 8 and rung.fidelity == 50_000

    def test_counts_halve_to_budget_and_fidelity_climbs(self):
        rungs = rung_schedule(16, budget=2, eta=2, full_fidelity=48_000)
        assert [r.count for r in rungs] == [16, 8, 4, 2]
        assert [r.fidelity for r in rungs] == [6_000, 12_000, 24_000, 48_000]
        assert rungs[-1].fidelity == 48_000

    def test_min_fidelity_floors_the_ladder(self):
        rungs = rung_schedule(16, budget=2, eta=2, full_fidelity=48_000,
                              min_fidelity=20_000)
        assert [r.fidelity for r in rungs] == [20_000, 20_000, 24_000, 48_000]

    def test_floor_never_exceeds_full_fidelity(self):
        rungs = rung_schedule(4, budget=1, eta=2, full_fidelity=500)
        assert all(r.fidelity == 500 for r in rungs)

    def test_eta_three(self):
        rungs = rung_schedule(9, budget=1, eta=3, full_fidelity=27_000)
        assert [r.count for r in rungs] == [9, 3, 1]
        assert [r.fidelity for r in rungs] == [3_000, 9_000, 27_000]

    def test_empty_population_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            rung_schedule(0, budget=0, eta=2, full_fidelity=1_000)


# ----------------------------------------------------------------------
# Pareto kernels (pure numpy)
# ----------------------------------------------------------------------
class TestPareto:
    def test_mask_keeps_only_nondominated_rows(self):
        values = np.array([[1.0, 4.0], [2.0, 2.0], [4.0, 1.0], [3.0, 3.0]])
        assert nondominated_mask(values).tolist() == [True, True, True, False]

    def test_duplicates_all_stay_on_the_front(self):
        values = np.array([[1.0, 1.0], [1.0, 1.0], [2.0, 2.0]])
        assert nondominated_mask(values).tolist() == [True, True, False]

    def test_rank_peels_fronts(self):
        values = np.array([[1.0, 4.0], [4.0, 1.0], [2.0, 5.0], [5.0, 2.0],
                           [6.0, 6.0]])
        assert nondominated_rank(values).tolist() == [0, 0, 1, 1, 2]

    def test_metric_matrix_negates_maximize_metrics(self):
        rows = [{"traffic": 0.5, "compression": 4.0},
                {"traffic": 0.6, "compression": 8.0}]
        matrix = metric_matrix(rows, ("traffic", "compression"))
        assert matrix[0].tolist() == [0.5, -4.0]
        assert matrix[1].tolist() == [0.6, -8.0]
        # higher compression must NOT be dominated by lower traffic alone
        assert nondominated_mask(matrix).all()

    def test_rank_candidates_feasible_first_then_rank_then_objective(self):
        rows = [
            {"traffic": 0.2, "error": 0.5, "compression": 1.0},   # infeasible
            {"traffic": 0.6, "error": 0.01, "compression": 1.0},  # front
            {"traffic": 0.7, "error": 0.02, "compression": 1.0},  # dominated
            {"traffic": 0.5, "error": 0.02, "compression": 1.0},  # front
        ]
        order = rank_candidates(
            ["a", "b", "c", "d"], rows, "traffic",
            (Constraint.parse("error<=0.1"),),
            ("traffic", "error", "compression"),
        )
        assert order == [3, 1, 2, 0]


# ----------------------------------------------------------------------
# constraints
# ----------------------------------------------------------------------
class TestConstraint:
    def test_parse_and_render_roundtrip(self):
        c = Constraint.parse("error<=0.05")
        assert (c.metric, c.op, c.value) == ("error", "<=", 0.05)
        assert Constraint.parse(c.render()) == c
        assert Constraint.parse("compression>=4").satisfied(4.0)

    def test_satisfied_directions(self):
        assert Constraint.parse("error<=0.05").satisfied(0.05)
        assert not Constraint.parse("error<=0.05").satisfied(0.051)
        assert not Constraint.parse("compression>=4").satisfied(3.9)

    @pytest.mark.parametrize("text", ["error<0.05", "bogus<=1", "error<=x",
                                      "error"])
    def test_malformed_rejected(self, text):
        with pytest.raises(ValueError):
            Constraint.parse(text)


# ----------------------------------------------------------------------
# spec construction + serialization
# ----------------------------------------------------------------------
class TestPlanSpec:
    def test_validation_failures(self):
        with pytest.raises(ValueError, match="unknown workload"):
            PlanSpec(workload="nope")
        with pytest.raises(ValueError, match="unknown design"):
            PlanSpec(designs=("avrr",))
        with pytest.raises(ValueError, match="objective"):
            PlanSpec(objective="speed")
        with pytest.raises(ValueError, match="AVR toggle"):
            PlanSpec(avr_toggles=("enable_warp",))
        with pytest.raises(ValueError, match="eta"):
            PlanSpec(eta=1)
        with pytest.raises(ValueError, match="constraint"):
            PlanSpec(constraints=("error<0.05",))

    @pytest.mark.parametrize("suffix", [".toml", ".json"])
    def test_file_roundtrip_preserves_identity(self, tmp_path, suffix):
        spec = PlanSpec(
            name="rt", workload="kmeans", designs=("AVR", "truncate"),
            thresholds_scales=(0.5, 1.0), t2_thresholds=(0.01, 0.04),
            approx_line_bytes=(16, 32), avr_toggles=("enable_dbuf",),
            objective="energy", constraints=("error<=0.05",),
            budget=4, eta=3, initial_candidates=6, seed=11,
            scale=0.5, max_accesses_per_core=3_000, num_cores=2,
        )
        path = spec.to_file(tmp_path / f"plan{suffix}")
        loaded = PlanSpec.from_file(path)
        assert loaded == spec
        assert loaded.content_hash() == spec.content_hash()

    def test_unknown_keys_rejected(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(json.dumps({"workload": "heat", "bogus": 1}))
        with pytest.raises(ValueError, match="bogus"):
            PlanSpec.from_file(path)

    def test_identity_excludes_execution_fields(self):
        spec = PlanSpec(**MICRO)
        relabeled = dataclasses.replace(
            spec, name="other", jobs=4, cache_dir="/tmp/c",
            engine="reference", trace_store="/tmp/t",
        )
        assert relabeled.content_hash() == spec.content_hash()
        assert dataclasses.replace(
            spec, budget=3
        ).content_hash() != spec.content_hash()

    def test_content_hash_memoized_and_survives_pickle(self):
        spec = PlanSpec(**MICRO)
        first = spec.content_hash()
        assert spec.__dict__["_content_hash"] == first
        clone = pickle.loads(pickle.dumps(spec))
        assert clone.__dict__.get("_content_hash") == first
        assert clone.content_hash() == first


# ----------------------------------------------------------------------
# candidate enumeration
# ----------------------------------------------------------------------
class TestEnumerate:
    def test_micro_space_is_the_cross_product(self):
        cands = enumerate_candidates(PlanSpec(**MICRO))
        assert len(cands) == 4
        assert [c.label() for c in cands] == [
            "AVR~s0.5 t2=0.01", "AVR t2=0.01",
            "truncate~s0.5 t2=0.01", "truncate t2=0.01",
        ]

    def test_axes_apply_only_where_meaningful(self):
        spec = PlanSpec(
            workload="heat", designs=("AVR", "truncate"),
            approx_line_bytes=(16, 32), avr_toggles=("enable_dbuf",),
        )
        labels = [c.label() for c in enumerate_candidates(spec)]
        # widths widen truncate only; toggles widen AVR only; truncate's
        # default width is 32, so w32 collapses onto the base design
        assert labels == [
            "AVR", "AVR~no-enable_dbuf",
            "truncate~w16", "truncate",
        ]

    def test_duplicate_identities_collapse(self):
        spec = PlanSpec(workload="heat", designs=("AVR",),
                        thresholds_scales=(1.0, 1.0))
        assert len(enumerate_candidates(spec)) == 1

    def test_enumeration_and_keys_are_deterministic(self):
        a = enumerate_candidates(PlanSpec(**MICRO))
        b = enumerate_candidates(PlanSpec(**MICRO))
        assert [c.key() for c in a] == [c.key() for c in b]

    def test_default_thresholds_candidate(self):
        c = Candidate(design=get_design("AVR"))
        assert c.thresholds() is None and c.label() == "AVR"


# ----------------------------------------------------------------------
# surrogate
# ----------------------------------------------------------------------
class TestSurrogate:
    def test_underdetermined_fit_returns_none(self):
        c = Candidate(design=get_design("AVR"), t2=0.01)
        features = [candidate_features(c, 1_000, 2_000)]
        assert Surrogate.fit(features, [0.5]) is None
        assert Surrogate.fit([], []) is None

    def test_fit_recovers_a_linear_function(self):
        rng = np.random.default_rng(3)
        coef = rng.normal(size=9)
        features = [rng.normal(size=9) for _ in range(40)]
        values = [float(f @ coef) for f in features]
        model = Surrogate.fit(features, values)
        assert model is not None and model.n_points == 40
        probe = rng.normal(size=9)
        assert model.predict(probe) == pytest.approx(float(probe @ coef))


# ----------------------------------------------------------------------
# end-to-end planning (sweep-backed, shared warm cache)
# ----------------------------------------------------------------------
class TestRunPlan:
    @pytest.fixture(scope="class")
    def cache_dir(self, tmp_path_factory):
        return tmp_path_factory.mktemp("plan-cache")

    def test_unbounded_budget_recovers_the_exhaustive_front(self, cache_dir):
        spec = PlanSpec(**MICRO, budget=0, cache_dir=str(cache_dir))
        result = run_plan(spec)
        assert len(result.rungs) == 1
        assert result.rungs[0].fidelity == spec.max_accesses_per_core
        assert result.stats.full_fidelity_evals == result.stats.candidates

        # Recompute the front independently through a plain sweep.
        candidates = enumerate_candidates(spec)
        sweep = run_sweep(
            SweepSpec(
                workloads=(spec.workload,),
                designs=(BASELINE,) + tuple(c.design for c in candidates),
                config=SystemConfig.scaled(num_cores=spec.resolved_cores()),
                scales=(spec.scale,),
                seeds=(spec.trace_seed,),
                thresholds=(candidates[0].thresholds(),),
                max_accesses_per_core=spec.max_accesses_per_core,
            ),
            cache_dir=str(cache_dir),
        )
        ev = sweep.by_workload()[spec.workload]
        rows = [
            {
                "traffic": ev.normalized(c.design, "traffic"),
                "error": ev.runs[c.design].output_error,
                "compression": ev.runs[c.design].compression_ratio,
            }
            for c in candidates
        ]
        mask = nondominated_mask(metric_matrix(rows, spec.pareto_metrics))
        expected = {c.key() for c, keep in zip(candidates, mask) if keep}
        assert {o.candidate.key() for o in result.front} == expected

    def test_budgeted_plan_saves_4x_full_fidelity_evals(self, cache_dir):
        spec = PlanSpec(**MICRO, budget=1, cache_dir=str(cache_dir))
        result = run_plan(spec)
        assert [len(r.outcomes) for r in result.rungs] == [4, 2, 1]
        assert result.stats.full_fidelity_evals == 1
        assert result.stats.savings >= 4.0
        assert result.stats.low_fidelity_evals == 6
        # the survivor is the exhaustive traffic winner (front metrics
        # at low fidelity suffice to steer promotion on this space)
        assert result.recommended[0].metrics["traffic"] < 1.0

    def test_planning_is_deterministic(self, cache_dir):
        spec = PlanSpec(**MICRO, budget=1, seed=5, cache_dir=str(cache_dir))
        first = run_plan(spec).to_mapping()
        second = run_plan(spec).to_mapping()
        assert first == second

    def test_warm_replan_executes_nothing(self, cache_dir):
        spec = PlanSpec(**MICRO, budget=1, cache_dir=str(cache_dir))
        result = run_plan(spec)  # cache warmed by the budgeted test
        assert result.stats.jobs_executed == 0
        assert result.stats.full_fidelity_executed == 0
        assert result.stats.cache_misses == 0
        # ... and the surrogate now has cached points to harvest
        assert result.stats.surrogate_points > 0

    def test_constraints_gate_the_front(self, cache_dir):
        spec = PlanSpec(**MICRO, budget=0, cache_dir=str(cache_dir),
                        constraints=("error<=1e-9",))
        result = run_plan(spec)
        assert result.front == () and result.recommended == ()
        assert all(not o.feasible for o in result.rungs[-1].outcomes)

    def test_prune_experiment_narrows_the_grid(self, cache_dir):
        from repro.experiment import ExperimentSpec

        spec = PlanSpec(**MICRO, budget=0, cache_dir=str(cache_dir))
        result = run_plan(spec)
        exp = ExperimentSpec(
            workloads=("heat",),
            designs=("baseline", "AVR", "truncate"),
            t2_thresholds=(0.005, 0.01, 0.02),
            scales=(0.12,), max_accesses_per_core=2_000, num_cores=2,
        )
        pruned = result.prune_experiment(exp)
        front_names = {o.candidate.design.name for o in result.front}
        assert set(pruned.designs) == front_names
        assert pruned.t2_thresholds == (0.01,)
        assert pruned.content_hash() != exp.content_hash()
        # pruned designs all resolve through the registry
        from repro.designs import resolve_designs

        resolve_designs(pruned.designs)

    def test_initial_candidates_cap_with_seeded_fallback(self, tmp_path):
        # fresh cache: no surrogate data, so rung 0 uses the seeded
        # shuffle; the plan stays a pure function of (spec, seed)
        spec = PlanSpec(**MICRO, budget=1, initial_candidates=2, seed=3,
                        cache_dir=str(tmp_path / "c"))
        first = run_plan(spec)
        assert [len(r.outcomes) for r in first.rungs] == [2, 1]
        second = run_plan(spec)
        # cache-state stats differ between the cold and warm run; the
        # plan itself (rungs, promotions, front) must not
        a, b = first.to_mapping(), second.to_mapping()
        a.pop("stats"), b.pop("stats")
        assert a == b


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestCli:
    @pytest.fixture(scope="class")
    def cache_dir(self, tmp_path_factory):
        return tmp_path_factory.mktemp("plan-cli-cache")

    def _argv(self, cache_dir, *extra):
        return [
            "plan", "--workload", "heat", "--designs", "AVR", "truncate",
            "--scales", "0.5", "1.0", "--t2", "0.01", "--budget", "1",
            "--scale", "0.12", "--accesses", "2000", "--cores", "2",
            "--cache-dir", str(cache_dir), *extra,
        ]

    def test_plan_command_prints_front_and_savings(self, cache_dir, capsys):
        from repro.__main__ import main

        assert main(self._argv(cache_dir)) == 0
        out = capsys.readouterr().out
        assert "Pareto front" in out
        assert "4.0x fewer full evals" in out

    def test_expect_cached_contract(self, cache_dir, capsys):
        from repro.__main__ import main

        assert main(self._argv(cache_dir, "--expect-cached")) == 0
        json_path = None
        assert main(self._argv(cache_dir, "--json", "-")) == 0
        payload = capsys.readouterr().out
        start = payload.index("{")
        report = json.loads(payload[start:])
        assert report["stats"]["savings"] >= 4.0
        assert [r["fidelity"] for r in report["rungs"]][-1] == 2000
        assert json_path is None

    def test_spec_file_with_overrides(self, cache_dir, tmp_path, capsys):
        from repro.__main__ import main

        spec = PlanSpec(**MICRO, budget=0)
        path = spec.to_file(tmp_path / "plan.toml")
        code = main(["plan", str(path), "--budget", "1",
                     "--cache-dir", str(cache_dir)])
        assert code == 0
        assert "budget 1" in capsys.readouterr().out

    def test_bad_constraint_exits_2(self, capsys):
        from repro.__main__ import main

        code = main(["plan", "--constraint", "error<0.05"])
        assert code == 2
        assert "constraint" in capsys.readouterr().err
