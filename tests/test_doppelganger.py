"""Tests for the Doppelgänger approximate-dedup model."""

import numpy as np
import pytest

from repro.common.constants import VALUES_PER_CACHELINE
from repro.doppelganger import DedupStats, dedup_roundtrip, line_signatures


class TestSignatures:
    def test_identical_lines_same_signature(self):
        lines = np.ones((4, VALUES_PER_CACHELINE), dtype=np.float32)
        sigs = line_signatures(lines, bucket_width=0.1)
        assert len(set(sigs.tolist())) == 1

    def test_distant_lines_differ(self):
        lines = np.zeros((2, VALUES_PER_CACHELINE), dtype=np.float32)
        lines[1] = 100.0
        sigs = line_signatures(lines, bucket_width=0.1)
        assert sigs[0] != sigs[1]

    def test_spread_disambiguates(self):
        flat = np.ones((1, VALUES_PER_CACHELINE), dtype=np.float32)
        spiky = flat.copy()
        spiky[0, 0] = -13.0
        spiky[0, 1] = 15.0  # same mean as flat, different spread
        both = np.vstack([flat, spiky])
        both[1] *= flat.mean() / both[1].mean()
        sigs = line_signatures(both, bucket_width=0.5)
        assert sigs[0] != sigs[1]

    def test_invalid_bucket_width(self):
        with pytest.raises(ValueError):
            line_signatures(np.ones((1, 16), dtype=np.float32), 0.0)


class TestDedupRoundtrip:
    def test_constant_data_dedups_to_one_line(self):
        arr = np.full(16 * 100, 5.0, dtype=np.float32)
        out, stats = dedup_roundtrip(arr)
        assert np.array_equal(out, arr)
        assert stats.unique_lines == 1
        assert stats.dedup_factor == 100.0

    def test_unique_noise_no_dedup(self, rng):
        arr = rng.normal(0, 1, 16 * 200).astype(np.float32)
        out, stats = dedup_roundtrip(arr, similarity_threshold=1e-6)
        assert stats.dedup_factor < 1.5

    def test_error_bounded_by_bucket_on_smooth_data(self, rng):
        base = np.linspace(100.0, 200.0, 16 * 500).astype(np.float32)
        out, stats = dedup_roundtrip(base, similarity_threshold=0.001)
        span = float(base.max() - base.min())
        # each line maps to a representative within ~2 buckets
        assert np.abs(out - base).max() <= 4 * 0.001 * span

    def test_wide_span_aliases_near_zero_values(self, rng):
        """The paper's failure mode: a huge value span makes buckets so
        wide that small-magnitude lines alias to distant representatives."""
        arr = np.concatenate([
            rng.uniform(-1e6, 1e6, 16 * 50).astype(np.float32),
            rng.uniform(-1.0, 1.0, 16 * 50).astype(np.float32),
        ])
        out, _ = dedup_roundtrip(arr, similarity_threshold=0.02)
        small = arr[16 * 50 :]
        approx = out[16 * 50 :]
        rel = np.abs(approx - small) / np.maximum(np.abs(small), 1e-3)
        assert rel.max() > 1.0  # >100% error on some near-zero values

    def test_preserves_shape_and_tail(self, rng):
        arr = rng.normal(10, 1, (7, 33)).astype(np.float32)  # 231 values: tail
        out, _ = dedup_roundtrip(arr)
        assert out.shape == arr.shape
        # the sub-line tail is untouched
        assert np.array_equal(out.ravel()[224:], arr.ravel()[224:])

    def test_empty_and_tiny(self):
        out, stats = dedup_roundtrip(np.zeros(3, dtype=np.float32))
        assert stats.total_lines == 0
        assert stats.dedup_factor == 1.0

    def test_first_occurrence_is_representative(self):
        a = np.full(16, 1.0, dtype=np.float32)
        b = np.full(16, 1.0001, dtype=np.float32)  # same bucket as a
        c = np.full(16, 3.0, dtype=np.float32)  # sets the value span
        arr = np.concatenate([a, b, c])
        out, stats = dedup_roundtrip(arr, similarity_threshold=0.5)
        assert stats.unique_lines == 2
        assert np.array_equal(out[16:32], a)  # b reads back a's values


def test_dedup_stats_factor():
    assert DedupStats(100, 25).dedup_factor == 4.0
    assert DedupStats(0, 0).dedup_factor == 1.0
