"""Every example script must run cleanly (deliverable b)."""

import subprocess
import sys
from pathlib import Path

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *argv: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *argv],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "ratio" in out
    assert "pack -> unpack -> decompress" in out


def test_memory_image():
    out = run_example("memory_image.py")
    assert "lazy" in out
    assert "recompress" in out


def test_heat_diffusion_quick():
    out = run_example("heat_diffusion.py", "--quick")
    assert "AVR" in out and "truncate" in out
    assert "normalized to the baseline" in out


def test_custom_design():
    out = run_example("custom_design.py")
    assert "truncate-8" in out and "avr-nodbuf" in out
    assert "DBUF hits" in out


def test_examples_exist_and_are_documented():
    scripts = sorted(p.name for p in EXAMPLES.glob("*.py"))
    assert len(scripts) >= 5
    for script in scripts:
        text = (EXAMPLES / script).read_text()
        assert text.startswith('"""'), f"{script} missing module docstring"
        assert "Run:" in text, f"{script} missing run instructions"
