"""Tests for the decompressed block buffer and prefetch engine."""

from repro.cache.dbuf import DBUF, PFE_THRESHOLD
from repro.common.constants import BLOCK_BYTES, BLOCK_CACHELINES, CACHELINE_BYTES


def test_empty_buffer_serves_nothing():
    d = DBUF()
    assert not d.serve(0)
    assert not d.holds(0)


def test_load_then_serve_same_block():
    d = DBUF()
    d.load(BLOCK_BYTES, requested_line=0)
    assert d.holds(BLOCK_BYTES + 5 * CACHELINE_BYTES)
    assert d.serve(BLOCK_BYTES + 5 * CACHELINE_BYTES)
    assert d.hits == 1


def test_other_block_not_served():
    d = DBUF()
    d.load(BLOCK_BYTES, 0)
    assert not d.serve(2 * BLOCK_BYTES)


def test_pfe_below_threshold_no_prefetch():
    d = DBUF()
    d.load(BLOCK_BYTES, 0)
    for i in range(PFE_THRESHOLD - 2):  # stay below threshold
        d.serve(BLOCK_BYTES + (i + 1) * CACHELINE_BYTES)
    prefetch = d.load(2 * BLOCK_BYTES, 0)
    assert prefetch == []


def test_pfe_at_threshold_prefetches_rest():
    d = DBUF()
    d.load(BLOCK_BYTES, 0)
    for i in range(1, PFE_THRESHOLD):
        d.serve(BLOCK_BYTES + i * CACHELINE_BYTES)
    # requested = PFE_THRESHOLD lines now
    prefetch = d.load(2 * BLOCK_BYTES, 3)
    assert len(prefetch) == BLOCK_CACHELINES - PFE_THRESHOLD
    # prefetched offsets are exactly the never-inserted ones
    assert set(prefetch) == set(range(PFE_THRESHOLD, BLOCK_CACHELINES))


def test_load_resets_tracking():
    d = DBUF()
    d.load(BLOCK_BYTES, 2)
    d.load(2 * BLOCK_BYTES, 7)
    assert d.requested == {7}
    assert d.loads == 2


def test_first_load_never_prefetches():
    d = DBUF()
    assert d.load(BLOCK_BYTES, 0) == []


def test_note_requested_counts_toward_pfe():
    d = DBUF()
    d.load(BLOCK_BYTES, 0)
    for i in range(1, PFE_THRESHOLD):
        d.note_requested(BLOCK_BYTES + i * CACHELINE_BYTES)
    prefetch = d.load(2 * BLOCK_BYTES, 0)
    assert len(prefetch) == BLOCK_CACHELINES - PFE_THRESHOLD


def test_invalidate():
    d = DBUF()
    d.load(BLOCK_BYTES, 0)
    d.invalidate()
    assert not d.holds(BLOCK_BYTES)
    assert d.requested == set()


class TestBitmaskTracking:
    """The set-valued views are derived from the bit-mask state."""

    def test_serve_sets_bits(self):
        d = DBUF()
        d.load(BLOCK_BYTES, 3)
        d.serve(BLOCK_BYTES + 5 * CACHELINE_BYTES)
        assert d.requested_mask == (1 << 3) | (1 << 5)
        assert d.in_llc_mask == d.requested_mask
        assert d.requested == {3, 5}
        assert d.in_llc == {3, 5}

    def test_note_requested_sets_bits(self):
        d = DBUF()
        d.load(BLOCK_BYTES, 0)
        d.note_requested(BLOCK_BYTES + 9 * CACHELINE_BYTES)
        assert d.requested_mask == (1 << 0) | (1 << 9)

    def test_pfe_fires_uses_popcount(self):
        d = DBUF(pfe_threshold=2)
        d.load(BLOCK_BYTES, 0)
        assert not d.pfe_fires()
        d.serve(BLOCK_BYTES + CACHELINE_BYTES)
        assert d.pfe_fires()

    def test_load_prefetch_offsets_ascend(self):
        d = DBUF(pfe_threshold=1)
        d.load(BLOCK_BYTES, 2)
        d.serve(BLOCK_BYTES + 11 * CACHELINE_BYTES)
        prefetch = d.load(2 * BLOCK_BYTES, 0)
        assert prefetch == sorted(prefetch)
        assert set(prefetch) == set(range(BLOCK_CACHELINES)) - {2, 11}

    def test_invalidate_clears_masks(self):
        d = DBUF()
        d.load(BLOCK_BYTES, 4)
        d.invalidate()
        assert d.requested_mask == 0 and d.in_llc_mask == 0
        assert d.block_addr is None

    def test_none_threshold_never_fires(self):
        d = DBUF(pfe_threshold=None)
        d.load(BLOCK_BYTES, 0)
        for i in range(1, BLOCK_CACHELINES):
            d.serve(BLOCK_BYTES + i * CACHELINE_BYTES)
        assert not d.pfe_fires()
        assert d.load(2 * BLOCK_BYTES, 0) == []
