"""Property tests for trace-generation invariants.

Three properties every generated trace must satisfy:

* **determinism** — the stream is a pure function of (spec, layout,
  cores, budget, seed, stream mode); only the seed perturbs it.
* **domain decomposition** — per-core slices of a phase's sweep are
  pairwise disjoint and stay inside the swept region.
* **exact budget accounting** — :func:`budget_iterations` agrees with
  the generated stream to the access: ``iterations x per-iteration
  cost == len(core stream)`` for every core, including stride-unaligned
  slices where the historical floor-based estimate undercounted.
"""

import numpy as np
import pytest

from repro.approx import ApproxMemory
from repro.trace import generate_trace
from repro.trace.generator import budget_iterations
from repro.workloads import WORKLOADS, make_workload
from repro.workloads.base import Phase, TraceSpec

SCALE = 0.15
BUDGET = 2_500


def allocate_only(workload) -> ApproxMemory:
    mem = ApproxMemory()
    workload.allocate(mem)
    return mem


@pytest.fixture
def mem():
    m = ApproxMemory()
    m.alloc("data", 64 * 1024 // 4)  # 64 KB
    return m


class TestDeterminism:
    @pytest.mark.parametrize("per_core_streams", [False, True])
    def test_same_inputs_same_stream(self, mem, per_core_streams):
        spec = TraceSpec(8, (Phase("data", gap=20),))
        kwargs = dict(
            num_cores=4, max_accesses_per_core=BUDGET, seed=3,
            per_core_streams=per_core_streams,
        )
        a = generate_trace(spec, mem, **kwargs)
        b = generate_trace(spec, mem, **kwargs)
        assert all(np.array_equal(x, y) for x, y in zip(a.cores, b.cores))

    def test_seed_perturbs_only_gaps(self, mem):
        spec = TraceSpec(8, (Phase("data", gap=20),))
        a = generate_trace(spec, mem, num_cores=2, seed=0)
        b = generate_trace(spec, mem, num_cores=2, seed=1)
        for x, y in zip(a.cores, b.cores):
            assert np.array_equal(x["addr"], y["addr"])
            assert np.array_equal(x["write"], y["write"])
        assert not all(
            np.array_equal(x["gap"], y["gap"])
            for x, y in zip(a.cores, b.cores)
        )


class TestDomainDecomposition:
    @pytest.mark.parametrize("num_cores", [2, 3, 4, 8])
    def test_slices_disjoint_and_within_region(self, mem, num_cores):
        spec = TraceSpec(2, (Phase("data", gap=5),))
        gen = generate_trace(
            spec, mem, num_cores=num_cores, max_accesses_per_core=BUDGET
        )
        region = mem.region("data")
        lo, hi = region.base_addr, region.base_addr + region.nbytes
        address_sets = []
        for trace in gen.cores:
            addrs = trace["addr"]
            assert addrs.min() >= lo
            assert addrs.max() < hi
            address_sets.append(set(addrs.tolist()))
        for i in range(num_cores):
            for j in range(i + 1, num_cores):
                assert not (address_sets[i] & address_sets[j]), (
                    f"cores {i} and {j} share addresses"
                )

    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_every_workload_stays_in_its_regions(self, name):
        workload = make_workload(name, scale=SCALE)
        mem = allocate_only(workload)
        spec = workload.trace_spec()
        spans = [
            (r.base_addr, r.base_addr + r.nbytes)
            for r in (mem.region(p.region) for p in spec.phases)
        ]
        gen = generate_trace(
            spec, mem, num_cores=4, max_accesses_per_core=BUDGET
        )
        for trace in gen.cores:
            for addr in (trace["addr"].min(), trace["addr"].max()):
                assert any(lo <= addr < hi for lo, hi in spans)


class TestBudgetAccounting:
    @staticmethod
    def per_core_cost(spec, mem, num_cores):
        return sum(
            phase.lines_per_core(
                mem.region(phase.region).nbytes, spec.iterations, num_cores
            )
            * phase.accesses_per_line
            for phase in spec.phases
        )

    @pytest.mark.parametrize("num_cores", [1, 3, 8])
    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_budget_matches_generated_stream_exactly(self, name, num_cores):
        workload = make_workload(name, scale=SCALE)
        mem = allocate_only(workload)
        spec = workload.trace_spec()
        iters = budget_iterations(spec, mem, num_cores, BUDGET)
        gen = generate_trace(
            spec, mem, num_cores=num_cores, max_accesses_per_core=BUDGET
        )
        assert gen.iterations_simulated == iters
        per_iter = self.per_core_cost(spec, mem, num_cores)
        for trace in gen.cores:
            assert len(trace) == iters * per_iter

    def test_budget_never_exceeded(self):
        """The per-core stream fits the budget whenever one iteration
        does — exact accounting makes the bound tight, not approximate."""
        for name in sorted(WORKLOADS):
            workload = make_workload(name, scale=SCALE)
            mem = allocate_only(workload)
            spec = workload.trace_spec()
            gen = generate_trace(
                spec, mem, num_cores=2, max_accesses_per_core=BUDGET
            )
            per_iter = self.per_core_cost(spec, mem, 2)
            for trace in gen.cores:
                assert len(trace) <= max(BUDGET, per_iter)

    def test_unaligned_slice_counts_partial_stride_tail(self):
        """Regression: a core slice not divisible by the stride emits a
        partial-tail access (arange rounds up); the budget accounting
        must count it, not floor it away."""
        m = ApproxMemory()
        m.alloc("odd", 10_000 // 4)  # 10 kB; /3 cores -> 3333 B slices
        spec = TraceSpec(4, (Phase("odd", gap=1),))
        lines = spec.phases[0].lines_per_core(10_000, 4, 3)
        assert lines == 53  # ceil(3333/64); floor would give 52
        gen = generate_trace(spec, m, num_cores=3, max_accesses_per_core=500)
        iters = gen.iterations_simulated
        for trace in gen.cores:
            assert len(trace) == iters * lines
        assert iters == budget_iterations(spec, m, 3, 500)

    def test_narrow_slice_emits_nothing(self):
        """A slice narrower than the stride cannot hold one access; the
        accounting and both generators agree it contributes zero."""
        m = ApproxMemory()
        m.alloc("tiny", 128 // 4)  # 128 B; /4 cores -> 32 B < stride
        spec = TraceSpec(2, (Phase("tiny", gap=1),))
        assert spec.phases[0].lines_per_core(128, 2, 4) == 0
        for generator in ("vectorized", "reference"):
            gen = generate_trace(spec, m, num_cores=4, generator=generator)
            assert all(len(t) == 0 for t in gen.cores)


def test_trace_field_dtypes_pinned():
    """Every generated trace carries exactly the pinned TRACE_DTYPE
    field widths — never the platform default int width (int32 on
    Windows), which would silently change store hashes and replay
    arithmetic."""
    from repro.trace.events import TRACE_DTYPE

    assert TRACE_DTYPE["addr"] == np.uint64
    assert TRACE_DTYPE["write"] == np.bool_
    assert TRACE_DTYPE["gap"] == np.uint32
    for name in WORKLOADS:
        workload = make_workload(name, scale=SCALE)
        gen = generate_trace(
            workload.trace_spec(),
            allocate_only(workload),
            num_cores=2,
            max_accesses_per_core=BUDGET,
        )
        for core in gen.cores:
            assert core.dtype == TRACE_DTYPE, name
