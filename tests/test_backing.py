"""Tests for the byte-accurate backing store."""

import numpy as np
import pytest

from repro.common.constants import BLOCK_BYTES, BLOCK_CACHELINES, VALUES_PER_BLOCK
from repro.common.types import DataType, ErrorThresholds
from repro.compression import AVRCompressor
from repro.memory import BackingStore


@pytest.fixture
def store():
    return BackingStore(AVRCompressor(ErrorThresholds(0.02, 0.01)))


def smooth_block(seed=0):
    rng = np.random.default_rng(seed)
    x = np.linspace(0, 1, VALUES_PER_BLOCK, dtype=np.float32)
    return x * np.float32(rng.uniform(0.5, 2)) + 1.0


class TestWholeBlocks:
    def test_roundtrip_within_threshold(self, store):
        values = smooth_block()
        assert store.write_block(0, values)  # compressed
        out = store.read_block(0)
        assert np.allclose(out, values, rtol=0.05)

    def test_roundtrip_bit_exact_vs_compressor(self, store):
        """The store reproduces exactly what the compressor pipeline
        says a consumer should read back."""
        values = smooth_block(3)
        _, recon = store.compressor.compress_block(values)
        store.write_block(0, values)
        assert np.array_equal(store.read_block(0), recon)

    def test_incompressible_stored_verbatim(self, store):
        noise = np.random.default_rng(1).normal(0, 1, VALUES_PER_BLOCK).astype(np.float32)
        assert not store.write_block(0, noise)
        assert np.array_equal(store.read_block(0), noise)
        assert store.stored_cachelines(0) == BLOCK_CACHELINES

    def test_compressed_occupancy(self, store):
        store.write_block(0, np.full(VALUES_PER_BLOCK, 2.5, dtype=np.float32))
        assert store.stored_cachelines(0) == 1

    def test_unaligned_rejected(self, store):
        with pytest.raises(ValueError):
            store.write_block(100, smooth_block())

    def test_wrong_shape_rejected(self, store):
        with pytest.raises(ValueError):
            store.write_block(0, np.zeros(100, dtype=np.float32))

    def test_independent_blocks(self, store):
        a, b = smooth_block(1), smooth_block(2)
        store.write_block(0, a)
        store.write_block(BLOCK_BYTES, b)
        assert store.num_blocks == 2
        assert np.allclose(store.read_block(0), a, rtol=0.05)
        assert np.allclose(store.read_block(BLOCK_BYTES), b, rtol=0.05)


class TestLazyLines:
    def test_lazy_line_overlays_on_read(self, store):
        values = smooth_block()
        store.write_block(0, values)
        new_line = np.full(16, 42.0, dtype=np.float32)
        assert store.lazy_write_line(5 * 64, new_line)
        out = store.read_block(0)
        assert np.array_equal(out[5 * 16 : 6 * 16], new_line)
        # other lines unaffected
        assert np.allclose(out[:16], values[:16], rtol=0.05)

    def test_lazy_occupancy_grows(self, store):
        store.write_block(0, np.full(VALUES_PER_BLOCK, 1.0, dtype=np.float32))
        base = store.stored_cachelines(0)
        store.lazy_write_line(0, np.zeros(16, dtype=np.float32))
        assert store.stored_cachelines(0) == base + 1

    def test_rewriting_same_line_reuses_slot(self, store):
        store.write_block(0, np.full(VALUES_PER_BLOCK, 1.0, dtype=np.float32))
        store.lazy_write_line(0, np.full(16, 2.0, dtype=np.float32))
        store.lazy_write_line(0, np.full(16, 3.0, dtype=np.float32))
        assert store.stored_cachelines(0) == 2
        assert store.read_block(0)[0] == 3.0

    def test_lazy_space_exhaustion(self, store):
        # a constant block compresses to 1 CL -> 15 lazy slots
        store.write_block(0, np.full(VALUES_PER_BLOCK, 1.0, dtype=np.float32))
        for i in range(15):
            assert store.lazy_write_line(i * 64, np.full(16, float(i), np.float32))
        assert not store.lazy_write_line(15 * 64, np.zeros(16, np.float32))

    def test_merge_and_recompress_after_exhaustion(self, store):
        store.write_block(0, np.full(VALUES_PER_BLOCK, 1.0, dtype=np.float32))
        for i in range(15):
            store.lazy_write_line(i * 64, np.full(16, 1.01, np.float32))
        line = np.full(16, 1.02, dtype=np.float32)
        assert store.merge_and_recompress(15 * 64, line)
        out = store.read_block(0)
        assert np.allclose(out[15 * 16 :], 1.02, rtol=0.05)
        assert np.allclose(out[: 15 * 16], 1.01, rtol=0.05)
        # lazy slots were folded back in
        assert store.stored_cachelines(0) <= 2

    def test_lazy_into_uncompressed_block_writes_in_place(self, store):
        noise = np.random.default_rng(2).normal(0, 1, VALUES_PER_BLOCK).astype(np.float32)
        store.write_block(0, noise)
        line = np.full(16, 7.0, dtype=np.float32)
        assert store.lazy_write_line(3 * 64, line)
        assert np.array_equal(store.read_block(0)[3 * 16 : 4 * 16], line)


class TestFixedPoint:
    def test_fixed32_roundtrip(self):
        store = BackingStore(dtype=DataType.FIXED32)
        values = (np.arange(VALUES_PER_BLOCK, dtype=np.int32) * 100) + 100_000
        store.write_block(0, values)
        out = store.read_block(0)
        assert out.dtype == np.int32
        rel = np.abs(out.astype(np.float64) - values) / values
        assert rel.max() < 0.05
