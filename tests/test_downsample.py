"""Tests for the 1D/2D downsampling and interpolated reconstruction."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.constants import SUMMARY_VALUES
from repro.compression.downsample import (
    downsample_1d,
    downsample_2d,
    reconstruct_1d,
    reconstruct_2d,
)

SCALE = 1 << 20  # scaled integers (keep 256*SCALE inside int32)


def as_blocks(*rows):
    return np.array(rows, dtype=np.int64)


class TestDownsample:
    def test_1d_averages_runs_of_16(self):
        block = np.arange(256, dtype=np.int64) * SCALE
        s = downsample_1d(block[None, :])[0]
        expected = block.reshape(16, 16).mean(axis=1)
        assert np.abs(s - expected).max() <= 1

    def test_2d_averages_tiles(self):
        grid = np.arange(256, dtype=np.int64).reshape(16, 16) * 1000
        s = downsample_2d(grid.reshape(1, 256))[0].reshape(4, 4)
        for i in range(4):
            for j in range(4):
                tile = grid[4 * i : 4 * i + 4, 4 * j : 4 * j + 4]
                assert abs(s[i, j] - round(tile.mean())) <= 1

    def test_constant_block_exact(self):
        block = np.full((3, 256), 12345678, dtype=np.int64)
        assert (downsample_1d(block) == 12345678).all()
        assert (downsample_2d(block) == 12345678).all()

    def test_negative_values(self):
        block = np.full((1, 256), -1000, dtype=np.int64)
        assert (downsample_1d(block) == -1000).all()
        assert (downsample_2d(block) == -1000).all()

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            downsample_1d(np.zeros((2, 100)))
        with pytest.raises(ValueError):
            downsample_2d(np.zeros(256))

    def test_output_shape_and_dtype(self):
        out = downsample_1d(np.zeros((5, 256), dtype=np.int64))
        assert out.shape == (5, SUMMARY_VALUES)
        assert out.dtype == np.int32


class TestReconstruct:
    def test_constant_exact(self):
        s = np.full((2, 16), 777, dtype=np.int32)
        assert (reconstruct_1d(s) == 777).all()
        assert (reconstruct_2d(s) == 777).all()

    def test_1d_linear_ramp_near_exact(self):
        """Linear data is reproduced by linear interpolation (incl. the
        extrapolated block edges)."""
        block = (np.arange(256, dtype=np.int64) * 1000)[None, :]
        recon = reconstruct_1d(downsample_1d(block))[0]
        assert np.abs(recon - block[0]).max() <= 16  # rounding only

    def test_2d_bilinear_ramp_near_exact(self):
        r = np.arange(16, dtype=np.int64)
        grid = (r[:, None] * 3000 + r[None, :] * 5000).reshape(1, 256)
        recon = reconstruct_2d(downsample_2d(grid))[0]
        assert np.abs(recon - grid[0]).max() <= 32

    def test_edge_extrapolation_beats_clamping(self):
        """The first half-segment of a steep ramp must track the slope."""
        block = (np.arange(256, dtype=np.int64) * 100000)[None, :]
        recon = reconstruct_1d(downsample_1d(block))[0]
        # With flat clamping, recon[0] would be the segment-0 mean
        # (≈ 7.5 * 100000); with extrapolation it tracks value 0.
        assert abs(recon[0] - 0) < 100000

    def test_reconstruction_bounded_for_bounded_input(self, rng):
        blocks = rng.integers(-(10**6), 10**6, (8, 256)).astype(np.int64)
        for down, recon in [
            (downsample_1d, reconstruct_1d),
            (downsample_2d, reconstruct_2d),
        ]:
            s = down(blocks)
            out = recon(s)
            # linear inter/extrapolation overshoot is bounded by ~1.5x
            # the summary range
            smin, smax = s.min(), s.max()
            margin = (int(smax) - int(smin)) + 1
            assert out.min() >= smin - margin
            assert out.max() <= smax + margin

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            reconstruct_1d(np.zeros((2, 8)))
        with pytest.raises(ValueError):
            reconstruct_2d(np.zeros(16))

    def test_saturation_no_wraparound(self):
        # summaries at int32 extremes: extrapolation must clip, not wrap
        s = np.zeros((1, 16), dtype=np.int64)
        s[0, ::2] = 2**31 - 1
        s[0, 1::2] = -(2**31)
        out1 = reconstruct_1d(s)
        out2 = reconstruct_2d(s)
        assert out1.dtype == np.int32 and out2.dtype == np.int32
        # values must stay within int32 (no silent overflow in the cast)
        assert out1.min() >= -(2**31) and out1.max() <= 2**31 - 1


class TestRoundtripProperties:
    @given(st.integers(min_value=-(2**27), max_value=2**27))
    def test_constant_blocks_are_fixed_points(self, v):
        block = np.full((1, 256), v, dtype=np.int64)
        for down, recon in [
            (downsample_1d, reconstruct_1d),
            (downsample_2d, reconstruct_2d),
        ]:
            out = recon(down(block))
            assert (out == v).all()

    @given(
        st.integers(min_value=-(2**20), max_value=2**20),
        st.integers(min_value=-4000, max_value=4000),
    )
    def test_linear_blocks_recovered(self, intercept, slope):
        block = (intercept + slope * np.arange(256, dtype=np.int64))[None, :]
        out = reconstruct_1d(downsample_1d(block))[0]
        assert np.abs(out - block[0]).max() <= max(16, abs(slope) // 8 + 16)

    @given(st.lists(st.integers(-(2**24), 2**24), min_size=256, max_size=256))
    def test_recompression_idempotent(self, xs):
        """Compressing already-reconstructed data reproduces the summary
        (the stability property that prevents iterative drift)."""
        block = np.array(xs, dtype=np.int64)[None, :]
        s1 = downsample_1d(block)
        r1 = reconstruct_1d(s1)
        s2 = downsample_1d(r1.astype(np.int64))
        # Interpolation smears isolated summary spikes into neighboring
        # segments, so re-averaging can move a summary by up to ~1/4 of
        # the summary span (plus rounding); smooth data is a fixed point.
        span = int(s1.max()) - int(s1.min())
        assert np.abs(s2.astype(np.int64) - s1.astype(np.int64)).max() <= span // 4 + 6
