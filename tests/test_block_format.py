"""Tests for the compressed-block byte format."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.constants import CACHELINE_BYTES, SUMMARY_VALUES, VALUES_PER_BLOCK
from repro.common.types import CompressionMethod
from repro.compression.block import CompressedBlock


def make_block(n_outliers=0, method=CompressionMethod.DOWNSAMPLE_1D, bias=3):
    rng = np.random.default_rng(n_outliers)
    summary = rng.integers(-(2**30), 2**30, SUMMARY_VALUES).astype(np.int32)
    mask = np.zeros(VALUES_PER_BLOCK, dtype=bool)
    if n_outliers:
        mask[rng.choice(VALUES_PER_BLOCK, n_outliers, replace=False)] = True
    bits = rng.integers(0, 2**32, int(mask.sum()), dtype=np.uint64).astype(np.uint32)
    return CompressedBlock(
        method=method, bias=bias, summary=summary,
        outlier_mask=mask, outlier_bits=bits,
    )


class TestConstruction:
    def test_summary_shape_enforced(self):
        with pytest.raises(ValueError):
            CompressedBlock(
                method=CompressionMethod.DOWNSAMPLE_1D,
                bias=0,
                summary=np.zeros(8, dtype=np.int32),
            )

    def test_mask_count_must_match_bits(self):
        mask = np.zeros(VALUES_PER_BLOCK, dtype=bool)
        mask[0] = True
        with pytest.raises(ValueError):
            CompressedBlock(
                method=CompressionMethod.DOWNSAMPLE_2D,
                bias=0,
                summary=np.zeros(SUMMARY_VALUES, dtype=np.int32),
                outlier_mask=mask,
                outlier_bits=np.zeros(0, dtype=np.uint32),
            )

    def test_uncompressed_method_rejected(self):
        with pytest.raises(ValueError):
            CompressedBlock(
                method=CompressionMethod.UNCOMPRESSED,
                bias=0,
                summary=np.zeros(SUMMARY_VALUES, dtype=np.int32),
            )


class TestSizes:
    def test_no_outliers_one_cacheline(self):
        assert make_block(0).size_cachelines == 1
        assert make_block(0).free_cachelines == 15

    def test_size_grows_with_outliers(self):
        assert make_block(1).size_cachelines == 2
        assert make_block(40).size_cachelines == 4

    @given(st.integers(min_value=0, max_value=104))
    def test_packed_length_matches_size(self, n):
        block = make_block(n)
        assert len(block.pack()) == block.size_cachelines * CACHELINE_BYTES


class TestPackUnpack:
    @pytest.mark.parametrize("n_outliers", [0, 1, 7, 31, 104])
    def test_roundtrip(self, n_outliers):
        block = make_block(n_outliers)
        rebuilt = CompressedBlock.unpack(
            block.pack(), block.method, block.bias, block.size_cachelines
        )
        assert rebuilt.method == block.method
        assert rebuilt.bias == block.bias
        assert np.array_equal(rebuilt.summary, block.summary)
        assert np.array_equal(rebuilt.outlier_mask, block.outlier_mask)
        assert np.array_equal(rebuilt.outlier_bits, block.outlier_bits)

    def test_summary_lives_in_first_cacheline(self):
        block = make_block(0)
        raw = np.frombuffer(block.pack(), dtype=np.uint8)
        assert np.array_equal(
            raw[:CACHELINE_BYTES].view(np.int32), block.summary
        )

    def test_unpack_rejects_short_image(self):
        block = make_block(5)
        with pytest.raises(ValueError):
            CompressedBlock.unpack(
                block.pack()[:-1], block.method, block.bias, block.size_cachelines
            )

    def test_unpack_rejects_zero_size(self):
        with pytest.raises(ValueError):
            CompressedBlock.unpack(b"", CompressionMethod.DOWNSAMPLE_1D, 0, 0)

    @given(st.integers(min_value=-128, max_value=127))
    def test_bias_is_metadata_not_image(self, bias):
        """Two blocks differing only in bias produce identical images:
        the bias travels in the CMT, not the block."""
        a = make_block(3, bias=bias)
        b = make_block(3, bias=0)
        assert a.pack() == b.pack()
