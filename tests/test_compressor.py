"""Tests for the AVR compressor/decompressor pipeline."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.constants import BLOCK_CACHELINES, MAX_COMPRESSED_CACHELINES, VALUES_PER_BLOCK
from repro.common.types import CompressionMethod, DataType, ErrorThresholds
from repro.compression import AVRCompressor
from repro.compression.block import CompressedBlock


@pytest.fixture
def compressor():
    return AVRCompressor(ErrorThresholds(t1=0.02, t2=0.01))


class TestBatchCompression:
    def test_smooth_blocks_compress(self, compressor, smooth_blocks):
        res = compressor.compress_blocks(smooth_blocks)
        assert res.success.all()
        assert res.compression_ratio > 8.0
        assert (res.size_cachelines <= MAX_COMPRESSED_CACHELINES).all()

    def test_noise_fails(self, compressor, noisy_blocks):
        res = compressor.compress_blocks(noisy_blocks)
        assert not res.success.any()
        assert (res.size_cachelines == BLOCK_CACHELINES).all()
        assert (res.method == CompressionMethod.UNCOMPRESSED).all()

    def test_failed_blocks_pass_through(self, compressor, noisy_blocks):
        res = compressor.compress_blocks(noisy_blocks)
        assert np.array_equal(res.reconstructed, noisy_blocks)

    def test_constant_blocks_one_cacheline(self, compressor):
        blocks = np.full((4, VALUES_PER_BLOCK), 3.25, dtype=np.float32)
        res = compressor.compress_blocks(blocks)
        assert res.success.all()
        assert (res.size_cachelines == 1).all()
        assert (res.outlier_count == 0).all()
        assert np.allclose(res.reconstructed, 3.25, rtol=1e-6)

    def test_error_bound_honored(self, compressor, smooth_blocks):
        """Every non-outlier reconstructed value obeys the hybrid bound:
        within T1 relatively, or within T1 of the block scale."""
        res = compressor.compress_blocks(smooth_blocks)
        t1 = compressor.thresholds.t1
        rel = np.abs(res.reconstructed - smooth_blocks) / np.abs(smooth_blocks)
        scale = np.abs(smooth_blocks).max(axis=1, keepdims=True)
        absn = np.abs(res.reconstructed - smooth_blocks) / scale
        ok = (rel <= t1 * 1.01) | (absn <= t1 * 1.01)
        assert ok.all()

    def test_outliers_restored_exactly(self, compressor, rng):
        blocks = np.linspace(1, 2, VALUES_PER_BLOCK, dtype=np.float32)[None, :].repeat(4, 0)
        # inject spikes that must become outliers
        blocks[:, 37] = 50.0
        blocks[:, 200] = -7.0
        res = compressor.compress_blocks(blocks)
        assert res.success.all()
        assert res.outlier_mask[:, 37].all()
        assert res.outlier_mask[:, 200].all()
        assert (res.reconstructed[:, 37] == 50.0).all()
        assert (res.reconstructed[:, 200] == -7.0).all()

    def test_shape_validation(self, compressor):
        with pytest.raises(ValueError):
            compressor.compress_blocks(np.zeros((2, 100), dtype=np.float32))

    def test_bias_used_for_extreme_magnitudes(self, compressor):
        tiny = np.linspace(1e-12, 2e-12, VALUES_PER_BLOCK, dtype=np.float32)[None, :]
        res = compressor.compress_blocks(tiny)
        assert res.success.all()
        assert res.bias[0] > 0
        rel = np.abs(res.reconstructed - tiny) / tiny
        assert rel.max() < 0.05

    def test_huge_magnitudes(self, compressor):
        huge = np.linspace(1e12, 2e12, VALUES_PER_BLOCK, dtype=np.float32)[None, :]
        res = compressor.compress_blocks(huge)
        assert res.success.all()
        assert res.bias[0] < 0

    def test_special_values_dont_crash(self, compressor):
        blocks = np.ones((1, VALUES_PER_BLOCK), dtype=np.float32)
        blocks[0, 5] = np.inf
        blocks[0, 9] = np.nan
        res = compressor.compress_blocks(blocks)
        # specials force outliers or failure, never corruption
        if res.success[0]:
            assert np.isinf(res.reconstructed[0, 5])
            assert np.isnan(res.reconstructed[0, 9])
        else:
            assert np.array_equal(
                res.reconstructed[0], blocks[0], equal_nan=True
            )

    def test_method_selection_prefers_smaller(self, compressor, rng):
        # A pure 1D ramp favours the 1D method or ties; both valid, but
        # the chosen method must be one of the two compressed variants.
        ramp = np.linspace(0, 1, VALUES_PER_BLOCK, dtype=np.float32)[None, :] + 1
        res = compressor.compress_blocks(ramp)
        assert res.method[0] in (
            CompressionMethod.DOWNSAMPLE_1D,
            CompressionMethod.DOWNSAMPLE_2D,
        )

    def test_recompression_stable(self, compressor, smooth_blocks):
        """Round-tripping already-approximated data is (near) lossless —
        the property that stops iterative error accumulation."""
        r1 = compressor.compress_blocks(smooth_blocks)
        r2 = compressor.compress_blocks(r1.reconstructed)
        assert r2.success.all()
        delta = np.abs(r2.reconstructed - r1.reconstructed)
        scale = np.abs(r1.reconstructed).max()
        assert delta.max() <= 2e-3 * scale


class TestFixedPointPath:
    def test_fixed_smooth_compresses(self, compressor):
        blocks = (np.linspace(0, 10000, VALUES_PER_BLOCK).astype(np.int32))[None, :]
        blocks = blocks + 100000
        res = compressor.compress_blocks(blocks, DataType.FIXED32)
        assert res.success.all()
        assert res.bias[0] == 0

    def test_fixed_error_bound(self, compressor):
        blocks = (100000 + np.arange(VALUES_PER_BLOCK) * 10).astype(np.int32)[None, :]
        res = compressor.compress_blocks(blocks, DataType.FIXED32)
        rel = np.abs(
            res.reconstructed.astype(np.float64) - blocks
        ) / np.abs(blocks)
        assert rel[~res.outlier_mask].max() <= compressor.thresholds.t1

    def test_fixed_noise_fails(self, compressor, rng):
        blocks = rng.integers(-(10**8), 10**8, (4, VALUES_PER_BLOCK)).astype(np.int32)
        res = compressor.compress_blocks(blocks, DataType.FIXED32)
        assert not res.success.any()


class TestScalarAPI:
    def test_compress_block_roundtrip(self, compressor, smooth_blocks):
        block, recon = compressor.compress_block(smooth_blocks[0])
        assert block is not None
        out = compressor.decompress_block(block)
        assert np.array_equal(out, recon)

    def test_failed_block_returns_none(self, compressor, noisy_blocks):
        block, recon = compressor.compress_block(noisy_blocks[0])
        assert block is None
        assert np.array_equal(recon, noisy_blocks[0])

    def test_pack_unpack_decompress_identical(self, compressor, smooth_blocks):
        data = smooth_blocks[3].copy()
        data[100] = 99.0  # force an outlier
        block, recon = compressor.compress_block(data)
        assert block is not None and block.outlier_count >= 1
        rebuilt = CompressedBlock.unpack(
            block.pack(), block.method, block.bias, block.size_cachelines
        )
        out = compressor.decompress_block(rebuilt)
        assert np.array_equal(out, recon)

    def test_decompress_blocks_requires_compressed(self, compressor):
        with pytest.raises(ValueError):
            compressor.decompress_blocks(
                np.zeros((1, 16), dtype=np.int32),
                np.array([CompressionMethod.UNCOMPRESSED]),
                np.zeros(1, dtype=np.int16),
            )


class TestThresholdKnob:
    """The tunable error knob: tighter thresholds -> lower error, lower ratio."""

    def test_ratio_monotone_in_threshold(self, rng):
        x = np.linspace(0, 1, VALUES_PER_BLOCK, dtype=np.float32)
        blocks = (np.sin(12 * x)[None, :] + 2.0).repeat(16, 0)
        blocks += rng.normal(0, 0.002, blocks.shape).astype(np.float32)
        ratios = []
        for t2 in (0.04, 0.01, 0.0025):
            comp = AVRCompressor(ErrorThresholds.from_t2(t2))
            ratios.append(comp.compress_blocks(blocks).compression_ratio)
        assert ratios[0] >= ratios[1] >= ratios[2]

    @given(st.floats(min_value=0.001, max_value=0.2))
    def test_from_t2_relation(self, t2):
        th = ErrorThresholds.from_t2(t2)
        assert th.t1 == pytest.approx(min(1.0, 2 * t2))


class TestConstructorValidation:
    def test_typo_check_mode_rejected_eagerly(self):
        with pytest.raises(ValueError, match="unknown check mode"):
            AVRCompressor(check_mode="hybird")

    @pytest.mark.parametrize("mode", ["hardware", "relative", "hybrid"])
    def test_valid_check_modes_accepted(self, mode):
        assert AVRCompressor(check_mode=mode).check_mode == mode

    def test_fixed32_compression_unaffected_by_mode(self):
        """The FIXED32 path never consults check_mode — a typo there
        used to be silently ignored, which is why the constructor now
        validates eagerly.  All valid modes must behave identically."""
        blocks = (np.arange(VALUES_PER_BLOCK, dtype=np.int32) * 3)[None, :]
        results = [
            AVRCompressor(check_mode=mode).compress_blocks(
                blocks, DataType.FIXED32
            )
            for mode in ("hardware", "relative", "hybrid")
        ]
        assert all(
            np.array_equal(r.size_cachelines, results[0].size_cachelines)
            for r in results[1:]
        )


class TestCompressionRatioEdgeCases:
    def test_empty_batch_ratio_is_neutral(self, compressor):
        res = compressor.compress_blocks(
            np.empty((0, VALUES_PER_BLOCK), dtype=np.float32)
        )
        assert res.nblocks == 0
        assert res.compression_ratio == 1.0

    def test_zero_storage_with_blocks_is_inf(self, compressor, smooth_blocks):
        res = compressor.compress_blocks(smooth_blocks)
        res.size_cachelines = np.zeros_like(res.size_cachelines)
        assert res.compression_ratio == float("inf")
