"""Tests for fixed-point conversion and exponent biasing."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.fixedpoint import (
    DEFAULT_FORMAT,
    FixedPointFormat,
    apply_bias,
    choose_bias,
    fixed_to_float,
    float_to_fixed,
    remove_bias,
)
from repro.fixedpoint.bias import TARGET_MAX_EXPONENT


class TestFormat:
    def test_default_q8_24(self):
        assert DEFAULT_FORMAT.frac_bits == 24
        assert DEFAULT_FORMAT.max_value == pytest.approx(128.0, rel=1e-6)
        assert DEFAULT_FORMAT.resolution == 2.0**-24

    def test_invalid_frac_bits(self):
        with pytest.raises(ValueError):
            FixedPointFormat(frac_bits=31)
        with pytest.raises(ValueError):
            FixedPointFormat(frac_bits=0)


class TestConvert:
    def test_roundtrip_in_range(self, rng):
        values = rng.uniform(-100.0, 100.0, 1000).astype(np.float32)
        fixed, sat = float_to_fixed(values)
        assert not sat.any()
        back = fixed_to_float(fixed)
        assert np.abs(back - values).max() <= DEFAULT_FORMAT.resolution

    def test_saturation_flagged(self):
        values = np.array([1e6, -1e6, 1.0], dtype=np.float32)
        fixed, sat = float_to_fixed(values)
        assert list(sat) == [True, True, False]
        assert fixed[0] == DEFAULT_FORMAT.max_int
        assert fixed[1] == DEFAULT_FORMAT.min_int

    def test_nan_becomes_zero(self):
        fixed, sat = float_to_fixed(np.array([np.nan], dtype=np.float32))
        assert sat[0]
        assert fixed[0] == 0

    def test_zero_exact(self):
        fixed, _ = float_to_fixed(np.zeros(4, dtype=np.float32))
        assert np.array_equal(fixed, np.zeros(4, dtype=np.int32))

    @given(
        st.lists(
            st.floats(min_value=-127.0, max_value=127.0, width=32),
            min_size=1,
            max_size=64,
        )
    )
    def test_roundtrip_property(self, xs):
        values = np.array(xs, dtype=np.float32)
        fixed, sat = float_to_fixed(values)
        assert not sat.any()
        back = fixed_to_float(fixed)
        assert np.abs(back.astype(np.float64) - values).max() <= 2 * DEFAULT_FORMAT.resolution


class TestBias:
    def test_large_values_get_negative_bias(self):
        values = np.full(16, 1e10, dtype=np.float32)
        bias = choose_bias(values)
        assert bias < 0
        biased = apply_bias(values, bias)
        assert np.abs(biased).max() < DEFAULT_FORMAT.max_value

    def test_small_values_get_positive_bias(self):
        values = np.full(16, 1e-10, dtype=np.float32)
        bias = choose_bias(values)
        assert bias > 0

    def test_bias_targets_sweet_spot(self):
        values = np.array([1e10, 5e9], dtype=np.float32)
        bias = choose_bias(values)
        from repro.common import bitops

        biased = apply_bias(values, bias)
        assert bitops.exponent_bits(biased).max() == TARGET_MAX_EXPONENT

    def test_specials_skip_bias(self):
        assert choose_bias(np.array([np.inf, 1.0], dtype=np.float32)) == 0
        assert choose_bias(np.array([np.nan, 1.0], dtype=np.float32)) == 0

    def test_all_zero_skips(self):
        assert choose_bias(np.zeros(16, dtype=np.float32)) == 0

    def test_wide_range_skips(self):
        # biasing would underflow the small value's exponent
        values = np.array([1e30, 1e-30], dtype=np.float32)
        assert choose_bias(values) == 0

    def test_apply_remove_roundtrip(self, rng):
        values = rng.uniform(1e6, 2e6, 64).astype(np.float32)
        bias = choose_bias(values)
        assert bias != 0
        restored = remove_bias(apply_bias(values, bias), bias)
        assert np.allclose(restored, values, rtol=1e-6)

    def test_remove_bias_flushes_underflow(self):
        # a reconstructed value far smaller than any original: exact
        # exponent subtraction would underflow; ldexp flushes gracefully
        tiny = np.array([1e-38], dtype=np.float32)
        out = remove_bias(tiny, 120)
        assert out[0] == 0.0

    def test_zero_bias_identity(self):
        values = np.array([1.5, -2.0], dtype=np.float32)
        assert np.array_equal(apply_bias(values, 0), values)
        assert np.array_equal(remove_bias(values, 0), values)

    @given(
        st.floats(min_value=1e-20, max_value=1e20).filter(lambda x: x > 0),
        st.integers(min_value=2, max_value=64),
    )
    def test_bias_never_overflows_chosen_block(self, scale, n):
        rng = np.random.default_rng(0)
        values = (scale * rng.uniform(0.5, 1.5, n)).astype(np.float32)
        bias = choose_bias(values)
        biased = apply_bias(values, bias)  # must not raise
        assert np.isfinite(biased).all()
        if bias != 0:
            assert np.abs(biased).max() < DEFAULT_FORMAT.max_value
