"""Shared test fixtures and hypothesis configuration."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

settings.register_profile(
    "repro",
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture
def smooth_blocks(rng) -> np.ndarray:
    """Highly compressible float32 blocks: scaled linear ramps."""
    x = np.linspace(0.0, 1.0, 256, dtype=np.float32)
    scales = rng.uniform(0.5, 2.0, (32, 1)).astype(np.float32)
    return x[None, :] * scales + 1.0


@pytest.fixture
def noisy_blocks(rng) -> np.ndarray:
    """Incompressible float32 blocks: white noise."""
    return rng.normal(0.0, 1.0, (32, 256)).astype(np.float32)
