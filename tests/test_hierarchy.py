"""Regression tests for the private L1+L2 victim-cascade policy.

The seed model only installed *dirty* L1 victims into L2, so clean
victims vanished from the private stack and every re-read escalated to
the LLC.  These tests pin the corrected policy: all L1 victims land in
L2 with their dirty flag preserved.
"""

from repro.cache.hierarchy import PrivateCaches
from repro.common.config import SystemConfig

CONFIG = SystemConfig.scaled(num_cores=2)
L1_SETS = CONFIG.l1.num_sets          # 16 in the scaled config
L1_WAYS = CONFIG.l1.ways              # 4
LINE = CONFIG.l1.line_bytes           # 64


def _same_l1_set_addr(k: int, base: int = 0) -> int:
    """k-th distinct line mapping to the same L1 set as ``base``."""
    return base + k * L1_SETS * LINE


class TestCleanVictimInstall:
    def test_clean_l1_victim_lands_in_l2(self):
        priv = PrivateCaches(CONFIG)
        # Fill one L1 set with clean lines, then overflow it by one.
        for k in range(L1_WAYS + 1):
            priv.access(_same_l1_set_addr(k), write=False)
        # The evicted line (k=0, clean) must now hit in L2.
        latency, needs_llc, wbs = priv.access(_same_l1_set_addr(0), write=False)
        assert not needs_llc, "clean L1 victim was not installed in L2"
        assert latency == priv.l1.latency + priv.l2.latency
        assert wbs == []

    def test_l2_hit_counts_pinned(self):
        """Pin exact L2 hit/miss counts for a conflict-sweep pattern."""
        priv = PrivateCaches(CONFIG)
        rounds = 3
        lines = L1_WAYS + 1  # one more than L1 associativity: thrashes L1
        for _ in range(rounds):
            for k in range(lines):
                priv.access(_same_l1_set_addr(k), write=False)
        # Round 1: all 5 lines miss L1 and L2 (cold).  Every later round
        # misses L1 (5 lines > 4 ways, LRU sweep) but hits L2, where the
        # victims were installed.
        assert priv.l1.hits == 0
        assert priv.l1.misses == rounds * lines
        assert priv.l2.misses == lines
        assert priv.l2.hits == (rounds - 1) * lines

    def test_dirty_flag_preserved_through_l2(self):
        """A dirty L1 victim must surface as an LLC writeback when it
        later falls out of L2 — and a clean one must not."""
        priv = PrivateCaches(CONFIG)
        dirty_addr = _same_l1_set_addr(0)
        priv.access(dirty_addr, write=True)
        # Evict it from L1 (clean fills), pushing it into L2 dirty.
        for k in range(1, L1_WAYS + 1):
            priv.access(_same_l1_set_addr(k), write=False)
        assert priv.l2.probe(dirty_addr)
        # Now thrash the L2 set holding dirty_addr until it falls out.
        l2_sets, l2_ways = CONFIG.l2.num_sets, CONFIG.l2.ways
        collected = []
        for k in range(1, l2_ways + 1):
            conflicting = dirty_addr + k * l2_sets * LINE
            victim = priv.l2.insert(conflicting, dirty=False)
            if victim is not None:
                collected.append(victim)
        assert (dirty_addr, True) in collected

    def test_writeback_only_for_dirty_l2_victims(self):
        """Clean-victim churn through L1 and L2 must not fabricate LLC
        writeback traffic."""
        priv = PrivateCaches(CONFIG)
        total_lines = CONFIG.l2.num_lines + CONFIG.l1.num_lines + 8
        for k in range(total_lines):
            _, _, wbs = priv.access(k * LINE, write=False)
            assert wbs == [], "clean victims must never reach the LLC"


def test_access_returns_l1_latency_on_hit():
    priv = PrivateCaches(CONFIG)
    priv.access(0, write=False)
    latency, needs_llc, wbs = priv.access(0, write=False)
    assert latency == priv.l1.latency
    assert not needs_llc and wbs == []
