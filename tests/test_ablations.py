"""Tests for the ablation hooks and the ablation harness."""

import numpy as np
import pytest

from repro.cache.llc_avr import AVRLLC
from repro.common.config import CacheConfig, DRAMConfig, SystemConfig
from repro.common.constants import BLOCK_BYTES, CACHELINE_BYTES, VALUES_PER_BLOCK
from repro.common.types import CompressionMethod, ErrorThresholds
from repro.compression import AVRCompressor
from repro.harness import run_compressor_ablations, run_llc_ablations
from repro.harness.ablations import LLC_ABLATIONS
from repro.memory import DRAM

APPROX_BASE = 0x10000


def make_llc(**kwargs):
    dram = DRAM(DRAMConfig())
    llc = AVRLLC(
        CacheConfig(64 * 8 * 64, 8, 15),
        dram,
        block_size_of=lambda addr: 2,
        is_approx=lambda addr: APPROX_BASE <= addr < APPROX_BASE + 64 * BLOCK_BYTES,
        **kwargs,
    )
    return llc, dram


class TestLLCFlags:
    def test_no_dbuf_falls_through_to_compressed(self):
        llc, _ = make_llc(enable_dbuf=False)
        llc.read(APPROX_BASE)
        llc.read(APPROX_BASE + CACHELINE_BYTES)
        assert llc.stats.get("req_hit_dbuf", 0) == 0
        assert llc.stats["req_hit_compressed"] >= 1

    def test_no_lazy_eviction_forces_fetch_recompress(self):
        llc, dram = make_llc(enable_lazy_eviction=False)
        llc.writeback(APPROX_BASE)
        for i in range(llc.ways + 2):  # flood the UCL's set
            line = (0x4000000 // 64 // llc.num_sets + i) * llc.num_sets
            llc.read(line * 64)
        assert llc.stats.get("evict_lazy_writeback", 0) == 0
        assert llc.stats["evict_fetch_recompress"] >= 1

    def test_no_skip_counters_always_retries(self):
        llc, _ = make_llc(enable_skip_counters=False)
        llc.block_size_of = lambda addr: 16  # uncompressible
        for _ in range(4):
            llc.writeback(APPROX_BASE)
            for i in range(llc.ways + 2):
                line = (0x4000000 // 64 // llc.num_sets + i) * llc.num_sets
                llc.read(line * 64)
        entry, _ = llc.cmt.lookup(APPROX_BASE)
        assert entry.skipped == 0
        # every eviction attempted compression (and failed)
        assert llc.stats["compressions"] == 4

    def test_pfe_threshold_zero_prefetches_everything(self):
        llc, _ = make_llc(pfe_threshold=0)
        llc.read(APPROX_BASE)
        llc.read(APPROX_BASE + BLOCK_BYTES)  # replace DBUF
        assert llc.stats["pfe_prefetches"] == 15

    def test_pfe_threshold_over_block_never_fires(self):
        llc, _ = make_llc(pfe_threshold=17)
        for i in range(16):
            llc.read(APPROX_BASE + i * CACHELINE_BYTES)
        llc.read(APPROX_BASE + BLOCK_BYTES)
        assert llc.stats.get("pfe_prefetches", 0) == 0


class TestCompressorOptions:
    def test_single_method_forced(self):
        ramp = (np.linspace(1, 2, VALUES_PER_BLOCK, dtype=np.float32))[None, :]
        for method in (CompressionMethod.DOWNSAMPLE_1D, CompressionMethod.DOWNSAMPLE_2D):
            comp = AVRCompressor(ErrorThresholds(0.02, 0.01), methods=(method,))
            res = comp.compress_blocks(ramp)
            assert res.success[0]
            assert res.method[0] == method

    def test_invalid_methods_rejected(self):
        with pytest.raises(ValueError):
            AVRCompressor(methods=())
        with pytest.raises(ValueError):
            AVRCompressor(methods=(CompressionMethod.UNCOMPRESSED,))

    def test_no_bias_hurts_extreme_magnitudes(self):
        tiny = np.linspace(1e-12, 2e-12, VALUES_PER_BLOCK, dtype=np.float32)[None, :]
        with_bias = AVRCompressor(ErrorThresholds(0.02, 0.01)).compress_blocks(tiny)
        without = AVRCompressor(
            ErrorThresholds(0.02, 0.01), enable_bias=False
        ).compress_blocks(tiny)
        assert with_bias.success[0]
        # without biasing the values vanish in fixed point: the block
        # either fails or degrades severely
        assert (not without.success[0]) or (
            without.size_cachelines[0] > with_bias.size_cachelines[0]
        )
        assert without.bias[0] == 0

    def test_three_candidate_selection_consistent(self):
        """Selection over >2 candidates keeps the smallest size."""
        comp = AVRCompressor(
            ErrorThresholds(0.02, 0.01),
            methods=(
                CompressionMethod.DOWNSAMPLE_1D,
                CompressionMethod.DOWNSAMPLE_2D,
                CompressionMethod.DOWNSAMPLE_1D,
            ),
        )
        x = np.linspace(0, 4, VALUES_PER_BLOCK, dtype=np.float32)
        blocks = (np.sin(x) + 2.0)[None, :].repeat(8, 0)
        res = comp.compress_blocks(blocks)
        best = AVRCompressor(ErrorThresholds(0.02, 0.01)).compress_blocks(blocks)
        assert np.array_equal(res.size_cachelines, best.size_cachelines)


class TestAblationHarness:
    def test_llc_ablation_labels(self):
        config = SystemConfig.scaled(num_cores=2)
        results = run_llc_ablations(
            "heat", config=config, scale=0.15, iterations=8,
            max_accesses_per_core=6_000,
            variants={k: LLC_ABLATIONS[k] for k in ("full AVR", "no DBUF")},
        )
        assert set(results) == {"full AVR", "no DBUF"}
        assert results["no DBUF"].amat_cycles >= results["full AVR"].amat_cycles

    def test_compressor_ablation_metrics(self):
        results = run_compressor_ablations("orbit", scale=0.13)
        assert "full pipeline" in results
        for v in results.values():
            assert v["ratio"] >= 1.0
            assert 0.0 <= v["success_pct"] <= 100.0


class TestPerRegionThresholds:
    def test_region_knob_overrides_global(self):
        from repro.approx import ApproxMemory, AVRApproximator

        mem = ApproxMemory(AVRApproximator(ErrorThresholds.from_t2(0.01)))
        rng = np.random.default_rng(0)
        x = np.linspace(0, 3, 4096)
        # mild noise: invisible to the loose knob, outliers for the tight one
        data = (np.sin(x) + 2.0 + rng.normal(0, 1e-3, x.size)).astype(np.float32)
        mem.alloc("loose", 4096, init=data)
        mem.alloc("tight", 4096, init=data,
                  thresholds=ErrorThresholds.from_t2(0.0001))
        mem.sync()
        loose = mem.reports["loose"].last.compression_ratio
        tight = mem.reports["tight"].last.compression_ratio
        assert tight < loose  # tighter knob -> more outliers -> lower ratio
