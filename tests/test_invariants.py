"""Cross-cutting invariants of the timing layer and compressor."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.config import CacheConfig, SystemConfig
from repro.common.constants import VALUES_PER_BLOCK
from repro.common.types import Design, ErrorThresholds
from repro.compression import AVRCompressor
from repro.system import AddressLayout, build_system
from repro.trace.events import make_trace
from repro.trace.generator import GeneratedTrace

CONFIG = SystemConfig(
    num_cores=2,
    l1=CacheConfig(2 * 1024, 4, 1),
    l2=CacheConfig(8 * 1024, 8, 8),
    llc=CacheConfig(64 * 1024, 16, 15),
)


def mixed_trace(seed=0, n=3000):
    rng = np.random.default_rng(seed)
    addrs = (rng.integers(0, 1 << 14, n) * 64 + 0x10000).astype(np.int64)
    writes = rng.random(n) < 0.3
    gaps = rng.integers(5, 200, n).astype(np.uint32)
    return GeneratedTrace(
        cores=[make_trace(addrs[: n // 2], writes[: n // 2], gaps[: n // 2]),
               make_trace(addrs[n // 2 :], writes[n // 2 :], gaps[n // 2 :])],
        iterations_simulated=1,
        iterations_total=1,
    )


class TestTrafficConservation:
    @pytest.mark.parametrize(
        "design", [Design.BASELINE, Design.AVR, Design.TRUNCATE, Design.DGANGER]
    )
    def test_tagged_bytes_match_dram_bytes(self, design):
        """Every byte the LLC moves is tagged approx or exact; DRAM's
        ledger may only exceed the tags by CMT metadata transfers."""
        layout = AddressLayout()
        layout.add_region(0x10000, 1 << 19, 2)
        system = build_system(design, CONFIG, layout, 1 << 20, dedup_factor=2.0)
        res = system.run(mixed_trace())
        tagged = res.approx_bytes + res.exact_bytes
        slack = res.llc_stats.get("llc_misses", 0) * 12 + 4096  # CMT metadata
        if design in (Design.BASELINE, Design.ZERO_AVR):
            # baseline LLC tags nothing as approx
            assert res.approx_bytes == 0 or design != Design.BASELINE
        assert abs(res.total_bytes - tagged) <= slack

    def test_read_write_split_consistent(self):
        layout = AddressLayout()
        layout.add_region(0x10000, 1 << 19, 2)
        system = build_system(Design.AVR, CONFIG, layout, 1 << 20)
        res = system.run(mixed_trace())
        assert res.dram_bytes_read > 0
        assert res.dram_bytes_written > 0
        assert res.total_bytes == res.dram_bytes_read + res.dram_bytes_written


class TestDeterminism:
    def test_same_trace_same_result(self):
        layout = AddressLayout()
        layout.add_region(0x10000, 1 << 19, 2)
        runs = []
        for _ in range(2):
            system = build_system(Design.AVR, CONFIG, layout, 1 << 20)
            runs.append(system.run(mixed_trace(seed=7)))
        assert runs[0].cycles == runs[1].cycles
        assert runs[0].total_bytes == runs[1].total_bytes
        assert runs[0].llc_stats == runs[1].llc_stats


class TestPaperConfigPath:
    def test_paper_machine_simulates(self):
        """SystemConfig.paper() (Table 1 verbatim) is runnable, not just
        documentation."""
        config = SystemConfig.paper()
        layout = AddressLayout()
        layout.add_region(0x10000, 1 << 19, 2)
        system = build_system(Design.AVR, config, layout, 1 << 22)
        trace = mixed_trace(n=800)
        res = system.run(trace)
        assert res.cycles > 0
        # the 8 MB LLC swallows this small working set entirely
        assert res.llc_mpki < 60.0


class TestCompressorInvariants:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=20)
    def test_outlier_values_always_exact(self, seed):
        rng = np.random.default_rng(seed)
        base = np.linspace(1.0, 2.0, VALUES_PER_BLOCK).astype(np.float32)
        spikes = rng.choice(VALUES_PER_BLOCK, 5, replace=False)
        base[spikes] = rng.uniform(50, 100, 5).astype(np.float32)
        comp = AVRCompressor(ErrorThresholds(0.02, 0.01))
        res = comp.compress_blocks(base[None, :])
        if res.success[0]:
            mask = res.outlier_mask[0]
            assert np.array_equal(res.reconstructed[0][mask], base[mask])

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=20)
    def test_size_accounts_for_outliers(self, seed):
        rng = np.random.default_rng(seed)
        blocks = (
            np.linspace(1, 2, VALUES_PER_BLOCK, dtype=np.float32)[None, :]
            + rng.normal(0, 0.005, (4, VALUES_PER_BLOCK)).astype(np.float32)
        )
        comp = AVRCompressor(ErrorThresholds(0.02, 0.01))
        res = comp.compress_blocks(blocks)
        from repro.compression.outliers import compressed_size_cachelines

        ok = res.success
        expected = compressed_size_cachelines(res.outlier_count[ok])
        assert np.array_equal(res.size_cachelines[ok], expected)

    def test_summary_matches_block_means(self):
        """The stored summary is the fixed-point block-mean vector."""
        values = np.linspace(10.0, 20.0, VALUES_PER_BLOCK).astype(np.float32)
        comp = AVRCompressor(ErrorThresholds(0.02, 0.01))
        block, _ = comp.compress_block(values)
        assert block is not None
        recon = comp.decompress_block(block)
        seg_means_orig = values.reshape(16, 16).mean(axis=1)
        seg_means_recon = recon.reshape(16, 16).mean(axis=1)
        assert np.allclose(seg_means_recon, seg_means_orig, rtol=0.01)


class TestLayoutBatchLookups:
    """The vectorized layout lookups must match their scalar originals."""

    def test_block_size_of_batch_matches_scalar(self):
        rng = np.random.default_rng(5)
        layout = AddressLayout()
        sizes = rng.integers(1, 17, 64).astype(np.int64)
        layout.add_region(0x10000, 64 * 1024, sizes)
        layout.add_region(0x80000, 8 * 1024, 4)
        addrs = rng.integers(0, 0x100000, 500).astype(np.int64)
        batch = layout.block_size_of_batch(addrs)
        scalar = [layout.block_size_of(int(a)) for a in addrs]
        assert batch.tolist() == scalar

    def test_is_approx_batch_matches_scalar(self):
        rng = np.random.default_rng(6)
        layout = AddressLayout()
        layout.add_region(0x4000, 16 * 1024, 2)
        addrs = rng.integers(0, 0x10000, 400).astype(np.int64)
        batch = layout.is_approx_batch(addrs)
        scalar = [layout.is_approx(int(a)) for a in addrs]
        assert batch.tolist() == scalar

    def test_block_size_of_batch_overlapping_first_wins(self):
        layout = AddressLayout()
        layout.add_region(0x0, 8 * 1024, 2)
        layout.add_region(0x1000, 8 * 1024, 7)  # overlaps the first
        addrs = np.arange(0, 0x4000, 512, dtype=np.int64)
        batch = layout.block_size_of_batch(addrs)
        scalar = [layout.block_size_of(int(a)) for a in addrs]
        assert batch.tolist() == scalar
