"""Tests for the ``repro check`` static analysis pass.

Each rule gets a pair of fixtures: a snippet that must trigger it and
a neighbouring snippet that must pass.  On top of the per-rule pairs,
the suite pins the suppression syntax, the CLI exit-code contract, and
— the point of the whole subsystem — that the repository's own source
tree is clean under every rule.
"""

from pathlib import Path

import pytest

from repro.analysis import all_rules, get_rule, resolve_rules, run_check
from repro.analysis.cli import add_check_arguments, cmd_check
from repro.analysis.registry import Rule, register_rule

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src" / "repro"
TESTS = REPO_ROOT / "tests"


def check_snippet(tmp_path, source, *, name="snippet.py", select=None,
                  tests=None, subdir=None):
    """Run the checker over one synthetic module; return its findings."""
    target = tmp_path if subdir is None else tmp_path / subdir
    target.mkdir(parents=True, exist_ok=True)
    path = target / name
    path.write_text(source)
    result = run_check([str(tmp_path)], select=select, tests=tests)
    return result


def rule_ids(result):
    return [f.rule for f in result.findings]


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_catalogue_covers_the_shipped_rules(self):
        ids = {cls.id for cls in all_rules()}
        assert {"RNG001", "DTY001", "KEY001", "KEY002", "PKL001",
                "PAR001", "DOC001", "PLN001", "CCH001", "SRV001"} <= ids

    def test_get_rule_by_id_and_name(self):
        assert get_rule("RNG001").id == "RNG001"
        assert get_rule("rng-discipline").id == "RNG001"

    def test_unknown_rule_suggests_close_matches(self):
        with pytest.raises(ValueError, match="RNG001"):
            get_rule("RNG01")

    def test_resolve_rules_default_is_all(self):
        assert resolve_rules(None) == all_rules()

    def test_register_rule_rejects_duplicate_ids(self):
        class Clash(Rule):
            id = "RNG001"
            name = "clash"
            summary = "duplicate id"

            def check(self, module, project):
                return iter(())

        with pytest.raises(ValueError, match="RNG001"):
            register_rule(Clash)


# ----------------------------------------------------------------------
# RNG001 — RNG discipline
# ----------------------------------------------------------------------
class TestRngDiscipline:
    def test_unseeded_default_rng_flagged(self, tmp_path):
        result = check_snippet(
            tmp_path,
            "import numpy as np\nrng = np.random.default_rng()\n",
            select=["RNG001"],
        )
        assert rule_ids(result) == ["RNG001"]

    def test_seeded_default_rng_passes(self, tmp_path):
        result = check_snippet(
            tmp_path,
            "import numpy as np\n"
            "def make(seed: int):\n"
            "    return np.random.default_rng(seed)\n",
            select=["RNG001"],
        )
        assert result.ok

    def test_import_alias_resolved(self, tmp_path):
        result = check_snippet(
            tmp_path,
            "from numpy.random import default_rng\nr = default_rng()\n",
            select=["RNG001"],
        )
        assert rule_ids(result) == ["RNG001"]

    def test_legacy_global_namespace_flagged(self, tmp_path):
        result = check_snippet(
            tmp_path,
            "import numpy as np\nx = np.random.rand(4)\n",
            select=["RNG001"],
        )
        assert rule_ids(result) == ["RNG001"]

    def test_stdlib_random_flagged(self, tmp_path):
        result = check_snippet(
            tmp_path,
            "import random\nx = random.random()\n",
            select=["RNG001"],
        )
        assert rule_ids(result) == ["RNG001"]

    def test_wall_clock_flagged(self, tmp_path):
        result = check_snippet(
            tmp_path,
            "import time\nstamp = time.time()\n",
            select=["RNG001"],
        )
        assert rule_ids(result) == ["RNG001"]


# ----------------------------------------------------------------------
# DTY001 — dtype discipline (kernel sub-packages only)
# ----------------------------------------------------------------------
class TestDtypeDiscipline:
    def test_bare_arange_in_kernel_package_flagged(self, tmp_path):
        result = check_snippet(
            tmp_path,
            "import numpy as np\nidx = np.arange(10)\n",
            subdir="repro/trace",
            select=["DTY001"],
        )
        assert rule_ids(result) == ["DTY001"]

    def test_explicit_dtype_passes(self, tmp_path):
        result = check_snippet(
            tmp_path,
            "import numpy as np\nidx = np.arange(10, dtype=np.int64)\n",
            subdir="repro/trace",
            select=["DTY001"],
        )
        assert result.ok

    def test_positional_dtype_passes(self, tmp_path):
        result = check_snippet(
            tmp_path,
            "import numpy as np\nz = np.zeros(4, np.int64)\n",
            subdir="repro/cache",
            select=["DTY001"],
        )
        assert result.ok

    def test_full_without_dtype_flagged(self, tmp_path):
        # np.full's dtype is the *third* positional: two args are not
        # enough to exempt it (regression for the fill-value case).
        result = check_snippet(
            tmp_path,
            "import numpy as np\nw = np.full(8, True)\n",
            subdir="repro/cache",
            select=["DTY001"],
        )
        assert rule_ids(result) == ["DTY001"]

    def test_non_kernel_module_exempt(self, tmp_path):
        result = check_snippet(
            tmp_path,
            "import numpy as np\nidx = np.arange(10)\n",
            subdir="repro/harness",
            select=["DTY001"],
        )
        assert result.ok


# ----------------------------------------------------------------------
# KEY001/KEY002 — cache-key completeness
# ----------------------------------------------------------------------
SPEC_PREAMBLE = """\
from dataclasses import dataclass, field

@dataclass(frozen=True)
class SweepPoint:
"""


class TestCacheKeyCompleteness:
    def test_uncanonicalizable_field_flagged(self, tmp_path):
        result = check_snippet(
            tmp_path,
            SPEC_PREAMBLE + "    callback: object = None\n",
            select=["KEY001"],
        )
        assert rule_ids(result) == ["KEY001"]

    def test_scalar_and_container_fields_pass(self, tmp_path):
        result = check_snippet(
            tmp_path,
            SPEC_PREAMBLE
            + "    workload: str = 'heat'\n"
            "    scale: float = 1.0\n"
            "    knobs: tuple[int, ...] = ()\n"
            "    extra: dict[str, float] | None = None\n",
            select=["KEY001"],
        )
        assert result.ok

    def test_compare_false_fields_are_outside_identity(self, tmp_path):
        result = check_snippet(
            tmp_path,
            SPEC_PREAMBLE
            + "    hook: object = field(default=None, compare=False)\n",
            select=["KEY001"],
        )
        assert result.ok

    def test_reachable_dataclass_fields_checked(self, tmp_path):
        result = check_snippet(
            tmp_path,
            "from dataclasses import dataclass\n"
            "@dataclass(frozen=True)\n"
            "class Inner:\n"
            "    bad: set = None\n"
            "@dataclass(frozen=True)\n"
            "class SweepPoint:\n"
            "    inner: Inner = None\n",
            select=["KEY001"],
        )
        assert rule_ids(result) == ["KEY001"]
        assert "Inner.bad" in result.findings[0].message

    def test_mutable_default_on_frozen_spec_flagged(self, tmp_path):
        result = check_snippet(
            tmp_path,
            SPEC_PREAMBLE
            + "    runs: list = field(default_factory=list)\n",
            select=["KEY002"],
        )
        assert rule_ids(result) == ["KEY002"]

    def test_tuple_default_passes(self, tmp_path):
        result = check_snippet(
            tmp_path,
            SPEC_PREAMBLE + "    runs: tuple = ()\n",
            select=["KEY002"],
        )
        assert result.ok


# ----------------------------------------------------------------------
# PKL001 — picklable hooks
# ----------------------------------------------------------------------
class TestPicklableHooks:
    def test_lambda_builder_flagged(self, tmp_path):
        result = check_snippet(
            tmp_path,
            "def register(spec): ...\n"
            "register(builder=lambda spec, ctx: None)\n",
            select=["PKL001"],
        )
        assert rule_ids(result) == ["PKL001"]

    def test_local_function_builder_flagged(self, tmp_path):
        result = check_snippet(
            tmp_path,
            "def setup(register):\n"
            "    def build(spec, ctx):\n"
            "        return None\n"
            "    register(builder=build)\n",
            select=["PKL001"],
        )
        assert rule_ids(result) == ["PKL001"]

    def test_module_level_builder_passes(self, tmp_path):
        result = check_snippet(
            tmp_path,
            "def build(spec, ctx):\n"
            "    return None\n"
            "def setup(register):\n"
            "    register(builder=build)\n",
            select=["PKL001"],
        )
        assert result.ok

    def test_lambda_submitted_to_pool_flagged(self, tmp_path):
        result = check_snippet(
            tmp_path,
            "def run(pool):\n"
            "    return pool.submit(lambda: 1)\n",
            select=["PKL001"],
        )
        assert rule_ids(result) == ["PKL001"]


# ----------------------------------------------------------------------
# PAR001 — engine parity
# ----------------------------------------------------------------------
class TestEngineParity:
    def test_batch_without_reference_path_flagged(self, tmp_path):
        result = check_snippet(
            tmp_path,
            "class FastOnly:\n"
            "    def replay_batch(self, addrs):\n"
            "        return addrs\n",
            select=["PAR001"],
        )
        assert "PAR001" in rule_ids(result)

    def test_batch_with_reference_and_test_mention_passes(self, tmp_path):
        tests_dir = tmp_path / "tests"
        tests_dir.mkdir()
        (tests_dir / "test_engine_equivalence.py").write_text(
            "def test_paired():\n    assert 'Paired'\n"
        )
        result = check_snippet(
            tmp_path,
            "class Paired:\n"
            "    def read(self, addr):\n"
            "        return 1\n"
            "    def replay_batch(self, addrs):\n"
            "        return addrs\n",
            select=["PAR001"],
            tests=tests_dir,
        )
        assert result.ok

    def test_missing_test_mention_flagged(self, tmp_path):
        tests_dir = tmp_path / "tests"
        tests_dir.mkdir()
        (tests_dir / "test_engine_equivalence.py").write_text(
            "def test_other(): ...\n"
        )
        result = check_snippet(
            tmp_path,
            "class Orphan:\n"
            "    def read(self, addr):\n"
            "        return 1\n"
            "    def replay_batch(self, addrs):\n"
            "        return addrs\n",
            select=["PAR001"],
            tests=tests_dir,
        )
        assert rule_ids(result) == ["PAR001"]


# ----------------------------------------------------------------------
# DOC001 — public docstrings
# ----------------------------------------------------------------------
class TestPublicDocstrings:
    def test_undocumented_public_function_flagged(self, tmp_path):
        result = check_snippet(
            tmp_path,
            '"""Module doc."""\n\ndef api():\n    return 1\n',
            select=["DOC001"],
        )
        assert rule_ids(result) == ["DOC001"]

    def test_documented_module_passes(self, tmp_path):
        result = check_snippet(
            tmp_path,
            '"""Module doc."""\n\ndef api():\n    """Doc."""\n    return 1\n',
            select=["DOC001"],
        )
        assert result.ok

    def test_private_helpers_exempt(self, tmp_path):
        result = check_snippet(
            tmp_path,
            '"""Module doc."""\n\ndef _helper():\n    return 1\n',
            select=["DOC001"],
        )
        assert result.ok

    def test_all_narrows_the_public_surface(self, tmp_path):
        result = check_snippet(
            tmp_path,
            '"""Module doc."""\n\n__all__ = ["api"]\n\n'
            'def api():\n    """Doc."""\n\ndef helper():\n    return 1\n',
            select=["DOC001"],
        )
        assert result.ok


# ----------------------------------------------------------------------
# PLN001 — planner seed discipline
# ----------------------------------------------------------------------
class TestPlannerSeedDiscipline:
    def test_module_level_rng_state_flagged(self, tmp_path):
        result = check_snippet(
            tmp_path,
            '"""Doc."""\nimport numpy as np\n'
            "RNG = np.random.default_rng(seed=None)\n",
            select=["PLN001"],
            subdir="repro/planner",
        )
        assert rule_ids(result) == ["PLN001"]
        assert "module-level" in result.findings[0].message

    def test_literal_seed_inside_function_flagged(self, tmp_path):
        result = check_snippet(
            tmp_path,
            '"""Doc."""\nimport numpy as np\n\n'
            "def pick():\n"
            '    """Doc."""\n'
            "    return np.random.default_rng(0)\n",
            select=["PLN001"],
            subdir="repro/planner",
        )
        assert rule_ids(result) == ["PLN001"]
        assert "PlanSpec.seed" in result.findings[0].message

    def test_literal_seed_sequence_flagged(self, tmp_path):
        result = check_snippet(
            tmp_path,
            '"""Doc."""\nimport numpy as np\n\n'
            "def pick():\n"
            '    """Doc."""\n'
            "    return np.random.SeedSequence(entropy=7)\n",
            select=["PLN001"],
            subdir="repro/planner",
        )
        assert rule_ids(result) == ["PLN001"]

    def test_threaded_seed_passes(self, tmp_path):
        result = check_snippet(
            tmp_path,
            '"""Doc."""\nimport numpy as np\n\n'
            "def pick(spec):\n"
            '    """Doc."""\n'
            "    return np.random.default_rng(spec.seed)\n",
            select=["PLN001"],
            subdir="repro/planner",
        )
        assert result.ok

    def test_rule_scoped_to_planner_modules(self, tmp_path):
        # the same literal seed outside planner/ is RNG001-clean and
        # outside PLN001's jurisdiction
        result = check_snippet(
            tmp_path,
            '"""Doc."""\nimport numpy as np\n'
            "RNG = np.random.default_rng(0)\n",
            select=["PLN001"],
            subdir="repro/harness",
        )
        assert result.ok

    def test_planner_package_is_clean(self):
        result = run_check([str(SRC / "planner")], select=["PLN001"])
        assert result.ok


# ----------------------------------------------------------------------
# SRV001 — serve async discipline
# ----------------------------------------------------------------------
class TestServeAsyncDiscipline:
    def test_blocking_sleep_in_coroutine_flagged(self, tmp_path):
        result = check_snippet(
            tmp_path,
            '"""Doc."""\nimport time\n\n'
            "async def poll():\n"
            '    """Doc."""\n'
            "    time.sleep(0.1)\n",
            select=["SRV001"],
            subdir="repro/serve",
        )
        assert rule_ids(result) == ["SRV001"]
        assert "asyncio.sleep" in result.findings[0].message

    def test_wall_clock_in_coroutine_flagged(self, tmp_path):
        result = check_snippet(
            tmp_path,
            '"""Doc."""\nimport time\n\n'
            "async def uptime():\n"
            '    """Doc."""\n'
            "    return time.time()\n",
            select=["SRV001"],
            subdir="repro/serve",
        )
        assert rule_ids(result) == ["SRV001"]
        assert "loop.time" in result.findings[0].message

    def test_sync_socket_in_coroutine_flagged(self, tmp_path):
        result = check_snippet(
            tmp_path,
            '"""Doc."""\nimport socket\n\n'
            "async def dial(addr):\n"
            '    """Doc."""\n'
            "    return socket.create_connection(addr)\n",
            select=["SRV001"],
            subdir="repro/serve",
        )
        assert rule_ids(result) == ["SRV001"]
        assert "asyncio streams" in result.findings[0].message

    def test_loop_clock_and_async_sleep_pass(self, tmp_path):
        result = check_snippet(
            tmp_path,
            '"""Doc."""\nimport asyncio\n\n'
            "async def tick():\n"
            '    """Doc."""\n'
            "    loop = asyncio.get_running_loop()\n"
            "    await asyncio.sleep(0.1)\n"
            "    return loop.time()\n",
            select=["SRV001"],
            subdir="repro/serve",
        )
        assert result.ok

    def test_sync_client_code_is_outside_jurisdiction(self, tmp_path):
        # the blocking ServeClient half lives in plain functions —
        # blocking sockets are its whole job
        result = check_snippet(
            tmp_path,
            '"""Doc."""\nimport socket\n\n'
            "def dial(addr):\n"
            '    """Doc."""\n'
            "    return socket.create_connection(addr)\n",
            select=["SRV001"],
            subdir="repro/serve",
        )
        assert result.ok

    def test_module_level_rng_state_flagged(self, tmp_path):
        result = check_snippet(
            tmp_path,
            '"""Doc."""\nimport numpy as np\n'
            "RNG = np.random.default_rng(seed=None)\n",
            select=["SRV001"],
            subdir="repro/serve",
        )
        assert rule_ids(result) == ["SRV001"]
        assert "module-level" in result.findings[0].message

    def test_literal_seed_flagged(self, tmp_path):
        result = check_snippet(
            tmp_path,
            '"""Doc."""\nimport numpy as np\n\n'
            "def jitter():\n"
            '    """Doc."""\n'
            "    return np.random.default_rng(0)\n",
            select=["SRV001"],
            subdir="repro/serve",
        )
        assert rule_ids(result) == ["SRV001"]
        assert "spec" in result.findings[0].message

    def test_threaded_seed_passes(self, tmp_path):
        result = check_snippet(
            tmp_path,
            '"""Doc."""\nimport numpy as np\n\n'
            "def jitter(spec):\n"
            '    """Doc."""\n'
            "    return np.random.default_rng(spec.seed)\n",
            select=["SRV001"],
            subdir="repro/serve",
        )
        assert result.ok

    def test_rule_scoped_to_serve_modules(self, tmp_path):
        result = check_snippet(
            tmp_path,
            '"""Doc."""\nimport time\n\n'
            "async def poll():\n"
            '    """Doc."""\n'
            "    time.sleep(0.1)\n",
            select=["SRV001"],
            subdir="repro/harness",
        )
        assert result.ok

    def test_serve_package_is_clean(self):
        result = run_check([str(SRC / "serve")], select=["SRV001"])
        assert result.ok


# ----------------------------------------------------------------------
# CCH001 — cache file discipline
# ----------------------------------------------------------------------
class TestCacheFileDiscipline:
    def test_direct_pickle_load_flagged(self, tmp_path):
        result = check_snippet(
            tmp_path,
            '\"\"\"Doc.\"\"\"\nimport pickle\n\n'
            "def read(path):\n"
            '    \"\"\"Doc.\"\"\"\n'
            "    with open(path, 'rb') as fh:\n"
            "        return pickle.load(fh)\n",
            select=["CCH001"],
            subdir="repro/harness",
        )
        assert rule_ids(result) == ["CCH001"]
        assert "pickle.load" in result.findings[0].message

    def test_pkl_path_literal_flagged(self, tmp_path):
        result = check_snippet(
            tmp_path,
            '\"\"\"Doc.\"\"\"\n\n'
            "def path_of(root, key):\n"
            '    \"\"\"Doc.\"\"\"\n'
            "    return root / key[:2] / f\"{key}\" / \"entry.pkl\"\n",
            select=["CCH001"],
            subdir="repro/planner",
        )
        assert rule_ids(result) == ["CCH001"]
        assert "gc/verify" in result.findings[0].message

    def test_cache_module_is_the_sanctioned_site(self, tmp_path):
        result = check_snippet(
            tmp_path,
            '\"\"\"Doc.\"\"\"\nimport pickle\n\n'
            "def load(data):\n"
            '    \"\"\"Doc.\"\"\"\n'
            "    return pickle.loads(data)\n",
            name="cache.py",
            select=["CCH001"],
            subdir="repro/harness",
        )
        assert result.ok

    def test_backend_consumers_pass(self, tmp_path):
        result = check_snippet(
            tmp_path,
            '\"\"\"Doc.\"\"\"\nfrom repro.harness.cache import ResultCache\n\n'
            "def warm(cache_dir, keys):\n"
            '    \"\"\"Doc.\"\"\"\n'
            "    return ResultCache(cache_dir).get_many(keys)\n",
            select=["CCH001"],
            subdir="repro/harness",
        )
        assert result.ok

    def test_package_source_is_clean(self):
        result = run_check([str(SRC)], select=["CCH001"])
        assert result.ok


# ----------------------------------------------------------------------
# suppressions
# ----------------------------------------------------------------------
class TestSuppressions:
    def test_inline_marker_suppresses_and_is_counted(self, tmp_path):
        result = check_snippet(
            tmp_path,
            "import numpy as np\n"
            "rng = np.random.default_rng()  # repro: ignore[RNG001]\n",
            select=["RNG001"],
        )
        assert result.ok
        assert result.suppressed == 1

    def test_marker_is_rule_specific(self, tmp_path):
        result = check_snippet(
            tmp_path,
            "import numpy as np\n"
            "rng = np.random.default_rng()  # repro: ignore[DTY001]\n",
            select=["RNG001"],
        )
        assert rule_ids(result) == ["RNG001"]

    def test_bare_marker_suppresses_every_rule(self, tmp_path):
        result = check_snippet(
            tmp_path,
            "import numpy as np\n"
            "rng = np.random.default_rng()  # repro: ignore\n",
            select=["RNG001"],
        )
        assert result.ok
        assert result.suppressed == 1


# ----------------------------------------------------------------------
# engine behaviour
# ----------------------------------------------------------------------
class TestEngine:
    def test_unparsable_file_becomes_a_finding(self, tmp_path):
        result = check_snippet(tmp_path, "def broken(:\n")
        assert rule_ids(result) == ["PARSE"]

    def test_missing_path_raises(self):
        with pytest.raises(FileNotFoundError):
            run_check(["no/such/tree"])

    def test_findings_sorted_by_position(self, tmp_path):
        result = check_snippet(
            tmp_path,
            "import numpy as np\n"
            "import random\n"
            "a = random.random()\n"
            "b = np.random.default_rng()\n",
            select=["RNG001"],
        )
        lines = [f.line for f in result.findings]
        assert lines == sorted(lines)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestCli:
    def _args(self, argv):
        import argparse

        parser = argparse.ArgumentParser()
        add_check_arguments(parser)
        return parser.parse_args(argv)

    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text('"""Doc."""\n\nX = 1\n')
        code = cmd_check(self._args([str(tmp_path)]))
        assert code == 0
        assert "clean" in capsys.readouterr().out

    def test_findings_exit_one(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(
            "import random\nx = random.random()\n"
        )
        code = cmd_check(self._args([str(tmp_path)]))
        captured = capsys.readouterr()
        assert code == 1
        assert "RNG001" in captured.out

    def test_usage_error_exits_two(self, tmp_path):
        code = cmd_check(self._args([str(tmp_path / "missing")]))
        assert code == 2

    def test_list_rules(self, capsys):
        code = cmd_check(self._args(["--list-rules"]))
        out = capsys.readouterr().out
        assert code == 0
        for cls in all_rules():
            assert cls.id in out


# ----------------------------------------------------------------------
# the actual gate: the repo's own tree is clean
# ----------------------------------------------------------------------
class TestSelfCheck:
    def test_repo_source_tree_is_clean(self):
        result = run_check([SRC], tests=TESTS)
        assert result.ok, "\n".join(f.render() for f in result.findings)
        assert result.files_checked > 80
