"""Tests for float32 bit-field manipulation."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common import bitops

finite_floats = (
    st.floats(min_value=-1e30, max_value=1e30, allow_nan=False)
    .map(lambda x: float(np.float32(x)))
    .filter(lambda x: x == 0.0 or abs(x) > 1e-30)
)


def test_bit_roundtrip():
    values = np.array([0.0, 1.0, -2.5, 3.14e10, -1e-20], dtype=np.float32)
    assert np.array_equal(bitops.from_bits(bitops.as_bits(values)), values)


def test_sign_bits():
    values = np.array([1.0, -1.0, 0.0, -0.0], dtype=np.float32)
    assert list(bitops.sign_bits(values)) == [0, 1, 0, 1]


def test_exponent_bits_known_values():
    # 1.0 = 2^0 -> biased exponent 127; 2.0 -> 128; 0.5 -> 126
    values = np.array([1.0, 2.0, 0.5, 0.0], dtype=np.float32)
    assert list(bitops.exponent_bits(values)) == [127, 128, 126, 0]


def test_mantissa_bits():
    # 1.5 has mantissa 0.5 -> top mantissa bit set
    values = np.array([1.0, 1.5], dtype=np.float32)
    m = bitops.mantissa_bits(values)
    assert m[0] == 0
    assert m[1] == 1 << 22


def test_is_special():
    values = np.array([np.inf, -np.inf, np.nan, 1.0, 0.0], dtype=np.float32)
    assert list(bitops.is_special(values)) == [True, True, True, False, False]


def test_compose_reassembles():
    values = np.array([1.5, -3.25, 100.0], dtype=np.float32)
    rebuilt = bitops.compose(
        bitops.sign_bits(values),
        bitops.exponent_bits(values),
        bitops.mantissa_bits(values),
    )
    assert np.array_equal(rebuilt, values)


@given(st.lists(finite_floats, min_size=1, max_size=32))
def test_compose_roundtrip_property(xs):
    values = np.array(xs, dtype=np.float32)
    rebuilt = bitops.compose(
        bitops.sign_bits(values),
        bitops.exponent_bits(values),
        bitops.mantissa_bits(values),
    )
    assert np.array_equal(rebuilt, values)


def test_add_exponent_doubles():
    values = np.array([1.0, 3.0, -0.75], dtype=np.float32)
    assert np.allclose(bitops.add_exponent(values, 1), values * 2)
    assert np.allclose(bitops.add_exponent(values, -2), values / 4)


def test_add_exponent_zero_untouched():
    values = np.array([0.0, 4.0], dtype=np.float32)
    out = bitops.add_exponent(values, 3)
    assert out[0] == 0.0
    assert out[1] == 32.0


def test_add_exponent_overflow_raises():
    values = np.array([1e38], dtype=np.float32)
    with pytest.raises(OverflowError):
        bitops.add_exponent(values, 10)


def test_add_exponent_underflow_raises():
    values = np.array([1e-35], dtype=np.float32)
    with pytest.raises(OverflowError):
        bitops.add_exponent(values, -20)


def test_add_exponent_skips_denormals():
    # exponent field 0 (denormal) is never biased
    values = np.array([1e-40, 2.0], dtype=np.float32)
    out = bitops.add_exponent(values, -10)
    assert out[0] == values[0]
    assert out[1] == np.float32(2.0 / 1024)


def test_add_exponent_zero_delta_copies():
    values = np.array([1.0], dtype=np.float32)
    out = bitops.add_exponent(values, 0)
    assert out is not values
    assert out[0] == 1.0


class TestTruncateMantissa:
    def test_truncate_mode_chops(self):
        v = np.array([1.0 + 2**-20], dtype=np.float32)
        out = bitops.truncate_mantissa(v, 7, rounding="truncate")
        assert out[0] == 1.0

    def test_nearest_rounds_up(self):
        # 1 + 2^-8 is exactly half of the last kept bit -> ties-to-even
        v = np.array([1.0 + 2**-7 + 2**-8], dtype=np.float32)
        out = bitops.truncate_mantissa(v, 7, rounding="nearest")
        assert out[0] == np.float32(1.0 + 2 * 2**-7)

    def test_nearest_error_bound(self, rng):
        values = rng.uniform(0.5, 2.0, 1000).astype(np.float32)
        out = bitops.truncate_mantissa(values, 7, rounding="nearest")
        rel = np.abs(out - values) / values
        assert rel.max() <= 2.0**-8 + 1e-9

    def test_truncation_bias_is_toward_zero(self, rng):
        values = rng.uniform(1.0, 2.0, 1000).astype(np.float32)
        out = bitops.truncate_mantissa(values, 7, rounding="truncate")
        assert np.all(out <= values)

    def test_nearest_mean_unbiased(self, rng):
        values = rng.uniform(1.0, 2.0, 20000).astype(np.float32)
        out = bitops.truncate_mantissa(values, 7, rounding="nearest")
        bias = float((out.astype(np.float64) - values).mean())
        assert abs(bias) < 2.0**-12

    def test_specials_preserved(self):
        v = np.array([np.inf, -np.inf, np.nan], dtype=np.float32)
        out = bitops.truncate_mantissa(v, 7)
        assert np.isinf(out[0]) and out[0] > 0
        assert np.isinf(out[1]) and out[1] < 0
        assert np.isnan(out[2])

    def test_keep_all_bits_identity(self):
        v = np.array([1.2345], dtype=np.float32)
        assert bitops.truncate_mantissa(v, 23)[0] == v[0]

    def test_invalid_keep_bits(self):
        with pytest.raises(ValueError):
            bitops.truncate_mantissa(np.zeros(1, np.float32), 24)

    def test_invalid_rounding(self):
        with pytest.raises(ValueError):
            bitops.truncate_mantissa(np.zeros(1, np.float32), 7, rounding="up")

    @given(st.lists(finite_floats, min_size=1, max_size=64))
    def test_idempotent(self, xs):
        values = np.array(xs, dtype=np.float32)
        once = bitops.truncate_mantissa(values, 7)
        twice = bitops.truncate_mantissa(once, 7)
        assert np.array_equal(once, twice, equal_nan=True)


class TestMantissaErrorWithin:
    def test_exact_match_passes(self):
        v = np.array([1.5, -2.25], dtype=np.float32)
        assert bitops.mantissa_error_within(v, v, 4).all()

    def test_different_exponent_fails(self):
        a = np.array([1.99], dtype=np.float32)
        b = np.array([2.01], dtype=np.float32)
        assert not bitops.mantissa_error_within(a, b, 4)[0]

    def test_different_sign_fails(self):
        a = np.array([1.0], dtype=np.float32)
        b = np.array([-1.0], dtype=np.float32)
        assert not bitops.mantissa_error_within(a, b, 4)[0]

    def test_small_mantissa_diff_passes(self):
        a = np.array([1.0], dtype=np.float32)
        b = np.array([1.0 + 2**-6], dtype=np.float32)
        assert bitops.mantissa_error_within(a, b, 4)[0]
        assert not bitops.mantissa_error_within(a, b, 7)[0]

    def test_bound_matches_relative_error(self, rng):
        """Passing the N-bit check implies relative error < 1/2^N."""
        n = 5
        orig = rng.uniform(1.0, 2.0, 5000).astype(np.float32)
        approx = (orig * rng.uniform(0.9, 1.1, 5000)).astype(np.float32)
        ok = bitops.mantissa_error_within(orig, approx, n)
        rel = np.abs(approx.astype(np.float64) - orig) / np.abs(orig)
        assert (rel[ok] < 1.0 / 2**n).all()

    def test_invalid_n(self):
        v = np.zeros(1, np.float32)
        with pytest.raises(ValueError):
            bitops.mantissa_error_within(v, v, 0)


@pytest.mark.parametrize(
    "t1,expected",
    [(0.5, 1), (0.25, 2), (0.1, 4), (0.02, 6), (0.001, 10), (1.0, 1)],
)
def test_n_msbit_for_threshold(t1, expected):
    assert bitops.n_msbit_for_threshold(t1) == expected


def test_n_msbit_invalid():
    with pytest.raises(ValueError):
        bitops.n_msbit_for_threshold(0.0)
