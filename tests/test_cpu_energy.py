"""Tests for the interval core model and the energy model."""

import pytest

from repro.common.config import CoreConfig
from repro.cpu import IntervalCore
from repro.energy import COMPONENTS, EnergyCoefficients, EnergyModel


class TestIntervalCore:
    def test_advance_accounts_instructions(self):
        core = IntervalCore(CoreConfig(base_ipc=2.0))
        core.advance(9)
        assert core.instructions == 10  # gap + the memory op
        assert core.cycles == pytest.approx(5.0)

    def test_l1_hits_hidden(self):
        core = IntervalCore(CoreConfig())
        core.advance(10)
        before = core.cycles
        core.memory_event(1.0, l1_hit=True)
        assert core.cycles == before

    def test_miss_exposed_by_mlp(self):
        core = IntervalCore(CoreConfig(mlp=4.0))
        core.memory_event(100.0, l1_hit=False)
        assert core.cycles == pytest.approx(25.0)

    def test_amat_average(self):
        core = IntervalCore(CoreConfig())
        core.memory_event(1.0, True)
        core.memory_event(99.0, False)
        assert core.amat == pytest.approx(50.0)

    def test_ipc(self):
        core = IntervalCore(CoreConfig(base_ipc=2.0))
        core.advance(19)
        assert core.ipc == pytest.approx(2.0)

    def test_empty_core(self):
        core = IntervalCore(CoreConfig())
        assert core.amat == 0.0
        assert core.ipc == 0.0


class TestEnergyModel:
    COUNTS = {
        "instructions": 1_000_000,
        "l1_accesses": 300_000,
        "l2_accesses": 50_000,
        "llc_accesses": 20_000,
        "dram_lines": 10_000,
        "compressor_ops": 500,
    }

    def test_all_components_present(self):
        bd = EnergyModel().compute(self.COUNTS, 0.01, 8, has_compressor=True)
        assert set(bd.joules) == set(COMPONENTS)
        assert all(v >= 0 for v in bd.joules.values())

    def test_total_sums_components(self):
        bd = EnergyModel().compute(self.COUNTS, 0.01, 8)
        assert bd.total == pytest.approx(sum(bd.joules.values()))

    def test_no_compressor_means_no_static(self):
        without = EnergyModel().compute(
            dict(self.COUNTS, compressor_ops=0), 0.01, 8, has_compressor=False
        )
        assert without.joules["Compressor/Decompressor"] == 0.0

    def test_static_scales_with_time(self):
        fast = EnergyModel().compute(self.COUNTS, 0.01, 8)
        slow = EnergyModel().compute(self.COUNTS, 0.02, 8)
        assert slow.total > fast.total

    def test_dram_energy_scales_with_traffic(self):
        a = EnergyModel().compute(self.COUNTS, 0.01, 8)
        more = dict(self.COUNTS, dram_lines=100_000)
        b = EnergyModel().compute(more, 0.01, 8)
        assert b.joules["DRAM"] > a.joules["DRAM"]

    def test_normalized_to(self):
        base = EnergyModel().compute(self.COUNTS, 0.01, 8)
        norm = base.normalized_to(base)
        assert sum(norm.values()) == pytest.approx(1.0)

    def test_custom_coefficients(self):
        c = EnergyCoefficients(core_nj_per_instruction=1.0)
        bd = EnergyModel(c).compute(self.COUNTS, 0.0, 1)
        assert bd.joules["Core"] == pytest.approx(1e-9 * 1_000_000)
