"""Tests for the seven evaluation workloads (small scales)."""

import numpy as np
import pytest

from repro.approx import ApproxMemory
from repro.common.types import Design
from repro.workloads import WORKLOADS, make_workload
from repro.workloads.data import (
    car_silhouette,
    chained_strikes,
    clustered_option_values,
    fractal_terrain,
    smooth_field_2d,
    sphere_mask,
)

SMALL = {
    "heat": dict(scale=0.1, iterations=10),
    "lattice": dict(scale=0.25, steps=10),
    "lbm": dict(scale=0.3, steps=5),
    "orbit": dict(scale=0.13),
    "kmeans": dict(scale=0.05, max_iterations=10),
    "bscholes": dict(scale=0.05, passes=2),
    "wrf": dict(scale=0.5, steps=5),
}


def small(name):
    return make_workload(name, **SMALL[name])


class TestRegistry:
    def test_all_seven_present(self):
        assert set(WORKLOADS) == {
            "heat", "lattice", "lbm", "orbit", "kmeans", "bscholes", "wrf"
        }

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_workload("nope")

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            make_workload("heat", scale=0)


@pytest.mark.parametrize("name", list(WORKLOADS))
class TestEveryWorkload:
    def test_baseline_runs_and_output_finite(self, name):
        w = small(name)
        res = w.run(Design.BASELINE)
        assert res.output.size > 0
        assert np.isfinite(res.output).all()
        assert res.iterations >= 1

    def test_self_error_zero(self, name):
        w = small(name)
        res = w.run(Design.BASELINE)
        assert w.output_error(res, res) == 0.0

    def test_trace_spec_references_allocated_regions(self, name):
        w = small(name)
        mem = ApproxMemory()
        w.allocate(mem)
        spec = w.trace_spec()
        assert spec.iterations >= 1
        assert len(spec.phases) >= 1
        for phase in spec.phases:
            assert phase.region in mem.regions
            assert phase.reads or phase.writes

    def test_has_approximable_region(self, name):
        w = small(name)
        mem = ApproxMemory()
        w.allocate(mem)
        assert any(r.approx for r in mem.regions.values())

    def test_timing_regions_exist(self, name):
        w = small(name)
        mem = ApproxMemory()
        w.allocate(mem)
        for rname in w.timing_approx_regions or ():
            assert rname in mem.regions

    def test_deterministic_given_seed(self, name):
        a = small(name).run(Design.BASELINE)
        b = small(name).run(Design.BASELINE)
        assert np.array_equal(a.output, b.output)


@pytest.mark.parametrize("name", ["heat", "kmeans", "bscholes", "wrf"])
def test_avr_error_small_but_nonzero(name):
    w = small(name)
    ref = w.run(Design.BASELINE)
    avr = w.run(Design.AVR)
    err = w.output_error(avr, ref)
    assert 0.0 <= err < 0.25


def test_heat_cools_toward_boundaries():
    w = small("heat")
    res = w.run(Design.BASELINE)
    grid = res.output
    # interior stays between ambient and hot boundary
    assert grid.min() >= w.T_AMBIENT - 1e-3
    assert grid.max() <= w.T_HOT + 1e-3


def test_orbit_conserves_energy_roughly():
    w = make_workload("orbit", scale=0.13)
    res = w.run(Design.BASELINE)
    energy = res.memory.region("energy_log").array
    total = energy.sum(axis=0)
    drift = abs(total[-1] - total[0]) / abs(total[0])
    assert drift < 0.05  # leapfrog is symplectic

    # bound orbit: total energy negative
    assert total[0] < 0


def test_kmeans_centroids_sorted_and_in_range():
    w = small("kmeans")
    res = w.run(Design.BASELINE)
    c = res.output
    assert (np.diff(c) >= 0).all()
    points = res.memory.region("points").array
    assert c.min() >= points.min() - 1 and c.max() <= points.max() + 1


def test_bscholes_prices_positive_and_bounded():
    w = small("bscholes")
    res = w.run(Design.BASELINE)
    n = res.output.size // 2
    call, put = res.output[:n], res.output[n:]
    spot = res.memory.region("spot").array
    assert (call >= -1e-3).all() and (put >= -1e-3).all()
    assert (call <= spot + 1e-3).all()  # call price bounded by spot


def test_lattice_obstacle_blocks_flow():
    w = small("lattice")
    res = w.run(Design.BASELINE)
    speed = res.output[0]
    assert speed[w.mask].mean() < speed[~w.mask].mean()


def test_lbm_inflow_dominates_speed():
    w = small("lbm")
    res = w.run(Design.BASELINE)
    assert res.output.mean() > 0.0
    assert res.output.max() < 0.5  # lattice units stay subsonic


class TestDataGenerators:
    def test_car_silhouette_plausible(self):
        mask = car_silhouette(64, 192)
        frac = mask.mean()
        assert 0.005 < frac < 0.2
        with pytest.raises(ValueError):
            car_silhouette(4, 4)

    def test_sphere_mask_volume(self):
        mask = sphere_mask(20, 20, 40, radius_frac=0.2)
        r = 0.2 * 20
        expected = 4 / 3 * np.pi * r**3
        assert mask.sum() == pytest.approx(expected, rel=0.3)

    def test_fractal_terrain_range_and_length(self):
        t = fractal_terrain(1000, base=300.0, relief=400.0)
        assert t.shape == (1000,)
        assert t.min() >= 300.0 - 1e-3
        assert t.max() <= 700.0 + 1e-3

    def test_terrain_roughness_monotone(self):
        rng1, rng2 = np.random.default_rng(1), np.random.default_rng(1)
        smooth = fractal_terrain(4096, roughness=0.3, rng=rng1)
        rough = fractal_terrain(4096, roughness=0.9, rng=rng2)
        assert np.abs(np.diff(rough)).mean() > np.abs(np.diff(smooth)).mean()

    def test_smooth_field_2d_in_unit_range(self, rng):
        f = smooth_field_2d(32, 48, rng)
        assert f.shape == (32, 48)
        assert f.min() >= 0.0 and f.max() <= 1.0

    def test_clustered_values_few_distinct(self, rng):
        v = clustered_option_values(10000, 16, 0.0, 1.0, rng)
        assert len(np.unique(v)) <= 16

    def test_chained_strikes_run_structure(self, rng):
        v = chained_strikes(10000, 80.0, 120.0, rng, mean_run=50)
        changes = int((np.diff(v) != 0).sum())
        assert 50 <= changes <= 400  # ~10000/50 = 200 runs expected
