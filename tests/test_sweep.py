"""Tests for the parallel sweep engine and its on-disk result cache."""

from copy import deepcopy
from dataclasses import replace

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.config import CacheConfig, SystemConfig
from repro.common.types import Design, ErrorThresholds
from repro.harness import evaluate_all, evaluate_workload
from repro.harness.cache import ResultCache, _canonical, content_key
from repro.harness.sweep import SweepPoint, SweepSpec, run_sweep

# Small machine + small workload so full sweeps stay test-sized.
CONFIG = SystemConfig(
    num_cores=2,
    l1=CacheConfig(2 * 1024, 4, 1),
    l2=CacheConfig(8 * 1024, 8, 8),
    llc=CacheConfig(32 * 1024, 16, 15),
)

SPEC = SweepSpec(
    workloads=("heat",),
    config=CONFIG,
    scales=(0.15,),
    max_accesses_per_core=8_000,
    workload_kwargs=(("iterations", 10),),
)


def assert_identical(ev_a, ev_b):
    """Every reported metric must match exactly (not approximately)."""
    assert ev_a.name == ev_b.name
    assert ev_a.footprint_bytes == ev_b.footprint_bytes
    assert ev_a.avr_compression_ratio == ev_b.avr_compression_ratio
    assert set(ev_a.runs) == set(ev_b.runs)
    for design in ev_a.runs:
        run_a, run_b = ev_a.runs[design], ev_b.runs[design]
        assert run_a.output_error == run_b.output_error, design
        assert run_a.iterations == run_b.iterations, design
        assert run_a.compression_ratio == run_b.compression_ratio, design
        assert run_a.dedup_factor == run_b.dedup_factor, design
        assert run_a.timing.cycles == run_b.timing.cycles, design
        assert run_a.timing.total_bytes == run_b.timing.total_bytes, design
        assert run_a.timing.amat_cycles == run_b.timing.amat_cycles, design
        assert run_a.timing.llc_mpki == run_b.timing.llc_mpki, design
        assert run_a.timing.iteration_factor == run_b.timing.iteration_factor, design


@pytest.fixture(scope="module")
def serial_result():
    return run_sweep(SPEC, jobs=1)


class TestSerialParallelEquality:
    def test_parallel_matches_serial(self, serial_result):
        parallel = run_sweep(SPEC, jobs=2)
        assert_identical(
            serial_result.by_workload()["heat"], parallel.by_workload()["heat"]
        )

    def test_sweep_matches_evaluate_all(self, serial_result):
        evals = evaluate_all(
            names=("heat",),
            config=CONFIG,
            scale=0.15,
            max_accesses_per_core=8_000,
        )
        # evaluate_all has no workload_kwargs channel; rebuild the spec
        # it actually ran and compare against a fresh direct sweep.
        spec = replace(SPEC, workload_kwargs=())
        direct = run_sweep(spec, jobs=2)
        assert_identical(evals["heat"], direct.by_workload()["heat"])

    def test_evaluate_workload_matches_sweep(self, serial_result):
        ev = evaluate_workload(
            "heat",
            config=CONFIG,
            scale=0.15,
            max_accesses_per_core=8_000,
            iterations=10,
        )
        assert_identical(ev, serial_result.by_workload()["heat"])


class TestSpec:
    def test_points_enumerate_grid(self):
        spec = replace(
            SPEC,
            seeds=(0, 1),
            thresholds=(None, ErrorThresholds.from_t2(0.04)),
        )
        points = spec.points()
        assert len(points) == 4
        assert len(set(points)) == 4  # hashable and distinct

    def test_default_workloads_are_all_seven(self):
        assert len(SweepSpec().resolved_workloads()) == 7

    def test_rejects_bad_jobs(self):
        with pytest.raises(ValueError):
            run_sweep(SPEC, jobs=0)

    def test_point_rejects_shadowed_kwargs(self):
        # scale/seed are SweepPoint fields; smuggling them through
        # workload_kwargs would silently skew cache keys.
        with pytest.raises(ValueError):
            SweepPoint("heat", workload_kwargs=(("seed", 1),))

    def test_by_workload_rejects_ambiguous_grid(self):
        spec = replace(SPEC, seeds=(0, 1))
        result = run_sweep(
            replace(spec, max_accesses_per_core=2_000), jobs=1
        )
        with pytest.raises(ValueError):
            result.by_workload()


class TestCache:
    def test_cold_then_warm(self, tmp_path, serial_result):
        cold = run_sweep(SPEC, jobs=1, cache_dir=tmp_path)
        assert cold.stats.executed > 0
        assert cold.stats.cache_hits == 0
        assert cold.stats.cache_misses == cold.stats.executed

        warm = run_sweep(SPEC, jobs=1, cache_dir=tmp_path)
        assert warm.stats.executed == 0  # zero workload re-executions
        assert warm.stats.cache_hits == cold.stats.executed
        assert warm.stats.cache_misses == 0
        assert_identical(
            serial_result.by_workload()["heat"], warm.by_workload()["heat"]
        )

    def test_parallel_warm_cache(self, tmp_path):
        run_sweep(SPEC, jobs=2, cache_dir=tmp_path)
        warm = run_sweep(SPEC, jobs=2, cache_dir=tmp_path)
        assert warm.stats.executed == 0

    def test_warm_cache_skips_trace_generation(self, tmp_path, monkeypatch):
        # Trace generation now lives behind the (lazy) scenario
        # composition seam; a fully warm cache must never reach it.
        import repro.harness.scenario as scenario_mod

        run_sweep(SPEC, jobs=1, cache_dir=tmp_path)

        def boom(*args, **kwargs):
            raise AssertionError("trace regenerated on a fully warm cache")

        monkeypatch.setattr(scenario_mod, "generate_trace", boom)
        warm = run_sweep(SPEC, jobs=1, cache_dir=tmp_path)
        assert warm.stats.executed == 0

    def test_config_change_invalidates_timing_only(self, tmp_path):
        cold = run_sweep(SPEC, jobs=1, cache_dir=tmp_path)
        bigger_llc = replace(CONFIG, llc=CacheConfig(64 * 1024, 16, 15))
        changed = run_sweep(
            replace(SPEC, config=bigger_llc), jobs=1, cache_dir=tmp_path
        )
        # Functional results are config-independent and stay cached;
        # every timing point must be recomputed for the new machine.
        assert changed.stats.functional_executed == 0
        assert changed.stats.timing_executed == cold.stats.timing_executed
        ev_cold = cold.by_workload()["heat"]
        ev_changed = changed.by_workload()["heat"]
        assert (
            ev_changed.runs[Design.BASELINE].timing.cycles
            != ev_cold.runs[Design.BASELINE].timing.cycles
        )

    def test_threshold_sweep_shares_baseline(self, tmp_path):
        cold = run_sweep(SPEC, jobs=1, cache_dir=tmp_path)
        ablated = run_sweep(
            replace(SPEC, thresholds=(ErrorThresholds.from_t2(0.04),)),
            jobs=1,
            cache_dir=tmp_path,
        )
        # The baseline reference is threshold-independent: only the
        # approximating designs' functional runs re-execute.
        assert 0 < ablated.stats.functional_executed < cold.stats.functional_executed

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = content_key("x", 1)
        cache.put(key, {"v": 1})
        assert cache.get(key) == {"v": 1}
        cache._path(key).write_bytes(b"not a pickle")
        assert cache.get(key) is None

    def test_content_key_stability_and_sensitivity(self):
        point = SweepPoint("heat", scale=0.5)
        assert content_key(point) == content_key(SweepPoint("heat", scale=0.5))
        assert content_key(point) != content_key(SweepPoint("heat", scale=0.25))
        assert content_key(CONFIG) != content_key(
            replace(CONFIG, llc=CacheConfig(64 * 1024, 16, 15))
        )
        assert content_key(Design.AVR) != content_key(Design.BASELINE)

    def test_content_key_rejects_unknown_types(self):
        with pytest.raises(TypeError):
            content_key(object())


class TestCanonicalProperties:
    """Property tests of the cache-key canonicalizer itself."""

    # spec-shaped values: scalars, tuples of them, str-keyed dicts
    scalars = (
        st.none()
        | st.booleans()
        | st.integers(-(2**63), 2**63)
        | st.floats(allow_nan=False)
        | st.text(max_size=8)
    )
    values = st.recursive(
        scalars,
        lambda inner: (
            st.tuples(inner, inner)
            | st.lists(inner, max_size=3).map(tuple)
            | st.dictionaries(st.text(max_size=4), inner, max_size=3)
        ),
        max_leaves=8,
    )

    @given(values)
    def test_equal_values_equal_keys(self, value):
        """A deep copy canonicalizes (and hashes) identically."""
        assert _canonical(deepcopy(value)) == _canonical(value)
        assert content_key(value) == content_key(deepcopy(value))

    @given(st.dictionaries(st.text(max_size=4), scalars, max_size=6))
    def test_dict_insertion_order_irrelevant(self, mapping):
        reordered = dict(reversed(list(mapping.items())))
        assert _canonical(reordered) == _canonical(mapping)

    @given(scalars, scalars)
    def test_distinct_scalars_distinct_keys(self, a, b):
        """On scalars the canonical form is injective up to equality.

        (``True == 1`` canonicalizes distinctly — by design: cache keys
        separate bool from int fields rather than aliasing them.)
        """
        if type(a) is type(b) and a != b:
            assert _canonical(a) != _canonical(b)

    @given(values)
    def test_round_trip_through_spec_dataclass(self, value):
        """A spec carrying the value keys identically across instances."""
        point = SweepPoint("heat", scale=0.5, workload_kwargs=(("v", value),))
        twin = SweepPoint("heat", scale=0.5, workload_kwargs=(("v", deepcopy(value)),))
        assert content_key(point) == content_key(twin)
