"""The timing engines' equivalence contract, end to end.

The vectorized engine must produce a :class:`SimResult` whose every
metric — cycles, instructions, AMAT, MPKI, DRAM byte counts, energy,
the full LLC/DRAM stat dictionaries — is **bit-identical** (``==`` on
floats, no tolerance) to the reference loop's, for real workload traces
under every design.  This is what lets the fast path replace the
reference everywhere, and what lets both engines share sweep-cache
entries.
"""

import numpy as np
import pytest

from repro.common.config import SystemConfig
from repro.common.types import Design
from repro.harness.runner import _build_layout
from repro.harness.sweep import SweepPoint, run_functional_job
from repro.system.factory import build_system
from repro.system.simulator import TimingSystem
from repro.trace.generator import generate_trace

CONFIG = SystemConfig.scaled(num_cores=2)
ACCESSES = 3_000


@pytest.fixture(scope="module", params=["heat", "kmeans", "orbit"])
def workload_context(request):
    """Layout + trace of one small workload (functional layer run once)."""
    point = SweepPoint(
        workload=request.param, scale=0.15, max_accesses_per_core=ACCESSES
    )
    workload = point.make()
    reference = run_functional_job(point, Design.BASELINE)
    avr = run_functional_job(point, Design.AVR)
    layout = _build_layout(workload, avr)
    trace = generate_trace(
        workload.trace_spec(),
        reference.memory,
        num_cores=CONFIG.num_cores,
        max_accesses_per_core=ACCESSES,
        seed=point.seed,
    )
    return layout, trace, reference.memory.footprint_bytes


@pytest.mark.parametrize("design", list(Design))
def test_engines_bit_identical(workload_context, design):
    layout, trace, footprint = workload_context
    results = {}
    for engine in ("reference", "vectorized"):
        system = build_system(design, CONFIG, layout, footprint)
        results[engine] = system.run(trace, engine=engine)
    diffs = results["reference"].metric_diffs(results["vectorized"])
    assert not diffs, f"engines diverge on {design}: {diffs}"
    # Spot-pin the strictest fields: exact float equality, not approx.
    assert results["reference"].cycles == results["vectorized"].cycles
    assert results["reference"].energy.joules == results["vectorized"].energy.joules


def test_write_heavy_trace_bit_identical():
    """Writes drive the dirty-victim / writeback machinery hardest."""
    from repro.system.layout import AddressLayout
    from repro.trace.events import make_trace
    from repro.trace.generator import GeneratedTrace

    rng = np.random.default_rng(3)
    cores = []
    for c in range(2):
        n = 4_000
        addrs = (rng.integers(0, 1 << 15, n) * 8 + c * (1 << 19)).astype(np.int64)
        cores.append(
            make_trace(addrs, rng.random(n) < 0.7, rng.integers(0, 40, n))
        )
    trace = GeneratedTrace(cores=cores, iterations_simulated=1, iterations_total=1)
    layout = AddressLayout()
    layout.add_region(0, 1 << 20, 2)
    for design in (Design.BASELINE, Design.AVR, Design.TRUNCATE):
        ref = build_system(design, CONFIG, layout, 1 << 20).run(trace, engine="reference")
        vec = build_system(design, CONFIG, layout, 1 << 20).run(trace, engine="vectorized")
        assert ref.metrics_equal(vec), ref.metric_diffs(vec)


def test_unknown_engine_rejected():
    from repro.system.layout import AddressLayout
    from repro.trace.generator import GeneratedTrace

    system = build_system(Design.BASELINE, CONFIG, AddressLayout(), 1 << 20)
    empty = GeneratedTrace(cores=[], iterations_simulated=1, iterations_total=1)
    with pytest.raises(ValueError, match="unknown engine"):
        system.run(empty, engine="warp")


def test_empty_trace_both_engines():
    from repro.system.layout import AddressLayout
    from repro.trace.events import TRACE_DTYPE
    from repro.trace.generator import GeneratedTrace

    empty = GeneratedTrace(
        cores=[np.empty(0, dtype=TRACE_DTYPE)] * 2,
        iterations_simulated=1,
        iterations_total=1,
    )
    ref = build_system(Design.BASELINE, CONFIG, AddressLayout(), 1 << 20).run(
        empty, engine="reference"
    )
    vec = build_system(Design.BASELINE, CONFIG, AddressLayout(), 1 << 20).run(
        empty, engine="vectorized"
    )
    assert ref.metrics_equal(vec)
    assert vec.cycles == 0.0 and vec.instructions == 0


def test_coreless_trace_both_engines():
    from repro.system.layout import AddressLayout
    from repro.trace.generator import GeneratedTrace

    bare = GeneratedTrace(cores=[], iterations_simulated=1, iterations_total=1)
    ref = build_system(Design.BASELINE, CONFIG, AddressLayout(), 1 << 20).run(
        bare, engine="reference"
    )
    vec = build_system(Design.BASELINE, CONFIG, AddressLayout(), 1 << 20).run(
        bare, engine="vectorized"
    )
    assert ref.metrics_equal(vec)
