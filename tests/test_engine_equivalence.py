"""The timing engines' equivalence contract, end to end.

The vectorized engine must produce a :class:`SimResult` whose every
metric — cycles, instructions, AMAT, MPKI, DRAM byte counts, energy,
the full LLC/DRAM stat dictionaries — is **bit-identical** (``==`` on
floats, no tolerance) to the reference loop's, for real workload traces
under every design.  This is what lets the fast path replace the
reference everywhere, and what lets both engines share sweep-cache
entries.
"""

import numpy as np
import pytest

from repro.common.config import SystemConfig
from repro.common.types import Design
from repro.harness.runner import _build_layout
from repro.harness.sweep import SweepPoint, run_functional_job
from repro.system.factory import build_system
from repro.trace.generator import generate_trace

CONFIG = SystemConfig.scaled(num_cores=2)
ACCESSES = 3_000


@pytest.fixture(scope="module", params=["heat", "kmeans", "orbit"])
def workload_context(request):
    """Layout + trace of one small workload (functional layer run once)."""
    point = SweepPoint(
        workload=request.param, scale=0.15, max_accesses_per_core=ACCESSES
    )
    workload = point.make()
    reference = run_functional_job(point, Design.BASELINE)
    avr = run_functional_job(point, Design.AVR)
    layout = _build_layout(workload, avr)
    trace = generate_trace(
        workload.trace_spec(),
        reference.memory,
        num_cores=CONFIG.num_cores,
        max_accesses_per_core=ACCESSES,
        seed=point.seed,
    )
    return layout, trace, reference.memory.footprint_bytes


@pytest.mark.parametrize("design", list(Design))
def test_engines_bit_identical(workload_context, design):
    layout, trace, footprint = workload_context
    results = {}
    for engine in ("reference", "vectorized"):
        system = build_system(design, CONFIG, layout, footprint)
        results[engine] = system.run(trace, engine=engine)
    diffs = results["reference"].metric_diffs(results["vectorized"])
    assert not diffs, f"engines diverge on {design}: {diffs}"
    # Spot-pin the strictest fields: exact float equality, not approx.
    assert results["reference"].cycles == results["vectorized"].cycles
    assert results["reference"].energy.joules == results["vectorized"].energy.joules


def test_write_heavy_trace_bit_identical():
    """Writes drive the dirty-victim / writeback machinery hardest."""
    from repro.system.layout import AddressLayout
    from repro.trace.events import make_trace
    from repro.trace.generator import GeneratedTrace

    rng = np.random.default_rng(3)
    cores = []
    for c in range(2):
        n = 4_000
        addrs = (rng.integers(0, 1 << 15, n) * 8 + c * (1 << 19)).astype(np.int64)
        cores.append(
            make_trace(addrs, rng.random(n) < 0.7, rng.integers(0, 40, n))
        )
    trace = GeneratedTrace(cores=cores, iterations_simulated=1, iterations_total=1)
    layout = AddressLayout()
    layout.add_region(0, 1 << 20, 2)
    for design in (Design.BASELINE, Design.AVR, Design.TRUNCATE):
        ref = build_system(design, CONFIG, layout, 1 << 20).run(trace, engine="reference")
        vec = build_system(design, CONFIG, layout, 1 << 20).run(trace, engine="vectorized")
        assert ref.metrics_equal(vec), ref.metric_diffs(vec)


def test_unknown_engine_rejected():
    from repro.system.layout import AddressLayout
    from repro.trace.generator import GeneratedTrace

    system = build_system(Design.BASELINE, CONFIG, AddressLayout(), 1 << 20)
    empty = GeneratedTrace(cores=[], iterations_simulated=1, iterations_total=1)
    with pytest.raises(ValueError, match="unknown engine"):
        system.run(empty, engine="warp")


def test_empty_trace_both_engines():
    from repro.system.layout import AddressLayout
    from repro.trace.events import TRACE_DTYPE
    from repro.trace.generator import GeneratedTrace

    empty = GeneratedTrace(
        cores=[np.empty(0, dtype=TRACE_DTYPE)] * 2,
        iterations_simulated=1,
        iterations_total=1,
    )
    ref = build_system(Design.BASELINE, CONFIG, AddressLayout(), 1 << 20).run(
        empty, engine="reference"
    )
    vec = build_system(Design.BASELINE, CONFIG, AddressLayout(), 1 << 20).run(
        empty, engine="vectorized"
    )
    assert ref.metrics_equal(vec)
    assert vec.cycles == 0.0 and vec.instructions == 0


def test_coreless_trace_both_engines():
    from repro.system.layout import AddressLayout
    from repro.trace.generator import GeneratedTrace

    bare = GeneratedTrace(cores=[], iterations_simulated=1, iterations_total=1)
    ref = build_system(Design.BASELINE, CONFIG, AddressLayout(), 1 << 20).run(
        bare, engine="reference"
    )
    vec = build_system(Design.BASELINE, CONFIG, AddressLayout(), 1 << 20).run(
        bare, engine="vectorized"
    )
    assert ref.metrics_equal(vec)


# ----------------------------------------------------------------------
# AVR fast-replay differentials: ablation flags, mixed traces, handoff
# ----------------------------------------------------------------------
AVR_VARIANTS = {
    "full": {},
    "no-dbuf": {"enable_dbuf": False},
    "no-lazy": {"enable_lazy_eviction": False},
    "no-skip": {"enable_skip_counters": False},
    "no-refresh": {"enable_cms_lru_refresh": False},
    "pfe-always": {"pfe_threshold": 0},
    "pfe-disabled": {"pfe_threshold": None},
    "pfe-custom": {"pfe_threshold": 3},
}


@pytest.fixture(scope="module")
def heat_context():
    """One small heat workload context shared by the ablation matrix."""
    point = SweepPoint(workload="heat", scale=0.15, max_accesses_per_core=2_500)
    workload = point.make()
    reference = run_functional_job(point, Design.BASELINE)
    avr = run_functional_job(point, Design.AVR)
    layout = _build_layout(workload, avr)
    trace = generate_trace(
        workload.trace_spec(),
        reference.memory,
        num_cores=CONFIG.num_cores,
        max_accesses_per_core=2_500,
        seed=point.seed,
    )
    return layout, trace, reference.memory.footprint_bytes


@pytest.mark.parametrize("variant", sorted(AVR_VARIANTS))
def test_avr_ablations_bit_identical(heat_context, variant):
    """Every ablation flag must survive the fast replay unchanged."""
    layout, trace, footprint = heat_context
    options = AVR_VARIANTS[variant]
    results = {}
    for engine in ("reference", "vectorized"):
        system = build_system(
            Design.AVR, CONFIG, layout, footprint, avr_options=dict(options)
        )
        results[engine] = system.run(trace, engine=engine)
    diffs = results["reference"].metric_diffs(results["vectorized"])
    assert not diffs, f"AVR[{variant}] engines diverge: {diffs}"


def _mixed_trace(num_cores=4, n=3_000, seed=11):
    """Synthetic multi-core trace over mixed approx + exact regions."""
    from repro.system.layout import AddressLayout
    from repro.trace.events import make_trace
    from repro.trace.generator import GeneratedTrace

    rng = np.random.default_rng(seed)
    approx_bytes = 1 << 18
    layout = AddressLayout()
    # compressibility mix: very compressible, moderate, uncompressible
    sizes = rng.choice([1, 3, 16], size=approx_bytes // 1024).astype(np.int64)
    layout.add_region(0, approx_bytes, sizes)
    cores = []
    for c in range(num_cores):
        # interleave approx sweeps with exact traffic above the region
        approx_addrs = rng.integers(0, approx_bytes // 64, n // 2) * 64
        exact_addrs = (1 << 19) + rng.integers(0, 1 << 12, n - n // 2) * 64
        addrs = np.empty(n, dtype=np.int64)
        addrs[0::2] = approx_addrs
        addrs[1::2] = exact_addrs
        cores.append(
            make_trace(addrs, rng.random(n) < 0.5, rng.integers(0, 30, n))
        )
    trace = GeneratedTrace(cores=cores, iterations_simulated=1, iterations_total=1)
    return layout, trace


@pytest.mark.parametrize("variant", ["full", "no-dbuf", "pfe-disabled"])
def test_avr_multicore_mixed_regions_bit_identical(variant):
    """Approx + exact interleaved across 4 cores, write-heavy."""
    layout, trace = _mixed_trace()
    config = SystemConfig.scaled(num_cores=4)
    options = AVR_VARIANTS[variant]
    ref = build_system(
        Design.AVR, config, layout, 1 << 19, avr_options=dict(options)
    ).run(trace, engine="reference")
    vec = build_system(
        Design.AVR, config, layout, 1 << 19, avr_options=dict(options)
    ).run(trace, engine="vectorized")
    assert ref.metrics_equal(vec), ref.metric_diffs(vec)


def test_avr_replay_then_scalar_handoff():
    """Scalar calls after a batch see exactly the event-by-event state."""
    layout, trace = _mixed_trace(num_cores=2, n=1_200)
    config = SystemConfig.scaled(num_cores=2)
    fast = build_system(Design.AVR, config, layout, 1 << 19)
    slow = build_system(Design.AVR, config, layout, 1 << 19)
    fast.run(trace, engine="vectorized")
    slow.run(trace, engine="reference")
    assert fast.llc.check_invariants() == []
    # identical follow-up traffic must behave identically on both
    followups = [0, 64 * 5, 1024 * 7 + 128, (1 << 19) + 64 * 3]
    for addr in followups:
        assert fast.llc.read(addr) == slow.llc.read(addr)
        fast.llc.writeback(addr)
        slow.llc.writeback(addr)
    assert fast.llc.stats.as_dict() == slow.llc.stats.as_dict()
    assert fast.llc._slot_of == slow.llc._slot_of
    assert fast.llc.check_invariants() == []


def test_avr_replay_batch_requires_pristine_state():
    from repro.cache.llc_avr import AVRLLC
    from repro.common.config import CacheConfig, DRAMConfig
    from repro.memory import DRAM

    llc = AVRLLC(
        CacheConfig(64 * 8 * 64, 8, 15),
        DRAM(DRAMConfig()),
        block_size_of=lambda addr: 2,
        is_approx=lambda addr: False,
    )
    llc.read(0)
    with pytest.raises(ValueError, match="empty LLC"):
        llc.replay_batch(
            np.array([0], dtype=np.int64), np.array([True])
        )


def test_avr_misaligned_region_bit_identical():
    """A region start inside a block makes blocks half approx, half
    exact; the fast replay must then give up per-block classification
    and run batching, staying bit-identical to the reference."""
    from repro.system.layout import AddressLayout
    from repro.trace.events import make_trace
    from repro.trace.generator import GeneratedTrace

    rng = np.random.default_rng(23)
    layout = AddressLayout()
    layout.add_region(8 * 1024 + 512, 64 * 1024, 3)  # mid-block start
    n = 3_000
    cores = []
    for c in range(2):
        # hammer the boundary blocks so same-block runs form
        addrs = (8 * 1024 + rng.integers(0, 64, n) * 64).astype(np.int64)
        cores.append(
            make_trace(addrs, rng.random(n) < 0.5, rng.integers(0, 20, n))
        )
    trace = GeneratedTrace(cores=cores, iterations_simulated=1, iterations_total=1)
    ref = build_system(Design.AVR, CONFIG, layout, 1 << 18).run(
        trace, engine="reference"
    )
    vec = build_system(Design.AVR, CONFIG, layout, 1 << 18).run(
        trace, engine="vectorized"
    )
    assert ref.metrics_equal(vec), ref.metric_diffs(vec)


@pytest.mark.parametrize("flavor", ["plain", "truncate"])
def test_baseline_llc_replay_batch_bit_identical(flavor):
    """BaselineLLC.replay_batch vs the per-event read()/writeback() loop.

    Covers both the always-exact fast path and the Truncate-style
    half-width approx traffic split.
    """
    from repro.cache.llc_baseline import BaselineLLC
    from repro.common.config import CacheConfig, DRAMConfig
    from repro.memory import DRAM

    rng = np.random.default_rng(7)
    n = 2_000
    addrs = (rng.integers(0, 1 << 11, size=n) * 64).astype(np.int64)
    is_read = rng.random(n) < 0.7
    boundary = 64 * (1 << 10)

    def build():
        config = CacheConfig(64 * 8 * 16, 8, 15)  # 16 sets: force evictions
        if flavor == "plain":
            return BaselineLLC(config, DRAM(DRAMConfig()))
        return BaselineLLC(
            config,
            DRAM(DRAMConfig()),
            is_approx=lambda addr: addr < boundary,
            approx_line_bytes=32,
            is_approx_batch=lambda a: a < boundary,
        )

    fast, slow = build(), build()
    batch_latency = fast.replay_batch(addrs, is_read)
    ref_latency = np.zeros(n, dtype=batch_latency.dtype)
    for i in range(n):
        if is_read[i]:
            ref_latency[i] = slow.read(int(addrs[i]))
        else:
            slow.writeback(int(addrs[i]))
    assert np.array_equal(batch_latency[is_read], ref_latency[is_read])
    assert fast.stats.as_dict() == slow.stats.as_dict()
    assert fast.dram.stats.as_dict() == slow.dram.stats.as_dict()
    assert fast.cache._sets == slow.cache._sets


def test_interval_core_replay_batch_bit_identical():
    """IntervalCore.replay_batch vs the advance()/memory_event() loop.

    The cycle counter is a sequential float chain, so equality here is
    exact (``==`` on float64), not approximate.
    """
    from repro.common.config import CoreConfig
    from repro.cpu.interval import IntervalCore

    rng = np.random.default_rng(11)
    n = 5_000
    gaps = rng.integers(0, 50, size=n).astype(np.int64)
    latencies = rng.choice(
        np.array([15.0, 47.0, 233.0, 350.0]), size=n
    )
    l1_hit = rng.random(n) < 0.6

    fast, slow = IntervalCore(CoreConfig()), IntervalCore(CoreConfig())
    fast.replay_batch(gaps, latencies, l1_hit)
    for gap, latency, hit in zip(gaps, latencies, l1_hit):
        slow.advance(int(gap))
        slow.memory_event(float(latency), bool(hit))
    assert fast.cycles == slow.cycles
    assert fast.instructions == slow.instructions
    assert fast.mem_accesses == slow.mem_accesses
    assert fast.mem_latency_total == slow.mem_latency_total
    assert fast.amat == slow.amat
