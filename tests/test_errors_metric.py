"""Tests for the error metrics."""

import numpy as np
import pytest

from repro.compression.errors import mean_relative_error, relative_error


class TestRelativeError:
    def test_zero_for_exact(self):
        v = np.array([1.0, -2.0, 3.0])
        assert relative_error(v, v).max() == 0.0

    def test_simple_values(self):
        orig = np.array([2.0])
        approx = np.array([2.1])
        assert relative_error(orig, approx)[0] == pytest.approx(0.05)

    def test_near_zero_guard(self):
        orig = np.array([0.0])
        approx = np.array([1e-20])
        assert np.isfinite(relative_error(orig, approx)[0])


class TestMeanRelativeError:
    def test_zero_for_identical(self):
        v = np.linspace(1, 2, 100)
        assert mean_relative_error(v, v) == 0.0

    def test_uniform_scale_error(self):
        v = np.linspace(1, 2, 100)
        assert mean_relative_error(v, v * 1.01) == pytest.approx(0.01, rel=1e-6)

    def test_empty(self):
        assert mean_relative_error(np.array([]), np.array([])) == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            mean_relative_error(np.zeros(3), np.zeros(4))

    def test_zero_reference_values_use_scale_floor(self):
        """Exact zeros in the reference must not blow the metric up when
        the deviation is tiny relative to the output's scale."""
        ref = np.ones(1000)
        ref[::10] = 0.0
        approx = ref + 1e-9
        assert mean_relative_error(ref, approx) < 1e-4

    def test_runaway_output_still_huge(self):
        ref = np.ones(100)
        approx = ref * 50.0
        assert mean_relative_error(ref, approx) > 10.0

    def test_nonfinite_approx_counts_as_full_error(self):
        ref = np.ones(4)
        approx = np.array([1.0, np.nan, np.inf, 1.0])
        err = mean_relative_error(ref, approx)
        assert err == pytest.approx(0.5)

    def test_multidimensional_inputs(self):
        ref = np.ones((10, 10))
        approx = ref * 1.02
        assert mean_relative_error(ref, approx) == pytest.approx(0.02, rel=1e-6)
