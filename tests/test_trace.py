"""Tests for synthetic trace generation."""

import numpy as np
import pytest

from repro.approx import ApproxMemory
from repro.trace import (
    TRACE_DTYPE,
    concat_traces,
    generate_trace,
    make_trace,
    total_instructions,
)
from repro.workloads.base import Phase, TraceSpec


@pytest.fixture
def mem():
    m = ApproxMemory()
    m.alloc("data", 64 * 1024 // 4)  # 64 KB
    m.alloc("out", 16 * 1024 // 4)  # 16 KB
    return m


class TestEvents:
    def test_make_trace(self):
        t = make_trace(
            np.array([0, 64]), np.array([False, True]), np.array([5, 7])
        )
        assert t.dtype == TRACE_DTYPE
        assert t["addr"][1] == 64
        assert bool(t["write"][1])

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            make_trace(np.zeros(2), np.zeros(1, bool), np.zeros(2))

    def test_concat_empty(self):
        assert len(concat_traces([])) == 0

    def test_total_instructions(self):
        t = make_trace(np.array([0, 64]), np.zeros(2, bool), np.array([10, 20]))
        assert total_instructions(t) == 32


class TestGenerator:
    def test_read_sweep_addresses(self, mem):
        spec = TraceSpec(
            iterations=2,
            phases=(Phase("data", reads=True, gap=10),),
        )
        gen = generate_trace(spec, mem, num_cores=1)
        t = gen.cores[0]
        base = mem.region("data").base_addr
        lines = 64 * 1024 // 64
        assert len(t) == 2 * lines
        assert t["addr"][0] == base
        assert t["addr"][1] == base + 64
        assert not t["write"].any()

    def test_write_phase(self, mem):
        spec = TraceSpec(1, (Phase("out", reads=False, writes=True, gap=3),))
        t = generate_trace(spec, mem, num_cores=1).cores[0]
        assert t["write"].all()

    def test_read_modify_write_interleaves(self, mem):
        spec = TraceSpec(1, (Phase("out", reads=True, writes=True, gap=3),))
        t = generate_trace(spec, mem, num_cores=1).cores[0]
        assert not t["write"][0] and t["write"][1]
        assert t["addr"][0] == t["addr"][1]

    def test_domain_decomposition(self, mem):
        spec = TraceSpec(1, (Phase("data", gap=1),))
        gen = generate_trace(spec, mem, num_cores=4)
        assert len(gen.cores) == 4
        base = mem.region("data").base_addr
        quarter = 64 * 1024 // 4
        for core, trace in enumerate(gen.cores):
            lo, hi = trace["addr"].min(), trace["addr"].max()
            assert lo >= base + core * quarter
            assert hi < base + (core + 1) * quarter

    def test_fraction_limits_span(self, mem):
        spec = TraceSpec(1, (Phase("data", fraction=0.25, gap=1),))
        t = generate_trace(spec, mem, num_cores=1).cores[0]
        assert len(t) == (64 * 1024 // 4) // 64

    def test_rolling_window_advances(self, mem):
        spec = TraceSpec(4, (Phase("data", writes=True, reads=False, gap=1, rolling=True),))
        gen = generate_trace(spec, mem, num_cores=1)
        t = gen.cores[0]
        base = mem.region("data").base_addr
        window = 64 * 1024 // 4
        # each iteration's addresses land in the next window
        per_iter = len(t) // 4
        for it in range(4):
            seg = t["addr"][it * per_iter : (it + 1) * per_iter]
            assert seg.min() >= base + it * window
            assert seg.max() < base + (it + 1) * window

    def test_access_budget_subsamples_iterations(self, mem):
        spec = TraceSpec(1000, (Phase("data", gap=1),))
        gen = generate_trace(spec, mem, num_cores=1, max_accesses_per_core=5000)
        assert gen.iterations_simulated < 1000
        assert gen.total_accesses <= 6000
        assert gen.scale_factor == pytest.approx(
            1000 / gen.iterations_simulated
        )

    def test_repeats(self, mem):
        spec1 = TraceSpec(1, (Phase("out", gap=1),))
        spec3 = TraceSpec(1, (Phase("out", gap=1, repeats=3),))
        n1 = len(generate_trace(spec1, mem, 1).cores[0])
        n3 = len(generate_trace(spec3, mem, 1).cores[0])
        assert n3 == 3 * n1

    def test_gap_jitter_bounded(self, mem):
        spec = TraceSpec(1, (Phase("data", gap=50),))
        t = generate_trace(spec, mem, num_cores=1).cores[0]
        assert t["gap"].min() >= 50
        assert t["gap"].max() <= 52
