"""Tests for approximable-memory regions and the sync engine."""

import numpy as np
import pytest

from repro.approx import (
    ApproxMemory,
    AVRApproximator,
    DoppelgangerApproximator,
    ExactApproximator,
    TruncateApproximator,
    approximator_for,
    padded_bytes,
    padded_pages,
)
from repro.approx.region import Region
from repro.common.constants import BLOCK_BYTES, PAGE_BYTES
from repro.common.types import DataType, Design, ErrorThresholds


class TestRegion:
    def test_base_must_be_page_aligned(self):
        with pytest.raises(ValueError):
            Region("x", 100, np.zeros(4, dtype=np.float32), True)

    def test_block_accounting(self):
        r = Region("x", PAGE_BYTES, np.zeros(300, dtype=np.float32), True)
        assert r.nbytes == 1200
        assert r.num_blocks == 2  # 1200 B -> two 1 KB blocks
        assert r.end_addr == PAGE_BYTES + 2 * BLOCK_BYTES

    def test_contains_and_block_index(self):
        r = Region("x", PAGE_BYTES, np.zeros(1024, dtype=np.float32), True)
        assert r.contains(PAGE_BYTES)
        assert r.contains(PAGE_BYTES + 4095)
        assert not r.contains(PAGE_BYTES - 1)
        assert r.block_index(PAGE_BYTES + BLOCK_BYTES + 5) == 1
        with pytest.raises(ValueError):
            r.block_index(0)

    def test_padding_helpers(self):
        assert padded_bytes(1) == BLOCK_BYTES
        assert padded_bytes(BLOCK_BYTES) == BLOCK_BYTES
        assert padded_pages(1) == PAGE_BYTES
        assert padded_pages(PAGE_BYTES + 1) == 2 * PAGE_BYTES


class TestAlloc:
    def test_alloc_returns_zeroed_array(self):
        mem = ApproxMemory()
        arr = mem.alloc("a", (10, 10))
        assert arr.shape == (10, 10)
        assert arr.dtype == np.float32
        assert (arr == 0).all()

    def test_alloc_with_init(self):
        mem = ApproxMemory()
        arr = mem.alloc("a", 8, init=np.arange(8))
        assert np.array_equal(arr, np.arange(8, dtype=np.float32))

    def test_duplicate_name_rejected(self):
        mem = ApproxMemory()
        mem.alloc("a", 4)
        with pytest.raises(ValueError):
            mem.alloc("a", 4)

    def test_regions_page_aligned_non_overlapping(self):
        mem = ApproxMemory()
        mem.alloc("a", 1000)
        mem.alloc("b", 2000)
        ra, rb = mem.region("a"), mem.region("b")
        assert ra.base_addr % PAGE_BYTES == 0
        assert rb.base_addr % PAGE_BYTES == 0
        assert rb.base_addr >= ra.base_addr + ra.nbytes

    def test_region_for_addr(self):
        mem = ApproxMemory()
        mem.alloc("a", 256)
        region = mem.region_for_addr(mem.region("a").base_addr + 4)
        assert region is not None and region.name == "a"
        assert mem.region_for_addr(0) is None

    def test_fixed32_dtype(self):
        mem = ApproxMemory()
        arr = mem.alloc("a", 8, dtype=DataType.FIXED32)
        assert arr.dtype == np.int32


class TestSync:
    def test_exact_approximator_is_identity(self):
        mem = ApproxMemory(ExactApproximator())
        arr = mem.alloc("a", 512, init=np.linspace(0, 1, 512))
        before = arr.copy()
        mem.sync()
        assert np.array_equal(arr, before)

    def test_avr_sync_modifies_in_place(self):
        mem = ApproxMemory(AVRApproximator(ErrorThresholds(0.02, 0.01)))
        # curved data: compresses but not exactly reconstructible
        x = np.linspace(0.0, 3.0, 2048)
        data = (np.sin(x) + 2.0).astype(np.float32)
        arr = mem.alloc("a", 2048, init=data)
        mem.sync()
        assert not np.array_equal(arr, data)  # approximated
        assert np.allclose(arr, data, rtol=0.03)  # ...but within T1

    def test_non_approx_region_untouched(self):
        mem = ApproxMemory(TruncateApproximator())
        exact = mem.alloc("exact", 256, approx=False, init=np.full(256, 1.2345))
        before = exact.copy()
        mem.sync()
        assert np.array_equal(exact, before)

    def test_sync_subset_by_name(self):
        mem = ApproxMemory(TruncateApproximator())
        a = mem.alloc("a", 256, init=np.full(256, 1.2345671))
        b = mem.alloc("b", 256, init=np.full(256, 1.2345671))
        mem.sync(["a"])
        assert not np.array_equal(a, b)

    def test_block_size_map_populated_by_avr(self):
        mem = ApproxMemory(AVRApproximator())
        mem.alloc("a", 1024, init=np.linspace(1, 2, 1024))
        mem.sync()
        sizes = mem.block_size_map()
        base = mem.region("a").base_addr
        assert base in sizes
        assert sizes[base].shape == (4,)  # 4 KB = 4 blocks
        assert (sizes[base] >= 1).all()

    def test_avr_tail_padding_no_spurious_failure(self):
        """A region that isn't a whole number of blocks pads by edge
        replication, so the tail block still compresses."""
        mem = ApproxMemory(AVRApproximator())
        mem.alloc("a", 300, init=np.linspace(1, 2, 300))  # 1.2 blocks
        mem.sync()
        sizes = mem.block_size_map()[mem.region("a").base_addr]
        assert (sizes <= 8).all()


class TestReporting:
    def test_footprint_and_fractions(self):
        mem = ApproxMemory()
        mem.alloc("a", 1024, approx=True)
        mem.alloc("b", 1024, approx=False)
        assert mem.footprint_bytes == 8192
        assert mem.approx_bytes == 4096
        assert mem.approx_fraction == pytest.approx(0.5)

    def test_compression_ratio_after_sync(self):
        mem = ApproxMemory(AVRApproximator())
        mem.alloc("a", 4096, init=np.linspace(1, 2, 4096))
        assert mem.compression_ratio() == 1.0  # nothing measured yet
        mem.sync()
        assert mem.compression_ratio() > 4.0

    def test_footprint_vs_baseline(self):
        mem = ApproxMemory(AVRApproximator())
        mem.alloc("a", 4096, approx=True, init=np.linspace(1, 2, 4096))
        mem.alloc("b", 4096, approx=False)
        mem.sync()
        frac = mem.footprint_vs_baseline()
        assert 0.5 < frac < 1.0  # exact half + compressed half

    def test_dedup_factor_reported(self):
        mem = ApproxMemory(DoppelgangerApproximator(0.01))
        mem.alloc("a", 4096, init=np.ones(4096))
        mem.sync()
        assert mem.dedup_factor() > 10.0


class TestApproximatorFactory:
    @pytest.mark.parametrize(
        "design,cls",
        [
            (Design.BASELINE, ExactApproximator),
            (Design.ZERO_AVR, ExactApproximator),
            (Design.AVR, AVRApproximator),
            (Design.TRUNCATE, TruncateApproximator),
            (Design.DGANGER, DoppelgangerApproximator),
        ],
    )
    def test_mapping(self, design, cls):
        assert isinstance(approximator_for(design), cls)

    def test_truncate_rejects_fixed(self):
        mem = ApproxMemory(TruncateApproximator())
        mem.alloc("a", 256, dtype=DataType.FIXED32)
        with pytest.raises(NotImplementedError):
            mem.sync()
