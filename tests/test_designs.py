"""Tests for the open design registry (repro.designs).

Covers the registry contract (register / lookup / duplicate rejection /
suggestions), DesignSpec identity (hashability, enum/name equality,
pickling, cache canonicalization), option validation, and the
acceptance-critical differential: the five shipped registry designs
must produce SimResults bit-identical to the pre-registry enum-dispatch
factory wiring, and new registered variants must run end-to-end with
zero edits to ``system/factory.py`` or ``common/types.py``.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.common.config import SystemConfig
from repro.common.constants import BLOCK_CACHELINES
from repro.common.types import Design
from repro.designs import (
    AVR,
    BASELINE,
    COMPARED,
    DGANGER,
    PAPER_DESIGNS,
    TRUNCATE,
    ZERO_AVR,
    DesignMap,
    DesignSpec,
    get_design,
    layout_source_design,
    list_designs,
    register_design,
    resolve_designs,
    unregister_design,
)
from repro.harness.cache import content_key
from repro.harness.runner import _build_layout
from repro.harness.sweep import (
    SweepPoint,
    functional_designs,
    run_functional_job,
)
from repro.system.factory import build_system
from repro.trace.generator import generate_trace

SCALE = 0.12
ACCESSES = 2_500


# ----------------------------------------------------------------------
# registry contract
# ----------------------------------------------------------------------
class TestRegistry:
    def test_paper_designs_are_registered(self):
        names = list_designs()
        for spec in PAPER_DESIGNS:
            assert spec.name in names
            assert get_design(spec.name) is spec

    def test_lookup_is_case_insensitive(self):
        assert get_design("avr") is AVR
        assert get_design("AVR") is AVR
        assert get_design("zeroavr") is ZERO_AVR

    def test_enum_members_resolve(self):
        assert get_design(Design.BASELINE) is BASELINE
        assert get_design(Design.DGANGER) is DGANGER
        assert get_design(Design.TRUNCATE) is TRUNCATE
        assert get_design(Design.ZERO_AVR) is ZERO_AVR
        assert get_design(Design.AVR) is AVR

    def test_spec_passthrough_without_registration(self):
        anon = DesignSpec(name="anon-variant")
        assert get_design(anon) is anon

    def test_unknown_name_suggests_close_matches(self):
        with pytest.raises(ValueError, match="did you mean"):
            get_design("avrr")
        with pytest.raises(ValueError, match="truncate"):
            get_design("truncat")
        # The error lists the registered designs (CLI surfaces this).
        with pytest.raises(ValueError, match="registered designs"):
            get_design("definitely-not-a-design")

    def test_unknown_type_raises_typeerror(self):
        with pytest.raises(TypeError):
            get_design(42)

    def test_duplicate_name_rejected(self):
        try:
            register_design(DesignSpec(name="dup-test"))
            with pytest.raises(ValueError, match="already registered"):
                register_design(DesignSpec(name="dup-test", approximator="avr", llc="avr"))
            with pytest.raises(ValueError, match="already registered"):
                register_design(DesignSpec(name="DUP-TEST"))  # case-insensitive
        finally:
            unregister_design("dup-test")

    def test_identical_reregistration_is_idempotent(self):
        try:
            a = register_design(DesignSpec(name="idem-test"))
            b = register_design(DesignSpec(name="idem-test"))
            assert b is a
        finally:
            unregister_design("idem-test")

    def test_replace_overrides(self):
        try:
            register_design(DesignSpec(name="repl-test"))
            new = register_design(
                DesignSpec(name="repl-test", llc="avr", approximator="avr"),
                replace=True,
            )
            assert get_design("repl-test") is new
        finally:
            unregister_design("repl-test")

    def test_resolve_designs_mixed_forms(self):
        specs = resolve_designs(("baseline", Design.AVR, TRUNCATE))
        assert specs == (BASELINE, AVR, TRUNCATE)


# ----------------------------------------------------------------------
# DesignSpec identity
# ----------------------------------------------------------------------
class TestDesignSpecIdentity:
    def test_hashable_and_usable_as_dict_key(self):
        d = {AVR: 1, BASELINE: 2}
        assert d[get_design("avr")] == 1
        assert len({AVR, get_design("AVR"), BASELINE}) == 2

    def test_equality_with_enum_and_name(self):
        assert AVR == Design.AVR
        assert Design.AVR == AVR
        assert AVR == "AVR"
        assert AVR == "avr"
        assert not (AVR == Design.BASELINE)
        assert AVR != TRUNCATE

    def test_equal_specs_hash_equal(self):
        clone = DesignSpec(
            name="AVR", llc="avr", approximator="avr",
            doc=AVR.doc,
        )
        assert clone == AVR
        assert hash(clone) == hash(AVR)

    def test_builder_outside_identity(self):
        def builder(spec, ctx):  # pragma: no cover - never called
            raise AssertionError

        with_hook = DesignSpec(name="hooked", builder=builder)
        without = DesignSpec(name="hooked")
        assert with_hook == without
        assert hash(with_hook) == hash(without)
        # ... and outside cache canonicalization: a callable would make
        # content_key raise TypeError if it entered the key.
        assert content_key(with_hook) == content_key(without)

    def test_pickle_roundtrip(self):
        for spec in PAPER_DESIGNS:
            assert pickle.loads(pickle.dumps(spec)) == spec

    def test_avr_options_sorted_into_identity(self):
        a = DesignSpec(name="x", llc="avr",
                       avr_options=(("b", 1), ("a", 2)))
        b = DesignSpec(name="x", llc="avr",
                       avr_options=(("a", 2), ("b", 1)))
        assert a == b and hash(a) == hash(b)

    def test_avr_options_accepts_mapping(self):
        spec = DesignSpec(name="x", llc="avr",
                          avr_options={"enable_dbuf": False})
        assert spec.avr_options == (("enable_dbuf", False),)

    def test_avr_options_rejects_malformed_pairs(self):
        with pytest.raises(ValueError, match="pairs"):
            DesignSpec(name="x", llc="avr", avr_options=("enable_dbuf",))

    def test_validation(self):
        with pytest.raises(ValueError, match="LLC family"):
            DesignSpec(name="bad", llc="l4")
        with pytest.raises(ValueError, match="approximator"):
            DesignSpec(name="bad", approximator="magic")
        with pytest.raises(ValueError, match="capacity model"):
            DesignSpec(name="bad", capacity_model="infinite")
        with pytest.raises(ValueError, match="thresholds_scale"):
            DesignSpec(name="bad", thresholds_scale=0.0)
        with pytest.raises(ValueError, match="approx_line_bytes"):
            DesignSpec(name="bad", approx_line_bytes=128)
        with pytest.raises(ValueError, match="cannot consume"):
            DesignSpec(name="bad", avr_options=(("enable_dbuf", False),))
        # Truncate-family designs must pin their stored line width, so
        # the functional and timing models stay consistent.
        with pytest.raises(ValueError, match="approx_line_bytes"):
            DesignSpec(name="bad", approximator="truncate",
                       capacity_model="truncate")
        with pytest.raises(ValueError, match="approx_line_bytes"):
            DesignSpec(name="bad", approximator="truncate")

    def test_designmap_accepts_enum_and_names(self):
        m = DesignMap()
        m[AVR] = "a"
        m[Design.BASELINE] = "b"
        assert m["AVR"] == "a" and m[Design.AVR] == "a"
        assert m[BASELINE] == "b" and m["baseline"] == "b"
        assert "avr" in m and Design.TRUNCATE not in m
        assert m.get("nope") is None
        assert len(m) == 2


# ----------------------------------------------------------------------
# roles and derived behaviour
# ----------------------------------------------------------------------
class TestRoles:
    def test_reference_designs(self):
        assert BASELINE.is_reference and ZERO_AVR.is_reference
        assert not AVR.is_reference and not TRUNCATE.is_reference
        assert DGANGER.measures_dedup and not AVR.measures_dedup

    def test_functional_designs_matches_legacy_selection(self):
        needed = functional_designs(PAPER_DESIGNS)
        assert needed == (BASELINE, DGANGER, TRUNCATE, AVR)

    def test_functional_designs_pulls_layout_source(self):
        conservative = get_design("avr-conservative")
        needed = functional_designs((BASELINE, conservative))
        assert conservative in needed
        assert layout_source_design(conservative) is conservative
        assert layout_source_design(AVR) is AVR
        assert layout_source_design(TRUNCATE) is AVR

    def test_thresholds_scale_resolution(self):
        from repro.common.types import ErrorThresholds

        conservative = get_design("avr-conservative")
        base = ErrorThresholds(t1=0.02, t2=0.01)
        scaled = conservative.resolve_thresholds(None, base)
        assert scaled.t1 == pytest.approx(0.01)
        assert scaled.t2 == pytest.approx(0.005)
        # Explicit overrides are scaled too: the design stays tightened
        # inside threshold-ablation sweeps.
        explicit = conservative.resolve_thresholds(ErrorThresholds.from_t2(0.04), base)
        assert explicit.t2 == pytest.approx(0.02)
        # Identity designs pass thresholds through untouched.
        assert AVR.resolve_thresholds(base, None) is base

    def test_validate_options_satellite(self):
        """build_system raises (not silently ignores) stray avr_options."""
        layout = _small_layout()
        config = SystemConfig.scaled(num_cores=2)
        for design in (BASELINE, TRUNCATE, DGANGER, "truncate-16"):
            with pytest.raises(ValueError, match="cannot consume"):
                build_system(
                    design, config, layout, footprint_bytes=1 << 16,
                    avr_options={"enable_dbuf": False},
                )
        # AVR-family designs accept them, as before.
        build_system(
            AVR, config, layout, footprint_bytes=1 << 16,
            avr_options={"enable_dbuf": False},
        )


# ----------------------------------------------------------------------
# differential: registry wiring vs the pre-registry enum factory
# ----------------------------------------------------------------------
def _small_layout():
    from repro.system.layout import AddressLayout

    layout = AddressLayout()
    layout.add_region(0x1_0000, 1 << 16, BLOCK_CACHELINES // 2)
    return layout


@pytest.fixture(scope="module")
def seed_context():
    """One small functional pass: the layout + trace all designs share."""
    point = SweepPoint(workload="heat", scale=SCALE,
                       max_accesses_per_core=ACCESSES)
    workload = point.make()
    reference = run_functional_job(point, BASELINE)
    avr_run = run_functional_job(point, AVR)
    dganger_run = run_functional_job(point, DGANGER)
    config = SystemConfig.scaled(num_cores=2)
    layout = _build_layout(workload, avr_run)
    trace = generate_trace(
        workload.trace_spec(), reference.memory,
        num_cores=config.num_cores, max_accesses_per_core=ACCESSES,
        seed=point.seed,
    )
    return {
        "config": config,
        "layout": layout,
        "trace": trace,
        "footprint": reference.memory.footprint_bytes,
        "dedup": dganger_run.memory.dedup_factor(),
    }


def _legacy_build_system(design, config, layout, footprint_bytes, dedup_factor):
    """The pre-registry enum-dispatch wiring, reproduced verbatim.

    This is the if/elif chain ``system/factory.py`` shipped before the
    registry (PR 4 state), inlined here as the differential anchor for
    the five paper designs.
    """
    from repro.cache.llc_avr import AVRLLC
    from repro.cache.llc_baseline import BaselineLLC
    from repro.memory.dram import DRAM
    from repro.system.simulator import TimingSystem

    dram = DRAM(config.dram, line_bytes=config.llc.line_bytes)
    approx_frac = (
        min(1.0, layout.approx_bytes / footprint_bytes) if footprint_bytes else 0.0
    )
    if design == Design.BASELINE:
        llc = BaselineLLC(config.llc, dram)
    elif design == Design.TRUNCATE:
        capacity = 1.0 / (1.0 - approx_frac / 2.0)
        llc = BaselineLLC(
            config.llc, dram,
            is_approx=layout.is_approx,
            capacity_multiplier=capacity,
            approx_line_bytes=32,
            is_approx_batch=layout.is_approx_batch,
        )
    elif design == Design.DGANGER:
        effective = min(max(dedup_factor, 1.0), float(config.dganger_tag_factor))
        capacity = 1.0 / (1.0 - approx_frac * (1.0 - 1.0 / effective))
        llc = BaselineLLC(
            config.llc, dram,
            is_approx=layout.is_approx,
            capacity_multiplier=capacity,
            is_approx_batch=layout.is_approx_batch,
        )
    elif design == Design.ZERO_AVR:
        llc = AVRLLC(
            config.llc, dram,
            block_size_of=lambda addr: BLOCK_CACHELINES,
            is_approx=lambda addr: False,
            is_approx_batch=lambda addrs: np.zeros(addrs.shape, dtype=bool),
            block_size_of_batch=lambda addrs: np.full(
                addrs.shape, BLOCK_CACHELINES, dtype=np.int64
            ),
        )
    else:
        llc = AVRLLC(
            config.llc, dram,
            block_size_of=layout.block_size_of,
            is_approx=layout.is_approx,
            is_approx_batch=layout.is_approx_batch,
            block_size_of_batch=layout.block_size_of_batch,
        )
    return TimingSystem(get_design(design), config, llc, dram)


@pytest.mark.parametrize("design", list(Design), ids=lambda d: d.value)
def test_registry_bit_identical_to_legacy_factory(design, seed_context):
    """Acceptance: the five paper designs, registry vs enum path."""
    ctx = seed_context
    dedup = ctx["dedup"] if design is Design.DGANGER else 1.0
    legacy = _legacy_build_system(
        design, ctx["config"], ctx["layout"], ctx["footprint"], dedup
    ).run(ctx["trace"])
    registry = build_system(
        design, ctx["config"], ctx["layout"], ctx["footprint"], dedup
    ).run(ctx["trace"])
    assert registry.metrics_equal(legacy), registry.metric_diffs(legacy)


# ----------------------------------------------------------------------
# new variants run end-to-end (sweep / scenario / ablation / CLI)
# ----------------------------------------------------------------------
class TestNewVariantsEndToEnd:
    def test_variants_through_sweep(self):
        from repro.harness import evaluate_workload

        ev = evaluate_workload(
            "heat", scale=SCALE, max_accesses_per_core=ACCESSES,
            config=SystemConfig.scaled(num_cores=2),
            designs=("baseline", "AVR", "avr-conservative", "truncate-16"),
        )
        assert {d.value for d in ev.runs} == {
            "baseline", "AVR", "avr-conservative", "truncate-16",
        }
        avr = ev.runs["AVR"]
        conservative = ev.runs["avr-conservative"]
        t16 = ev.runs["truncate-16"]
        # Halved error budget => strictly tighter output error than AVR.
        assert 0 < conservative.output_error < avr.output_error
        # Self-measured layout (bigger blocks) => its timing genuinely
        # differs from AVR's on the same trace.
        assert not conservative.timing.metrics_equal(avr.timing)
        # Quarter-width lines cut approximate traffic below baseline.
        assert t16.timing.total_bytes > 0
        assert ev.normalized("truncate-16", "traffic") < 1.0

    def test_variants_through_scenario(self):
        from repro.harness.scenario import evaluate_scenario

        ev = evaluate_scenario(
            "heat@1+lbm@1",
            designs=("baseline", "avr-conservative"),
            max_accesses_per_core=2_000,
        )
        run = ev.runs["avr-conservative"]
        assert run.weighted_speedup > 0
        assert len(run.instances) == 2

    def test_variants_through_ablation(self):
        from repro.harness import run_llc_ablations

        points = run_llc_ablations(
            "heat", scale=SCALE, max_accesses_per_core=1_500,
            config=SystemConfig.scaled(num_cores=2),
            variants={"full AVR": {}, "no DBUF": {"enable_dbuf": False}},
            design="avr-conservative",
        )
        assert set(points) == {"full AVR", "no DBUF"}
        assert all(p.cycles > 0 for p in points.values())

    def test_non_avr_design_rejected_by_ablation(self):
        from repro.harness import run_llc_ablations

        with pytest.raises(ValueError, match="AVR-family"):
            run_llc_ablations("heat", design="truncate-16")

    def test_variants_through_cli(self, capsys):
        from repro.__main__ import main

        code = main([
            "workload", "heat", "--scale", str(SCALE),
            "--cores", "2", "--accesses", str(ACCESSES),
            "--designs", "AVR", "avr-conservative", "truncate-16",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "avr-conservative" in out and "truncate-16" in out

    def test_cli_unknown_design_did_you_mean(self, capsys):
        from repro.__main__ import main

        code = main(["workload", "heat", "--designs", "avrr"])
        assert code == 2
        err = capsys.readouterr().err
        assert "did you mean" in err
        for name in list_designs():
            assert name in err

    def test_core_files_closed_for_modification(self):
        """New variants exist purely in the registry: neither the
        factory nor the legacy enum knows their names."""
        import inspect

        import repro.common.types as types_mod
        import repro.system.factory as factory_mod

        factory_src = inspect.getsource(factory_mod)
        types_src = inspect.getsource(types_mod)
        for name in ("avr-conservative", "truncate-16"):
            assert name not in factory_src
            assert name not in types_src
        assert [d.value for d in Design] == [
            "baseline", "dganger", "truncate", "ZeroAVR", "AVR",
        ]

    def test_compared_tuple_matches_enum_order(self):
        assert tuple(d.value for d in COMPARED) == (
            "dganger", "truncate", "ZeroAVR", "AVR",
        )
