"""Tests for the content-keyed, memory-mapped trace store.

Covers the durability contract (atomic payload-then-record commits,
torn entries read as misses), content-key invalidation on version
bumps, concurrent writers racing benignly on one key, and the sweep
engine's warm path: a cleared result cache with an intact trace store
memory-maps the composed trace instead of regenerating it.
"""

from concurrent.futures import ProcessPoolExecutor

import numpy as np
import pytest

import repro
from repro.approx import ApproxMemory
from repro.trace import (
    TraceHandle,
    TraceStore,
    generate_trace,
    resolve_trace_store,
    trace_key,
)
from repro.workloads.base import Phase, TraceSpec

SPEC = TraceSpec(4, (Phase("data", gap=9),))


def make_mem() -> ApproxMemory:
    mem = ApproxMemory()
    mem.alloc("data", 16 * 1024 // 4)  # 16 KB
    return mem


def make_trace_and_key(num_cores=2, budget=5_000, seed=0):
    mem = make_mem()
    key = trace_key(SPEC, mem, num_cores, budget, seed)
    trace = generate_trace(
        SPEC, mem, num_cores=num_cores, max_accesses_per_core=budget, seed=seed
    )
    return key, trace


def assert_traces_identical(a, b):
    assert a.iterations_simulated == b.iterations_simulated
    assert a.iterations_total == b.iterations_total
    assert len(a.cores) == len(b.cores)
    for x, y in zip(a.cores, b.cores):
        assert x.dtype == y.dtype
        assert np.array_equal(x, y)


def _concurrent_writer(root: str, _worker: int) -> int:
    """Module-level so it pickles into pool workers: everyone races to
    commit the same content-keyed entry."""
    key, trace = make_trace_and_key()
    store = TraceStore(root)
    store.put(key, trace)
    return store.get(key).total_accesses


class TestRoundTrip:
    def test_memmap_round_trip_bit_identical(self, tmp_path):
        key, trace = make_trace_and_key()
        store = TraceStore(tmp_path)
        assert not store.contains(key)
        store.put(key, trace)
        assert store.contains(key)
        assert len(store) == 1
        mapped = store.get(key)
        assert_traces_identical(mapped, trace)
        # The warm path maps the payload read-only; nothing is copied.
        assert not mapped.cores[0].flags.writeable

    def test_miss_returns_none_and_counts(self, tmp_path):
        store = TraceStore(tmp_path)
        assert store.get("0" * 64) is None
        assert store.stats.misses == 1
        assert store.stats.hits == 0

    def test_get_or_generate_cold_then_warm(self, tmp_path):
        key, trace = make_trace_and_key()
        store = TraceStore(tmp_path)
        calls = []

        def generator():
            calls.append(1)
            return trace

        first = store.get_or_generate(key, generator)
        second = store.get_or_generate(key, generator)
        assert len(calls) == 1
        assert store.stats.stores == 1
        assert store.stats.hits == 1
        assert_traces_identical(first, second)

    def test_handle_load(self, tmp_path):
        key, trace = make_trace_and_key()
        TraceStore(tmp_path).put(key, trace)
        handle = TraceHandle(root=str(tmp_path), key=key)
        assert_traces_identical(handle.load(), trace)

    def test_handle_load_missing_entry_raises(self, tmp_path):
        handle = TraceHandle(root=str(tmp_path), key="0" * 64)
        with pytest.raises(FileNotFoundError):
            handle.load()


class TestAtomicity:
    def test_truncated_payload_is_a_miss(self, tmp_path):
        """A writer that died mid-payload leaves a mis-shaped file; the
        reader must treat the entry as absent, not surface torn data."""
        key, trace = make_trace_and_key()
        store = TraceStore(tmp_path)
        store.put(key, trace)
        payload = store._data_path(key)
        blob = payload.read_bytes()
        payload.write_bytes(blob[: len(blob) // 2])
        assert store.get(key) is None
        assert store.stats.misses == 1

    def test_payload_without_record_is_absent(self, tmp_path):
        """The index record is the commit marker: payload alone (a crash
        between the two writes) reads as a clean miss."""
        key, trace = make_trace_and_key()
        store = TraceStore(tmp_path)
        store.put(key, trace)
        store._meta_path(key).unlink()
        assert not store.contains(key)
        assert store.get(key) is None

    def test_record_without_payload_is_a_miss(self, tmp_path):
        key, trace = make_trace_and_key()
        store = TraceStore(tmp_path)
        store.put(key, trace)
        store._data_path(key).unlink()
        assert store.get(key) is None

    def test_corrupt_record_is_a_miss(self, tmp_path):
        key, trace = make_trace_and_key()
        store = TraceStore(tmp_path)
        store.put(key, trace)
        store._meta_path(key).write_text("{not json")
        assert store.get(key) is None

    def test_no_tmp_files_survive_a_put(self, tmp_path):
        key, trace = make_trace_and_key()
        TraceStore(tmp_path).put(key, trace)
        assert not list(tmp_path.rglob("*.tmp"))

    def test_concurrent_writers_one_key(self, tmp_path):
        """Content addressing makes same-key races benign: whoever wins
        the rename, the bytes are identical and the entry stays valid."""
        with ProcessPoolExecutor(max_workers=4) as pool:
            totals = list(
                pool.map(_concurrent_writer, [str(tmp_path)] * 4, range(4))
            )
        key, trace = make_trace_and_key()
        assert totals == [trace.total_accesses] * 4
        assert_traces_identical(TraceStore(tmp_path).get(key), trace)


class TestKeys:
    def test_key_is_deterministic(self):
        a = trace_key(SPEC, make_mem(), 2, 5_000, 0)
        b = trace_key(SPEC, make_mem(), 2, 5_000, 0)
        assert a == b

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_cores": 4},
            {"max_accesses_per_core": 6_000},
            {"seed": 1},
            {"per_core_streams": True},
        ],
    )
    def test_key_covers_every_generation_input(self, kwargs):
        base = dict(
            num_cores=2, max_accesses_per_core=5_000, seed=0,
            per_core_streams=False,
        )
        assert trace_key(SPEC, make_mem(), **base) != trace_key(
            SPEC, make_mem(), **{**base, **kwargs}
        )

    def test_version_bump_invalidates_keys(self, monkeypatch):
        before = trace_key(SPEC, make_mem(), 2, 5_000, 0)
        monkeypatch.setattr(repro, "__version__", "0.0.0-test")
        after = trace_key(SPEC, make_mem(), 2, 5_000, 0)
        assert before != after


class TestResolve:
    def test_off_disables(self, tmp_path):
        assert resolve_trace_store("off", tmp_path) is None
        assert resolve_trace_store(False, tmp_path) is None

    def test_default_derives_from_cache_dir(self, tmp_path):
        store = resolve_trace_store(None, tmp_path)
        assert store is not None
        assert store.root == tmp_path / "traces"

    def test_no_cache_dir_means_no_store(self):
        assert resolve_trace_store(None, None) is None

    def test_explicit_path_and_passthrough(self, tmp_path):
        store = resolve_trace_store(tmp_path / "t", None)
        assert store.root == tmp_path / "t"
        assert resolve_trace_store(store, None) is store


class TestSweepIntegration:
    @pytest.fixture(scope="class")
    def sweep_spec(self):
        from repro.common.config import SystemConfig
        from repro.designs import AVR, BASELINE
        from repro.harness.sweep import SweepSpec

        return SweepSpec(
            workloads=("heat",),
            designs=(BASELINE, AVR),
            config=SystemConfig.scaled(num_cores=2),
            scales=(0.15,),
            max_accesses_per_core=2_000,
        )

    def test_cleared_result_cache_maps_stored_trace(self, sweep_spec, tmp_path):
        from repro.designs import AVR
        from repro.harness.sweep import run_sweep

        cold = run_sweep(sweep_spec, cache_dir=tmp_path)
        assert cold.stats.traces_generated == 1
        assert cold.stats.traces_mapped == 0
        assert (tmp_path / "traces").is_dir()

        # Clear the result cache; keep the trace store.
        for entry in tmp_path.glob("*/*.pkl"):
            entry.unlink()

        warm = run_sweep(sweep_spec, cache_dir=tmp_path)
        assert warm.stats.traces_generated == 0
        assert warm.stats.traces_mapped >= 1
        assert warm.stats.executed > 0  # jobs re-ran, trace did not
        cold_run = cold.by_workload()["heat"].runs[AVR]
        warm_run = warm.by_workload()["heat"].runs[AVR]
        assert warm_run.timing.cycles == cold_run.timing.cycles
        assert warm_run.timing.total_bytes == cold_run.timing.total_bytes

        # Fully warm: every job cache-served, the trace never touched.
        cached = run_sweep(sweep_spec, cache_dir=tmp_path)
        assert cached.stats.executed == 0
        assert cached.stats.traces_generated == 0
        assert cached.stats.traces_mapped == 0

    def test_store_off_skips_the_trace_dir(self, sweep_spec, tmp_path):
        from repro.harness.sweep import run_sweep

        result = run_sweep(sweep_spec, cache_dir=tmp_path, trace_store="off")
        assert result.stats.traces_generated == 0
        assert result.stats.traces_mapped == 0
        assert not (tmp_path / "traces").exists()
