"""Tests for outlier detection, bitmaps and compressed-size math."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.constants import (
    BITMAP_BYTES,
    CACHELINE_BYTES,
    MAX_COMPRESSED_CACHELINES,
    MAX_OUTLIERS,
    VALUES_PER_BLOCK,
)
from repro.common.types import ErrorThresholds
from repro.compression.outliers import (
    block_average_error,
    compressed_size_cachelines,
    detect_outliers,
    max_outliers_for_size,
    pack_bitmap,
    unpack_bitmap,
)

TH = ErrorThresholds(t1=0.02, t2=0.01)


def blocks_of(values):
    arr = np.asarray(values, dtype=np.float32)
    return np.broadcast_to(arr, (1, VALUES_PER_BLOCK)).copy()


class TestDetectOutliers:
    def test_exact_reconstruction_no_outliers(self):
        orig = blocks_of(np.linspace(1, 2, VALUES_PER_BLOCK))
        for mode in ("hardware", "relative", "hybrid"):
            assert not detect_outliers(orig, orig, TH, mode).any()

    def test_large_error_flagged_all_modes(self):
        orig = blocks_of(np.full(VALUES_PER_BLOCK, 1.0))
        recon = orig * 2.0
        for mode in ("hardware", "relative", "hybrid"):
            assert detect_outliers(orig, recon, TH, mode).all()

    def test_relative_mode_threshold_edge(self):
        orig = blocks_of(np.full(VALUES_PER_BLOCK, 100.0))
        recon = orig * 1.01
        assert not detect_outliers(orig, recon, TH, "relative").any()
        recon = orig * 1.05
        assert detect_outliers(orig, recon, TH, "relative").all()

    def test_hybrid_tolerates_near_zero_noise(self):
        """Values tiny relative to the block scale pass in hybrid mode
        even when their relative error is large (fixed-point subtract
        semantics), but fail in hardware mode."""
        orig = np.zeros((1, VALUES_PER_BLOCK), dtype=np.float32)
        orig[0, 0] = 1.0  # block scale
        orig[0, 1] = 1e-6
        recon = orig.copy()
        recon[0, 1] = 2e-6  # 100% relative error, tiny absolute
        assert detect_outliers(orig, recon, TH, "hardware")[0, 1]
        assert not detect_outliers(orig, recon, TH, "hybrid")[0, 1]

    def test_hybrid_matches_hardware_on_positive_data(self, rng):
        orig = rng.uniform(1.0, 1.9, (4, VALUES_PER_BLOCK)).astype(np.float32)
        recon = (orig * (1 + rng.normal(0, 0.01, orig.shape))).astype(np.float32)
        hw = detect_outliers(orig, recon, TH, "hardware")
        hy = detect_outliers(orig, recon, TH, "hybrid")
        # hybrid is strictly more permissive
        assert not (hy & ~hw).any()

    def test_unknown_mode(self):
        o = blocks_of([1.0] * VALUES_PER_BLOCK)
        with pytest.raises(ValueError):
            detect_outliers(o, o, TH, "bogus")


class TestBlockAverageError:
    def test_zero_for_exact(self):
        orig = blocks_of(np.linspace(1, 2, VALUES_PER_BLOCK))
        outliers = np.zeros_like(orig, dtype=bool)
        for mode in ("hardware", "relative", "hybrid"):
            assert block_average_error(orig, orig, outliers, mode)[0] == 0.0

    def test_outliers_excluded(self):
        orig = blocks_of(np.full(VALUES_PER_BLOCK, 1.0))
        recon = orig.copy()
        recon[0, 0] = 100.0  # wildly wrong, but marked outlier
        outliers = np.zeros_like(orig, dtype=bool)
        outliers[0, 0] = True
        err = block_average_error(orig, recon, outliers, "relative")[0]
        assert err == 0.0

    def test_all_outliers_scores_zero(self):
        orig = blocks_of(np.full(VALUES_PER_BLOCK, 1.0))
        outliers = np.ones_like(orig, dtype=bool)
        assert block_average_error(orig, orig * 3, outliers, "relative")[0] == 0.0

    def test_relative_mean(self):
        orig = blocks_of(np.full(VALUES_PER_BLOCK, 10.0))
        recon = orig * 1.02
        outliers = np.zeros_like(orig, dtype=bool)
        err = block_average_error(orig, recon, outliers, "relative")[0]
        assert err == pytest.approx(0.02, rel=1e-3)

    def test_hybrid_uses_block_scale_floor(self):
        orig = np.zeros((1, VALUES_PER_BLOCK), dtype=np.float32)
        orig[0, 0] = 100.0
        recon = orig.copy()
        recon[0, 1] = 0.1  # abs err 0.1 on a zero value; scale 100
        outliers = np.zeros_like(orig, dtype=bool)
        err = block_average_error(orig, recon, outliers, "hybrid")[0]
        assert err < 1e-4 * 100  # bounded by abs/scale, not rel/0


class TestCompressedSize:
    @pytest.mark.parametrize(
        "count,expected",
        [
            (0, 1),  # summary only
            (1, 2),  # summary + bitmap + 1 outlier -> 2 CLs
            (9, 2),
            (10, 3),  # 64+32+40=136 -> 3 CLs... boundary check below
            (MAX_OUTLIERS, 8),
            (MAX_OUTLIERS + 1, 9),
            (256, 18),
        ],
    )
    def test_sizes(self, count, expected):
        size = compressed_size_cachelines(np.array([count]))[0]
        payload = CACHELINE_BYTES + BITMAP_BYTES + 4 * count
        assert size == (expected if count == 0 else -(-payload // 64))

    def test_max_outliers_consistency(self):
        assert max_outliers_for_size(MAX_COMPRESSED_CACHELINES) == MAX_OUTLIERS
        assert max_outliers_for_size(2) == (2 * 64 - 64 - 32) // 4

    @given(st.integers(min_value=0, max_value=256))
    def test_size_monotone(self, count):
        a = compressed_size_cachelines(np.array([count]))[0]
        b = compressed_size_cachelines(np.array([count + 1]))[0]
        assert b >= a


class TestBitmap:
    def test_roundtrip(self, rng):
        masks = rng.random((8, VALUES_PER_BLOCK)) < 0.3
        assert np.array_equal(unpack_bitmap(pack_bitmap(masks)), masks)

    def test_packed_size_is_half_cacheline(self):
        packed = pack_bitmap(np.zeros((1, VALUES_PER_BLOCK), dtype=bool))
        assert packed.shape == (1, BITMAP_BYTES)
        assert BITMAP_BYTES == CACHELINE_BYTES // 2

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            pack_bitmap(np.zeros((1, 100), dtype=bool))
        with pytest.raises(ValueError):
            unpack_bitmap(np.zeros((1, 16), dtype=np.uint8))

    @given(st.lists(st.booleans(), min_size=256, max_size=256))
    def test_roundtrip_property(self, bits):
        mask = np.array(bits, dtype=bool)[None, :]
        assert np.array_equal(unpack_bitmap(pack_bitmap(mask)), mask)
