"""Tests for the address layout, system factory and timing simulator."""

import numpy as np
import pytest

from repro.cache.llc_avr import AVRLLC
from repro.cache.llc_baseline import BaselineLLC
from repro.common.config import SystemConfig
from repro.common.constants import BLOCK_BYTES, BLOCK_CACHELINES
from repro.common.types import Design
from repro.system import AddressLayout, build_system
from repro.trace.events import make_trace
from repro.trace.generator import GeneratedTrace

CONFIG = SystemConfig.scaled(num_cores=2)


class TestAddressLayout:
    def test_empty_layout(self):
        layout = AddressLayout()
        assert not layout.is_approx(0)
        assert layout.block_size_of(0) == BLOCK_CACHELINES
        assert layout.mean_compression_ratio() == 1.0

    def test_constant_sizes(self):
        layout = AddressLayout()
        layout.add_region(0x10000, 4 * BLOCK_BYTES, 2)
        assert layout.is_approx(0x10000)
        assert layout.is_approx(0x10000 + 4 * BLOCK_BYTES - 1)
        assert not layout.is_approx(0x10000 + 4 * BLOCK_BYTES)
        assert layout.block_size_of(0x10000 + BLOCK_BYTES) == 2
        assert layout.mean_compression_ratio() == pytest.approx(8.0)

    def test_array_sizes(self):
        layout = AddressLayout()
        sizes = np.array([1, 2, 4, 16], dtype=np.int32)
        layout.add_region(0, 4 * BLOCK_BYTES, sizes)
        assert layout.block_size_of(2 * BLOCK_BYTES) == 4
        assert layout.approx_bytes == 4 * BLOCK_BYTES

    def test_short_size_array_padded(self):
        layout = AddressLayout()
        layout.add_region(0, 4 * BLOCK_BYTES, np.array([2, 2], dtype=np.int32))
        assert layout.block_size_of(3 * BLOCK_BYTES) == 2


def _tiny_trace(num_cores=2, lines=512, gap=50):
    cores = []
    for c in range(num_cores):
        addrs = (np.arange(lines) * 64 + 0x10000 + c * lines * 64).astype(np.int64)
        cores.append(
            make_trace(addrs, np.zeros(lines, bool), np.full(lines, gap))
        )
    return GeneratedTrace(cores=cores, iterations_simulated=1, iterations_total=1)


class TestFactory:
    def test_baseline_llc_type(self):
        sys_ = build_system(Design.BASELINE, CONFIG, AddressLayout(), 1 << 20)
        assert isinstance(sys_.llc, BaselineLLC)

    def test_avr_llc_type(self):
        layout = AddressLayout()
        layout.add_region(0x10000, 8 * BLOCK_BYTES, 2)
        sys_ = build_system(Design.AVR, CONFIG, layout, 1 << 20)
        assert isinstance(sys_.llc, AVRLLC)
        assert sys_.llc.is_approx(0x10000)

    def test_zero_avr_marks_nothing(self):
        layout = AddressLayout()
        layout.add_region(0x10000, 8 * BLOCK_BYTES, 2)
        sys_ = build_system(Design.ZERO_AVR, CONFIG, layout, 1 << 20)
        assert isinstance(sys_.llc, AVRLLC)
        assert not sys_.llc.is_approx(0x10000)

    def test_truncate_capacity_and_linewidth(self):
        layout = AddressLayout()
        layout.add_region(0, 1 << 19, 8)  # half the footprint approx
        sys_ = build_system(Design.TRUNCATE, CONFIG, layout, 1 << 20)
        assert sys_.llc.approx_line_bytes == 32
        assert sys_.llc.cache.ways > CONFIG.llc.ways

    def test_dganger_capacity_capped_by_tag_reach(self):
        layout = AddressLayout()
        layout.add_region(0, 1 << 20, 16)
        sys_hi = build_system(Design.DGANGER, CONFIG, layout, 1 << 20, dedup_factor=100.0)
        sys_lo = build_system(Design.DGANGER, CONFIG, layout, 1 << 20, dedup_factor=1.0)
        assert sys_hi.llc.cache.ways <= CONFIG.llc.ways * CONFIG.dganger_tag_factor
        assert sys_lo.llc.cache.ways == CONFIG.llc.ways


class TestSimulator:
    def test_baseline_run_produces_metrics(self):
        sys_ = build_system(Design.BASELINE, CONFIG, AddressLayout(), 1 << 20)
        res = sys_.run(_tiny_trace())
        assert res.cycles > 0
        assert res.instructions > 0
        assert res.total_bytes > 0
        assert res.amat_cycles > 0
        assert res.llc_mpki >= 0
        assert res.energy.total > 0

    def test_avr_reduces_traffic_on_compressible_data(self):
        layout = AddressLayout()
        layout.add_region(0x10000, 1 << 20, 2)
        base = build_system(Design.BASELINE, CONFIG, layout, 1 << 20).run(_tiny_trace())
        avr = build_system(Design.AVR, CONFIG, layout, 1 << 20).run(_tiny_trace())
        assert avr.total_bytes < base.total_bytes
        assert avr.llc_mpki < base.llc_mpki

    def test_zero_avr_close_to_baseline(self):
        layout = AddressLayout()
        layout.add_region(0x10000, 1 << 20, 2)
        base = build_system(Design.BASELINE, CONFIG, layout, 1 << 20).run(_tiny_trace())
        zero = build_system(Design.ZERO_AVR, CONFIG, layout, 1 << 20).run(_tiny_trace())
        assert zero.total_bytes == pytest.approx(base.total_bytes, rel=0.05)
        assert zero.cycles == pytest.approx(base.cycles, rel=0.05)

    def test_iteration_factor_scales_adjusted(self):
        sys_ = build_system(Design.BASELINE, CONFIG, AddressLayout(), 1 << 20)
        res = sys_.run(_tiny_trace())
        res.iteration_factor = 2.0
        assert res.adjusted_cycles == pytest.approx(2 * res.cycles)
        assert res.adjusted_bytes == pytest.approx(2 * res.total_bytes)

    def test_instructions_match_trace(self):
        sys_ = build_system(Design.BASELINE, CONFIG, AddressLayout(), 1 << 20)
        trace = _tiny_trace(num_cores=1, lines=100, gap=10)
        res = sys_.run(trace)
        assert res.instructions == 100 * 11

    def test_compute_bound_trace_insensitive_to_design(self):
        layout = AddressLayout()
        layout.add_region(0x10000, 1 << 20, 2)
        t = _tiny_trace(lines=256, gap=2000)  # huge compute gaps
        base = build_system(Design.BASELINE, CONFIG, layout, 1 << 20).run(t)
        avr = build_system(Design.AVR, CONFIG, layout, 1 << 20).run(t)
        assert avr.cycles == pytest.approx(base.cycles, rel=0.05)


def test_is_approx_batch_matches_scalar():
    layout = AddressLayout()
    layout.add_region(0x10000, 4 * BLOCK_BYTES, 2)
    layout.add_region(0x80000, 2 * BLOCK_BYTES, 4)
    addrs = np.arange(0, 0x90000, 512, dtype=np.int64)
    batch = layout.is_approx_batch(addrs)
    scalar = np.array([layout.is_approx(int(a)) for a in addrs])
    assert np.array_equal(batch, scalar)
