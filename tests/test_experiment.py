"""Tests for the declarative Experiment API (repro.experiment)."""

from __future__ import annotations

import pytest

from repro.experiment import ExperimentSpec, run_experiment

SMALL = dict(
    name="small",
    workloads=("heat",),
    designs=("baseline", "AVR"),
    scales=(0.12,),
    max_accesses_per_core=2_000,
    num_cores=2,
)


class TestSpecConstruction:
    def test_defaults_are_the_paper_grid(self):
        spec = ExperimentSpec()
        assert spec.designs == ("baseline", "dganger", "truncate", "ZeroAVR", "AVR")
        assert spec.workloads == () and spec.scenarios == ()
        assert spec.resolved_cores() == 8

    def test_rejects_unknown_design_with_suggestions(self):
        with pytest.raises(ValueError, match="did you mean"):
            ExperimentSpec(designs=("baseline", "avrr"))

    def test_rejects_unknown_workload_and_scenario(self):
        with pytest.raises(ValueError, match="unknown workload"):
            ExperimentSpec(workloads=("nope",))
        with pytest.raises(ValueError, match="unknown workload"):
            ExperimentSpec(scenarios=("nope+heat",))

    def test_rejects_empty_designs_and_bad_jobs(self):
        with pytest.raises(ValueError, match="at least one design"):
            ExperimentSpec(designs=())
        with pytest.raises(ValueError, match="jobs"):
            ExperimentSpec(jobs=0)

    def test_scenario_widens_machine(self):
        spec = ExperimentSpec(workloads=(), scenarios=("heat@4+lbm@4",))
        assert spec.resolved_cores() == 8
        wide = ExperimentSpec(workloads=(), scenarios=("heat@8+lbm@8",))
        assert wide.resolved_cores() == 16
        pinned = ExperimentSpec(scenarios=("heat@1+lbm@1",), num_cores=2,
                                workloads=())
        assert pinned.resolved_cores() == 2

    def test_hashable_and_picklable(self):
        import pickle

        spec = ExperimentSpec(**SMALL)
        assert hash(spec) == hash(ExperimentSpec(**SMALL))
        assert pickle.loads(pickle.dumps(spec)) == spec


class TestSerialization:
    @pytest.mark.parametrize("suffix", [".toml", ".json"])
    def test_roundtrip_bit_identity(self, tmp_path, suffix):
        spec = ExperimentSpec(
            name="rt",
            workloads=("heat", "kmeans"),
            scenarios=("heat@1+lbm@1",),
            designs=("baseline", "AVR", "truncate-16"),
            scales=(0.15, 1.0),
            seeds=(0, 7),
            t2_thresholds=(0.01, 0.04),
            max_accesses_per_core=3_000,
            num_cores=2,
            jobs=2,
            cache_dir=".cache",
        )
        path = tmp_path / f"spec{suffix}"
        spec.to_file(path)
        loaded = ExperimentSpec.from_file(path)
        assert loaded == spec
        assert loaded.content_hash() == spec.content_hash()
        # Dumping the loaded spec again produces byte-identical files.
        path2 = tmp_path / f"spec2{suffix}"
        loaded.to_file(path2)
        assert path.read_bytes() == path2.read_bytes()

    def test_cross_format_identity(self, tmp_path):
        spec = ExperimentSpec(**SMALL)
        toml = ExperimentSpec.from_file(spec.to_file(tmp_path / "s.toml"))
        json_ = ExperimentSpec.from_file(spec.to_file(tmp_path / "s.json"))
        assert toml == json_ == spec
        assert toml.content_hash() == json_.content_hash()

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown experiment spec keys"):
            ExperimentSpec.from_mapping({"worloads": ["heat"]})

    def test_content_hash_covers_grid_identity_only(self):
        base = ExperimentSpec(**SMALL)
        relabeled = ExperimentSpec(**{**SMALL, "name": "other"})
        parallel = ExperimentSpec(**{**SMALL, "jobs": 4,
                                     "cache_dir": "/tmp/x",
                                     "engine": "reference"})
        assert relabeled.content_hash() == base.content_hash()
        assert parallel.content_hash() == base.content_hash()
        different = ExperimentSpec(**{**SMALL, "seeds": (1,)})
        assert different.content_hash() != base.content_hash()

    def test_content_hash_memoized_and_survives_pickle(self):
        import pickle

        spec = ExperimentSpec(**SMALL)
        first = spec.content_hash()
        # the canonicalization pass runs once; later calls hit the memo
        assert spec.__dict__["_content_hash"] == first
        assert spec.content_hash() is first
        # the memo rides along through pickling (worker processes,
        # planner job fan-out) instead of being recomputed per process
        clone = pickle.loads(pickle.dumps(spec))
        assert clone.__dict__.get("_content_hash") == first
        assert clone.content_hash() == first

    def test_content_hash_ignores_field_order_in_file(self, tmp_path):
        a = tmp_path / "a.toml"
        b = tmp_path / "b.toml"
        a.write_text('name = "x"\nworkloads = ["heat"]\nnum_cores = 2\n')
        b.write_text('num_cores = 2\nname = "x"\nworkloads = ["heat"]\n')
        sa, sb = ExperimentSpec.from_file(a), ExperimentSpec.from_file(b)
        assert sa == sb and sa.content_hash() == sb.content_hash()

    def test_example_spec_loads(self):
        from pathlib import Path

        example = Path(__file__).resolve().parent.parent / "examples" / "experiment_spec.toml"
        spec = ExperimentSpec.from_file(example)
        assert spec.name == "quickstart"
        assert "avr-conservative" in spec.designs
        assert spec.scenarios


class TestRunExperiment:
    @pytest.fixture(scope="class")
    def cache_dir(self, tmp_path_factory):
        return tmp_path_factory.mktemp("exp-cache")

    def test_matches_programmatic_path_and_shares_cache(self, cache_dir):
        from repro.harness.sweep import run_sweep

        spec = ExperimentSpec(**SMALL)
        result = run_experiment(spec, cache_dir=cache_dir)
        assert result.stats.executed > 0
        ev = result.by_workload()["heat"]

        # The same grid, programmatically: bit-identical results AND a
        # fully warm cache — specs and code address identical job units.
        sweep = run_sweep(spec.to_sweep_spec(), cache_dir=cache_dir)
        assert sweep.stats.executed == 0
        ev2 = sweep.by_workload()["heat"]
        assert ev2.runs["AVR"].timing.metrics_equal(ev.runs["AVR"].timing)
        assert ev2.runs["AVR"].output_error == ev.runs["AVR"].output_error

    def test_warm_rerun_executes_nothing(self, cache_dir):
        spec = ExperimentSpec(**SMALL)
        again = run_experiment(spec, cache_dir=cache_dir)
        assert again.stats.executed == 0
        assert again.stats.cache_hits > 0

    def test_accepts_spec_path(self, tmp_path, cache_dir):
        path = ExperimentSpec(**SMALL).to_file(tmp_path / "spec.toml")
        result = run_experiment(path, cache_dir=cache_dir)
        assert result.stats.executed == 0  # same grid, still warm
        assert result.spec.name == "small"

    def test_scenario_experiment(self):
        spec = ExperimentSpec(
            name="mix",
            workloads=(),
            scenarios=("heat@1+lbm@1",),
            designs=("baseline", "AVR"),
            scales=(0.15,),
            max_accesses_per_core=2_000,
        )
        result = run_experiment(spec)
        sev = result.by_scenario()["heat@1+lbm@1"]
        assert sev.runs["AVR"].weighted_speedup > 0
        assert not result.evaluations  # mixes bring their own workloads


class TestExperimentCLI:
    def test_cold_then_warm_with_expect_cached(self, tmp_path, capsys):
        from repro.__main__ import main

        spec_path = ExperimentSpec(**SMALL).to_file(tmp_path / "spec.toml")
        cache = str(tmp_path / "cache")

        assert main(["experiment", str(spec_path), "--cache-dir", cache]) == 0
        out = capsys.readouterr().out
        assert "Table 3" in out and "sweep:" in out

        # Warm: fully cache-served, --expect-cached passes.
        assert main(["experiment", str(spec_path), "--cache-dir", cache,
                     "--expect-cached"]) == 0
        out = capsys.readouterr().out
        assert "0 job(s) executed" in out

        # Cold cache with --expect-cached fails loudly.
        assert main(["experiment", str(spec_path), "--cache-dir",
                     str(tmp_path / "cold"), "--expect-cached"]) == 1
        assert "expected a fully cache-served run" in capsys.readouterr().err

    def test_missing_spec_file(self, capsys):
        from repro.__main__ import main

        assert main(["experiment", "no-such-spec.toml"]) == 2
        assert "error:" in capsys.readouterr().err
