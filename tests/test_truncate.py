"""Tests for the Truncate comparison design."""

import numpy as np

from repro.compression.truncate import (
    TRUNCATE_RATIO,
    max_truncation_error,
    truncate_roundtrip,
    truncate_values,
)


def test_ratio_is_two_to_one():
    assert TRUNCATE_RATIO == 2.0


def test_error_bound(rng):
    values = rng.uniform(-1000, 1000, 10000).astype(np.float32)
    values = values[np.abs(values) > 1e-3]
    out = truncate_values(values)
    rel = np.abs(out - values) / np.abs(values)
    assert rel.max() <= max_truncation_error() + 1e-9


def test_idempotent(rng):
    values = rng.normal(0, 10, 1000).astype(np.float32)
    once = truncate_values(values)
    assert np.array_equal(truncate_values(once), once)


def test_preserves_shape():
    arr = np.ones((3, 4, 5), dtype=np.float32) * 1.2345
    out = truncate_roundtrip(arr)
    assert out.shape == arr.shape


def test_zero_preserved():
    assert truncate_values(np.zeros(4, dtype=np.float32)).max() == 0.0


def test_sign_and_exponent_survive(rng):
    values = rng.normal(0, 100, 1000).astype(np.float32)
    out = truncate_values(values)
    nonzero = values != 0
    assert (np.sign(out[nonzero]) == np.sign(values[nonzero])).all()
