"""Cross-module integration tests: the paper's headline claims in miniature."""

import pytest

from repro.common.config import CacheConfig, SystemConfig
from repro.common.types import Design
from repro.harness import evaluate_workload

#: The paper's regime: raw footprint >> LLC >= compressed footprint
#: (heat: 65 MB raw, 8 MB LLC, ~6 MB compressed).  Here: ~1.2 MB raw
#: footprint at scale 0.5, 256 KB LLC, ~0.2 MB compressed.
STREAM_CONFIG = SystemConfig(
    num_cores=4,
    l1=CacheConfig(2 * 1024, 4, 1),
    l2=CacheConfig(8 * 1024, 8, 8),
    llc=CacheConfig(256 * 1024, 16, 15),
)


@pytest.fixture(scope="module")
def heat_full():
    """heat at moderate scale, raw footprint >> LLC (streaming regime)."""
    return evaluate_workload(
        "heat",
        config=STREAM_CONFIG,
        scale=0.5,
        iterations=25,
        max_accesses_per_core=40_000,
    )


class TestHeadlineClaims:
    """§1: AVR reduces traffic, time and energy at small output error."""

    def test_avr_reduces_memory_traffic(self, heat_full):
        assert heat_full.normalized(Design.AVR, "traffic") < 0.75

    def test_avr_reduces_execution_time(self, heat_full):
        assert heat_full.normalized(Design.AVR, "time") < 0.95

    def test_avr_reduces_energy(self, heat_full):
        assert heat_full.normalized(Design.AVR, "energy") < 1.0

    def test_avr_error_below_two_percent(self, heat_full):
        assert heat_full.runs[Design.AVR].output_error < 0.02

    def test_avr_beats_truncate_on_compressible_data(self, heat_full):
        """heat compresses ~10:1, so AVR must beat Truncate's flat 2:1
        on traffic (the paper's central comparison)."""
        avr = heat_full.normalized(Design.AVR, "traffic")
        trunc = heat_full.normalized(Design.TRUNCATE, "traffic")
        assert avr < trunc

    def test_avr_amat_lowest(self, heat_full):
        amat = {
            d: heat_full.normalized(d, "amat")
            for d in (Design.AVR, Design.TRUNCATE, Design.DGANGER)
        }
        assert amat[Design.AVR] == min(amat.values())

    def test_zero_avr_overhead_small(self, heat_full):
        """§4.3: AVR without approximation adds no notable overhead."""
        assert heat_full.normalized(Design.ZERO_AVR, "time") < 1.05
        assert heat_full.normalized(Design.ZERO_AVR, "traffic") < 1.05

    def test_llc_requests_hit_on_chip(self, heat_full):
        """§4.3: 40-80% of approximate LLC requests hit DBUF or
        compressed blocks for streaming workloads."""
        stats = heat_full.runs[Design.AVR].timing.llc_stats
        hits = (
            stats.get("req_hit_dbuf", 0)
            + stats.get("req_hit_compressed", 0)
            + stats.get("req_hit_uncompressed", 0)
        )
        total = hits + stats.get("req_miss", 0)
        assert hits / total > 0.4

    def test_lazy_or_recompress_dominate_evictions(self, heat_full):
        """§4.3: streaming benchmarks avoid fetch+recompress for 45-80%
        of evictions via laziness / on-chip recompression."""
        stats = heat_full.runs[Design.AVR].timing.llc_stats
        cheap = stats.get("evict_recompress", 0) + stats.get(
            "evict_lazy_writeback", 0
        )
        total = cheap + stats.get("evict_fetch_recompress", 0) + stats.get(
            "evict_uncompressed_writeback", 0
        )
        assert total > 0
        assert cheap / total > 0.45


class TestDesignOrderings:
    """Relative orderings the paper reports for compressible workloads."""

    def test_traffic_ordering(self, heat_full):
        t = {d: heat_full.normalized(d, "traffic") for d in (
            Design.AVR, Design.TRUNCATE, Design.DGANGER)}
        assert t[Design.AVR] < t[Design.TRUNCATE] < t[Design.DGANGER]

    def test_mpki_ordering(self, heat_full):
        m = {d: heat_full.normalized(d, "mpki") for d in (
            Design.AVR, Design.TRUNCATE)}
        assert m[Design.AVR] < m[Design.TRUNCATE] <= 1.01


class TestComputeBoundWorkload:
    def test_bscholes_insensitive(self):
        """§4.3: compute-bound bscholes sees minimal impact from any design."""
        ev = evaluate_workload(
            "bscholes",
            config=STREAM_CONFIG,
            scale=0.1,
            passes=2,
            max_accesses_per_core=20_000,
        )
        for design in (Design.AVR, Design.TRUNCATE, Design.DGANGER):
            assert ev.normalized(design, "time") == pytest.approx(1.0, abs=0.1)
