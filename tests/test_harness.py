"""Tests for the evaluation harness, experiments and report formatting."""

import pytest

from repro.common.config import CacheConfig, SystemConfig
from repro.common.types import Design
from repro.harness import (
    GEOMEAN,
    evaluate_workload,
    fig09_execution_time,
    fig10_energy,
    fig11_memory_traffic,
    fig12_amat,
    fig13_mpki,
    fig14_llc_requests,
    fig15_llc_evictions,
    format_stacked,
    format_table,
    hardware_overheads,
    table3_output_error,
    table4_compression,
    transpose,
)

# LLC much smaller than the workload footprint: the paper's regime.
CONFIG = SystemConfig(
    num_cores=2,
    l1=CacheConfig(2 * 1024, 4, 1),
    l2=CacheConfig(8 * 1024, 8, 8),
    llc=CacheConfig(32 * 1024, 16, 15),
)


@pytest.fixture(scope="module")
def heat_eval():
    return evaluate_workload(
        "heat",
        config=CONFIG,
        scale=0.15,
        iterations=12,
        max_accesses_per_core=15_000,
    )


@pytest.fixture(scope="module")
def evals(heat_eval):
    return {"heat": heat_eval}


class TestEvaluateWorkload:
    def test_all_designs_present(self, heat_eval):
        # Runs are keyed by DesignSpec; legacy enum members still
        # address the same entries through the DesignMap alias layer.
        assert {d.value for d in heat_eval.runs} == {
            "baseline", "dganger", "truncate", "ZeroAVR", "AVR",
        }
        assert all(d in heat_eval.runs for d in Design)

    def test_baseline_error_zero(self, heat_eval):
        assert heat_eval.runs[Design.BASELINE].output_error == 0.0
        assert heat_eval.runs[Design.ZERO_AVR].output_error == 0.0

    def test_avr_compresses(self, heat_eval):
        assert heat_eval.avr_compression_ratio > 1.5
        assert heat_eval.footprint_vs_baseline < 1.0

    def test_avr_reduces_misses(self, heat_eval):
        # At this smoke-test scale the grid is coarse (ratio ~2) and the
        # LLC tiny, so AVR's lazy-merge overhead can offset the traffic
        # win (the paper notes the same inflation for lattice); the miss
        # reduction is the robust signal.  Paper-regime traffic claims
        # are exercised in test_integration.
        assert heat_eval.normalized(Design.AVR, "traffic") < 1.4
        assert heat_eval.normalized(Design.AVR, "mpki") < 0.5

    def test_zero_avr_near_baseline(self, heat_eval):
        assert heat_eval.normalized(Design.ZERO_AVR, "time") == pytest.approx(
            1.0, abs=0.1
        )

    def test_unknown_metric(self, heat_eval):
        with pytest.raises(ValueError):
            heat_eval.normalized(Design.AVR, "bogus")


class TestExperiments:
    def test_table3_rows(self, evals):
        t3 = table3_output_error(evals)
        assert set(t3) == {"dganger", "truncate", "AVR"}
        assert t3["AVR"]["heat"] >= 0.0

    def test_table4_rows(self, evals):
        t4 = table4_compression(evals)
        assert t4["Compr. Ratio"]["heat"] > 1.0
        assert 0.0 < t4["Mem. Footprint"]["heat"] < 100.0

    def test_fig09_has_geomean(self, evals):
        f9 = fig09_execution_time(evals)
        assert GEOMEAN in f9
        assert set(f9["heat"]) == {"dganger", "truncate", "ZeroAVR", "AVR"}

    def test_fig10_components_sum_below_baseline_for_avr(self, evals):
        f10 = fig10_energy(evals)
        base_total = sum(f10["heat"]["baseline"].values())
        assert base_total == pytest.approx(1.0)
        avr_total = sum(f10["heat"]["AVR"].values())
        assert avr_total <= base_total * 1.05

    def test_fig11_split_sums_to_total(self, evals, heat_eval):
        f11 = fig11_memory_traffic(evals)
        parts = f11["heat"]["AVR"]
        total = parts["Approx"] + parts["Non-approx"]
        assert total == pytest.approx(
            heat_eval.normalized(Design.AVR, "traffic"), rel=1e-6
        )

    def test_fig12_fig13_normalized(self, evals):
        assert fig12_amat(evals)["heat"]["AVR"] > 0.0
        assert fig13_mpki(evals)["heat"]["AVR"] > 0.0

    def test_fig14_percentages(self, evals):
        f14 = fig14_llc_requests(evals)
        assert sum(f14["heat"].values()) == pytest.approx(100.0)

    def test_fig15_percentages(self, evals):
        f15 = fig15_llc_evictions(evals)
        assert sum(f15["heat"].values()) == pytest.approx(100.0, abs=0.1)


class TestOverheads:
    def test_paper_figures(self):
        o = hardware_overheads()
        assert o["cmt_bits_per_page"] == 93  # paper §4.2
        assert o["tlb_overhead_factor"] == pytest.approx(93 / 88, rel=0.01)
        assert o["llc_extra_bits_per_entry"] == 18
        assert o["llc_overhead_fraction"] < 0.05


class TestReport:
    def test_format_table_contains_values(self):
        txt = format_table("T", {"r": {"a": 1.5, "b": 2.0}}, "{:.1f}")
        assert "1.5" in txt and "2.0" in txt and "T" in txt

    def test_format_table_missing_cell(self):
        txt = format_table("T", {"r1": {"a": 1.0}, "r2": {"b": 2.0}})
        assert "-" in txt

    def test_format_table_column_order(self):
        txt = format_table("T", {"r": {"a": 1.0, "b": 2.0}}, col_order=["b", "a"])
        assert txt.index("b") < txt.index("a")

    def test_format_stacked(self):
        data = {"w": {"AVR": {"Core": 0.5, "DRAM": 0.2}}}
        txt = format_stacked("S", data)
        assert "[w]" in txt and "total" in txt and "0.700" in txt

    def test_transpose(self):
        t = transpose({"r": {"a": 1.0, "b": 2.0}})
        assert t == {"a": {"r": 1.0}, "b": {"r": 2.0}}
