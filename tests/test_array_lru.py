"""Differential tests: batched array-LRU vs the dict-based reference.

:class:`BatchedLRUMatrix` and :class:`BatchedPrivateFilter` must
reproduce :class:`SetAssocCache` / :class:`PrivateCaches` *exactly* —
per-op hits, victims, victim dirty flags, counters and final contents —
because the vectorized timing engine's bit-identical guarantee rests on
them.  These tests replay the same randomized op streams through both
models and compare everything.
"""

import numpy as np
import pytest

from repro.cache.array_lru import EMPTY, BatchedLRUMatrix, BatchedPrivateFilter
from repro.cache.base import SetAssocCache
from repro.cache.hierarchy import PrivateCaches
from repro.common.config import CacheConfig, SystemConfig


def _random_ops(rng, n, num_lines, insert_frac=0.0):
    lines = rng.integers(0, num_lines, n)
    flags = rng.random(n) < 0.4
    is_access = rng.random(n) >= insert_frac
    return lines, flags, is_access


def _replay_reference(cache: SetAssocCache, lines, flags, is_access):
    """Drive the dict model op by op, collecting per-op outcomes."""
    present = np.zeros(len(lines), dtype=bool)
    victim_line = np.full(len(lines), EMPTY, dtype=np.int64)
    victim_dirty = np.zeros(len(lines), dtype=bool)
    for i, (line, flag, acc) in enumerate(zip(lines, flags, is_access)):
        addr = int(line) << cache.line_shift
        if acc:
            hit, victim = cache.access(addr, bool(flag))
            present[i] = hit
        else:
            present[i] = cache.probe(addr)
            victim = cache.insert(addr, bool(flag))
        if victim is not None:
            victim_line[i] = victim[0] >> cache.line_shift
            victim_dirty[i] = victim[1]
    return present, victim_line, victim_dirty


@pytest.mark.parametrize("num_sets,ways,num_lines", [
    (4, 2, 32),      # tiny, heavy conflict
    (16, 4, 64),     # the scaled L1 geometry, working set == capacity
    (16, 4, 4096),   # streaming: mostly misses
    (1, 3, 9),       # single set: fully serial LRU order
])
def test_matrix_matches_dict_cache(num_sets, ways, num_lines):
    rng = np.random.default_rng(num_sets * 1000 + ways)
    config = CacheConfig(num_sets * ways * 64, ways, 1)
    ref = SetAssocCache(config)
    mat = BatchedLRUMatrix(num_sets, ways)

    # Several batches, so the op clock carries across replay() calls.
    for batch in range(3):
        lines, flags, is_access = _random_ops(rng, 500, num_lines, insert_frac=0.3)
        ref_out = _replay_reference(ref, lines, flags, is_access)
        set_idx = lines % num_sets
        mat_out = mat.replay(set_idx, lines, flags, is_access=is_access)

        # Per-op outcomes: residency, victim line, victim dirty flag.
        assert np.array_equal(ref_out[0], mat_out[0])
        assert np.array_equal(ref_out[1], mat_out[1])
        assert np.array_equal(ref_out[2], mat_out[2])

    assert (ref.hits, ref.misses) == (mat.hits, mat.misses)
    # Final contents in LRU→MRU order must agree set by set.
    assert [
        [(line, dirty) for line, dirty in s] for s in ref.lru_state()
    ] == mat.lru_state()


def test_empty_batch_is_a_noop():
    mat = BatchedLRUMatrix(4, 2)
    present, vline, vdirty = mat.replay(
        np.empty(0, np.int64), np.empty(0, np.int64), np.empty(0, bool)
    )
    assert present.size == vline.size == vdirty.size == 0
    assert mat.hits == mat.misses == 0


def test_private_filter_matches_private_caches():
    """Whole-hierarchy differential: BatchedPrivateFilter vs per-core
    PrivateCaches on a mixed random/streaming multi-core stream."""
    config = SystemConfig.scaled(num_cores=2)
    num_cores = 3
    rng = np.random.default_rng(7)
    per_core = 1500
    streams = []
    for c in range(num_cores):
        base = c * (1 << 20)
        stream = base + np.arange(per_core // 2) * 64
        rand = base + rng.integers(0, 1 << 14, per_core - per_core // 2) * 8
        addrs = np.concatenate([stream, rand]).astype(np.int64)
        writes = rng.random(per_core) < 0.35
        streams.append((addrs, writes))

    # Reference: one PrivateCaches per core, accesses in core order.
    ref_privates = [PrivateCaches(config) for _ in range(num_cores)]
    ref_needs, ref_wbs = [], []
    for (addrs, writes), priv in zip(streams, ref_privates):
        for addr, write in zip(addrs.tolist(), writes.tolist()):
            latency, needs_llc, wbs = priv.access(addr, write)
            ref_needs.append(needs_llc)
            ref_wbs.append(list(wbs))

    core_ids = np.repeat(np.arange(num_cores), per_core)
    all_addrs = np.concatenate([a for a, _ in streams])
    all_writes = np.concatenate([w for _, w in streams])
    bpf = BatchedPrivateFilter(config, num_cores)
    filt = bpf.filter(core_ids, all_addrs, all_writes)

    assert np.array_equal(np.array(ref_needs), filt.needs_llc)
    for i, wbs in enumerate(ref_wbs):
        got = []
        if filt.wb_insert_valid[i]:
            got.append(int(filt.wb_insert_addr[i]))
        if filt.wb_access_valid[i]:
            got.append(int(filt.wb_access_addr[i]))
        assert [a for a, _ in wbs] == got, f"writeback mismatch at op {i}"
    assert filt.l1_accesses == sum(p.l1.accesses for p in ref_privates)
    assert filt.l2_accesses == sum(p.l2.accesses for p in ref_privates)
    assert bpf.l1.hits == sum(p.l1.hits for p in ref_privates)
    assert bpf.l2.hits == sum(p.l2.hits for p in ref_privates)


class TestFirstOfGroups:
    def test_marks_run_starts(self):
        from repro.cache.array_lru import first_of_groups

        values = np.array([3, 3, 7, 7, 7, 3, 1])
        assert first_of_groups(values).tolist() == [
            True, False, True, False, False, True, True,
        ]

    def test_empty_and_singleton(self):
        from repro.cache.array_lru import first_of_groups

        assert first_of_groups(np.array([], dtype=np.int64)).size == 0
        assert first_of_groups(np.array([42])).tolist() == [True]
