"""Tests for shared config, stats and type definitions."""

import pytest

from repro.common import StatCounter, SystemConfig
from repro.common.config import CacheConfig
from repro.common.constants import (
    BITMAP_BYTES,
    BLOCK_BYTES,
    BLOCKS_PER_PAGE,
    CMT_ENTRY_BITS,
    MAX_OUTLIERS,
    SUMMARY_VALUES,
    VALUES_PER_BLOCK,
)
from repro.common.types import Design, ErrorThresholds


class TestConstants:
    def test_block_geometry(self):
        assert BLOCK_BYTES == 1024
        assert VALUES_PER_BLOCK == 256
        assert SUMMARY_VALUES == 16  # exactly one cacheline of int32
        assert BITMAP_BYTES == 32  # half a cacheline
        assert BLOCKS_PER_PAGE == 4
        assert CMT_ENTRY_BITS == 23
        assert MAX_OUTLIERS == 104


class TestCacheConfig:
    def test_geometry(self):
        c = CacheConfig(64 * 1024, 4, 1)
        assert c.num_sets == 256
        assert c.num_lines == 1024

    def test_indivisible_rejected(self):
        with pytest.raises(ValueError):
            CacheConfig(1000, 3, 64)


class TestSystemConfig:
    def test_paper_matches_table1(self):
        c = SystemConfig.paper()
        assert c.num_cores == 8
        assert c.l1.size_bytes == 64 * 1024
        assert c.l2.size_bytes == 256 * 1024
        assert c.llc.size_bytes == 8 * 1024 * 1024
        assert c.llc.ways == 16
        assert c.llc.latency_cycles == 15
        assert c.dram.channels == 2
        assert c.core.frequency_ghz == 3.2

    def test_scaled_is_smaller_same_structure(self):
        p, s = SystemConfig.paper(), SystemConfig.scaled()
        assert s.l1.size_bytes < p.l1.size_bytes
        assert s.l2.size_bytes < p.l2.size_bytes
        assert s.llc.size_bytes < p.llc.size_bytes
        # hierarchy ordering preserved
        assert s.l1.size_bytes < s.l2.size_bytes < s.llc.size_bytes

    def test_with_thresholds(self):
        c = SystemConfig.paper().with_thresholds(ErrorThresholds(0.04, 0.02))
        assert c.thresholds.t1 == 0.04


class TestErrorThresholds:
    def test_defaults_tight(self):
        th = ErrorThresholds()
        assert th.t1 == 2 * th.t2

    def test_validation(self):
        with pytest.raises(ValueError):
            ErrorThresholds(t1=0.0)
        with pytest.raises(ValueError):
            ErrorThresholds(t2=1.5)

    def test_from_t2_caps_at_one(self):
        assert ErrorThresholds.from_t2(0.9).t1 == 1.0


class TestStatCounter:
    def test_add_and_get(self):
        s = StatCounter()
        s.add("hits")
        s.add("hits", 2)
        assert s["hits"] == 3
        assert s.get("misses") == 0

    def test_merge(self):
        a, b = StatCounter({"x": 1}), StatCounter({"x": 2, "y": 5})
        a.merge(b)
        assert a["x"] == 3 and a["y"] == 5

    def test_ratio(self):
        s = StatCounter({"h": 3, "t": 4})
        assert s.ratio("h", "t") == pytest.approx(0.75)
        assert s.ratio("h", "absent") == 0.0

    def test_reset(self):
        s = StatCounter({"a": 1, "b": 2})
        s.reset(["a"])
        assert "a" not in s and s["b"] == 2
        s.reset()
        assert s.as_dict() == {}


def test_design_enum_values():
    assert Design.AVR.value == "AVR"
    assert Design.DGANGER.value == "dganger"
    assert Design.ZERO_AVR.value == "ZeroAVR"
