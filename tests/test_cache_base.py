"""Tests for the generic set-associative cache and private hierarchy."""

from hypothesis import given
from hypothesis import strategies as st

from repro.cache.base import SetAssocCache
from repro.cache.hierarchy import PrivateCaches
from repro.common.config import CacheConfig, SystemConfig


def tiny_cache(sets=4, ways=2):
    return SetAssocCache(CacheConfig(sets * ways * 64, ways, 1))


class TestSetAssocCache:
    def test_miss_then_hit(self):
        c = tiny_cache()
        hit, _ = c.access(0, False)
        assert not hit
        hit, _ = c.access(0, False)
        assert hit
        assert c.hits == 1 and c.misses == 1

    def test_same_line_different_bytes(self):
        c = tiny_cache()
        c.access(0, False)
        hit, _ = c.access(63, False)
        assert hit

    def test_lru_eviction_order(self):
        c = tiny_cache(sets=1, ways=2)
        c.access(0 * 64, False)
        c.access(1 * 64, False)
        c.access(0 * 64, False)  # touch line 0 -> line 1 becomes LRU
        _, victim = c.access(2 * 64, False)
        assert victim is not None and victim[0] == 1 * 64

    def test_victim_dirtiness(self):
        c = tiny_cache(sets=1, ways=1)
        c.access(0, True)
        _, victim = c.access(64 * 1, False)
        assert victim == (0, True)

    def test_write_marks_dirty_on_hit(self):
        c = tiny_cache(sets=1, ways=1)
        c.access(0, False)
        c.access(0, True)
        _, victim = c.access(64, False)
        assert victim == (0, True)

    def test_probe_does_not_disturb(self):
        c = tiny_cache(sets=1, ways=2)
        c.access(0, False)
        c.access(64, False)
        assert c.probe(0)
        # probing 0 must NOT make it MRU: inserting a new line evicts 0
        _, victim = c.access(128, False)
        assert victim[0] == 0

    def test_invalidate(self):
        c = tiny_cache()
        c.access(0, True)
        assert c.invalidate(0) is True
        assert c.invalidate(0) is None
        assert not c.probe(0)

    def test_insert_returns_victim(self):
        c = tiny_cache(sets=1, ways=1)
        assert c.insert(0, dirty=True) is None
        victim = c.insert(64, dirty=False)
        assert victim == (0, True)

    def test_insert_merges_dirty(self):
        c = tiny_cache(sets=1, ways=1)
        c.insert(0, dirty=False)
        c.insert(0, dirty=True)
        _, victim = c.access(64, False)
        assert victim == (0, True)

    def test_capacity_multiplier_rounds_ways(self):
        cfg = CacheConfig(4 * 4 * 64, 4, 1)
        assert SetAssocCache(cfg, 2.0).ways == 8
        assert SetAssocCache(cfg, 0.1).ways == 1  # never below 1

    def test_set_mapping(self):
        c = tiny_cache(sets=4, ways=1)
        # lines 0 and 4 map to the same set (line % 4)
        c.access(0 * 64, False)
        _, victim = c.access(4 * 64, False)
        assert victim is not None
        # line 1 maps elsewhere: no eviction
        _, victim = c.access(1 * 64, False)
        assert victim is None

    @given(st.lists(st.tuples(st.integers(0, 31), st.booleans()), max_size=200))
    def test_matches_reference_lru_model(self, ops):
        """The dict-ordered implementation equals a simple LRU list model."""
        c = tiny_cache(sets=2, ways=4)
        model: dict[int, list] = {0: [], 1: []}  # set -> [line,...] MRU last
        dirty: dict[int, bool] = {}
        for line, write in ops:
            addr = line * 64
            sidx = line % 2
            lst = model[sidx]
            expect_hit = line in lst
            hit, victim = c.access(addr, write)
            assert hit == expect_hit
            if expect_hit:
                lst.remove(line)
                dirty[line] = dirty.get(line, False) or write
            else:
                if len(lst) >= 4:
                    v = lst.pop(0)
                    assert victim == (v * 64, dirty.pop(v, False))
                else:
                    assert victim is None
                dirty[line] = write
            lst.append(line)


class TestPrivateCaches:
    def test_l1_hit_cheap(self):
        p = PrivateCaches(SystemConfig.scaled())
        lat1, needs, _ = p.access(0, False)
        assert needs  # cold miss
        lat2, needs2, _ = p.access(0, False)
        assert not needs2
        assert lat2 < lat1

    def test_l2_catches_l1_evictions(self):
        cfg = SystemConfig.scaled()
        p = PrivateCaches(cfg)
        # fill far beyond L1 (4 KB) but within L2 (16 KB)
        for i in range(128):
            p.access(i * 64, False)
        # early lines should hit in L2 now (L1 capacity 64 lines)
        lat, needs, _ = p.access(0, False)
        assert not needs

    def test_dirty_writeback_emerges(self):
        cfg = SystemConfig.scaled()
        p = PrivateCaches(cfg)
        p.access(0, True)
        writebacks = []
        # flood both levels with clean lines until line 0 falls out of L2
        for i in range(1, 2048):
            _, _, wbs = p.access(i * 64, False)
            writebacks.extend(wbs)
        assert any(addr == 0 for addr, _ in writebacks)

    def test_miss_latency_accumulates_levels(self):
        cfg = SystemConfig.scaled()
        p = PrivateCaches(cfg)
        lat, needs, _ = p.access(12345 * 64, False)
        assert needs
        assert lat == cfg.l1.latency_cycles + cfg.l2.latency_cycles
