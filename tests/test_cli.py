"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


def test_overheads_command(capsys):
    assert main(["overheads"]) == 0
    out = capsys.readouterr().out
    assert "93" in out
    assert "18" in out


def test_workload_command_small(capsys):
    code = main([
        "workload", "heat",
        "--scale", "0.15", "--cores", "2", "--accesses", "5000",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "AVR ratio" in out
    for design in ("dganger", "truncate", "ZeroAVR", "AVR"):
        assert design in out


def test_evaluate_subset(capsys):
    code = main([
        "evaluate", "--workloads", "heat",
        "--scale", "0.15", "--cores", "2", "--accesses", "5000",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "Table 3" in out and "Figure 13" in out


def test_scenario_list(capsys):
    assert main(["scenario", "list"]) == 0
    out = capsys.readouterr().out
    for name in ("heat+lbm", "kmeans4+bscholes4", "all7"):
        assert name in out


def test_scenario_command_small(capsys):
    code = main([
        "scenario", "heat@1+lbm@1",
        "--scale", "0.15", "--accesses", "3000",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "weighted speedup" in out
    assert "per-instance contention" in out
    assert "per-core slowdown" in out
    assert "heat#0" in out and "lbm#1" in out


def test_scenario_without_baseline_design(capsys):
    code = main([
        "scenario", "heat@1+lbm@1",
        "--scale", "0.15", "--accesses", "3000", "--designs", "AVR",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "weighted speedup" in out
    assert "mix time" not in out  # nothing to normalize against


def test_scenario_rejects_unknown_mix(capsys):
    assert main(["scenario", "definitely_not_a_workload"]) == 2
    assert "unknown workload" in capsys.readouterr().err


def test_scenario_rejects_too_few_cores(capsys):
    assert main(["scenario", "heat@2+lbm@2", "--cores", "2"]) == 2
    assert "needs 4 cores" in capsys.readouterr().err


def test_rejects_nonpositive_cores_and_accesses():
    for argv in (
        ["workload", "heat", "--cores", "0"],
        ["workload", "heat", "--accesses", "0"],
        ["evaluate", "--cores", "-3"],
        ["scenario", "heat+lbm", "--accesses", "-1"],
    ):
        with pytest.raises(SystemExit):
            main(argv)


def test_requires_command():
    with pytest.raises(SystemExit):
        main([])


def test_rejects_unknown_workload():
    with pytest.raises(SystemExit):
        main(["workload", "nope"])
