"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


def test_overheads_command(capsys):
    assert main(["overheads"]) == 0
    out = capsys.readouterr().out
    assert "93" in out
    assert "18" in out


def test_workload_command_small(capsys):
    code = main([
        "workload", "heat",
        "--scale", "0.15", "--cores", "2", "--accesses", "5000",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "AVR ratio" in out
    for design in ("dganger", "truncate", "ZeroAVR", "AVR"):
        assert design in out


def test_evaluate_subset(capsys):
    code = main([
        "evaluate", "--workloads", "heat",
        "--scale", "0.15", "--cores", "2", "--accesses", "5000",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "Table 3" in out and "Figure 13" in out


def test_requires_command():
    with pytest.raises(SystemExit):
        main([])


def test_rejects_unknown_workload():
    with pytest.raises(SystemExit):
        main(["workload", "nope"])
