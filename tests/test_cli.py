"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


def test_overheads_command(capsys):
    assert main(["overheads"]) == 0
    out = capsys.readouterr().out
    assert "93" in out
    assert "18" in out


def test_workload_command_small(capsys):
    code = main([
        "workload", "heat",
        "--scale", "0.15", "--cores", "2", "--accesses", "5000",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "AVR ratio" in out
    for design in ("dganger", "truncate", "ZeroAVR", "AVR"):
        assert design in out


def test_evaluate_subset(capsys):
    code = main([
        "evaluate", "--workloads", "heat",
        "--scale", "0.15", "--cores", "2", "--accesses", "5000",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "Table 3" in out and "Figure 13" in out


def test_scenario_list(capsys):
    assert main(["scenario", "list"]) == 0
    out = capsys.readouterr().out
    for name in ("heat+lbm", "kmeans4+bscholes4", "all7"):
        assert name in out


def test_scenario_command_small(capsys):
    code = main([
        "scenario", "heat@1+lbm@1",
        "--scale", "0.15", "--accesses", "3000",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "weighted speedup" in out
    assert "per-instance contention" in out
    assert "per-core slowdown" in out
    assert "heat#0" in out and "lbm#1" in out


def test_scenario_without_baseline_design(capsys):
    code = main([
        "scenario", "heat@1+lbm@1",
        "--scale", "0.15", "--accesses", "3000", "--designs", "AVR",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "weighted speedup" in out
    assert "mix time" not in out  # nothing to normalize against


def test_scenario_rejects_unknown_mix(capsys):
    assert main(["scenario", "definitely_not_a_workload"]) == 2
    assert "unknown workload" in capsys.readouterr().err


def test_scenario_rejects_too_few_cores(capsys):
    assert main(["scenario", "heat@2+lbm@2", "--cores", "2"]) == 2
    assert "needs 4 cores" in capsys.readouterr().err


def test_rejects_nonpositive_cores_and_accesses():
    for argv in (
        ["workload", "heat", "--cores", "0"],
        ["workload", "heat", "--accesses", "0"],
        ["evaluate", "--cores", "-3"],
        ["scenario", "heat+lbm", "--accesses", "-1"],
    ):
        with pytest.raises(SystemExit):
            main(argv)


@pytest.fixture()
def warm_cache(tmp_path):
    """A cache dir seeded by one micro workload run."""
    code = main([
        "workload", "heat", "--scale", "0.1", "--cores", "2",
        "--accesses", "2000", "--designs", "AVR",
        "--cache-dir", str(tmp_path),
    ])
    assert code == 0
    return tmp_path


def test_cache_backend_flag_is_bit_identical(warm_cache, capsys):
    capsys.readouterr()
    outputs = []
    for backend in ("sharded", "memory:64", f"readthrough:{warm_cache}"):
        code = main([
            "workload", "heat", "--scale", "0.1", "--cores", "2",
            "--accesses", "2000", "--designs", "AVR",
            "--cache-dir", str(warm_cache), "--cache-backend", backend,
        ])
        assert code == 0
        outputs.append(capsys.readouterr().out)
    assert outputs[0] == outputs[1] == outputs[2]


def test_cache_stats_and_ls(warm_cache, capsys):
    assert main(["cache", "stats", str(warm_cache)]) == 0
    out = capsys.readouterr().out
    assert "entries:" in out and "indexed" in out

    assert main(["cache", "ls", str(warm_cache)]) == 0
    keys = capsys.readouterr().out.split()
    assert keys and all(len(k) == 64 for k in keys)

    prefix = keys[0][:2]
    assert main(["cache", "ls", str(warm_cache), "--prefix", prefix]) == 0
    filtered = capsys.readouterr().out.split()
    assert filtered == [k for k in keys if k.startswith(prefix)]


def test_cache_verify_ok_and_corrupt(warm_cache, capsys):
    assert main(["cache", "verify", str(warm_cache)]) == 0
    assert "ok" in capsys.readouterr().out

    victim = next(warm_cache.glob("*/*.pkl"))
    victim.write_bytes(b"torn write")
    assert main(["cache", "verify", str(warm_cache)]) == 1
    captured = capsys.readouterr()
    assert "corrupt" in captured.out


def test_cache_gc_dry_run_then_evict(warm_cache, capsys):
    assert main([
        "cache", "gc", str(warm_cache), "--max-bytes", "0", "--dry-run",
    ]) == 0
    assert "would remove" in capsys.readouterr().out
    assert any(warm_cache.glob("*/*.pkl"))

    assert main(["cache", "gc", str(warm_cache), "--max-bytes", "0"]) == 0
    assert "removed" in capsys.readouterr().out
    assert not any(warm_cache.glob("*/*.pkl"))


def test_cache_gc_sweeps_orphaned_tmp(warm_cache, capsys):
    # A shard dir specifically — the cache root also holds traces/.
    shard = next(
        d for d in warm_cache.iterdir() if d.is_dir() and len(d.name) == 2
    )
    orphan = shard / "leftover.tmp"
    orphan.write_bytes(b"half a write")
    assert main(["cache", "gc", str(warm_cache), "--tmp-age", "0"]) == 0
    assert "1 tmp file(s)" in capsys.readouterr().out
    assert not orphan.exists()


def test_cache_rejects_missing_dir(tmp_path, capsys):
    assert main(["cache", "stats", str(tmp_path / "nope")]) == 2
    assert "not a cache directory" in capsys.readouterr().err


def test_rejects_unknown_cache_backend(tmp_path):
    with pytest.raises(ValueError, match="unknown cache backend"):
        main([
            "workload", "heat", "--scale", "0.1", "--cores", "2",
            "--accesses", "2000", "--designs", "AVR",
            "--cache-dir", str(tmp_path), "--cache-backend", "lru",
        ])


def test_requires_command():
    with pytest.raises(SystemExit):
        main([])


def test_rejects_unknown_workload():
    with pytest.raises(SystemExit):
        main(["workload", "nope"])
