"""Tests for the BDI lossless layer stacked on AVR."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.constants import CACHELINE_BYTES, VALUES_PER_BLOCK
from repro.common.types import ErrorThresholds
from repro.compression import AVRCompressor
from repro.compression.lossless import (
    EncodedLine,
    compression_ratio,
    decode_line,
    encode_line,
    line_sizes,
    stacked_ratio,
)


def as_line(values, dtype):
    arr = np.asarray(values, dtype=dtype)
    raw = arr.view(np.uint8)
    assert raw.size == CACHELINE_BYTES
    return raw


class TestEncodings:
    def test_zero_line(self):
        e = encode_line(np.zeros(64, dtype=np.uint8))
        assert e.encoding == "zero"
        assert e.size_bytes == 1
        assert np.array_equal(decode_line(e), np.zeros(64, dtype=np.uint8))

    def test_repeated_value(self):
        line = as_line([0x1122334455667788] * 8, np.uint64)
        e = encode_line(line)
        assert e.encoding == "repeat"
        assert e.size_bytes == 9
        assert np.array_equal(decode_line(e), line)

    def test_base8_small_deltas(self):
        base = 1_000_000_000
        line = as_line([base + d for d in (0, 3, -5, 100, 7, -100, 50, 1)], np.uint64)
        e = encode_line(line)
        assert e.encoding == "base8-d1"
        assert e.size_bytes == 1 + 8 + 8
        assert np.array_equal(decode_line(e), line)

    def test_base4_deltas(self):
        base = 70_000
        line = as_line([base + d for d in range(-8, 8)], np.uint32)
        e = encode_line(line)
        assert e.encoding.startswith("base4")
        assert np.array_equal(decode_line(e), line)

    def test_incompressible_random(self, rng):
        line = rng.integers(0, 256, 64).astype(np.uint8)
        e = encode_line(line)
        # random bytes are (almost surely) raw
        assert e.encoding == "raw"
        assert e.size_bytes == 64
        assert np.array_equal(decode_line(e, raw_fallback=line), line)

    def test_raw_decode_requires_fallback(self):
        with pytest.raises(ValueError):
            decode_line(EncodedLine("raw", 64))

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            encode_line(np.zeros(32, dtype=np.uint8))

    def test_smaller_encoding_preferred(self):
        # deltas fit in 1 byte: must not pick d2/d4
        line = as_line([500 + d for d in range(8)], np.uint64)
        assert encode_line(line).encoding == "base8-d1"

    @given(
        st.integers(min_value=200, max_value=2**63),
        st.lists(st.integers(-120, 120), min_size=8, max_size=8),
    )
    @settings(max_examples=30)
    def test_base8_roundtrip_property(self, base, deltas):
        words = np.array([base + d for d in deltas], dtype=np.uint64)
        line = words.view(np.uint8)
        e = encode_line(line)
        assert np.array_equal(decode_line(e, raw_fallback=line), line)

    @given(st.binary(min_size=64, max_size=64))
    @settings(max_examples=40)
    def test_any_line_roundtrips(self, payload):
        line = np.frombuffer(payload, dtype=np.uint8)
        e = encode_line(line)
        assert 1 <= e.size_bytes <= 64
        assert np.array_equal(decode_line(e, raw_fallback=line), line)


class TestAggregate:
    def test_line_sizes_shape(self):
        data = bytes(256)
        sizes = line_sizes(data)
        assert sizes.shape == (4,)
        assert (sizes == 1).all()  # all-zero lines

    def test_ratio_bounds(self, rng):
        noise = rng.integers(0, 256, 64 * 32).astype(np.uint8).tobytes()
        assert compression_ratio(noise) == pytest.approx(1.0, abs=0.05)
        assert compression_ratio(bytes(64 * 32)) == 64.0

    def test_stacked_beats_avr_alone(self):
        """The paper's orthogonality claim: BDI on AVR-compressed images
        squeezes the summaries/outliers further."""
        x = np.linspace(0.0, 1.0, VALUES_PER_BLOCK, dtype=np.float32)
        blocks = (x[None, :] * 2e-5 + 1.0).repeat(16, 0)  # near-constant
        comp = AVRCompressor(ErrorThresholds(0.02, 0.01))
        ratios = stacked_ratio(blocks, comp)
        assert ratios["avr_ratio"] >= 8.0
        assert ratios["stacked_ratio"] > ratios["avr_ratio"]

    def test_stack_on_incompressible_data(self, rng):
        blocks = rng.normal(0, 1, (4, VALUES_PER_BLOCK)).astype(np.float32)
        comp = AVRCompressor(ErrorThresholds(0.02, 0.01))
        ratios = stacked_ratio(blocks, comp)
        # AVR fails -> raw float noise, which BDI cannot shrink either
        assert ratios["avr_ratio"] == pytest.approx(1.0)
        assert ratios["stacked_ratio"] == pytest.approx(1.0, abs=0.1)
