"""Tests for the pluggable cache backends, GC and batched warm paths.

Three layers of coverage:

* unit tests of each :class:`~repro.harness.cache.CacheBackend`
  implementation (index maintenance, GC passes, LRU tiers, read-through
  promotion, stats accounting);
* differential tests pinning that every backend serves warm sweeps and
  plans bit-identically to the cold run — including a legacy index-less
  cache directory (the pre-backend flat layout);
* a multiprocess stress test: concurrent put/get/gc on one cache
  directory must lose no entries and tear no reads.
"""

import json
import multiprocessing
import os

import pytest

from repro.common.config import CacheConfig, SystemConfig
from repro.harness.cache import (
    CacheStats,
    MemoryTierBackend,
    ReadThroughBackend,
    ResultCache,
    ShardedFileBackend,
    content_key,
    resolve_backend,
    resolve_result_cache,
)
from repro.harness.sweep import SweepSpec, run_sweep

# The micro machine/sweep of test_sweep.py: full runs stay test-sized.
CONFIG = SystemConfig(
    num_cores=2,
    l1=CacheConfig(2 * 1024, 4, 1),
    l2=CacheConfig(8 * 1024, 8, 8),
    llc=CacheConfig(32 * 1024, 16, 15),
)

SPEC = SweepSpec(
    workloads=("heat",),
    config=CONFIG,
    scales=(0.15,),
    max_accesses_per_core=8_000,
)


def key_of(tag) -> str:
    return content_key("test-backend", tag)


def fill(backend, count, tag="fill"):
    """Store ``count`` distinct entries; returns their keys in order."""
    keys = []
    for i in range(count):
        key = key_of((tag, i))
        backend.put(key, {"tag": tag, "i": i, "blob": list(range(i))})
        keys.append(key)
    return keys


# ----------------------------------------------------------------------
# ShardedFileBackend: payloads, indexes, batch probes
# ----------------------------------------------------------------------
class TestShardedFileBackend:
    def test_roundtrip_and_stats(self, tmp_path):
        backend = ShardedFileBackend(tmp_path)
        key = key_of("roundtrip")
        assert backend.get(key, "absent") == "absent"
        backend.put(key, {"x": 1})
        assert backend.get(key) == {"x": 1}
        assert backend.contains(key)
        assert backend.stats.stores == 1
        assert backend.stats.hits == 1
        assert backend.stats.misses == 1
        assert backend.stats.bytes_written > 0
        assert backend.stats.bytes_read > 0

    def test_put_writes_index_line(self, tmp_path):
        backend = ShardedFileBackend(tmp_path)
        key = key_of("indexed")
        backend.put(key, "payload")
        index_path = tmp_path / key[:2] / ShardedFileBackend.INDEX_NAME
        record = json.loads(index_path.read_text().splitlines()[-1])
        assert record["k"] == key
        assert record["n"] > 0
        from repro import __version__

        assert record["v"] == __version__

    def test_get_many_skips_absent_without_opens(self, tmp_path):
        backend = ShardedFileBackend(tmp_path)
        keys = fill(backend, 3)
        absent = [key_of(("absent", i)) for i in range(40)]
        probe = ShardedFileBackend(tmp_path)
        found = probe.get_many(keys + absent)
        assert sorted(found) == sorted(keys)
        # Only real payloads were opened; the index answered the rest.
        assert probe.stats.file_opens == len(keys)
        assert probe.stats.hits == len(keys)
        assert probe.stats.misses == len(absent)
        assert probe.stats.index_hits == len(keys)

    def test_peek_many_is_stats_neutral(self, tmp_path):
        backend = ShardedFileBackend(tmp_path)
        keys = fill(backend, 2)
        probe = ShardedFileBackend(tmp_path)
        found = probe.peek_many(keys + [key_of("nope")])
        assert sorted(found) == sorted(keys)
        assert probe.stats.hits == 0
        assert probe.stats.misses == 0

    def test_keys_and_len(self, tmp_path):
        backend = ShardedFileBackend(tmp_path)
        keys = fill(backend, 4)
        assert backend.keys() == sorted(keys)
        assert len(backend) == 4

    def test_missing_index_is_rebuilt(self, tmp_path):
        backend = ShardedFileBackend(tmp_path)
        keys = fill(backend, 3)
        for index in tmp_path.glob(f"*/{ShardedFileBackend.INDEX_NAME}"):
            index.unlink()
        fresh = ShardedFileBackend(tmp_path)
        assert sorted(fresh.get_many(keys)) == sorted(keys)
        assert fresh.keys() == sorted(keys)
        # The rebuild was persisted for the next process.
        assert any(tmp_path.glob(f"*/{ShardedFileBackend.INDEX_NAME}"))

    def test_corrupt_index_is_rebuilt(self, tmp_path):
        backend = ShardedFileBackend(tmp_path)
        [key] = fill(backend, 1)
        index_path = tmp_path / key[:2] / ShardedFileBackend.INDEX_NAME
        index_path.write_text("not json at all\n{{{\n")
        fresh = ShardedFileBackend(tmp_path)
        assert fresh.get_many([key]) == {key: backend.peek(key)}

    def test_lost_index_append_heals_on_reput(self, tmp_path):
        backend = ShardedFileBackend(tmp_path)
        [key] = fill(backend, 1)
        index_path = tmp_path / key[:2] / ShardedFileBackend.INDEX_NAME
        index_path.write_text("")  # the append never made it
        fresh = ShardedFileBackend(tmp_path)
        # Batch probes trust the index for absence...
        assert fresh.get_many([key]) == {}
        # ...single-key reads and re-puts heal it.
        assert fresh.peek(key) is not None
        fresh.put(key, backend.peek(key))
        healed = ShardedFileBackend(tmp_path)
        assert key in healed.get_many([key])

    def test_corrupt_payload_is_a_miss(self, tmp_path):
        backend = ShardedFileBackend(tmp_path)
        [key] = fill(backend, 1)
        (tmp_path / key[:2] / f"{key}.pkl").write_bytes(b"torn")
        fresh = ShardedFileBackend(tmp_path)
        assert fresh.get(key, "absent") == "absent"
        assert fresh.get_many([key]) == {}

    def test_read_only_refuses_writes(self, tmp_path):
        ShardedFileBackend(tmp_path).put(key_of("ro"), 1)
        ro = ShardedFileBackend(tmp_path, read_only=True)
        assert ro.get(key_of("ro")) == 1
        with pytest.raises(RuntimeError):
            ro.put(key_of("other"), 2)
        with pytest.raises(RuntimeError):
            ro.gc()

    def test_read_only_missing_dir_is_empty(self, tmp_path):
        ro = ShardedFileBackend(tmp_path / "nowhere", read_only=True)
        assert ro.get_many([key_of("x")]) == {}
        assert len(ro) == 0
        assert not (tmp_path / "nowhere").exists()

    def test_disk_usage(self, tmp_path):
        backend = ShardedFileBackend(tmp_path)
        keys = fill(backend, 3)
        usage = ShardedFileBackend(tmp_path).disk_usage()
        assert usage.entries == 3
        assert usage.indexed == 3
        assert usage.total_bytes > 0
        assert usage.shards == len({k[:2] for k in keys})
        from repro import __version__

        assert usage.versions == {__version__: 3}


# ----------------------------------------------------------------------
# GC: tmp sweep, stale purge, byte-budget eviction
# ----------------------------------------------------------------------
class TestGC:
    def test_len_and_verify_ignore_tmp_orphans(self, tmp_path):
        backend = ShardedFileBackend(tmp_path)
        [key] = fill(backend, 1)
        (tmp_path / key[:2] / "orphan123.tmp").write_bytes(b"half a write")
        assert len(backend) == 1
        report = backend.verify()
        assert report.ok and report.entries == 1
        assert report.tmp_files == 1

    def test_gc_sweeps_old_tmp_keeps_young(self, tmp_path):
        backend = ShardedFileBackend(tmp_path)
        [key] = fill(backend, 1)
        old = tmp_path / key[:2] / "old.tmp"
        young = tmp_path / key[:2] / "young.tmp"
        old.write_bytes(b"x")
        young.write_bytes(b"x")
        stat = old.stat()
        os.utime(old, (stat.st_atime - 7200, stat.st_mtime - 7200))
        report = backend.gc(tmp_max_age_s=3600.0)
        assert report.tmp_removed == 1
        assert not old.exists() and young.exists()
        assert backend.peek(key) is not None

    def test_gc_dry_run_touches_nothing(self, tmp_path):
        backend = ShardedFileBackend(tmp_path)
        keys = fill(backend, 3)
        report = backend.gc(max_bytes=0, dry_run=True)
        assert report.dry_run and report.evicted == 3
        assert ShardedFileBackend(tmp_path).keys() == sorted(keys)

    def test_gc_evicts_lru_by_mtime_to_budget(self, tmp_path):
        backend = ShardedFileBackend(tmp_path)
        keys = fill(backend, 3)
        sizes, ages = {}, [7200, 3600, 0]  # keys[0] oldest
        for key, age in zip(keys, ages):
            path = tmp_path / key[:2] / f"{key}.pkl"
            sizes[key] = path.stat().st_size
            stat = path.stat()
            os.utime(path, (stat.st_atime - age, stat.st_mtime - age))
        budget = sizes[keys[1]] + sizes[keys[2]]
        report = backend.gc(max_bytes=budget)
        assert report.evicted == 1
        assert report.bytes_removed == sizes[keys[0]]
        fresh = ShardedFileBackend(tmp_path)
        assert fresh.keys() == sorted(keys[1:])
        assert fresh.get_many(keys[:1]) == {}

    def test_gc_purges_stale_versions_keeps_unknown(self, tmp_path):
        backend = ShardedFileBackend(tmp_path)
        stale_key, unknown_key, current_key = fill(backend, 3)
        for key, version in ((stale_key, "0.0.1"), (unknown_key, None)):
            index_path = tmp_path / key[:2] / ShardedFileBackend.INDEX_NAME
            lines = []
            for line in index_path.read_text().splitlines():
                record = json.loads(line)
                if record["k"] == key:
                    record["v"] = version
                lines.append(json.dumps(record))
            index_path.write_text("\n".join(lines) + "\n")
        fresh = ShardedFileBackend(tmp_path)
        report = fresh.gc(stale=True)
        assert report.stale_removed == 1
        survivors = ShardedFileBackend(tmp_path).keys()
        assert sorted(survivors) == sorted([unknown_key, current_key])

    def test_gc_compacts_duplicate_index_lines(self, tmp_path):
        backend = ShardedFileBackend(tmp_path)
        [key] = fill(backend, 1)
        backend.put(key, "rewritten")  # appends a second line
        index_path = tmp_path / key[:2] / ShardedFileBackend.INDEX_NAME
        assert len(index_path.read_text().splitlines()) == 2
        backend.gc()
        assert len(index_path.read_text().splitlines()) == 1
        assert ShardedFileBackend(tmp_path).get(key) == "rewritten"

    def test_verify_reports_phantom_and_unindexed(self, tmp_path):
        backend = ShardedFileBackend(tmp_path)
        phantom_key, kept_key = fill(backend, 2)
        (tmp_path / phantom_key[:2] / f"{phantom_key}.pkl").unlink()
        unindexed_key = key_of("unindexed")
        # A payload the index never learned about (pre-index writer).
        loner = ShardedFileBackend(tmp_path)
        loner.put(unindexed_key, 42)
        index_path = (
            tmp_path / unindexed_key[:2] / ShardedFileBackend.INDEX_NAME
        )
        lines = [
            line for line in index_path.read_text().splitlines()
            if json.loads(line)["k"] != unindexed_key
        ]
        index_path.write_text("".join(f"{line}\n" for line in lines))
        report = ShardedFileBackend(tmp_path).verify()
        assert report.ok
        assert report.phantom == [phantom_key]
        assert report.unindexed == [unindexed_key]
        assert kept_key not in report.phantom


# ----------------------------------------------------------------------
# MemoryTierBackend and ReadThroughBackend
# ----------------------------------------------------------------------
class TestMemoryTier:
    def test_ram_hit_skips_disk(self, tmp_path):
        tier = MemoryTierBackend(ShardedFileBackend(tmp_path))
        [key] = fill(tier, 1)
        # Remove the payload: only RAM can serve it now.
        (tmp_path / key[:2] / f"{key}.pkl").unlink()
        opens = tier.stats.file_opens
        assert tier.get(key) is not None
        assert tier.stats.file_opens == opens
        assert tier.stats.memory_hits == 1

    def test_lru_eviction_is_counted(self, tmp_path):
        tier = MemoryTierBackend(ShardedFileBackend(tmp_path), max_entries=2)
        keys = fill(tier, 3)
        assert tier.stats.evictions == 1
        # The evicted entry (oldest) still reads through from disk.
        assert tier.get(keys[0]) is not None

    def test_get_many_mixes_ram_and_disk(self, tmp_path):
        disk = ShardedFileBackend(tmp_path)
        keys = fill(disk, 4)
        tier = MemoryTierBackend(ShardedFileBackend(tmp_path))
        tier.get(keys[0])  # prime one entry
        opens = tier.stats.file_opens
        found = tier.get_many(keys)
        assert sorted(found) == sorted(keys)
        assert tier.stats.file_opens == opens + 3
        assert tier.stats.memory_hits == 1

    def test_rejects_bad_size(self, tmp_path):
        with pytest.raises(ValueError):
            MemoryTierBackend(ShardedFileBackend(tmp_path), max_entries=0)


class TestReadThrough:
    def make(self, tmp_path, entries=3):
        secondary_dir = tmp_path / "warm"
        keys = fill(ShardedFileBackend(secondary_dir), entries)
        stats = CacheStats()
        stack = ReadThroughBackend(
            ShardedFileBackend(tmp_path / "primary", stats=stats),
            ShardedFileBackend(secondary_dir, stats=stats, read_only=True),
        )
        return stack, keys

    def test_get_promotes_into_primary(self, tmp_path):
        stack, keys = self.make(tmp_path)
        assert stack.get(keys[0]) is not None
        assert stack.stats.promotions == 1
        assert stack.primary.peek(keys[0]) is not None

    def test_peek_does_not_promote(self, tmp_path):
        stack, keys = self.make(tmp_path)
        assert stack.peek(keys[0]) is not None
        assert stack.peek_many(keys[1:]) != {}
        assert stack.stats.promotions == 0
        assert len(stack.primary) == 0

    def test_get_many_promotes_and_counts(self, tmp_path):
        stack, keys = self.make(tmp_path)
        stack.put(key_of("local"), "mine")
        found = stack.get_many(keys + [key_of("local"), key_of("absent")])
        assert len(found) == len(keys) + 1
        assert stack.stats.promotions == len(keys)
        assert stack.stats.hits == len(keys) + 1
        assert stack.stats.misses == 1
        # Promoted entries are committed: a fresh primary-only view sees
        # them without the secondary.
        primary = ShardedFileBackend(tmp_path / "primary")
        assert sorted(primary.get_many(keys)) == sorted(keys)

    def test_writes_and_gc_address_primary_only(self, tmp_path):
        stack, keys = self.make(tmp_path)
        stack.get_many(keys)  # promote everything
        stack.gc(max_bytes=0)
        assert len(stack.primary) == 0
        assert ShardedFileBackend(tmp_path / "warm").keys() == sorted(keys)


class TestResolveBackend:
    def test_specs(self, tmp_path):
        assert isinstance(
            resolve_backend(None, tmp_path), ShardedFileBackend
        )
        assert isinstance(
            resolve_backend("sharded", tmp_path), ShardedFileBackend
        )
        tier = resolve_backend("memory:7", tmp_path)
        assert isinstance(tier, MemoryTierBackend)
        assert tier.max_entries == 7
        assert resolve_backend("memory", tmp_path).max_entries == 4096
        stack = resolve_backend(f"readthrough:{tmp_path / 'warm'}", tmp_path)
        assert isinstance(stack, ReadThroughBackend)
        assert stack.secondary.read_only

    def test_instance_passes_through(self, tmp_path):
        backend = ShardedFileBackend(tmp_path)
        assert resolve_backend(backend, tmp_path) is backend
        cache = ResultCache(tmp_path)
        assert resolve_result_cache(cache) is cache
        assert resolve_result_cache(None) is None

    def test_bad_specs(self, tmp_path):
        for spec in ("lru", "memory:many", "readthrough:"):
            with pytest.raises(ValueError):
                resolve_backend(spec, tmp_path)

    def test_stack_shares_one_stats(self, tmp_path):
        tier = resolve_backend("memory", tmp_path)
        assert tier.stats is tier.inner.stats


# ----------------------------------------------------------------------
# Differential: every backend serves warm runs bit-identically
# ----------------------------------------------------------------------
def assert_identical(ev_a, ev_b):
    """Every reported metric must match exactly (not approximately)."""
    assert ev_a.footprint_bytes == ev_b.footprint_bytes
    assert set(ev_a.runs) == set(ev_b.runs)
    for design in ev_a.runs:
        run_a, run_b = ev_a.runs[design], ev_b.runs[design]
        assert run_a.output_error == run_b.output_error, design
        assert run_a.compression_ratio == run_b.compression_ratio, design
        assert run_a.timing.cycles == run_b.timing.cycles, design
        assert run_a.timing.total_bytes == run_b.timing.total_bytes, design
        assert run_a.timing.amat_cycles == run_b.timing.amat_cycles, design
        assert run_a.timing.llc_mpki == run_b.timing.llc_mpki, design


@pytest.fixture(scope="module")
def cold_cache(tmp_path_factory):
    """One cold sweep into a shared cache dir; its result is the oracle."""
    cache_dir = tmp_path_factory.mktemp("cold-cache")
    result = run_sweep(SPEC, jobs=1, cache_dir=cache_dir)
    assert result.stats.executed > 0
    return cache_dir, result.by_workload()["heat"]


class TestWarmBackendsBitIdentical:
    @pytest.mark.parametrize("backend", ["sharded", "memory", "memory:2"])
    def test_warm_sweep(self, cold_cache, backend):
        cache_dir, oracle = cold_cache
        warm = run_sweep(
            SPEC, jobs=1, cache_dir=cache_dir, cache_backend=backend
        )
        assert warm.stats.executed == 0
        assert_identical(oracle, warm.by_workload()["heat"])

    def test_warm_readthrough_fresh_primary(self, cold_cache, tmp_path):
        cache_dir, oracle = cold_cache
        warm = run_sweep(
            SPEC, jobs=1, cache_dir=tmp_path,
            cache_backend=f"readthrough:{cache_dir}",
        )
        assert warm.stats.executed == 0
        assert_identical(oracle, warm.by_workload()["heat"])
        # Promotion committed every served entry into the primary...
        promoted = ShardedFileBackend(tmp_path)
        assert len(promoted) > 0
        # ...which now serves alone, with the secondary gone.
        alone = run_sweep(SPEC, jobs=1, cache_dir=tmp_path)
        assert alone.stats.executed == 0
        assert_identical(oracle, alone.by_workload()["heat"])

    def test_warm_legacy_flat_store(self, cold_cache):
        """A pre-backend cache dir (no indexes) still serves fully warm."""
        cache_dir, oracle = cold_cache
        for index in cache_dir.glob(f"*/{ShardedFileBackend.INDEX_NAME}"):
            index.unlink()
        warm = run_sweep(SPEC, jobs=1, cache_dir=cache_dir)
        assert warm.stats.executed == 0
        assert_identical(oracle, warm.by_workload()["heat"])

    def test_shared_memory_tier_across_sweeps(self, cold_cache):
        cache_dir, oracle = cold_cache
        cache = ResultCache(cache_dir, backend="memory")
        first = run_sweep(SPEC, jobs=1, cache_dir=cache)
        second = run_sweep(SPEC, jobs=1, cache_dir=cache)
        assert second.stats.executed == 0
        assert cache.stats.memory_hits > 0  # the second pass ran from RAM
        assert_identical(oracle, first.by_workload()["heat"])
        assert_identical(oracle, second.by_workload()["heat"])

    def test_stores_are_folded_into_sweep_stats(self, tmp_path):
        cold = run_sweep(SPEC, jobs=2, cache_dir=tmp_path)
        assert cold.stats.cache_stores == cold.stats.executed > 0
        warm = run_sweep(SPEC, jobs=2, cache_dir=tmp_path)
        assert warm.stats.cache_stores == 0


class TestWarmPlanBitIdentical:
    MICRO = dict(
        workload="heat",
        designs=("AVR", "truncate"),
        thresholds_scales=(0.5, 1.0),
        t2_thresholds=(0.01,),
        objective="traffic",
        scale=0.12,
        max_accesses_per_core=2_000,
        num_cores=2,
    )

    @pytest.mark.parametrize("backend", ["sharded", "memory"])
    def test_warm_plan(self, tmp_path, backend):
        from repro.planner import PlanSpec, run_plan

        spec = PlanSpec(**self.MICRO)
        cold = run_plan(spec, cache_dir=tmp_path)
        assert cold.stats.jobs_executed > 0
        warm = run_plan(spec, cache_dir=tmp_path, cache_backend=backend)
        assert warm.stats.jobs_executed == 0
        assert [o.candidate.key() for o in warm.front] == [
            o.candidate.key() for o in cold.front
        ]
        for a, b in zip(cold.front, warm.front):
            assert a.metrics == b.metrics


# ----------------------------------------------------------------------
# Multiprocess stress: concurrent put/get/gc on one directory
# ----------------------------------------------------------------------
ENTRIES_PER_RANK = 24


def _stress_worker(root, rank, barrier):
    """Write, read back, and GC against a shared cache directory."""
    backend = ShardedFileBackend(root)
    barrier.wait()
    for i in range(ENTRIES_PER_RANK):
        key = key_of(("stress", rank, i))
        value = {"rank": rank, "i": i, "blob": list(range(32))}
        backend.put(key, value)
        got = backend.get(key)
        assert got == value, f"torn read of own entry {rank}/{i}"
        if i % 8 == 3:
            backend.gc(tmp_max_age_s=3600.0)
    # Read a slice of every rank's range; concurrently-written entries
    # may legitimately be absent, but present ones must not be torn.
    for other in range(4):
        for i in range(0, ENTRIES_PER_RANK, 6):
            value = backend.get(key_of(("stress", other, i)))
            if value is not None:
                assert value["rank"] == other and value["i"] == i


class TestMultiprocessStress:
    def test_concurrent_put_get_gc(self, tmp_path):
        ctx = multiprocessing.get_context("spawn")
        barrier = ctx.Barrier(4)
        procs = [
            ctx.Process(target=_stress_worker, args=(tmp_path, rank, barrier))
            for rank in range(4)
        ]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(timeout=120)
            assert proc.exitcode == 0

        # No lost entries: every payload is present and readable.
        backend = ShardedFileBackend(tmp_path)
        expected = {
            key_of(("stress", rank, i))
            for rank in range(4)
            for i in range(ENTRIES_PER_RANK)
        }
        assert len(backend) == len(expected)
        report = backend.verify()
        assert report.ok, report.corrupt
        assert report.entries == len(expected)
        # Index/payload consistency: one compaction reconciles any
        # appends a concurrent gc's rewrite raced with.
        backend.gc()
        fresh = ShardedFileBackend(tmp_path)
        assert set(fresh.keys()) == expected
        served = fresh.get_many(sorted(expected))
        assert set(served) == expected
        final = fresh.verify()
        assert final.ok and not final.phantom and not final.unindexed
