"""Differential suite pinning vectorized trace synthesis to the reference loop.

Every workload's generated stream must be *bit-identical* between
``generator="vectorized"`` (the columnar fast path) and
``generator="reference"`` (the historical per-(iteration, phase)
fragment loop) — across core counts, both jitter-stream modes, and
multiple seeds.  A heterogeneous scenario mix is pushed through full
per-instance generation + composition the same way, so the equivalence
holds end to end, not just per workload.
"""

import numpy as np
import pytest

from repro.approx import ApproxMemory
from repro.scenario import (
    assign_offsets,
    compose_traces,
    get_scenario,
    plan_instances,
)
from repro.trace import GENERATORS, generate_trace
from repro.workloads import WORKLOADS, make_workload

#: small-but-representative configuration: every workload still emits
#: multiple iterations and every phase type under this budget
SCALE = 0.15
BUDGET = 2_500


def allocate_only(workload) -> ApproxMemory:
    """Region layout without the functional computation (all the
    trace generator consumes)."""
    mem = ApproxMemory()
    workload.allocate(mem)
    return mem


def assert_traces_identical(a, b):
    assert a.iterations_simulated == b.iterations_simulated
    assert a.iterations_total == b.iterations_total
    assert len(a.cores) == len(b.cores)
    for core, (x, y) in enumerate(zip(a.cores, b.cores)):
        assert x.dtype == y.dtype
        assert np.array_equal(x, y), f"core {core} diverged"


def generate_both(spec, mem, **kwargs):
    return tuple(
        generate_trace(spec, mem, generator=generator, **kwargs)
        for generator in ("vectorized", "reference")
    )


class TestWorkloadEquivalence:
    @pytest.mark.parametrize("seed", [0, 1])
    @pytest.mark.parametrize("per_core_streams", [False, True])
    @pytest.mark.parametrize("num_cores", [1, 4, 8])
    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_bit_identical(self, name, num_cores, per_core_streams, seed):
        workload = make_workload(name, scale=SCALE)
        vec, ref = generate_both(
            workload.trace_spec(),
            allocate_only(workload),
            num_cores=num_cores,
            max_accesses_per_core=BUDGET,
            seed=seed,
            per_core_streams=per_core_streams,
        )
        assert vec.total_accesses > 0
        assert_traces_identical(vec, ref)

    def test_generators_registry_is_exhaustive(self):
        assert set(GENERATORS) == {"vectorized", "reference"}

    def test_unknown_generator_rejected(self):
        workload = make_workload("heat", scale=SCALE)
        with pytest.raises(ValueError, match="unknown trace generator"):
            generate_trace(
                workload.trace_spec(),
                allocate_only(workload),
                generator="fancy",
            )


class TestScenarioCompositionEquivalence:
    def test_heterogeneous_mix_bit_identical(self):
        """kmeans*2+heat@2 through per-instance generation + composition."""
        scenario = get_scenario("kmeans*2+heat@2").scaled(SCALE)
        plans = plan_instances(scenario, seed=0)
        workloads = [
            make_workload(
                plan.entry.workload,
                scale=plan.entry.scale,
                **dict(plan.entry.workload_kwargs),
            )
            for plan in plans
        ]
        mems = [allocate_only(w) for w in workloads]
        offsets = assign_offsets([mem.address_span for mem in mems])

        composed = {}
        for generator in GENERATORS:
            per_instance = [
                generate_trace(
                    workload.trace_spec(),
                    mem,
                    num_cores=plan.entry.cores,
                    max_accesses_per_core=BUDGET,
                    seed=plan.seed,
                    generator=generator,
                )
                for plan, workload, mem in zip(plans, workloads, mems)
            ]
            composed[generator] = compose_traces(
                per_instance, plans, offsets, scenario.total_cores
            )

        vec, ref = composed["vectorized"], composed["reference"]
        assert vec.total_accesses > 0
        assert len(vec.cores) == scenario.total_cores
        assert_traces_identical(vec, ref)

    def test_instances_of_one_workload_differ(self):
        """Instance-level seed spawning must survive the fast path: two
        kmeans instances in one mix draw different jitter streams."""
        scenario = get_scenario("kmeans*2+heat@2").scaled(SCALE)
        plans = plan_instances(scenario, seed=0)
        kmeans_plans = [p for p in plans if p.entry.workload == "kmeans"]
        assert len(kmeans_plans) == 2
        workload = make_workload("kmeans", scale=SCALE)
        mem = allocate_only(workload)
        first, second = (
            generate_trace(
                workload.trace_spec(),
                mem,
                num_cores=plan.entry.cores,
                max_accesses_per_core=BUDGET,
                seed=plan.seed,
            )
            for plan in kmeans_plans
        )
        assert not all(
            np.array_equal(x["gap"], y["gap"])
            for x, y in zip(first.cores, second.cores)
        )
