"""Tests for the baseline/Truncate/Doppelgänger LLC models."""

from repro.cache.llc_baseline import BaselineLLC
from repro.common.config import CacheConfig, DRAMConfig
from repro.memory import DRAM


def make(capacity_multiplier=1.0, approx_line_bytes=64, approx=None):
    dram = DRAM(DRAMConfig())
    llc = BaselineLLC(
        CacheConfig(64 * 8 * 64, 8, 15),
        dram,
        is_approx=approx,
        capacity_multiplier=capacity_multiplier,
        approx_line_bytes=approx_line_bytes,
    )
    return llc, dram


def test_miss_then_hit():
    llc, dram = make()
    llc.read(0)
    llc.read(0)
    assert llc.stats["llc_misses"] == 1
    assert llc.stats["llc_hits"] == 1
    assert dram.stats["bytes_read"] == 64


def test_dirty_writeback_traffic():
    llc, dram = make()
    llc.writeback(0)
    # flood the set to force the dirty victim out
    for i in range(1, 12):
        llc.read(i * 64 * 64)
    assert dram.stats["bytes_written"] == 64
    assert llc.stats["writebacks"] == 1


def test_truncate_mode_halves_approx_traffic():
    approx = lambda addr: addr < 1 << 20
    llc, dram = make(approx_line_bytes=32, approx=approx)
    llc.read(0)  # approx line: 32 B
    llc.read(1 << 21)  # exact line: 64 B
    assert llc.stats["bytes_approx"] == 32
    assert llc.stats["bytes_exact"] == 64
    assert dram.total_bytes == 96


def test_capacity_multiplier_reduces_misses():
    def run(mult):
        llc, _ = make(capacity_multiplier=mult)
        for _ in range(3):
            for i in range(700):  # working set > base capacity (512 lines)
                llc.read(i * 64)
        return llc.stats["llc_misses"]

    assert run(2.0) < run(1.0)


def test_latency_hit_vs_miss():
    llc, _ = make()
    lat_miss = llc.read(0)
    lat_hit = llc.read(0)
    assert lat_hit == 15
    assert lat_miss > lat_hit


def test_mpki_misses_property():
    llc, _ = make()
    llc.read(0)
    llc.read(64 * 64)
    assert llc.mpki_misses == 2
