"""Legacy setup shim.

The offline environment lacks the ``wheel`` package that setuptools'
PEP 660 editable backend requires, so ``pip install -e .`` falls back
to this shim via ``--no-use-pep517``.  All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
