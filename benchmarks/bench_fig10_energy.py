"""Figure 10: system energy breakdown, normalized to baseline total.

Paper shape: AVR reduces energy 10-20% on heat/lattice/lbm (mostly via
shorter execution and less DRAM traffic); the compressor itself is a
negligible slice; bscholes/wrf see little change.
"""

from repro.energy import COMPONENTS
from repro.harness import fig10_energy, format_stacked


def test_fig10(evaluations, benchmark):
    data = benchmark(fig10_energy, evaluations)
    print()
    print(format_stacked("Figure 10: energy (norm. to baseline total)", data))

    for name, per_design in data.items():
        base_total = sum(per_design["baseline"].values())
        assert abs(base_total - 1.0) < 1e-6
        for design, parts in per_design.items():
            assert set(parts) == set(COMPONENTS)
            assert all(v >= 0 for v in parts.values())

    # AVR saves energy on the compressible memory-bound workloads
    for name in ("heat", "lattice", "lbm"):
        avr_total = sum(data[name]["AVR"].values())
        assert avr_total < 0.95, name

    # the compressor/decompressor is a small slice of AVR's energy
    for name in data:
        parts = data[name]["AVR"]
        assert parts["Compressor/Decompressor"] < 0.1 * sum(parts.values()), name

    # ZeroAVR's energy tracks the baseline closely
    for name in data:
        zero_total = sum(data[name]["ZeroAVR"].values())
        assert abs(zero_total - 1.0) < 0.07, name
