"""Figure 14: breakdown of AVR LLC requests on approximate cachelines.

Paper shape: "about 40-80% of the LLC requests hit on the DBUF or on
compressed blocks" (§4.3); misses are the minority for the streaming
benchmarks.
"""

from repro.harness import REQUEST_CATEGORIES, fig14_llc_requests, format_table


def test_fig14(evaluations, benchmark):
    series = benchmark(fig14_llc_requests, evaluations)
    print()
    print(format_table("Figure 14: AVR LLC requests (%)", series, "{:.1f}"))

    labels = list(REQUEST_CATEGORIES.values())
    for name, row in series.items():
        assert set(row) == set(labels)
        assert abs(sum(row.values()) - 100.0) < 0.5, name

    # On-chip hits (DBUF + compressed + uncompressed) dominate for the
    # streaming workloads, as in the paper.
    for name in ("heat", "lattice", "lbm", "kmeans"):
        row = series[name]
        on_chip = row["DBUF Hit"] + row["Compressed Hit"] + row["Uncompressed Hit"]
        assert on_chip > 40.0, name
        assert row["Miss"] < 60.0, name
