"""Shared fixtures for the benchmark suite.

The full-system evaluation (all 7 workloads x 5 designs, functional +
timing) runs **once per session** and is shared by every per-figure
benchmark; the benchmarks then time the (cheap) figure regeneration and
assert the paper's qualitative shapes on the results.

Environment knobs:

* ``REPRO_BENCH_QUICK=1``  — scale workloads down (~2 min instead of ~8)
* ``REPRO_BENCH_JOBS=N``   — fan the evaluation sweep out over N workers
* ``REPRO_BENCH_CACHE=dir`` — reuse sweep results across bench sessions
"""

from __future__ import annotations

import os

import pytest

from repro.common.config import SystemConfig
from repro.harness import evaluate_all


@pytest.fixture(scope="session")
def evaluations():
    quick = os.environ.get("REPRO_BENCH_QUICK", "0") == "1"
    return evaluate_all(
        config=SystemConfig.scaled(num_cores=8),
        scale=0.5 if quick else 1.0,
        max_accesses_per_core=20_000 if quick else 50_000,
        jobs=int(os.environ.get("REPRO_BENCH_JOBS", "1")),
        cache_dir=os.environ.get("REPRO_BENCH_CACHE") or None,
    )


@pytest.fixture(scope="session")
def workload_order(evaluations):
    return list(evaluations)
