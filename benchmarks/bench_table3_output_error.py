"""Table 3: application output error per design.

Paper values for reference (%):
            heat  lattice  lbm    orbit  kmeans  bscholes  wrf
  dganger   0.4   0.2      22.3   >100   <0.05   <0.05     24.9
  truncate  0.2   0.5      0.6    <0.05  <0.05   1.4       4.2
  AVR       0.7   0.6      0.1    <0.05  1.2     0.5       8.9
"""

from repro.harness import format_table, table3_output_error


def test_table3(evaluations, workload_order, benchmark):
    table = benchmark(table3_output_error, evaluations)
    print()
    print(format_table("Table 3: output error (%)", table, "{:.2f}",
                       col_order=workload_order))

    # Paper shape: Doppelgänger fails catastrophically on lbm/orbit/wrf
    assert table["dganger"]["lbm"] > 5.0
    assert table["dganger"]["orbit"] > 50.0
    assert table["dganger"]["wrf"] > 10.0
    # ...while AVR stays accurate everywhere except wrf (paper: 8.9%)
    for name in ("heat", "lattice", "lbm", "orbit", "kmeans", "bscholes"):
        assert table["AVR"][name] < 3.0, name
    assert table["AVR"]["wrf"] < 15.0
    # Truncate is bounded by its 2^-8 per-value error everywhere
    for name in workload_order:
        assert table["truncate"][name] < 6.0, name
