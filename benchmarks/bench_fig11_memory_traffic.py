"""Figure 11: DRAM traffic normalized to baseline, approx/exact split.

Paper shape: AVR cuts traffic ~50-70% on heat/lattice/lbm, ~48% on
orbit, ~37% on kmeans, and only a few percent on bscholes/wrf;
Truncate is pinned near 50% on fully-approximable workloads; ZeroAVR
matches the baseline.
"""

from repro.harness import fig11_memory_traffic, format_stacked


def totals(data, name):
    return {d: sum(parts.values()) for d, parts in data[name].items()}


def test_fig11(evaluations, benchmark):
    data = benchmark(fig11_memory_traffic, evaluations)
    print()
    print(format_stacked("Figure 11: memory traffic (norm.)", data))

    # Strong reductions on the compressible, fully-approximable apps
    for name in ("heat", "lattice", "lbm"):
        t = totals(data, name)
        assert t["AVR"] < 0.7, name
        assert 0.4 < t["truncate"] < 0.75, name
    # AVR clearly beats Truncate's flat 2:1 on heat/lattice; on lbm our
    # scaled LLC cannot retain the compressed set between sweeps the way
    # the paper's 8 MB LLC does, so they end up comparable (EXPERIMENTS.md)
    for name in ("heat", "lattice"):
        t = totals(data, name)
        assert t["AVR"] < t["truncate"], name
    t = totals(data, "lbm")
    assert t["AVR"] <= t["truncate"] + 0.1

    # ZeroAVR: no approximate data, traffic ~= baseline, all exact
    for name in data:
        t = totals(data, name)
        assert abs(t["ZeroAVR"] - 1.0) < 0.05, name
        assert data[name]["ZeroAVR"]["Approx"] == 0.0

    # wrf's traffic is dominated by its exact fields under every design
    wrf_avr = data["wrf"]["AVR"]
    assert wrf_avr["Non-approx"] > wrf_avr["Approx"]

    # AVR's remaining traffic on fully-approx workloads is mostly approx
    heat_avr = data["heat"]["AVR"]
    assert heat_avr["Approx"] > heat_avr["Non-approx"]
