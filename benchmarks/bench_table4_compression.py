"""Table 4: AVR compression ratio and memory footprint vs baseline.

Paper values for reference:
            heat   lattice  lbm    orbit  kmeans  bscholes  wrf
  ratio     10.5x  9.6x     15.6x  16.0x  2.3x    4.7x      3.4x
  footprint 12.6%  20.0%    7.9%   54.1%  58.5%   78.6%     89.6%

Our lattice/lbm ratios are scale-limited (their flow features span a
handful of cells at simulable grid sizes; see DESIGN.md).
"""

from repro.harness import format_table, table4_compression


def test_table4(evaluations, workload_order, benchmark):
    table = benchmark(table4_compression, evaluations)
    print()
    print(format_table("Table 4: AVR compression", table, "{:.1f}",
                       col_order=workload_order))

    ratio = table["Compr. Ratio"]
    footprint = table["Mem. Footprint"]

    # Ordering: orbit/heat compress best; kmeans worst (rugged data)
    assert ratio["orbit"] > 10.0
    assert ratio["heat"] > 6.0
    assert 1.5 < ratio["kmeans"] < 4.0
    assert 3.0 < ratio["bscholes"] < 8.0
    for name in workload_order:
        assert 1.0 <= ratio[name] <= 16.0, name

    # Footprint shrinks most where approx fraction x ratio is largest
    assert footprint["heat"] < 30.0
    assert footprint["lbm"] < footprint["wrf"]
    assert footprint["wrf"] > 80.0  # only ~15% approximable
    for name in workload_order:
        assert 0.0 < footprint[name] <= 100.0, name
