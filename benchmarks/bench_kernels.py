"""Microbenchmarks of the hot computational kernels.

These are genuine throughput measurements (pytest-benchmark) of the
vectorized compressor pipeline and the simulator primitives — the
pieces whose performance bounds the whole reproduction.
"""

import numpy as np
import pytest

from repro.cache.base import SetAssocCache
from repro.common.config import CacheConfig, DRAMConfig
from repro.common.constants import VALUES_PER_BLOCK
from repro.common.types import ErrorThresholds
from repro.compression import AVRCompressor, truncate_roundtrip
from repro.compression.downsample import downsample_2d, reconstruct_2d
from repro.doppelganger import dedup_roundtrip
from repro.memory import DRAM

NBLOCKS = 4096  # 4 MB of data per round


@pytest.fixture(scope="module")
def blocks():
    rng = np.random.default_rng(0)
    x = np.linspace(0, 1, VALUES_PER_BLOCK, dtype=np.float32)
    data = x[None, :] * rng.uniform(0.5, 2.0, (NBLOCKS, 1)).astype(np.float32)
    return data + 1.0


def test_compress_blocks_throughput(benchmark, blocks):
    comp = AVRCompressor(ErrorThresholds.from_t2(0.01))
    result = benchmark(comp.compress_blocks, blocks)
    mb = blocks.nbytes / 1e6
    print(f"\n  compressed {mb:.0f} MB/round, ratio {result.compression_ratio:.1f}x")
    assert result.success.all()


def test_decompress_blocks_throughput(benchmark, blocks):
    comp = AVRCompressor(ErrorThresholds.from_t2(0.01))
    res = comp.compress_blocks(blocks)
    out = benchmark(
        comp.decompress_blocks, res.summaries, res.method, res.bias
    )
    assert out.shape == blocks.shape


def test_downsample_reconstruct_2d(benchmark, blocks):
    fixed = (blocks * (1 << 20)).astype(np.int64)

    def roundtrip():
        return reconstruct_2d(downsample_2d(fixed))

    out = benchmark(roundtrip)
    assert out.shape == fixed.shape


def test_truncate_throughput(benchmark, blocks):
    out = benchmark(truncate_roundtrip, blocks)
    assert out.shape == blocks.shape


def test_dedup_throughput(benchmark, blocks):
    out, stats = benchmark(dedup_roundtrip, blocks, 0.001)
    assert stats.total_lines == blocks.size // 16


def test_cache_access_rate(benchmark):
    cache = SetAssocCache(CacheConfig(256 * 1024, 16, 15))
    addrs = (np.random.default_rng(0).integers(0, 1 << 20, 20_000) * 64).tolist()

    def run():
        for a in addrs:
            cache.access(a, False)

    benchmark(run)


def test_dram_access_rate(benchmark):
    dram = DRAM(DRAMConfig())
    addrs = (np.random.default_rng(0).integers(0, 1 << 20, 20_000) * 64).tolist()

    def run():
        for a in addrs:
            dram.access(a)

    benchmark(run)
