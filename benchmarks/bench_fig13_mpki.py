"""Figure 13: LLC misses per kilo-instruction, normalized to baseline.

Paper shape: AVR has by far the lowest MPKI on compressible workloads
(heat: less than half of Truncate's; lattice: 14% of baseline vs
48%/53% for Doppelgänger/Truncate) because compressed blocks resident
in the LLC and the DBUF turn would-be misses into on-chip hits.
"""

from repro.common.types import COMPARED_DESIGNS
from repro.harness import fig13_mpki, format_table

DESIGNS = [d.value for d in COMPARED_DESIGNS]


def test_fig13(evaluations, benchmark):
    series = benchmark(fig13_mpki, evaluations)
    print()
    print(format_table("Figure 13: LLC MPKI (norm.)", series, "{:.2f}",
                       col_order=DESIGNS))

    for name in ("heat", "lattice", "lbm", "orbit"):
        row = series[name]
        assert row["AVR"] < 0.5, name
        assert row["AVR"] < row["truncate"] / 2, name

    # ZeroAVR's decoupled LLC performs like the baseline LLC (paper §4.3)
    for name in evaluations:
        assert abs(series[name]["ZeroAVR"] - 1.0) < 0.05, name
