"""Benchmark: multi-fidelity planner vs the exhaustive sweep grid.

Plans a design space twice — once with a tight full-fidelity budget
(successive halving) and once unbounded (the exhaustive grid) — and
reports what the budgeted plan saved and what it recovered:

* **savings** — full-fidelity candidate evaluations of the exhaustive
  grid divided by the budgeted plan's (the planner's headline number),
* **precision** — fraction of the budgeted plan's recommendations that
  lie on the exhaustive grid's true Pareto front (1.0 = the planner
  never recommends a dominated design),
* **recall** — fraction of the true front the budgeted plan found
  (bounded by ``budget``; a budget of 2 cannot return a 5-point front).

Both plans share one result cache, so the exhaustive pass reuses every
functional job and every survivor's full-fidelity replay from the
budgeted pass — exactly how the planner composes with sweeps in
practice.

Default mode searches a 16-candidate space at a moderate trace budget.
``--check`` is the CI mode: the micro space, budget 2, asserting
savings >= 4x and precision == 1.0 — it exits nonzero when the planner
stops earning its keep.  ``--json`` records the comparison; the repo's
``BENCH_planner.json`` is ``--json BENCH_planner.json``.

Usage::

    python benchmarks/bench_planner.py                   # full space
    python benchmarks/bench_planner.py --budget 4        # looser budget
    python benchmarks/bench_planner.py --check           # CI assertion
    python benchmarks/bench_planner.py --json out.json   # record results
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
import tempfile
import time

from repro import __version__
from repro.planner import PlanSpec, run_plan

#: default space: 2 designs x 4 thresholds scales x 2 T2 = 16 candidates
DEFAULT_SPEC = PlanSpec(
    name="bench",
    workload="heat",
    designs=("AVR", "truncate"),
    thresholds_scales=(0.5, 0.75, 1.0, 1.25),
    t2_thresholds=(0.01, 0.05),
    objective="traffic",
    constraints=("error<=0.2",),
    budget=2,
    scale=0.25,
    max_accesses_per_core=10_000,
    num_cores=4,
)

#: CI space: 8 candidates at smoke scale (seconds, not minutes)
CHECK_SPEC = dataclasses.replace(
    DEFAULT_SPEC,
    thresholds_scales=(0.5, 1.0),
    scale=0.12,
    max_accesses_per_core=2_000,
    num_cores=2,
)


def front_keys(result) -> set:
    return {o.candidate.key() for o in result.front}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--budget", type=int, default=None,
                        help="full-fidelity eval budget of the budgeted "
                             "plan (default 2)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="sweep worker processes")
    parser.add_argument("--cache-dir", metavar="PATH", default=None,
                        help="result cache both plans share (default: a "
                             "temporary directory)")
    parser.add_argument("--json", metavar="PATH",
                        help="write the comparison as JSON")
    parser.add_argument("--min-savings", type=float, default=4.0,
                        help="--check fails below this savings factor")
    parser.add_argument("--check", action="store_true",
                        help="CI mode: micro space, savings and "
                             "precision enforced")
    args = parser.parse_args(argv)

    spec = CHECK_SPEC if args.check else DEFAULT_SPEC
    if args.budget is not None:
        spec = dataclasses.replace(spec, budget=args.budget)

    with tempfile.TemporaryDirectory() as scratch:
        cache_dir = args.cache_dir or scratch
        print(f"space: {spec.designs} x scales {spec.thresholds_scales} "
              f"x t2 {spec.t2_thresholds} on {spec.workload}, "
              f"objective {spec.objective} s.t. {', '.join(spec.constraints)}",
              flush=True)

        start = time.perf_counter()
        budgeted = run_plan(spec, jobs=args.jobs, cache_dir=cache_dir)
        budgeted_s = time.perf_counter() - start
        ladder = " -> ".join(
            f"{len(r.outcomes)}@{r.fidelity}" for r in budgeted.rungs
        )
        print(f"budget {spec.budget}: rungs {ladder}, "
              f"{budgeted.stats.full_fidelity_evals} full-fidelity eval(s), "
              f"{budgeted_s:.1f}s", flush=True)

        start = time.perf_counter()
        exhaustive = run_plan(
            dataclasses.replace(spec, budget=0),
            jobs=args.jobs, cache_dir=cache_dir,
        )
        exhaustive_s = time.perf_counter() - start
        print(f"exhaustive: {exhaustive.stats.full_fidelity_evals} "
              f"full-fidelity eval(s), {exhaustive_s:.1f}s "
              f"(cache shared with the budgeted plan)", flush=True)

    true_front = front_keys(exhaustive)
    found = front_keys(budgeted)
    precision = len(found & true_front) / len(found) if found else 0.0
    recall = len(found & true_front) / len(true_front) if true_front else 1.0
    savings = budgeted.stats.savings

    print()
    print(f"true front ({len(true_front)}): "
          + ", ".join(o.candidate.label() for o in exhaustive.recommended))
    print(f"planned front ({len(found)}): "
          + ", ".join(o.candidate.label() for o in budgeted.recommended))
    print(f"savings {savings:.1f}x  precision {precision:.2f}  "
          f"recall {recall:.2f}")

    if args.json:
        payload = {
            "version": __version__,
            "plan_hash": spec.content_hash(),
            "workload": spec.workload,
            "objective": spec.objective,
            "constraints": list(spec.constraints),
            "candidates": budgeted.stats.candidates,
            "budget": spec.budget,
            "rungs": [
                {"count": len(r.outcomes), "fidelity": r.fidelity}
                for r in budgeted.rungs
            ],
            "full_fidelity_evals": budgeted.stats.full_fidelity_evals,
            "exhaustive_full_evals": exhaustive.stats.full_fidelity_evals,
            "savings": round(savings, 2),
            "front_size": len(true_front),
            "front_found": len(found),
            "precision": round(precision, 3),
            "recall": round(recall, 3),
            "budgeted_s": round(budgeted_s, 2),
            "exhaustive_s": round(exhaustive_s, 2),
        }
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.json}")

    if args.check:
        if savings < args.min_savings:
            print(f"FAIL: savings {savings:.1f}x < required "
                  f"{args.min_savings}x")
            return 1
        if precision < 1.0:
            print("FAIL: the budgeted plan recommended a dominated design")
            return 1
        print("planner check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
