"""Figure 15: breakdown of AVR LLC evictions of approximate cachelines.

Paper shape: the streaming benchmarks resolve 45-80% of their dirty
evictions without fetching the block from memory (Recompress when the
compressed copy is LLC-resident, else Lazy Writeback); kmeans/bscholes
show sizable Fetch+Recompress / Uncompressed-Writeback fractions.
"""

from repro.harness import EVICTION_CATEGORIES, fig15_llc_evictions, format_table


def test_fig15(evaluations, benchmark):
    series = benchmark(fig15_llc_evictions, evaluations)
    print()
    print(format_table("Figure 15: AVR LLC evictions (%)", series, "{:.1f}"))

    labels = list(EVICTION_CATEGORIES.values())
    for name, row in series.items():
        assert set(row) == set(labels)
        total = sum(row.values())
        assert total == 0.0 or abs(total - 100.0) < 0.5, name

    # Cheap evictions (no block fetch) dominate for streaming workloads
    for name in ("heat", "lattice", "lbm", "orbit"):
        row = series[name]
        cheap = row["Recompress"] + row["Lazy Writeback"]
        assert cheap > 45.0, name

    # kmeans' rugged blocks fail compression: plain writebacks appear
    km = series["kmeans"]
    assert km["Uncompressed Writeback"] + km["Fetch+Recompress"] > 10.0
