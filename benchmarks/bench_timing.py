"""Benchmark: vectorized timing engine vs the reference replay loop.

Runs one workload's trace through both engines under each design,
verifies the equivalence contract (every ``SimResult`` metric
bit-identical), and reports the per-design wall-clock breakdown.

Default mode replays the largest seed workload trace (kmeans: 393k
accesses at the default 50k/core budget on 8 cores).  ``--check`` is
the CI mode: a small trace, equivalence enforced — it exits nonzero on
any metric divergence, and prints nothing slower than a smoke job
should be.  ``--designs`` narrows either mode to a subset (e.g. just
the AVR fast path), ``--repeat`` takes the best of N timings per
engine (shared runners are noisy; state never carries over because
every timed run builds a fresh system), and ``--json`` records the
breakdown — the repo's ``BENCH_timing_avr.json`` is
``--designs avr --repeat 3 --json BENCH_timing_avr.json``.

``--scenario`` replays a multi-programmed mix (a registry name such as
``heat+lbm`` or a mix string like ``kmeans*2@2+heat@4``) instead of a
single workload, so heterogeneous co-run traffic enters the perf
trajectory; the core count then comes from the mix.

Usage::

    python benchmarks/bench_timing.py                  # full breakdown
    python benchmarks/bench_timing.py --designs avr    # one design
    python benchmarks/bench_timing.py --scenario heat+lbm
    python benchmarks/bench_timing.py --check          # CI equivalence
    python benchmarks/bench_timing.py --min-speedup 3  # enforce >= 3x
    python benchmarks/bench_timing.py --json out.json  # record results
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro import __version__
from repro.common.config import SystemConfig
from repro.designs import AVR, BASELINE, DGANGER, TRUNCATE, list_designs, resolve_designs
from repro.harness.runner import _build_layout
from repro.harness.sweep import SweepPoint, run_functional_job
from repro.system.factory import build_system
from repro.trace.generator import generate_trace
from repro.workloads import WORKLOADS

#: the largest seed trace at the default per-core access budget
DEFAULT_WORKLOAD = "kmeans"
BENCH_DESIGNS = (BASELINE, TRUNCATE, DGANGER, AVR)


def build_context(workload_name: str, scale: float, cores: int, accesses: int, seed: int):
    """Functional layer once, then the layout + trace both engines share."""
    point = SweepPoint(
        workload=workload_name, scale=scale, seed=seed,
        max_accesses_per_core=accesses,
    )
    workload = point.make()
    reference = run_functional_job(point, BASELINE)
    avr = run_functional_job(point, AVR)
    layout = _build_layout(workload, avr)
    config = SystemConfig.scaled(num_cores=cores)
    trace = generate_trace(
        workload.trace_spec(), reference.memory,
        num_cores=cores, max_accesses_per_core=accesses, seed=seed,
    )
    return config, layout, trace, reference.memory.footprint_bytes


def build_scenario_bench_context(mix: str, scale: float, accesses: int, seed: int):
    """Composed layout + co-run trace of a multi-programmed mix."""
    from repro.harness.scenario import scenario_timing_context
    from repro.scenario import get_scenario

    scenario = get_scenario(mix).scaled(scale)
    return scenario_timing_context(
        scenario, seed=seed, max_accesses_per_core=accesses
    )


def time_engine(design, config, layout, trace, footprint, engine: str):
    system = build_system(design, config, layout, footprint)
    start = time.perf_counter()
    result = system.run(trace, engine=engine)
    return time.perf_counter() - start, result


def compare(design, config, layout, trace, footprint, repeat: int = 1):
    """Time both engines on ``design``; returns (ref_s, vec_s, diffs).

    With ``repeat > 1`` each engine runs that many times and the best
    wall-clock is reported (every run builds a fresh system, so timings
    are independent); equivalence is checked on every pair of results.
    """
    ref_s = vec_s = float("inf")
    diffs: list[str] = []
    for _ in range(repeat):
        r_s, ref = time_engine(design, config, layout, trace, footprint, "reference")
        v_s, vec = time_engine(design, config, layout, trace, footprint, "vectorized")
        ref_s = min(ref_s, r_s)
        vec_s = min(vec_s, v_s)
        diffs = diffs or ref.metric_diffs(vec)
    return ref_s, vec_s, diffs


def parse_designs(names: list[str] | None, default: tuple) -> tuple:
    """Resolve --designs through the open registry (any registered name)."""
    if not names:
        return default
    try:
        return resolve_designs(names)
    except ValueError as exc:
        raise SystemExit(str(exc))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workload", default=DEFAULT_WORKLOAD,
                        choices=sorted(WORKLOADS))
    parser.add_argument("--scenario", metavar="MIX", default=None,
                        help="replay a multi-programmed mix (named or "
                             "WORKLOAD[*N][@CORES]+...) instead of "
                             "--workload; cores come from the mix")
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--cores", type=int, default=8)
    parser.add_argument("--accesses", type=int, default=50_000)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--designs", nargs="+", metavar="DESIGN",
                        help="restrict the per-design breakdown (e.g. avr)")
    def positive_int(value):
        n = int(value)
        if n < 1:
            raise argparse.ArgumentTypeError("--repeat must be >= 1")
        return n

    parser.add_argument("--repeat", type=positive_int, default=1,
                        help="time each engine N times, report the best")
    parser.add_argument("--json", metavar="PATH",
                        help="write the per-design breakdown as JSON")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="fail unless the best per-design speedup "
                             "reaches this factor")
    parser.add_argument("--check", action="store_true",
                        help="CI mode: small trace, equivalence enforced")
    args = parser.parse_args(argv)

    if args.check:
        scale, cores, accesses = min(args.scale, 0.15), 2, min(args.accesses, 4_000)
        designs = parse_designs(args.designs, resolve_designs(list_designs()))
    else:
        scale, cores, accesses = args.scale, args.cores, args.accesses
        designs = parse_designs(args.designs, BENCH_DESIGNS)

    if args.scenario:
        config, layout, trace, footprint = build_scenario_bench_context(
            args.scenario, scale, accesses, args.seed
        )
        cores = config.num_cores
        print(f"scenario={args.scenario} scale={scale} cores={cores} "
              f"accesses/core={accesses}", flush=True)
    else:
        print(f"workload={args.workload} scale={scale} cores={cores} "
              f"accesses/core={accesses}", flush=True)
        config, layout, trace, footprint = build_context(
            args.workload, scale, cores, accesses, args.seed
        )
    print(f"trace: {trace.total_accesses} accesses total", flush=True)

    # Warm numpy's kernels so the first timed run is not penalized.
    time_engine(designs[0], config, layout, trace, footprint, "vectorized")

    failures = 0
    best = 0.0
    breakdown = {}
    width = max(9, max(len(d.value) for d in designs))
    print(f"{'design':>{width}} {'reference':>10} {'vectorized':>11} "
          f"{'speedup':>8}  identical")
    for design in designs:
        ref_s, vec_s, diffs = compare(
            design, config, layout, trace, footprint, repeat=args.repeat
        )
        speedup = ref_s / vec_s if vec_s else float("inf")
        best = max(best, speedup)
        ok = not diffs
        failures += not ok
        breakdown[design.value] = {
            "reference_s": round(ref_s, 4),
            "vectorized_s": round(vec_s, 4),
            "speedup": round(speedup, 2),
            "identical": ok,
        }
        print(f"{design.value:>{width}} {ref_s:9.2f}s {vec_s:10.2f}s "
              f"{speedup:7.2f}x  {'yes' if ok else f'NO {diffs}'}", flush=True)

    if args.json:
        payload = {
            "version": __version__,
            "workload": args.scenario or args.workload,
            "scenario": bool(args.scenario),
            "scale": scale,
            "cores": cores,
            "accesses_per_core": accesses,
            "seed": args.seed,
            "total_accesses": trace.total_accesses,
            "repeat": args.repeat,
            "designs": breakdown,
        }
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.json}")

    if failures:
        print(f"FAIL: {failures} design(s) diverged between engines")
        return 1
    if args.min_speedup is not None and best < args.min_speedup:
        print(f"FAIL: best speedup {best:.2f}x < required {args.min_speedup}x")
        return 1
    print("engines agree" + ("" if args.check else f"; best speedup {best:.2f}x"))
    return 0


if __name__ == "__main__":
    sys.exit(main())
