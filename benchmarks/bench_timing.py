"""Benchmark: vectorized timing engine vs the reference replay loop.

Runs one workload's trace through both engines under each design,
verifies the equivalence contract (every ``SimResult`` metric
bit-identical), and reports the wall-clock speedup.

Default mode replays the largest seed workload trace (kmeans: 393k
accesses at the default 50k/core budget on 8 cores).  ``--check`` is
the CI mode: a small trace, every design, equivalence enforced — it
exits nonzero on any metric divergence, and prints nothing slower than
a smoke job should be.

Usage::

    python benchmarks/bench_timing.py                  # speedup report
    python benchmarks/bench_timing.py --check          # CI equivalence
    python benchmarks/bench_timing.py --min-speedup 3  # enforce >= 3x
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.common.config import SystemConfig
from repro.common.types import Design
from repro.harness.runner import _build_layout
from repro.harness.sweep import SweepPoint, run_functional_job
from repro.system.factory import build_system
from repro.trace.generator import generate_trace
from repro.workloads import WORKLOADS

#: the largest seed trace at the default per-core access budget
DEFAULT_WORKLOAD = "kmeans"
BENCH_DESIGNS = (Design.BASELINE, Design.TRUNCATE, Design.DGANGER, Design.AVR)


def build_context(workload_name: str, scale: float, cores: int, accesses: int, seed: int):
    """Functional layer once, then the layout + trace both engines share."""
    point = SweepPoint(
        workload=workload_name, scale=scale, seed=seed,
        max_accesses_per_core=accesses,
    )
    workload = point.make()
    reference = run_functional_job(point, Design.BASELINE)
    avr = run_functional_job(point, Design.AVR)
    layout = _build_layout(workload, avr)
    config = SystemConfig.scaled(num_cores=cores)
    trace = generate_trace(
        workload.trace_spec(), reference.memory,
        num_cores=cores, max_accesses_per_core=accesses, seed=seed,
    )
    return config, layout, trace, reference.memory.footprint_bytes


def time_engine(design, config, layout, trace, footprint, engine: str):
    system = build_system(design, config, layout, footprint)
    start = time.perf_counter()
    result = system.run(trace, engine=engine)
    return time.perf_counter() - start, result


def compare(design, config, layout, trace, footprint):
    """Time both engines on ``design``; returns (ref_s, vec_s, diffs)."""
    ref_s, ref = time_engine(design, config, layout, trace, footprint, "reference")
    vec_s, vec = time_engine(design, config, layout, trace, footprint, "vectorized")
    return ref_s, vec_s, ref.metric_diffs(vec)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workload", default=DEFAULT_WORKLOAD,
                        choices=sorted(WORKLOADS))
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--cores", type=int, default=8)
    parser.add_argument("--accesses", type=int, default=50_000)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="fail unless the best per-design speedup "
                             "reaches this factor")
    parser.add_argument("--check", action="store_true",
                        help="CI mode: small trace, all designs, "
                             "equivalence enforced")
    args = parser.parse_args(argv)

    if args.check:
        scale, cores, accesses = min(args.scale, 0.15), 2, min(args.accesses, 4_000)
        designs = tuple(Design)
    else:
        scale, cores, accesses = args.scale, args.cores, args.accesses
        designs = BENCH_DESIGNS

    print(f"workload={args.workload} scale={scale} cores={cores} "
          f"accesses/core={accesses}", flush=True)
    config, layout, trace, footprint = build_context(
        args.workload, scale, cores, accesses, args.seed
    )
    print(f"trace: {trace.total_accesses} accesses total", flush=True)

    # Warm numpy's kernels so the first timed run is not penalized.
    time_engine(Design.BASELINE, config, layout, trace, footprint, "vectorized")

    failures = 0
    best = 0.0
    print(f"{'design':>9} {'reference':>10} {'vectorized':>11} "
          f"{'speedup':>8}  identical")
    for design in designs:
        ref_s, vec_s, diffs = compare(design, config, layout, trace, footprint)
        speedup = ref_s / vec_s if vec_s else float("inf")
        best = max(best, speedup)
        ok = not diffs
        failures += not ok
        print(f"{design.value:>9} {ref_s:9.2f}s {vec_s:10.2f}s "
              f"{speedup:7.2f}x  {'yes' if ok else f'NO {diffs}'}", flush=True)

    if failures:
        print(f"FAIL: {failures} design(s) diverged between engines")
        return 1
    if args.min_speedup is not None and best < args.min_speedup:
        print(f"FAIL: best speedup {best:.2f}x < required {args.min_speedup}x")
        return 1
    print("engines agree" + ("" if args.check else f"; best speedup {best:.2f}x"))
    return 0


if __name__ == "__main__":
    sys.exit(main())
