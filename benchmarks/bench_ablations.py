"""Ablations of the AVR design choices (DESIGN.md §4 inventory).

Not a paper artifact — this quantifies how much each §3 optimization
contributes: the DBUF, PFE policy, lazy evictions, the
badly-compressed-block skip counters, the CMS-LRU-follows-UCL rule
(LLC side), and the dual downsampling variants, exponent biasing and
the hybrid error check (compressor side).
"""

import pytest

from repro.harness import (
    format_table,
    run_compressor_ablations,
    run_llc_ablations,
)


@pytest.fixture(scope="module")
def llc_ablations():
    # jobs=2 exercises the sweep engine's process-pool path; results
    # are bit-identical to a serial run.
    return run_llc_ablations(
        "heat", scale=0.75, max_accesses_per_core=25_000, jobs=2
    )


def test_llc_ablations(llc_ablations, benchmark):
    results = benchmark(lambda: llc_ablations)
    full = results["full AVR"]
    rows = {
        label: {
            "time": p.cycles / full.cycles,
            "traffic": p.total_bytes / full.total_bytes,
            "AMAT": p.amat_cycles / full.amat_cycles,
            "MPKI": p.llc_mpki / max(full.llc_mpki, 1e-12),
        }
        for label, p in results.items()
    }
    print()
    print(format_table("LLC ablations (normalized to full AVR)", rows, "{:.2f}",
                       col_order=["time", "traffic", "AMAT", "MPKI"]))

    # Removing the DBUF must hurt AMAT (requests fall through to
    # compressed-block lookups or misses).
    assert results["no DBUF"].amat_cycles > full.amat_cycles
    # Removing lazy eviction forces fetch+recompress round trips.
    assert results["no lazy eviction"].total_bytes >= full.total_bytes
    # Without the CMS-LRU refresh, compressed blocks get flushed by
    # streaming UCLs: more traffic.
    assert results["no CMS-LRU refresh"].total_bytes > full.total_bytes
    # No variant beats full AVR on time by more than noise.
    for label, p in results.items():
        assert p.cycles >= full.cycles * 0.97, label


def test_compressor_ablations(benchmark):
    results = benchmark(
        run_compressor_ablations, "orbit", scale=0.25
    )
    print()
    print(format_table(
        "Compressor ablations on orbit history data",
        {k: v for k, v in results.items()},
        "{:.2f}",
        col_order=["ratio", "mean_error_pct", "success_pct"],
    ))

    full = results["full pipeline"]
    # orbit's history is a time series: the 2D placement alone loses badly,
    # which is exactly why AVR runs both variants in parallel.
    assert results["2D only"]["ratio"] < full["ratio"] * 0.75
    assert results["1D only"]["ratio"] == pytest.approx(full["ratio"], rel=0.01)
    # The strict float check flags near-zero values as outliers: lower ratio.
    assert results["strict float check"]["ratio"] < full["ratio"]
    # Every variant respects the error budget on non-failed blocks.
    for label, v in results.items():
        assert v["mean_error_pct"] < 5.0, label
