"""Figure 12: average memory access time, normalized to baseline.

Paper shape: "AVR memory latency is substantially reduced and always
lower than the compared approaches" (§4.3 summary); Doppelgänger/
Truncate see milder reductions; bscholes/wrf barely move.
"""

from repro.common.types import COMPARED_DESIGNS
from repro.harness import fig12_amat, format_table

DESIGNS = [d.value for d in COMPARED_DESIGNS]


def test_fig12(evaluations, benchmark):
    series = benchmark(fig12_amat, evaluations)
    print()
    print(format_table("Figure 12: AMAT (norm.)", series, "{:.2f}",
                       col_order=DESIGNS))

    # AVR's AMAT is the lowest (or ties) on every memory-bound workload
    for name in ("heat", "lattice", "lbm", "orbit", "kmeans"):
        row = series[name]
        assert row["AVR"] <= min(row["dganger"], row["truncate"]) + 0.02, name
        assert row["AVR"] < 0.9, name

    # ZeroAVR does not degrade memory latency
    for name in evaluations:
        assert series[name]["ZeroAVR"] < 1.05, name
