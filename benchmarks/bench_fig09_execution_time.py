"""Figure 9: execution time normalized to baseline.

Paper shape: AVR achieves 40-55% reductions on heat/lattice/lbm, ~20%
on orbit, moderate gains on kmeans, negligible on bscholes/wrf;
ZeroAVR tracks the baseline; Truncate sits between baseline and AVR on
highly-compressible workloads.
"""

from repro.common.types import COMPARED_DESIGNS
from repro.harness import GEOMEAN, fig09_execution_time, format_table

DESIGNS = [d.value for d in COMPARED_DESIGNS]


def test_fig09(evaluations, benchmark):
    series = benchmark(fig09_execution_time, evaluations)
    print()
    print(format_table("Figure 9: execution time (norm.)", series, "{:.2f}",
                       col_order=DESIGNS))

    # AVR speeds up the memory-bound compressible workloads...
    for name in ("heat", "lattice", "lbm"):
        assert series[name]["AVR"] < 0.85, name
        # ...and beats Truncate there (higher compression ratio)
        assert series[name]["AVR"] < series[name]["truncate"] + 0.02, name

    # Compute-bound bscholes is insensitive for every design
    for design in DESIGNS:
        assert abs(series["bscholes"][design] - 1.0) < 0.1, design

    # wrf: little approximable data -> negligible impact
    assert series["wrf"]["AVR"] > 0.9

    # ZeroAVR never adds notable overhead (paper: <= ~2%)
    for name in evaluations:
        assert series[name]["ZeroAVR"] < 1.05, name

    # Overall: AVR has the best geomean
    assert series[GEOMEAN]["AVR"] == min(series[GEOMEAN][d] for d in DESIGNS)
