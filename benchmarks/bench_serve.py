"""Benchmark: the evaluation service vs sequential one-shot runs.

Simulates the service's target situation — several users evaluating
overlapping design-space slices at the same time.  ``N`` clients each
submit a two-workload experiment sharing one workload (a 50% overlap
mix: everyone wants ``heat``, plus one private workload each), first
as ``N`` sequential one-shot ``run_experiment`` calls with isolated
caches (what those users do *without* the daemon), then concurrently
against one live :class:`~repro.serve.daemon.EvalDaemon`.

The daemon wins twice: the shared workload's units execute **once**
for all clients (cross-client dedup — the scheduler's
``units_launched``/``units_deduped`` rollup is recorded as evidence),
and independent units from different clients run side by side on the
shared worker pool.  The headline number is the aggregate speedup:
summed sequential wall time divided by the concurrent window.

``--check`` is the CI mode: smoke-scale specs, asserting the speedup
clears ``--min-speedup`` (default 1.5x) and that the shared units
really were launched exactly once.  ``--json`` records the breakdown;
the repo's ``BENCH_serve.json`` is ``--json BENCH_serve.json``.

Usage::

    python benchmarks/bench_serve.py                 # default scale
    python benchmarks/bench_serve.py --clients 4     # wider mix
    python benchmarks/bench_serve.py --check         # CI assertion
    python benchmarks/bench_serve.py --json out.json # record results
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import tempfile
import threading
import time
from pathlib import Path

from repro import __version__
from repro.experiment import ExperimentSpec, run_experiment
from repro.serve import EvalDaemon, ServeClient

#: every client wants this workload — the dedup opportunity
SHARED_WORKLOAD = "heat"
#: one private workload per client, in assignment order
UNIQUE_WORKLOADS = ("lattice", "kmeans", "bscholes", "orbit", "lbm", "wrf")


def client_specs(clients: int, scale: float, accesses: int) -> list[ExperimentSpec]:
    """One two-workload spec per client: the shared one + a private one."""
    if clients > len(UNIQUE_WORKLOADS):
        raise SystemExit(
            f"at most {len(UNIQUE_WORKLOADS)} clients "
            f"(one unique workload each)"
        )
    return [
        ExperimentSpec(
            name=f"serve-bench-{i}",
            workloads=(SHARED_WORKLOAD, UNIQUE_WORKLOADS[i]),
            designs=("baseline", "AVR"),
            scales=(scale,),
            max_accesses_per_core=accesses,
            num_cores=2,
        )
        for i in range(clients)
    ]


def run_sequential(specs: list[ExperimentSpec], scratch: Path) -> float:
    """The no-daemon baseline: one-shot runs, isolated caches; summed wall."""
    total = 0.0
    for i, spec in enumerate(specs):
        start = time.perf_counter()
        run_experiment(spec, jobs=1, cache_dir=scratch / f"solo-{i}")
        elapsed = time.perf_counter() - start
        total += elapsed
        print(f"  sequential {spec.name}: {elapsed:.1f}s", flush=True)
    return total


def run_served(
    specs: list[ExperimentSpec], scratch: Path, workers: int
) -> tuple[float, list[dict], dict]:
    """All clients at once against one daemon; the concurrent window."""
    daemon = EvalDaemon(
        cache_dir=scratch / "served-cache", port=0, workers=workers
    )
    loop = asyncio.new_event_loop()
    thread = threading.Thread(target=loop.run_forever, daemon=True)
    thread.start()
    asyncio.run_coroutine_threadsafe(daemon.start(), loop).result(timeout=60)
    outcomes: list[dict] = [{} for _ in specs]

    def drive(index: int, spec: ExperimentSpec, barrier: threading.Barrier):
        with ServeClient(port=daemon.port) as client:
            barrier.wait(timeout=60)
            outcomes[index] = client.wait(
                client.submit(spec.to_mapping())
            )["stats"]

    try:
        barrier = threading.Barrier(len(specs) + 1)
        threads = [
            threading.Thread(target=drive, args=(i, spec, barrier))
            for i, spec in enumerate(specs)
        ]
        for worker in threads:
            worker.start()
        barrier.wait(timeout=60)
        start = time.perf_counter()
        for worker in threads:
            worker.join()
        window = time.perf_counter() - start
        rollup = daemon.scheduler.stats.as_mapping()
    finally:
        asyncio.run_coroutine_threadsafe(daemon.shutdown(), loop).result(
            timeout=60
        )
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=10)
        loop.close()
    return window, outcomes, rollup


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--clients", type=int, default=None,
                        help="concurrent submissions (default 3; "
                             "--check 4)")
    parser.add_argument("--workers", type=int, default=2,
                        help="daemon worker processes (default 2)")
    parser.add_argument("--scale", type=float, default=None,
                        help="workload scale (default 0.25; --check 0.12)")
    parser.add_argument("--accesses", type=int, default=None,
                        help="trace budget per core (default 10000; "
                             "--check 2000)")
    parser.add_argument("--json", metavar="PATH",
                        help="write the comparison as JSON")
    parser.add_argument("--min-speedup", type=float, default=1.5,
                        help="--check fails below this aggregate speedup")
    parser.add_argument("--check", action="store_true",
                        help="CI mode: smoke scale, speedup and "
                             "exactly-once dedup enforced")
    args = parser.parse_args(argv)

    # check mode needs units big enough that the daemon's fixed costs
    # (pool spawn, connections) do not swamp the dedup win, and enough
    # clients that the shared workload amortizes visibly
    clients = args.clients if args.clients is not None else (
        4 if args.check else 3
    )
    scale = args.scale if args.scale is not None else (
        0.3 if args.check else 0.25
    )
    accesses = args.accesses if args.accesses is not None else (
        16_000 if args.check else 10_000
    )
    specs = client_specs(clients, scale, accesses)
    mix = ", ".join(
        "+".join(spec.workloads) for spec in specs
    )
    print(f"{clients} client(s), {args.workers} worker(s), "
          f"scale {scale}, {accesses} accesses/core", flush=True)
    print(f"mix: {mix}  (shared: {SHARED_WORKLOAD})", flush=True)

    with tempfile.TemporaryDirectory() as tmp:
        scratch = Path(tmp)
        print("sequential one-shot baseline:", flush=True)
        sequential_s = run_sequential(specs, scratch)
        print("concurrent against the daemon:", flush=True)
        served_s, stats, rollup = run_served(specs, scratch, args.workers)

    launched = rollup["units_launched"]
    deduped = rollup["units_deduped"]
    #: what N isolated users execute: every client's whole unit set,
    #: shared or not (served clients cover theirs by launch + join + hit)
    sequential_units = sum(
        s.get("executed", 0) + s.get("units_deduped", 0)
        + s.get("cache_hits", 0)
        for s in stats
    )
    speedup = sequential_s / served_s if served_s > 0 else float("inf")
    print(f"  window: {served_s:.1f}s for {launched} distinct unit(s), "
          f"{deduped} join(s)", flush=True)
    print()
    print(f"sequential {sequential_s:.1f}s  served {served_s:.1f}s  "
          f"speedup {speedup:.2f}x  "
          f"({sequential_units} -> {launched} unit executions)")

    if args.json:
        payload = {
            "version": __version__,
            "clients": clients,
            "workers": args.workers,
            "shared_workload": SHARED_WORKLOAD,
            "mix": [list(spec.workloads) for spec in specs],
            "scale": scale,
            "accesses_per_core": accesses,
            "units_launched": launched,
            "units_deduped": deduped,
            "client_stats": stats,
            "sequential_s": round(sequential_s, 2),
            "served_s": round(served_s, 2),
            "speedup": round(speedup, 2),
        }
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.json}")

    if args.check:
        if launched >= sequential_units:
            # shared units must execute once for everyone, so the
            # daemon's launch count has to undercut N isolated runs
            print(f"FAIL: no dedup win (launched {launched} of "
                  f"{sequential_units} sequential unit executions)")
            return 1
        if speedup < args.min_speedup:
            print(f"FAIL: speedup {speedup:.2f}x < required "
                  f"{args.min_speedup}x")
            return 1
        print("serve check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
