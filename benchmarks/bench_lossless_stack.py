"""Lossless stacking study (paper §4.1's orthogonality remark).

"The downsampled values and outliers of an AVR compressed block could
be further compressed in a lossless way" — this measures how much a
BDI lossless layer adds on top of AVR for each workload's real data.
Not a paper artifact; quantifies the orthogonality claim.
"""

import numpy as np

from repro.common.constants import VALUES_PER_BLOCK
from repro.common.types import Design
from repro.compression import AVRCompressor, stacked_ratio
from repro.harness import SweepPoint, format_table, run_functional_job

WORKLOADS = ("heat", "orbit", "kmeans")
SAMPLE_BLOCKS = 192


def sampled_blocks(name: str) -> np.ndarray:
    # The baseline run is the sweep engine's functional job unit, so
    # this samples exactly the data an evaluation sweep would cache.
    point = SweepPoint(name, scale=0.5)
    workload = point.make()
    reference = run_functional_job(point, Design.BASELINE)
    arrays = [
        r.array.ravel() for r in reference.memory.regions.values() if r.approx
    ]
    flat = np.concatenate(arrays).astype(np.float32)
    nblocks = min(SAMPLE_BLOCKS, flat.size // VALUES_PER_BLOCK)
    rng = np.random.default_rng(0)
    idx = rng.choice(flat.size // VALUES_PER_BLOCK, nblocks, replace=False)
    return np.stack(
        [flat[i * VALUES_PER_BLOCK : (i + 1) * VALUES_PER_BLOCK] for i in idx]
    ), workload


def test_lossless_stacking(benchmark):
    rows = {}
    comps = {}
    for name in WORKLOADS:
        blocks, workload = sampled_blocks(name)
        comps[name] = (blocks, AVRCompressor(workload.default_thresholds))

    def run():
        return {
            name: stacked_ratio(blocks, comp)
            for name, (blocks, comp) in comps.items()
        }

    results = benchmark(run)
    rows = {name: r for name, r in results.items()}
    print()
    print(format_table(
        "Lossless (BDI) stacked on AVR — compression ratios",
        rows, "{:.1f}", col_order=["avr_ratio", "bdi_ratio", "stacked_ratio"],
    ))

    for name, r in results.items():
        # stacking never loses (BDI falls back to raw lines)
        assert r["stacked_ratio"] >= r["avr_ratio"] * 0.99, name
        # and AVR alone beats lossless alone on approximable float data
        assert r["avr_ratio"] >= r["bdi_ratio"] * 0.9, name
