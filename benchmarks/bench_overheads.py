"""§4.2 hardware overheads: CMT/TLB bits and AVR LLC tag/BPA storage.

Paper figures: 93 bits per page (~2x a TLB entry), 18 extra bits per
LLC entry, ~3% LLC overhead, compressor ~200k cells (not modelled).
"""

from repro.common.config import SystemConfig
from repro.harness import hardware_overheads


def test_overheads(benchmark):
    o = benchmark(hardware_overheads, SystemConfig.paper())
    print()
    print("Hardware overheads (paper §4.2):")
    for key, value in o.items():
        print(f"  {key:28s} {value:10.3f}")

    assert o["cmt_bits_per_page"] == 93
    assert 1.0 < o["tlb_overhead_factor"] < 1.2
    assert o["llc_extra_bits_per_entry"] == 18
    # 18 bits per 64 B entry = 3.5% of the data array
    assert 0.02 < o["llc_overhead_fraction"] < 0.05
