"""Benchmark: vectorized trace synthesis vs the reference fragment loop.

Generates one workload's multi-core trace with both generator
implementations, verifies bit-identity, and reports the wall-clock
ratio; then measures the trace store's warm path — memory-mapping a
committed entry vs generating (and committing) it cold.

Default mode stresses the generators where the reference loop hurts
most: a fine-grained heat variant (25k short iterations on a small
grid, 8 cores, 600k accesses/core ≈ 4.8M accesses total) whose
per-fragment work is tiny, so the reference loop's per-(iteration,
phase) Python overhead dominates.  ``--check`` is the CI mode: a small
differential matrix over every workload x both jitter-stream modes
plus one heterogeneous scenario mix through full composition, each
case enforced bit-identical, and a store round-trip asserting the warm
run maps (not regenerates) the composed trace.  The repo's
``BENCH_trace_synthesis.json`` is ``--repeat 3 --json
BENCH_trace_synthesis.json``.

Usage::

    python benchmarks/bench_trace_synthesis.py              # full numbers
    python benchmarks/bench_trace_synthesis.py --check      # CI matrix
    python benchmarks/bench_trace_synthesis.py --min-speedup 10 \
        --min-warm-speedup 20                               # enforce floors
    python benchmarks/bench_trace_synthesis.py --json out.json
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro import __version__
from repro.approx.memory import ApproxMemory
from repro.trace.generator import generate_trace
from repro.trace.store import TraceStore, trace_key
from repro.workloads import WORKLOADS

#: default stress configuration: many tiny iterations make fragment
#: dispatch (not array arithmetic) the reference loop's bottleneck
DEFAULT_WORKLOAD = "heat"
DEFAULT_SCALE = 0.0625
DEFAULT_ITERATIONS = 25_000
DEFAULT_CORES = 8
DEFAULT_ACCESSES = 600_000


def allocate_only(workload) -> ApproxMemory:
    """The workload's region layout without running its computation.

    Trace generation consumes only region geometry (names, base
    addresses, sizes), so the functional execute step — the expensive
    part — is skipped entirely.
    """
    mem = ApproxMemory()
    workload.allocate(mem)
    return mem


def traces_identical(a, b) -> bool:
    return (
        a.iterations_simulated == b.iterations_simulated
        and a.iterations_total == b.iterations_total
        and len(a.cores) == len(b.cores)
        and all(
            x.dtype == y.dtype and np.array_equal(x, y)
            for x, y in zip(a.cores, b.cores)
        )
    )


def time_generator(spec, mem, cores, accesses, seed, generator, repeat):
    """Best-of-N wall clock plus the (deterministic) generated trace."""
    best = float("inf")
    trace = None
    for _ in range(repeat):
        start = time.perf_counter()
        trace = generate_trace(
            spec, mem, num_cores=cores,
            max_accesses_per_core=accesses, seed=seed, generator=generator,
        )
        best = min(best, time.perf_counter() - start)
    return best, trace


def bench_store(spec, mem, cores, accesses, seed, trace, repeat, store_dir):
    """Cold (generate + commit) vs warm (memory-map) acquisition."""
    key = trace_key(spec, mem, cores, accesses, seed)
    cold_s = warm_s = float("inf")
    mapped = None
    for _ in range(repeat):
        with tempfile.TemporaryDirectory(dir=store_dir) as tmp:
            store = TraceStore(tmp)
            start = time.perf_counter()
            store.get_or_generate(
                key,
                lambda: generate_trace(
                    spec, mem, num_cores=cores,
                    max_accesses_per_core=accesses, seed=seed,
                ),
            )
            cold_s = min(cold_s, time.perf_counter() - start)
            start = time.perf_counter()
            mapped = store.get(key)
            warm_s = min(warm_s, time.perf_counter() - start)
    identical = mapped is not None and traces_identical(mapped, trace)
    return cold_s, warm_s, identical


# ----------------------------------------------------------------------
# CI differential matrix
# ----------------------------------------------------------------------
def check_workloads(scale: float, accesses: int) -> list[str]:
    """Every workload x stream mode: vectorized == reference, bitwise."""
    failures = []
    for name, cls in sorted(WORKLOADS.items()):
        workload = cls(scale=scale)
        spec, mem = workload.trace_spec(), allocate_only(workload)
        for per_core_streams in (False, True):
            kwargs = dict(
                num_cores=4, max_accesses_per_core=accesses, seed=0,
                per_core_streams=per_core_streams,
            )
            vec = generate_trace(spec, mem, generator="vectorized", **kwargs)
            ref = generate_trace(spec, mem, generator="reference", **kwargs)
            if not traces_identical(vec, ref):
                failures.append(
                    f"{name} (per_core_streams={per_core_streams}) diverged"
                )
    return failures


def check_scenario(scale: float, accesses: int) -> list[str]:
    """One heterogeneous mix: cold composition == warm memory-mapped."""
    from repro.harness.scenario import scenario_timing_context

    failures = []
    with tempfile.TemporaryDirectory() as tmp:
        store = TraceStore(tmp)
        _, _, cold, _ = scenario_timing_context(
            "kmeans*2+heat@2",
            seed=0, max_accesses_per_core=accesses, store=store,
        )
        if store.stats.stores != 1:
            failures.append(
                f"cold scenario run committed {store.stats.stores} "
                f"trace(s), expected 1"
            )
        warm_store = TraceStore(tmp)
        _, _, warm, _ = scenario_timing_context(
            "kmeans*2+heat@2",
            seed=0, max_accesses_per_core=accesses, store=warm_store,
        )
        if warm_store.stats.hits != 1 or warm_store.stats.stores != 0:
            failures.append(
                f"warm scenario run hit={warm_store.stats.hits} "
                f"stored={warm_store.stats.stores}, expected a pure map"
            )
        if not traces_identical(cold, warm):
            failures.append("scenario mix trace diverged cold vs warm")
    return failures


def run_check(scale: float, accesses: int) -> int:
    failures = check_workloads(scale, accesses)
    failures += check_scenario(scale, accesses)
    matrix = len(WORKLOADS) * 2
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print(f"generators agree: {matrix} workload cases + 1 scenario mix "
          f"(composed, stored, mapped) bit-identical")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workload", default=DEFAULT_WORKLOAD,
                        choices=sorted(WORKLOADS))
    parser.add_argument("--scale", type=float, default=DEFAULT_SCALE)
    parser.add_argument("--iterations", type=int, default=DEFAULT_ITERATIONS,
                        help="workload iteration-count override (heat/"
                             "kmeans-style kwarg); 0 = workload default")
    parser.add_argument("--cores", type=int, default=DEFAULT_CORES)
    parser.add_argument("--accesses", type=int, default=DEFAULT_ACCESSES)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--repeat", type=int, default=1,
                        help="time each path N times, report the best")
    parser.add_argument("--store-dir", default=None, metavar="PATH",
                        help="parent directory for the throwaway store "
                             "(default: the system temp dir)")
    parser.add_argument("--json", metavar="PATH",
                        help="write the measurements as JSON")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="fail unless vectorized/reference reaches this")
    parser.add_argument("--min-warm-speedup", type=float, default=None,
                        help="fail unless warm-map/cold-generate reaches this")
    parser.add_argument("--check", action="store_true",
                        help="CI mode: small differential matrix over all "
                             "workloads + one scenario mix, store asserted")
    args = parser.parse_args(argv)

    if args.check:
        return run_check(scale=0.15, accesses=2_500)

    kwargs = {"iterations": args.iterations} if args.iterations else {}
    try:
        workload = WORKLOADS[args.workload](scale=args.scale, **kwargs)
    except TypeError:
        workload = WORKLOADS[args.workload](scale=args.scale)
    spec, mem = workload.trace_spec(), allocate_only(workload)

    # Warm numpy (and the generators' dispatch) before timing.
    generate_trace(spec, mem, num_cores=args.cores,
                   max_accesses_per_core=min(args.accesses, 10_000),
                   seed=args.seed)

    ref_s, ref = time_generator(
        spec, mem, args.cores, args.accesses, args.seed, "reference",
        args.repeat,
    )
    vec_s, vec = time_generator(
        spec, mem, args.cores, args.accesses, args.seed, "vectorized",
        args.repeat,
    )
    identical = traces_identical(vec, ref)
    speedup = ref_s / vec_s if vec_s else float("inf")
    print(f"workload={args.workload} scale={args.scale} cores={args.cores} "
          f"accesses/core={args.accesses} "
          f"({vec.total_accesses} accesses total)")
    print(f"  reference  {ref_s:8.3f}s")
    print(f"  vectorized {vec_s:8.3f}s  ({speedup:.1f}x, "
          f"{'bit-identical' if identical else 'DIVERGED'})")

    cold_s, warm_s, mapped_ok = bench_store(
        spec, mem, args.cores, args.accesses, args.seed, vec,
        args.repeat, args.store_dir,
    )
    warm_speedup = cold_s / warm_s if warm_s else float("inf")
    print(f"  store cold {cold_s:8.3f}s  (generate + commit)")
    print(f"  store warm {warm_s:8.3f}s  ({warm_speedup:.1f}x, memory-"
          f"mapped, {'bit-identical' if mapped_ok else 'DIVERGED'})")

    if args.json:
        payload = {
            "version": __version__,
            "workload": args.workload,
            "scale": args.scale,
            "workload_kwargs": kwargs,
            "cores": args.cores,
            "accesses_per_core": args.accesses,
            "seed": args.seed,
            "total_accesses": vec.total_accesses,
            "repeat": args.repeat,
            "generator": {
                "reference_s": round(ref_s, 4),
                "vectorized_s": round(vec_s, 4),
                "speedup": round(speedup, 2),
                "identical": identical,
            },
            "store": {
                "cold_s": round(cold_s, 4),
                "warm_s": round(warm_s, 4),
                "warm_speedup": round(warm_speedup, 2),
                "identical": mapped_ok,
            },
        }
        Path(args.json).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.json}")

    if not identical or not mapped_ok:
        print("FAIL: traces diverged")
        return 1
    if args.min_speedup is not None and speedup < args.min_speedup:
        print(f"FAIL: generator speedup {speedup:.2f}x < "
              f"required {args.min_speedup}x")
        return 1
    if args.min_warm_speedup is not None and warm_speedup < args.min_warm_speedup:
        print(f"FAIL: warm-store speedup {warm_speedup:.2f}x < "
              f"required {args.min_warm_speedup}x")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
