"""Benchmark: batched warm-path cache reads vs per-key probing.

Seeds a result cache with a real (micro) workload sweep, then probes
it the two ways the harness historically could:

* **naive** — one ``peek`` per key, the pre-backend warm path: every
  probe costs a payload ``open`` attempt, *including the misses* (a
  sweep's warm path probes far more keys than it stores — absent keys
  dominate on partially-warm caches and planner surrogate harvests).
* **batched** — one ``peek_many`` over the same keys: per-shard
  ``index.jsonl`` scans answer every absent key for free, and only
  actual hits open payload files.

Reported numbers:

* **opens_ratio** — naive payload-open attempts divided by batched
  (deterministic: probe count vs hit count),
* **speedup** — naive wall time divided by batched wall time,
* **memory_speedup** — disk ``get_many`` vs the in-RAM re-read the
  ``memory`` backend tier serves.

``--check`` is the CI mode: it passes when ``opens_ratio >= 5`` OR
``speedup >= 3`` — the repo's pinned warm-path win.  ``--json``
records the run; the repo's ``BENCH_cache.json`` is
``--json BENCH_cache.json``.

Usage::

    python benchmarks/bench_cache.py                  # default probe mix
    python benchmarks/bench_cache.py --absent 39      # more misses/hit
    python benchmarks/bench_cache.py --check          # CI assertion
    python benchmarks/bench_cache.py --json out.json  # record results
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
import tempfile
import time

from repro import __version__
from repro.common.config import SystemConfig
from repro.harness import evaluate_workload
from repro.harness.cache import MemoryTierBackend, ShardedFileBackend

#: the micro sweep that seeds the cache (the test suite's smoke scale)
SEED_SWEEP = dict(
    name="heat",
    scale=0.12,
    max_accesses_per_core=2_000,
    designs=("AVR", "truncate"),
)

_MISS = object()


def probe_keys(real: list[str], absent_per_real: int) -> list[str]:
    """The probe mix: every real key plus deterministic absent ones."""
    probes = list(real)
    for i in range(len(real) * absent_per_real):
        probes.append(hashlib.sha256(f"absent-{i}".encode()).hexdigest())
    return sorted(probes)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--absent", type=int, default=19, metavar="N",
                        help="absent keys probed per real key "
                             "(default 19: a 5%% hit-rate warm path)")
    parser.add_argument("--repeat", type=int, default=5,
                        help="timing repetitions; the fastest counts")
    parser.add_argument("--jobs", type=int, default=1,
                        help="sweep worker processes for the seeding run")
    parser.add_argument("--cache-dir", metavar="PATH", default=None,
                        help="cache directory to seed and probe "
                             "(default: a temporary directory)")
    parser.add_argument("--json", metavar="PATH",
                        help="write the comparison as JSON")
    parser.add_argument("--min-opens-ratio", type=float, default=5.0,
                        help="--check fails below this opens ratio "
                             "unless --min-speedup is met")
    parser.add_argument("--min-speedup", type=float, default=3.0,
                        help="--check fails below this speedup unless "
                             "--min-opens-ratio is met")
    parser.add_argument("--check", action="store_true",
                        help="CI mode: enforce the warm-path win")
    args = parser.parse_args(argv)

    config = SystemConfig.scaled(num_cores=2)
    with tempfile.TemporaryDirectory() as scratch:
        root = args.cache_dir or scratch
        evaluate_workload(
            SEED_SWEEP["name"], config=config, scale=SEED_SWEEP["scale"],
            max_accesses_per_core=SEED_SWEEP["max_accesses_per_core"],
            designs=SEED_SWEEP["designs"], jobs=args.jobs, cache_dir=root,
            trace_store="off",
        )
        real = ShardedFileBackend(root).keys()
        probes = probe_keys(real, args.absent)
        print(f"seeded {len(real)} entr(ies); probing {len(probes)} key(s) "
              f"({len(probes) - len(real)} absent)", flush=True)

        naive_s, batched_s = float("inf"), float("inf")
        for _ in range(args.repeat):
            naive = ShardedFileBackend(root)
            start = time.perf_counter()
            hits = {
                key: value for key in probes
                if (value := naive.peek(key, _MISS)) is not _MISS
            }
            naive_s = min(naive_s, time.perf_counter() - start)
            naive_opens = naive.stats.file_opens

            batched = ShardedFileBackend(root)
            start = time.perf_counter()
            bulk = batched.peek_many(probes)
            batched_s = min(batched_s, time.perf_counter() - start)
            batched_opens = batched.stats.file_opens
            # Values hold numpy arrays (no dict ==); the differential
            # tests pin payload identity, the bench pins coverage.
            assert set(bulk) == set(hits), \
                "peek_many diverged from per-key peeks"

        disk_s, ram_s = float("inf"), float("inf")
        for _ in range(args.repeat):
            start = time.perf_counter()
            ShardedFileBackend(root).get_many(real)
            disk_s = min(disk_s, time.perf_counter() - start)

            tier = MemoryTierBackend(ShardedFileBackend(root))
            tier.get_many(real)  # populate the RAM tier
            start = time.perf_counter()
            tier.get_many(real)
            ram_s = min(ram_s, time.perf_counter() - start)

    opens_ratio = naive_opens / max(1, batched_opens)
    speedup = naive_s / batched_s if batched_s else float("inf")
    memory_speedup = disk_s / ram_s if ram_s else float("inf")

    print(f"naive:   {naive_opens} open attempt(s), {naive_s * 1e3:.1f} ms")
    print(f"batched: {batched_opens} open attempt(s), "
          f"{batched_s * 1e3:.1f} ms")
    print(f"opens_ratio {opens_ratio:.1f}x  speedup {speedup:.1f}x  "
          f"memory re-read {memory_speedup:.1f}x "
          f"({disk_s * 1e3:.2f} ms disk -> {ram_s * 1e3:.2f} ms RAM)")

    if args.json:
        payload = {
            "version": __version__,
            "entries": len(real),
            "probes": len(probes),
            "naive_opens": naive_opens,
            "batched_opens": batched_opens,
            "opens_ratio": round(opens_ratio, 2),
            "naive_ms": round(naive_s * 1e3, 3),
            "batched_ms": round(batched_s * 1e3, 3),
            "speedup": round(speedup, 2),
            "disk_ms": round(disk_s * 1e3, 3),
            "ram_ms": round(ram_s * 1e3, 3),
            "memory_speedup": round(memory_speedup, 2),
        }
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.json}")

    if args.check:
        if opens_ratio < args.min_opens_ratio and speedup < args.min_speedup:
            print(f"FAIL: opens_ratio {opens_ratio:.1f}x < "
                  f"{args.min_opens_ratio}x and speedup {speedup:.1f}x < "
                  f"{args.min_speedup}x")
            return 1
        print("cache check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
