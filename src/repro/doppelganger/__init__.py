"""Doppelgänger approximate-dedup cache model (comparison design)."""

from .dganger import DedupStats, dedup_roundtrip, line_signatures

__all__ = ["DedupStats", "dedup_roundtrip", "line_signatures"]
