"""Functional model of the Doppelgänger approximate-dedup cache [39].

Doppelgänger deduplicates *similar* cachelines: lines whose approximate
signature (derived from their value range) matches share a single data
entry, and every sharer reads back the representative's values.

The signature model here quantizes each line's mean and spread into
buckets whose width scales with the *dataset's* value span (the
"expected value span" the paper refers to).  This reproduces both
behaviours reported for Doppelgänger in the AVR evaluation:

* on smooth, narrow-span data (heat, lattice) buckets are fine and the
  introduced error is small while dedup is plentiful;
* on wide-span data (lbm velocities, orbit coordinates) lines at the
  extreme edges of a bucket are declared "approximately equal" despite
  very different absolute values, yielding runaway output error.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..common.constants import VALUES_PER_CACHELINE


@dataclass
class DedupStats:
    """Outcome of one dedup pass over a region."""

    total_lines: int
    unique_lines: int

    @property
    def dedup_factor(self) -> float:
        """Lines mapped per stored line (>= 1)."""
        return self.total_lines / self.unique_lines if self.unique_lines else 1.0


def line_signatures(
    lines: np.ndarray, bucket_width: float
) -> np.ndarray:
    """Approximate signature of each cacheline.

    ``lines`` is ``(nlines, 16)`` float32.  The signature combines the
    bucketed mean and bucketed min-max spread of the line; lines with
    equal signatures are deduplicated.
    """
    if bucket_width <= 0:
        raise ValueError(f"bucket_width must be positive, got {bucket_width}")
    means = lines.mean(axis=1, dtype=np.float64)
    spreads = (lines.max(axis=1) - lines.min(axis=1)).astype(np.float64)
    qm = np.floor(means / bucket_width).astype(np.int64)
    qs = np.floor(spreads / bucket_width).astype(np.int64)
    # Combine into one 64-bit key (means dominate; spreads disambiguate).
    return qm * np.int64(1 << 20) + qs


def dedup_roundtrip(
    array: np.ndarray, similarity_threshold: float = 0.02
) -> tuple[np.ndarray, DedupStats]:
    """Round-trip a float array through Doppelgänger deduplication.

    ``similarity_threshold`` scales the signature bucket width relative
    to the array's global value span, mirroring the design's map/reduce
    hash tuned to the expected data range.  Returns the approximated
    array (same shape) and dedup statistics.
    """
    values = np.asarray(array, dtype=np.float32).ravel()
    nlines = values.size // VALUES_PER_CACHELINE
    if nlines == 0:
        return np.array(array, dtype=np.float32, copy=True), DedupStats(0, 0)
    head = values[: nlines * VALUES_PER_CACHELINE].reshape(nlines, VALUES_PER_CACHELINE)

    finite = head[np.isfinite(head)]
    span = float(finite.max() - finite.min()) if finite.size else 0.0
    if span == 0.0:
        # Degenerate constant data: every line dedups to one entry, no error.
        out = values.copy()
        stats = DedupStats(nlines, 1)
        return out.reshape(np.asarray(array).shape), stats

    bucket = span * similarity_threshold
    sigs = line_signatures(head, bucket)
    # First occurrence of each signature becomes the representative.
    _, rep_idx, inverse = np.unique(sigs, return_index=True, return_inverse=True)
    approx = head[rep_idx][inverse]

    out = values.copy()
    out[: nlines * VALUES_PER_CACHELINE] = approx.ravel()
    stats = DedupStats(nlines, int(rep_idx.size))
    return out.reshape(np.asarray(array).shape), stats
