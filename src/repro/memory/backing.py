"""Byte-addressable backing store holding AVR memory-block images.

Models main memory *contents* (as opposed to :mod:`repro.memory.dram`,
which models timing): each 1 KB block slot stores either the 16
uncompressed cachelines (Fig. 2b) or a compressed image — summary,
bitmap, outliers — followed by lazily-evicted uncompressed cachelines
in the slot's free space (Fig. 2a).  Metadata (method, bias, size,
lazy directory) lives beside it the way the CMT does in hardware.

This substrate provides the byte-accurate end-to-end path used by the
format tests and the `memory_image` example: values -> compress ->
pack -> store -> fetch -> unpack -> decompress -> values, including
lazy-line overlay on reconstruction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..common.constants import (
    BLOCK_BYTES,
    BLOCK_CACHELINES,
    CACHELINE_BYTES,
    VALUES_PER_BLOCK,
    VALUES_PER_CACHELINE,
)
from ..common.types import CompressionMethod, DataType, ErrorThresholds
from ..compression.block import CompressedBlock
from ..compression.compressor import AVRCompressor


@dataclass
class _Slot:
    """One 1 KB block slot plus its metadata."""

    data: np.ndarray  # (1024,) uint8 image of the slot
    method: CompressionMethod = CompressionMethod.UNCOMPRESSED
    bias: int = 0
    size_cachelines: int = BLOCK_CACHELINES
    #: cacheline offsets of lazily evicted lines, in storage order —
    #: entry i lives at slot cacheline ``size_cachelines + i``
    lazy_lines: list[int] = field(default_factory=list)

    @property
    def compressed(self) -> bool:
        return self.size_cachelines < BLOCK_CACHELINES

    @property
    def lazy_capacity(self) -> int:
        return BLOCK_CACHELINES - self.size_cachelines if self.compressed else 0


class BackingStore:
    """Sparse physical memory at memory-block granularity."""

    def __init__(
        self,
        compressor: AVRCompressor | None = None,
        dtype: DataType = DataType.FLOAT32,
    ) -> None:
        self.compressor = compressor or AVRCompressor(ErrorThresholds())
        self.dtype = dtype
        self._slots: dict[int, _Slot] = {}

    # ------------------------------------------------------------------
    def _np_dtype(self) -> type[np.floating] | type[np.integer]:
        return np.float32 if self.dtype == DataType.FLOAT32 else np.int32

    def _slot(self, block_addr: int) -> _Slot:
        if block_addr % BLOCK_BYTES:
            raise ValueError(f"0x{block_addr:x} is not block aligned")
        slot = self._slots.get(block_addr)
        if slot is None:
            slot = _Slot(data=np.zeros(BLOCK_BYTES, dtype=np.uint8))
            self._slots[block_addr] = slot
        return slot

    @property
    def num_blocks(self) -> int:
        return len(self._slots)

    def stored_cachelines(self, block_addr: int) -> int:
        """Cachelines the block currently occupies (compressed + lazy)."""
        slot = self._slots.get(block_addr)
        if slot is None:
            return 0
        if not slot.compressed:
            return BLOCK_CACHELINES
        return slot.size_cachelines + len(slot.lazy_lines)

    # ------------------------------------------------------------------
    # whole-block operations
    # ------------------------------------------------------------------
    def write_block(self, block_addr: int, values: np.ndarray) -> bool:
        """Compress-and-store one block of 256 values.

        Returns True when the block was stored compressed.  A failed
        compression stores the values verbatim (Fig. 2b).
        """
        values = np.asarray(values, dtype=self._np_dtype())
        if values.shape != (VALUES_PER_BLOCK,):
            raise ValueError(f"expected ({VALUES_PER_BLOCK},), got {values.shape}")
        slot = self._slot(block_addr)
        block, _recon = self.compressor.compress_block(values, self.dtype)
        slot.lazy_lines.clear()
        if block is None:
            slot.method = CompressionMethod.UNCOMPRESSED
            slot.bias = 0
            slot.size_cachelines = BLOCK_CACHELINES
            slot.data[:] = values.view(np.uint8)
            return False
        image = np.frombuffer(block.pack(), dtype=np.uint8)
        slot.method = block.method
        slot.bias = block.bias
        slot.size_cachelines = block.size_cachelines
        slot.data[: image.size] = image
        slot.data[image.size :] = 0
        return True

    def read_block(self, block_addr: int) -> np.ndarray:
        """Fetch, decompress and lazy-overlay one block -> 256 values."""
        slot = self._slot(block_addr)
        if not slot.compressed:
            return slot.data.view(self._np_dtype()).copy()
        block = CompressedBlock.unpack(
            slot.data.tobytes(), slot.method, slot.bias, slot.size_cachelines
        )
        values = self.compressor.decompress_block(block, self.dtype)
        # Lazily evicted lines override the decompressed content.
        for i, line_off in enumerate(slot.lazy_lines):
            src = (slot.size_cachelines + i) * CACHELINE_BYTES
            raw = slot.data[src : src + CACHELINE_BYTES].view(self._np_dtype())
            lo = line_off * VALUES_PER_CACHELINE
            values[lo : lo + VALUES_PER_CACHELINE] = raw
        return values

    # ------------------------------------------------------------------
    # cacheline operations (the lazy-eviction path)
    # ------------------------------------------------------------------
    def lazy_write_line(self, addr: int, values: np.ndarray) -> bool:
        """Write one dirty uncompressed cacheline into the block's free
        space (Fig. 2a).  Returns False when no space is left — the
        caller must fall back to fetch + merge + recompress."""
        values = np.asarray(values, dtype=self._np_dtype())
        if values.shape != (VALUES_PER_CACHELINE,):
            raise ValueError(f"expected ({VALUES_PER_CACHELINE},), got {values.shape}")
        block_addr = addr & ~(BLOCK_BYTES - 1)
        line_off = (addr % BLOCK_BYTES) // CACHELINE_BYTES
        slot = self._slot(block_addr)
        if not slot.compressed:
            dst = line_off * CACHELINE_BYTES
            slot.data[dst : dst + CACHELINE_BYTES] = values.view(np.uint8)
            return True
        if line_off in slot.lazy_lines:
            i = slot.lazy_lines.index(line_off)
        elif len(slot.lazy_lines) < slot.lazy_capacity:
            slot.lazy_lines.append(line_off)
            i = len(slot.lazy_lines) - 1
        else:
            return False
        dst = (slot.size_cachelines + i) * CACHELINE_BYTES
        slot.data[dst : dst + CACHELINE_BYTES] = values.view(np.uint8)
        return True

    def merge_and_recompress(self, addr: int, values: np.ndarray) -> bool:
        """The lazy-space-exhausted path: fetch the block, overlay the
        dirty line, recompress, store.  Returns compressed-or-not."""
        block_addr = addr & ~(BLOCK_BYTES - 1)
        line_off = (addr % BLOCK_BYTES) // CACHELINE_BYTES
        merged = self.read_block(block_addr)
        lo = line_off * VALUES_PER_CACHELINE
        merged[lo : lo + VALUES_PER_CACHELINE] = np.asarray(
            values, dtype=self._np_dtype()
        )
        return self.write_block(block_addr, merged)
