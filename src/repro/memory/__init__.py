"""Main-memory substrate: DDR4 timing model + block-image backing store."""

from .backing import BackingStore
from .dram import DRAM

__all__ = ["BackingStore", "DRAM"]
