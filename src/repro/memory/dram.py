"""Event-level DDR4 main-memory model.

Stands in for DRAMSim2: models channel interleaving, per-bank open-row
state (row-buffer hits vs misses) and per-channel busy time, and
accounts every byte of traffic.  Queueing is abstracted into the
row-hit/miss latencies; sustained-bandwidth limits surface through the
channel busy-time counters, which the interval core model uses as the
bandwidth-bound execution time.
"""

from __future__ import annotations

import numpy as np

from ..common.config import DRAMConfig
from ..common.stats import StatCounter


class DRAM:
    """DDR4 with open-page policy and channel-interleaved lines."""

    def __init__(self, config: DRAMConfig, line_bytes: int = 64) -> None:
        self.config = config
        self.line_bytes = line_bytes
        self._line_shift = line_bytes.bit_length() - 1
        self._row_lines = max(1, config.row_bytes // line_bytes)
        # open row per (channel, bank)
        self._open_rows: dict[tuple[int, int], int] = {}
        self.stats = StatCounter()
        #: per-channel busy cycles (burst occupancy)
        self.channel_busy = [0] * config.channels

    def _map(self, line_addr: int) -> tuple[int, int, int]:
        """line address -> (channel, bank, row)."""
        channel = line_addr % self.config.channels
        within = line_addr // self.config.channels
        row = within // self._row_lines
        bank = row % self.config.banks_per_channel
        return channel, bank, row

    def access(self, addr: int, lines: int = 1, write: bool = False) -> int:
        """Transfer ``lines`` consecutive cachelines starting at ``addr``.

        Returns the latency in core cycles of the critical (first)
        line; subsequent lines of a block stream behind it pipelined at
        burst rate.  Busy time and traffic are fully accounted.
        """
        if lines < 1:
            raise ValueError("lines must be >= 1")
        cfg = self.config
        first_line = addr >> self._line_shift
        latency = 0
        for i in range(lines):
            channel, bank, row = self._map(first_line + i)
            key = (channel, bank)
            if self._open_rows.get(key) == row:
                line_latency = cfg.row_hit_cycles
                self.stats.add("row_hits")
            else:
                line_latency = cfg.row_miss_cycles
                self._open_rows[key] = row
                self.stats.add("row_misses")
            if i == 0:
                latency = line_latency
            self.channel_busy[channel] += cfg.burst_cycles
        nbytes = lines * self.line_bytes
        self.stats.add("bytes_written" if write else "bytes_read", nbytes)
        self.stats.add("accesses")
        if not write:
            latency += cfg.burst_cycles  # critical-line transfer time
        return latency + (lines - 1) * cfg.burst_cycles // 2

    def _row_hit_batch(self, line_addrs: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Row-buffer outcome of a sequence of line transfers, in order.

        Returns ``(hit, channel)`` per line.  Bit-identical to a
        sequential walk: row-buffer state is per ``(channel, bank)``,
        and within one bank a transfer hits iff it targets the same row
        as the previous transfer to that bank — a grouped shifted
        compare, with only each bank's *first* transfer consulting (and
        each bank's *last* updating) the persistent open-row table.
        """
        m = int(line_addrs.size)
        cfg = self.config
        channel = line_addrs % cfg.channels
        row = (line_addrs // cfg.channels) // self._row_lines
        bank = row % cfg.banks_per_channel
        key = channel * cfg.banks_per_channel + bank

        order = np.argsort(key, kind="stable")
        key_s = key[order]
        row_s = row[order]
        hit_s = np.zeros(m, dtype=bool)
        hit_s[1:] = (key_s[1:] == key_s[:-1]) & (row_s[1:] == row_s[:-1])
        boundary = np.zeros(m, dtype=bool)
        boundary[0] = True
        boundary[1:] = key_s[1:] != key_s[:-1]
        for p in np.flatnonzero(boundary).tolist():
            c, b = divmod(int(key_s[p]), cfg.banks_per_channel)
            hit_s[p] = self._open_rows.get((c, b)) == int(row_s[p])
        last = np.zeros(m, dtype=bool)
        last[-1] = True
        last[:-1] = key_s[1:] != key_s[:-1]
        for p in np.flatnonzero(last).tolist():
            c, b = divmod(int(key_s[p]), cfg.banks_per_channel)
            self._open_rows[(c, b)] = int(row_s[p])

        hit = np.empty(m, dtype=bool)
        hit[order] = hit_s
        return hit, channel

    def access_batch(self, addrs: np.ndarray, writes: np.ndarray) -> np.ndarray:
        """Vectorized equivalent of one single-line :meth:`access` per element.

        Replays a whole sequence of single-line transfers (the batched
        LLC replay's miss/writeback stream) and returns the per-transfer
        latencies.  Row-buffer outcomes come from :meth:`_row_hit_batch`;
        stats and channel busy time are bulk-accumulated to the same
        totals as the sequential loop.
        """
        m = int(addrs.size)
        if m == 0:
            return np.zeros(0, dtype=np.int64)
        cfg = self.config
        hit, channel = self._row_hit_batch(addrs >> self._line_shift)
        latency = np.where(
            hit, np.int64(cfg.row_hit_cycles), np.int64(cfg.row_miss_cycles)
        ) + np.where(writes, np.int64(0), np.int64(cfg.burst_cycles))

        busy = np.bincount(channel, minlength=cfg.channels) * cfg.burst_cycles
        for c in range(cfg.channels):
            self.channel_busy[c] += int(busy[c])
        row_hits = int(hit.sum())
        if row_hits:
            self.stats.add("row_hits", row_hits)
        if m - row_hits:
            self.stats.add("row_misses", m - row_hits)
        nwrites = int(writes.sum())
        if nwrites:
            self.stats.add("bytes_written", nwrites * self.line_bytes)
        if m - nwrites:
            self.stats.add("bytes_read", (m - nwrites) * self.line_bytes)
        self.stats.add("accesses", m)
        return latency

    def replay_transfers(
        self, addrs: np.ndarray, lines: np.ndarray, writes: np.ndarray
    ) -> np.ndarray:
        """Vectorized replay of a mixed :meth:`access`/:meth:`transfer_partial` log.

        One element per deferred call, in original call order:

        * ``lines[i] >= 1`` — an ``access(addrs[i], lines[i], writes[i])``
          (multi-line block fetches included);
        * ``lines[i] == 0`` — a ``transfer_partial(addrs[i], writes[i])``
          where ``addrs[i]`` carries the byte count (CMT metadata traffic).

        The AVR fast-replay engine queues every DRAM call its event scan
        would have made and settles them here in one pass: multi-line
        accesses expand to a per-line stream for :meth:`_row_hit_batch`,
        partials fold in positionally (their channel choice depends on
        the number of preceding accesses, which is a cumulative sum).
        Returns per-element latencies — :meth:`access`'s return value
        for access slots, 0 for partial slots (``transfer_partial``
        returns nothing).  Stats, open rows and channel busy end up
        bit-identical to the sequential call sequence.
        """
        t = int(lines.size)
        latency = np.zeros(t, dtype=np.int64)
        if t == 0:
            return latency
        cfg = self.config
        is_access = lines >= 1
        acc_idx = np.flatnonzero(is_access)
        nl = lines[acc_idx]
        total_lines = int(nl.sum())

        if total_lines:
            # expand each access to its consecutive line addresses
            ends = np.cumsum(nl)
            offset_in = np.arange(total_lines, dtype=np.int64) - np.repeat(
                ends - nl, nl
            )
            line_addr = np.repeat(addrs[acc_idx] >> self._line_shift, nl) + offset_in
            hit, channel = self._row_hit_batch(line_addr)

            first_lat = np.where(
                hit[ends - nl],
                np.int64(cfg.row_hit_cycles),
                np.int64(cfg.row_miss_cycles),
            )
            acc_write = writes[acc_idx]
            latency[acc_idx] = (
                first_lat
                + np.where(acc_write, np.int64(0), np.int64(cfg.burst_cycles))
                + (nl - 1) * cfg.burst_cycles // 2
            )

            busy = np.bincount(channel, minlength=cfg.channels) * cfg.burst_cycles
            for c in range(cfg.channels):
                self.channel_busy[c] += int(busy[c])
            row_hits = int(hit.sum())
            if row_hits:
                self.stats.add("row_hits", row_hits)
            if total_lines - row_hits:
                self.stats.add("row_misses", total_lines - row_hits)
            wlines = int(nl[acc_write].sum())
            if wlines:
                self.stats.add("bytes_written", wlines * self.line_bytes)
            if total_lines - wlines:
                self.stats.add("bytes_read", (total_lines - wlines) * self.line_bytes)

        # partials interleave with accesses: each one's channel pick
        # depends on how many accesses preceded it
        partial_idx = np.flatnonzero(~is_access)
        if partial_idx.size:
            acc_before = np.cumsum(is_access) - is_access
            base_accesses = int(self.stats.get("accesses", 0))
            for p in partial_idx.tolist():
                nbytes = int(addrs[p])
                self.stats.add(
                    "bytes_written" if writes[p] else "bytes_read", nbytes
                )
                channel_p = (base_accesses + int(acc_before[p])) % cfg.channels
                self.channel_busy[channel_p] += max(
                    1, cfg.burst_cycles * nbytes // self.line_bytes
                )
        if acc_idx.size:
            self.stats.add("accesses", int(acc_idx.size))
        return latency

    def transfer_partial(self, nbytes: int, write: bool) -> None:
        """Account sub-line traffic (e.g. CMT metadata updates)."""
        self.stats.add("bytes_written" if write else "bytes_read", nbytes)
        channel = self.stats.get("accesses", 0) % self.config.channels
        self.channel_busy[int(channel)] += max(
            1, self.config.burst_cycles * nbytes // self.line_bytes
        )

    @property
    def total_bytes(self) -> int:
        return int(self.stats["bytes_read"] + self.stats["bytes_written"])

    def bandwidth_bound_cycles(self) -> int:
        """Execution-time lower bound imposed by channel occupancy."""
        return max(self.channel_busy) if self.channel_busy else 0
