"""Cross-client unit scheduling for the evaluation service.

The daemon funnels every client's sweep job units through one
:class:`UnitScheduler`: a shared ``ProcessPoolExecutor`` fronted by a
priority + fair-share queue and an in-flight table keyed by the units'
content-hash cache keys.  Each submission (one ``repro submit``) gets
a :class:`JobHandle` — a :class:`~repro.harness.sweep.JobExecutor`
that ``run_sweep`` drives exactly like its private pool, except that a
unit already queued, running, or recently finished for *another*
client is **joined** rather than relaunched: both clients wait on the
same future, the unit executes at most once, and only the launching
client stores the result to the shared cache.

Queuing is fair-share across handles: a handle's *n*-th unit ranks by
``(-priority, n, arrival)``, so a late submission's early units
interleave ahead of an earlier submission's deep backlog instead of
queuing behind the whole burst.  The heap only gates dispatch — worker
slots are leased one unit at a time, so the pool's own FIFO never
reorders across priorities.

Cancellation is cooperative and drain-based: cancelling a handle
detaches it from every unit it references; units nobody else wants are
cancelled while still queued (waiters get ``CancelledError``) and left
to drain if already running (the result is discarded, the worker is
never killed mid-unit).
"""

from __future__ import annotations

import heapq
import itertools
import threading
from concurrent.futures import Future, ProcessPoolExecutor
from dataclasses import asdict, dataclass
from typing import Any, Callable

from ..harness.cache import GCReport, ResultCache, VerifyReport
from ..harness.sweep import JobExecutor

__all__ = [
    "JobHandle",
    "LockedResultCache",
    "ServeStats",
    "SubmissionCancelled",
    "UnitScheduler",
]


class SubmissionCancelled(RuntimeError):
    """Raised inside a sweep thread whose submission was cancelled."""


class LockedResultCache(ResultCache):
    """Thread-safe facade over a :class:`ResultCache` shared by sessions.

    The daemon hands one instance to every concurrent sweep thread;
    an ``RLock`` serializes backend operations (index mutation, LRU
    bookkeeping, stats counters) that are only ever exercised
    single-threaded in one-shot runs.  ``root``/``backend`` mirror the
    inner cache so ``isinstance`` checks, trace-store derivation and
    ``stats`` all behave like the cache they wrap.
    """

    def __init__(self, inner: ResultCache) -> None:
        self._inner = inner
        self._lock = threading.RLock()
        self.root = inner.root
        self.backend = inner.backend

    def get(self, key: str, default: Any = None) -> Any:
        with self._lock:
            return self._inner.get(key, default)

    def peek(self, key: str, default: Any = None) -> Any:
        with self._lock:
            return self._inner.peek(key, default)

    def put(self, key: str, value: Any) -> None:
        with self._lock:
            self._inner.put(key, value)

    def contains(self, key: str) -> bool:
        with self._lock:
            return self._inner.contains(key)

    def get_many(self, keys: Any) -> dict[str, Any]:
        with self._lock:
            return self._inner.get_many(keys)

    def peek_many(self, keys: Any) -> dict[str, Any]:
        with self._lock:
            return self._inner.peek_many(keys)

    def put_many(self, items: Any) -> None:
        with self._lock:
            self._inner.put_many(items)

    def keys(self) -> list[str]:
        with self._lock:
            return self._inner.keys()

    def gc(self, **kwargs: Any) -> GCReport:
        with self._lock:
            return self._inner.gc(**kwargs)

    def verify(self) -> VerifyReport:
        with self._lock:
            return self._inner.verify()

    def __len__(self) -> int:
        with self._lock:
            return len(self._inner)


@dataclass
class ServeStats:
    """Scheduler-lifetime rollup across every session and submission."""

    #: units this scheduler actually dispatched to the pool's workers
    units_launched: int = 0
    #: submissions that joined a unit already in flight for another
    #: handle — the cross-client dedup counter
    units_deduped: int = 0
    units_completed: int = 0
    units_failed: int = 0
    units_cancelled: int = 0

    def as_mapping(self) -> dict[str, int]:
        return asdict(self)


class _Unit:
    """One in-flight job unit, shared by every handle that wants it."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"

    __slots__ = ("key", "fn", "args", "future", "handles", "state")

    def __init__(self, key: str, fn: Callable[..., Any], args: tuple) -> None:
        self.key = key
        self.fn = fn
        self.args = args
        #: scheduler-level future every submitter waits on; resolved by
        #: :meth:`UnitScheduler._finish`, never handed to the pool
        self.future: Future = Future()
        #: handles that submitted or joined this unit and have not yet
        #: released/cancelled — keeps a finished unit joinable until
        #: the launching sweep has stored it to the shared cache
        self.handles: set["JobHandle"] = set()
        self.state = _Unit.QUEUED


class JobHandle(JobExecutor):
    """One submission's executor view onto the shared scheduler.

    ``run_sweep(..., executor=handle)`` drives this exactly like an
    in-process pool; ``launched=False`` returns mark units joined from
    another handle's in-flight execution (the sweep then skips the
    cache store — the launching run owns it).  The owning session
    calls :meth:`cancel` (client request / disconnect) or
    :meth:`release` (sweep finished) to detach from shared units.
    """

    def __init__(
        self, scheduler: "UnitScheduler", priority: int = 0, label: str = ""
    ) -> None:
        self._scheduler = scheduler
        self.priority = priority
        self.label = label
        self.units: set[_Unit] = set()
        self.cancelled = False
        self._vtime = itertools.count()

    def submit_unit(
        self, key: str, fn: Callable[..., Any], /, *args: Any
    ) -> tuple[Future, bool]:
        return self._scheduler._submit(self, key, fn, args)

    def cancel(self) -> None:
        """Detach from every unit; abort the owning sweep cooperatively."""
        self.cancelled = True
        self._scheduler._release(self)

    def release(self) -> None:
        """Drop unit references once the owning sweep has finished."""
        self._scheduler._release(self)

    def shutdown(self, cancel_futures: bool = False) -> None:
        """No-op: the scheduler owns the pool, not the handle."""


class UnitScheduler:
    """The daemon's shared executor: dedup, priorities, fair share."""

    def __init__(self, workers: int = 2) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self._pool = ProcessPoolExecutor(max_workers=workers)
        self._slots = workers
        #: re-entrant: ``add_done_callback`` may run ``_finish`` in the
        #: submitting thread when a pool future is already resolved
        self._lock = threading.RLock()
        self._heap: list[tuple[int, int, int, _Unit]] = []
        self._units: dict[str, _Unit] = {}
        self._seq = itertools.count()
        self._closed = False
        self.stats = ServeStats()

    # ------------------------------------------------------------------
    # handle-facing API (worker threads)
    # ------------------------------------------------------------------
    def handle(self, priority: int = 0, label: str = "") -> JobHandle:
        """A fresh per-submission executor bound to this scheduler."""
        return JobHandle(self, priority=priority, label=label)

    def _submit(
        self, handle: JobHandle, key: str, fn: Callable[..., Any], args: tuple
    ) -> tuple[Future, bool]:
        with self._lock:
            if self._closed:
                raise RuntimeError("scheduler is shut down")
            if handle.cancelled:
                raise SubmissionCancelled(handle.label or "submission cancelled")
            unit = self._units.get(key)
            if unit is not None:
                unit.handles.add(handle)
                handle.units.add(unit)
                self.stats.units_deduped += 1
                return unit.future, False
            unit = _Unit(key, fn, args)
            unit.handles.add(handle)
            handle.units.add(unit)
            self._units[key] = unit
            heapq.heappush(
                self._heap,
                (-handle.priority, next(handle._vtime), next(self._seq), unit),
            )
            self.stats.units_launched += 1
            self._pump()
            return unit.future, True

    def _release(self, handle: JobHandle) -> None:
        to_cancel: list[_Unit] = []
        with self._lock:
            for unit in handle.units:
                unit.handles.discard(handle)
                if unit.handles:
                    continue
                if unit.state == _Unit.QUEUED:
                    # nobody wants it and it never started: cancel it
                    # outright (lazy heap removal — _pump skips it)
                    unit.state = _Unit.DONE
                    self._units.pop(unit.key, None)
                    to_cancel.append(unit)
                elif unit.state == _Unit.DONE:
                    self._units.pop(unit.key, None)
                # RUNNING units drain; _finish drops the orphan
            handle.units.clear()
        for unit in to_cancel:
            if unit.future.cancel():
                with self._lock:
                    self.stats.units_cancelled += 1

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def _pump(self) -> None:
        """Lease free worker slots to the best-ranked queued units.

        Caller holds ``_lock``.  Dispatch order is decided *here*, one
        slot at a time — at most ``workers`` units are ever inside the
        pool, so its internal FIFO cannot invert our ranking.
        """
        while self._slots > 0 and self._heap:
            *_, unit = heapq.heappop(self._heap)
            if unit.state != _Unit.QUEUED or unit.future.cancelled():
                continue
            unit.state = _Unit.RUNNING
            self._slots -= 1
            pool_future = self._pool.submit(unit.fn, *unit.args)
            pool_future.add_done_callback(
                lambda f, u=unit: self._finish(u, f)
            )

    def _finish(self, unit: _Unit, pool_future: Future) -> None:
        with self._lock:
            self._slots += 1
            unit.state = _Unit.DONE
            if not unit.handles:
                # every submitter released/cancelled while it ran:
                # the drained result has no audience, drop the unit
                self._units.pop(unit.key, None)
            self._pump()
            exc = pool_future.exception()
            if unit.future.cancelled():
                return
            if exc is not None:
                self.stats.units_failed += 1
                unit.future.set_exception(exc)
            else:
                self.stats.units_completed += 1
                unit.future.set_result(pool_future.result())

    # ------------------------------------------------------------------
    # introspection / lifecycle
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """Queue/in-flight counts plus the lifetime stats rollup."""
        with self._lock:
            states = [u.state for u in self._units.values()]
            return {
                "workers": self.workers,
                "queue_depth": states.count(_Unit.QUEUED),
                "running": states.count(_Unit.RUNNING),
                "inflight": len(states),
                "stats": self.stats.as_mapping(),
            }

    def shutdown(self, cancel_futures: bool = True) -> None:
        """Refuse new work, cancel the queue, and reap the workers."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            queued = [u for *_, u in self._heap if u.state == _Unit.QUEUED]
            for unit in queued:
                unit.state = _Unit.DONE
                self._units.pop(unit.key, None)
            self._heap.clear()
        for unit in queued:
            if unit.future.cancel():
                with self._lock:
                    self.stats.units_cancelled += 1
        self._pool.shutdown(wait=True, cancel_futures=cancel_futures)
