"""Synchronous client for the evaluation daemon (``repro submit``).

:class:`ServeClient` speaks the length-prefixed JSON protocol over a
plain blocking socket — it lives on the *client* side of the wire, in
ordinary synchronous code, so the async-discipline rules that bind the
daemon (SRV001) do not apply here.  One client holds one session;
events for every job submitted through it arrive interleaved on the
same stream, tagged with their job id, and :meth:`events` filters the
stream for one job while buffering the rest.

Typical use::

    with ServeClient(socket_path=sock) as client:
        job = client.submit(spec.to_mapping())
        outcome = client.wait(job)
        results = outcome["result"]
"""

from __future__ import annotations

import socket
from pathlib import Path
from typing import Any, Iterator

from .protocol import FrameDecoder, ProtocolError, encode_frame

__all__ = ["ServeClient", "ServeError"]

#: events that end a job's stream
_TERMINAL_EVENTS = frozenset({"result", "error"})


class ServeError(RuntimeError):
    """The daemon reported an error, or the connection broke."""


class ServeClient:
    """One connection to a running daemon; usable as a context manager."""

    def __init__(
        self,
        socket_path: str | Path | None = None,
        host: str | None = None,
        port: int | None = None,
        timeout: float | None = None,
    ) -> None:
        if socket_path is None and port is None:
            raise ValueError("need a socket path or a host/port pair")
        if socket_path is not None and port is not None:
            raise ValueError("socket path and port are mutually exclusive")
        self.socket_path = str(socket_path) if socket_path else None
        self.host = host or "127.0.0.1"
        self.port = port
        self.timeout = timeout
        self._sock: socket.socket | None = None
        self._decoder = FrameDecoder()
        #: frames read while looking for something else, in order
        self._backlog: list[dict[str, Any]] = []

    # ------------------------------------------------------------------
    # connection management
    # ------------------------------------------------------------------
    def connect(self) -> "ServeClient":
        if self._sock is not None:
            return self
        if self.socket_path is not None:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self.timeout)
            sock.connect(self.socket_path)
        else:
            assert self.port is not None
            sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            )
        self._sock = sock
        return self

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None

    def __enter__(self) -> "ServeClient":
        return self.connect()

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    # framing
    # ------------------------------------------------------------------
    def _send(self, message: dict[str, Any]) -> None:
        if self._sock is None:
            self.connect()
        assert self._sock is not None
        self._sock.sendall(encode_frame(message))

    def _fill_backlog(self) -> None:
        """Read the wire until at least one frame lands in the backlog."""
        assert self._sock is not None, "not connected"
        while True:
            try:
                chunk = self._sock.recv(65536)
            except OSError as exc:
                raise ServeError(f"connection lost: {exc}") from exc
            if not chunk:
                raise ServeError("daemon closed the connection")
            try:
                frames = self._decoder.feed(chunk)
            except ProtocolError as exc:
                raise ServeError(str(exc)) from exc
            if frames:
                self._backlog.extend(frames)
                return

    def _next_for(self, job: str | None, kinds: frozenset) -> dict[str, Any]:
        """Earliest buffered-or-read event matching ``job``/``kinds``.

        Non-matching events stay buffered in arrival order, so
        interleaved jobs on one session each see their own stream
        in sequence.
        """
        scanned = 0
        while True:
            while scanned < len(self._backlog):
                event = self._backlog[scanned]
                if (job is None or event.get("job") == job) and (
                    event.get("event") in kinds
                ):
                    return self._backlog.pop(scanned)
                scanned += 1
            self._fill_backlog()

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    def submit(
        self,
        spec_mapping: dict[str, Any],
        kind: str = "experiment",
        priority: int = 0,
    ) -> str:
        """Submit a spec mapping; return the daemon-assigned job id."""
        self._send({
            "op": "submit",
            "kind": kind,
            "spec": spec_mapping,
            "priority": priority,
        })
        event = self._next_for(None, frozenset({"accepted", "error"}))
        if event.get("event") == "error":
            raise ServeError(event.get("error", "submission rejected"))
        return str(event["job"])

    def events(self, job: str) -> Iterator[dict[str, Any]]:
        """Yield ``job``'s events in order, ending after result/error."""
        wanted = frozenset({"unit_done", "stats"}) | _TERMINAL_EVENTS
        while True:
            event = self._next_for(job, wanted)
            yield event
            if event.get("event") in _TERMINAL_EVENTS:
                return

    def wait(self, job: str) -> dict[str, Any]:
        """Block until ``job`` finishes; return a summary mapping.

        Raises :class:`ServeError` if the job errored (including
        cancellation).  The returned mapping has the final ``result``
        payload, the job's ``stats`` (when the daemon sent them), and
        the per-unit event count.
        """
        stats: dict[str, Any] | None = None
        units_done = 0
        for event in self.events(job):
            name = event.get("event")
            if name == "unit_done":
                units_done += 1
            elif name == "stats":
                stats = event.get("stats")
            elif name == "error":
                raise ServeError(event.get("error", "job failed"))
            else:
                return {
                    "job": job,
                    "kind": event.get("kind"),
                    "result": event.get("result"),
                    "stats": stats,
                    "units_done": units_done,
                }
        raise ServeError("event stream ended without a result")

    def cancel(self, job: str) -> None:
        """Ask the daemon to cancel ``job`` (queued units drop now,
        running ones drain)."""
        self._send({"op": "cancel", "job": job})

    def status(self) -> dict[str, Any]:
        """The daemon's status snapshot (sessions, queue, cache stats)."""
        self._send({"op": "status"})
        return self._next_for(None, frozenset({"status"}))
