"""Per-connection session state for the evaluation daemon.

One :class:`Session` per accepted connection: an asyncio read loop
turns incoming frames into operations (``submit`` / ``cancel`` /
``status``), each submission runs in a worker thread
(``asyncio.to_thread``) driving the shared scheduler through its own
:class:`~repro.serve.scheduler.JobHandle`, and a single writer task
streams structured events back in order.  Worker threads never touch
the socket — per-unit progress crosses into the event loop via
``loop.call_soon_threadsafe`` onto the session's event queue.

A client disconnect (or a ``cancel`` op) detaches the session's
handles from the shared units: queued units nobody else wants are
cancelled, running ones drain in the pool, and the daemon keeps
serving every other session.
"""

from __future__ import annotations

import asyncio
import dataclasses
import itertools
import threading
from concurrent.futures import CancelledError
from typing import Any

from .protocol import ProtocolError, read_frame, write_frame
from .scheduler import JobHandle, SubmissionCancelled

__all__ = ["Session"]

#: spec keys describing *where/how* to execute rather than *what* —
#: the daemon substitutes its own shared cache, trace store and
#: executor, so client-side settings for these must not leak through
_EXECUTION_ONLY_KEYS = ("jobs", "cache_dir", "cache_backend", "trace_store")


class _Job:
    """One accepted submission: spec, handle, and cancellation flag."""

    def __init__(self, job_id: str, kind: str, spec: Any, handle: JobHandle):
        self.id = job_id
        self.kind = kind
        self.spec = spec
        self.handle = handle
        #: checked by the sweep thread's ``on_unit_done``; set from the
        #: event loop on a ``cancel`` op or disconnect
        self.cancel_flag = threading.Event()
        self.task: asyncio.Task | None = None
        self.units_done = 0
        self.units_launched = 0

    def cancel(self) -> None:
        self.cancel_flag.set()
        self.handle.cancel()


class Session:
    """One connected client: frame reader, job runner, event writer."""

    def __init__(
        self, daemon: Any, reader: Any, writer: Any, session_id: int
    ) -> None:
        self.daemon = daemon
        self.reader = reader
        self.writer = writer
        self.id = session_id
        self.jobs: dict[str, _Job] = {}
        self._job_seq = itertools.count(1)
        self._events: asyncio.Queue = asyncio.Queue()
        self._loop = asyncio.get_running_loop()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def run(self) -> None:
        """Serve this connection until EOF, error, or daemon shutdown."""
        writer_task = asyncio.create_task(self._drain_events())
        try:
            while True:
                try:
                    message = await read_frame(self.reader)
                except (ProtocolError, ConnectionError):
                    break
                if message is None:
                    break
                await self._dispatch(message)
        finally:
            tasks = [
                job.task for job in list(self.jobs.values()) if job.task
            ]
            for job in list(self.jobs.values()):
                job.cancel()
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
            self._events.put_nowait(None)
            await writer_task
            self.writer.close()
            try:
                await self.writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _drain_events(self) -> None:
        while True:
            event = await self._events.get()
            if event is None:
                return
            try:
                await write_frame(self.writer, event)
            except (ConnectionError, OSError, RuntimeError):
                # peer is gone; keep draining so producers never block
                continue

    def _post(self, event: dict[str, Any]) -> None:
        if event.get("event") == "unit_done":
            job = self.jobs.get(event.get("job", ""))
            if job is not None:
                job.units_done += 1
                if event.get("launched"):
                    job.units_launched += 1
        self._events.put_nowait(event)

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    async def _dispatch(self, message: Any) -> None:
        op = message.get("op") if isinstance(message, dict) else None
        if op == "submit":
            self._handle_submit(message)
        elif op == "cancel":
            job = self.jobs.get(message.get("job", ""))
            if job is None:
                self._post({
                    "event": "error",
                    "job": message.get("job"),
                    "error": "unknown or already-finished job",
                })
            else:
                job.cancel()
        elif op == "status":
            self._post({"event": "status", **self.daemon.status_snapshot()})
        else:
            self._post({"event": "error", "error": f"unknown op {op!r}"})

    def _handle_submit(self, message: dict[str, Any]) -> None:
        from ..experiment import ExperimentSpec
        from ..planner import PlanSpec

        mapping = message.get("spec")
        kind = message.get("kind", "experiment")
        try:
            priority = int(message.get("priority", 0))
            if not isinstance(mapping, dict):
                raise ValueError("submit needs a 'spec' mapping")
            mapping = {
                k: v for k, v in mapping.items()
                if k not in _EXECUTION_ONLY_KEYS
            }
            if kind == "experiment":
                spec: Any = ExperimentSpec.from_mapping(mapping)
            elif kind == "plan":
                spec = PlanSpec.from_mapping(mapping)
            else:
                raise ValueError(
                    f"unknown spec kind {kind!r} "
                    "(expected 'experiment' or 'plan')"
                )
        except (ValueError, TypeError) as exc:
            self._post({"event": "error", "error": str(exc)})
            return
        job_id = f"{self.id}-{next(self._job_seq)}"
        handle = self.daemon.scheduler.handle(priority=priority, label=job_id)
        job = _Job(job_id, kind, spec, handle)
        self.jobs[job_id] = job
        self._post({
            "event": "accepted",
            "job": job_id,
            "kind": kind,
            "name": spec.name,
            "spec_hash": spec.content_hash(),
            "priority": priority,
        })
        job.task = asyncio.create_task(self._run_job(job))

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    async def _run_job(self, job: _Job) -> None:
        try:
            result_mapping, stats_mapping = await asyncio.to_thread(
                self._execute, job
            )
        except (SubmissionCancelled, CancelledError):
            self._post({
                "event": "error",
                "job": job.id,
                "error": "cancelled",
                "cancelled": True,
            })
        except Exception as exc:  # noqa: BLE001 — one job must not kill the session
            self._post({
                "event": "error",
                "job": job.id,
                "error": f"{type(exc).__name__}: {exc}",
            })
        else:
            self._post({"event": "stats", "job": job.id, "stats": stats_mapping})
            self._post({
                "event": "result",
                "job": job.id,
                "kind": job.kind,
                "result": result_mapping,
            })
        finally:
            job.handle.release()
            self.jobs.pop(job.id, None)

    def _execute(self, job: _Job) -> tuple[dict[str, Any], dict[str, Any]]:
        """Run one submission in a worker thread against shared state."""
        from ..experiment import run_experiment
        from ..harness.report import (
            experiment_result_to_mapping,
            sweep_stats_to_mapping,
        )
        from ..planner import run_plan

        def on_unit_done(key: str, launched: bool) -> None:
            if job.cancel_flag.is_set():
                raise SubmissionCancelled(job.id)
            self._loop.call_soon_threadsafe(self._post, {
                "event": "unit_done",
                "job": job.id,
                "unit": key[:16],
                "launched": launched,
            })

        if job.kind == "experiment":
            result = run_experiment(
                job.spec,
                cache_dir=self.daemon.cache,
                engine=self.daemon.engine,
                executor=job.handle,
                on_unit_done=on_unit_done,
            )
            return (
                experiment_result_to_mapping(result),
                sweep_stats_to_mapping(result.stats),
            )
        result = run_plan(
            job.spec,
            cache_dir=self.daemon.cache,
            engine=self.daemon.engine,
            executor=job.handle,
            on_unit_done=on_unit_done,
        )
        return result.to_mapping(), dataclasses.asdict(result.stats)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        return {
            "session": self.id,
            "jobs": [
                {
                    "job": job.id,
                    "kind": job.kind,
                    "name": job.spec.name,
                    "priority": job.handle.priority,
                    "units_done": job.units_done,
                    "units_launched": job.units_launched,
                    "cancelled": job.cancel_flag.is_set(),
                }
                for job in self.jobs.values()
            ],
        }
