"""`repro.serve` — the long-running evaluation service.

A resident asyncio daemon (``repro serve``) accepts
:class:`~repro.experiment.ExperimentSpec` and
:class:`~repro.planner.PlanSpec` submissions from many concurrent
clients over a length-prefixed JSON protocol (TCP or Unix socket).
Per-connection :class:`~repro.serve.session.Session` objects are
multiplexed onto one shared process pool and one shared result cache;
the central :class:`~repro.serve.scheduler.UnitScheduler` dedups
in-flight job units across clients by their content-hash keys, so two
clients submitting overlapping grids wait on the same futures and a
unit runs at most once.

The client half lives in :mod:`repro.serve.client`
(:class:`~repro.serve.client.ServeClient`, backing ``repro submit``
and ``repro status``).
"""

from .client import ServeClient
from .daemon import EvalDaemon
from .protocol import FrameDecoder, ProtocolError, encode_frame
from .scheduler import (
    JobHandle,
    LockedResultCache,
    ServeStats,
    SubmissionCancelled,
    UnitScheduler,
)

__all__ = [
    "EvalDaemon",
    "FrameDecoder",
    "JobHandle",
    "LockedResultCache",
    "ProtocolError",
    "ServeClient",
    "ServeStats",
    "SubmissionCancelled",
    "UnitScheduler",
    "encode_frame",
]
