"""Length-prefixed JSON framing for the evaluation service.

One frame is a 4-byte big-endian unsigned payload length followed by
exactly that many bytes of UTF-8 JSON encoding a single object.  The
same codec serves both directions: client requests (``submit`` /
``cancel`` / ``status`` ops) and daemon events (``accepted`` /
``unit_done`` / ``stats`` / ``result`` / ``error`` / ``status``).

:class:`FrameDecoder` is an incremental, transport-agnostic decoder —
feed it whatever chunks arrive and it yields every completed frame
while buffering torn ones, so TCP segmentation never corrupts a
message.  The async helpers (:func:`read_frame` / :func:`write_frame`)
adapt the codec to ``asyncio`` stream pairs for the daemon side; the
synchronous client drives :class:`FrameDecoder` directly over a plain
socket.
"""

from __future__ import annotations

import json
import struct
from typing import Any

__all__ = [
    "FrameDecoder",
    "MAX_FRAME_BYTES",
    "ProtocolError",
    "encode_frame",
    "read_frame",
    "write_frame",
]

_HEADER = struct.Struct(">I")

#: upper bound on one frame's payload; a result mapping for a large
#: grid is a few MB, so this is generous while still rejecting a
#: desynchronized (or hostile) length prefix before allocating
MAX_FRAME_BYTES = 64 * 1024 * 1024


class ProtocolError(ValueError):
    """A malformed, oversized, or truncated frame."""


def encode_frame(message: Any) -> bytes:
    """Serialize one message into a length-prefixed frame."""
    payload = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame payload of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit"
        )
    return _HEADER.pack(len(payload)) + payload


class FrameDecoder:
    """Incremental frame decoder over an arbitrary chunk stream."""

    def __init__(self) -> None:
        self._buffer = bytearray()

    @property
    def pending(self) -> int:
        """Bytes buffered that do not yet form a complete frame."""
        return len(self._buffer)

    def feed(self, data: bytes) -> list[Any]:
        """Absorb ``data`` and return every frame it completed."""
        self._buffer.extend(data)
        messages: list[Any] = []
        while True:
            if len(self._buffer) < _HEADER.size:
                return messages
            (length,) = _HEADER.unpack_from(self._buffer)
            if length > MAX_FRAME_BYTES:
                raise ProtocolError(
                    f"frame header announces {length} bytes, over the "
                    f"{MAX_FRAME_BYTES}-byte limit"
                )
            end = _HEADER.size + length
            if len(self._buffer) < end:
                return messages
            payload = bytes(self._buffer[_HEADER.size:end])
            del self._buffer[:end]
            try:
                messages.append(json.loads(payload.decode("utf-8")))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise ProtocolError(f"undecodable frame payload: {exc}") from exc


async def read_frame(reader: Any) -> Any:
    """Read one frame from an asyncio stream; ``None`` on clean EOF.

    EOF in the middle of a frame (header or payload) raises
    :class:`ProtocolError` — the peer vanished mid-message.
    """
    import asyncio

    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("connection closed inside a frame header") from exc
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame header announces {length} bytes, over the "
            f"{MAX_FRAME_BYTES}-byte limit"
        )
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError("connection closed inside a frame payload") from exc
    try:
        return json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame payload: {exc}") from exc


async def write_frame(writer: Any, message: Any) -> None:
    """Write one frame to an asyncio stream and drain the transport."""
    writer.write(encode_frame(message))
    await writer.drain()
