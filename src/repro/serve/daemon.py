"""The resident evaluation daemon behind ``repro serve``.

:class:`EvalDaemon` owns every piece of shared state: one
:class:`~repro.serve.scheduler.UnitScheduler` (process pool + dedup
queue), one :class:`~repro.serve.scheduler.LockedResultCache` spanning
all sessions (with the trace store derived under its root, exactly as
one-shot runs derive it), and the listening socket — TCP
(``host``/``port``) or Unix (``socket_path``).  Each accepted
connection becomes a :class:`~repro.serve.session.Session`; sessions
never see each other, only the shared substrate.

``SIGTERM``/``SIGINT`` trigger a clean shutdown: stop accepting,
cancel every live session's jobs, drain the pool, remove the socket
file.  All daemon-side timing uses the event loop's monotonic clock —
no wall-clock reads, per the SRV001 analysis rule.
"""

from __future__ import annotations

import asyncio
import dataclasses
import itertools
import signal
from pathlib import Path
from typing import Any, Callable

from .scheduler import LockedResultCache, UnitScheduler
from .session import Session

__all__ = ["EvalDaemon"]


class EvalDaemon:
    """Shared scheduler + cache + listener; one instance per ``repro serve``."""

    def __init__(
        self,
        cache_dir: str | Path,
        socket_path: str | Path | None = None,
        host: str | None = None,
        port: int | None = None,
        workers: int = 2,
        cache_backend: str | None = None,
        engine: str | None = None,
    ) -> None:
        from ..harness.cache import ResultCache

        if socket_path is None and port is None:
            raise ValueError("need a --socket path or a --port to listen on")
        if socket_path is not None and port is not None:
            raise ValueError("--socket and --port are mutually exclusive")
        self.socket_path = Path(socket_path) if socket_path else None
        self.host = host or "127.0.0.1"
        self.port = port
        self.engine = engine
        self.cache = LockedResultCache(ResultCache(cache_dir, cache_backend))
        self.scheduler = UnitScheduler(workers=workers)
        self.sessions: dict[int, Session] = {}
        self._session_ids = itertools.count(1)
        self._server: Any = None
        #: created inside start() so it binds to the serving loop
        self._stop: asyncio.Event | None = None
        self._started_at = 0.0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind the listening socket (``port=0`` picks a free port)."""
        self._stop = asyncio.Event()
        self._started_at = asyncio.get_running_loop().time()
        if self.socket_path is not None:
            self._server = await asyncio.start_unix_server(
                self._on_connect, path=str(self.socket_path)
            )
        else:
            self._server = await asyncio.start_server(
                self._on_connect, host=self.host, port=self.port
            )
            self.port = self._server.sockets[0].getsockname()[1]

    @property
    def address(self) -> str:
        if self.socket_path is not None:
            return str(self.socket_path)
        return f"{self.host}:{self.port}"

    async def _on_connect(self, reader: Any, writer: Any) -> None:
        session_id = next(self._session_ids)
        session = Session(self, reader, writer, session_id)
        self.sessions[session_id] = session
        try:
            await session.run()
        finally:
            self.sessions.pop(session_id, None)

    def request_stop(self) -> None:
        """Signal-handler entry: schedule a clean shutdown."""
        if self._stop is not None:
            self._stop.set()

    async def run_until_stopped(
        self, announce: Callable[[str], None] | None = None
    ) -> None:
        """Start, install signal handlers, serve until SIGTERM/SIGINT."""
        await self.start()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, self.request_stop)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
        if announce is not None:
            announce(f"repro serve: listening on {self.address}")
        assert self._stop is not None
        try:
            await self._stop.wait()
        finally:
            for sig in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.remove_signal_handler(sig)
                except (NotImplementedError, RuntimeError):  # pragma: no cover
                    pass
            await self.shutdown()
            if announce is not None:
                announce("repro serve: shut down cleanly")

    async def shutdown(self) -> None:
        """Stop accepting, cancel live jobs, drain the worker pool."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for session in list(self.sessions.values()):
            for job in list(session.jobs.values()):
                job.cancel()
            session.writer.close()
        # worker threads drain their in-flight units, then release
        await asyncio.to_thread(self.scheduler.shutdown)
        if self.socket_path is not None:
            try:
                self.socket_path.unlink()
            except OSError:
                pass

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def status_snapshot(self) -> dict[str, Any]:
        """What ``repro status`` reports: sessions, queue, cache rollup."""
        from .. import __version__

        loop = asyncio.get_running_loop()
        return {
            "version": __version__,
            "address": self.address,
            "uptime_s": loop.time() - self._started_at,
            "active_sessions": len(self.sessions),
            "sessions": [
                session.snapshot() for session in self.sessions.values()
            ],
            "scheduler": self.scheduler.snapshot(),
            "cache_stats": dataclasses.asdict(self.cache.stats),
            "cache_entries": len(self.cache),
        }
