"""heat — 2D thermodynamics (Jacobi heat propagation) [32].

Iterates a 2D grid of temperatures, computing the propagation of heat
from fixed hot boundaries into an ambient-temperature plate.  Both the
read and write grids are approximable ("Temps" in Table 2), and the
output is the final temperature field.  The temperature field is very
smooth, which is why the paper reports a 10.5:1 AVR compression ratio.
"""

from __future__ import annotations

import numpy as np

from ..approx.memory import ApproxMemory
from ..common.types import ErrorThresholds
from .base import Phase, TraceSpec, Workload


class HeatWorkload(Workload):
    """2D Jacobi heat propagation on a plate with hot boundaries."""

    name = "heat"
    description = "2D thermodynamics: heat propagation over a grid"
    approx_data = "Temps"
    output_data = "Temps"
    # Iterative stencil: the grid round-trips memory every sweep, so the
    # per-pass knob must sit well below the 1%-ish output budget.
    default_thresholds = ErrorThresholds.from_t2(0.001)

    dganger_threshold = 0.00025

    #: fixed boundary temperatures (degrees)
    T_HOT = 100.0
    T_AMBIENT = 20.0

    def __init__(self, scale: float = 1.0, seed: int = 0, iterations: int = 150) -> None:
        super().__init__(scale, seed)
        # Finer grids make 16-value segments flatter (quadratically
        # smaller interpolation error), as the paper's 8.2 MB grid does.
        self.n = self._scaled(768, minimum=48, quantum=16)
        self.iterations = iterations

    def allocate(self, mem: ApproxMemory) -> None:
        n = self.n
        init = np.full((n, n), self.T_AMBIENT, dtype=np.float32)
        # Hot top edge with a smooth profile; warm left edge.
        x = np.linspace(0.0, np.pi, n, dtype=np.float32)
        init[0, :] = self.T_AMBIENT + (self.T_HOT - self.T_AMBIENT) * np.sin(x)
        init[:, 0] = np.linspace(self.T_HOT, self.T_AMBIENT, n, dtype=np.float32)
        mem.alloc("grid_a", (n, n), approx=True, init=init)
        mem.alloc("grid_b", (n, n), approx=True, init=init)

    def execute(self, mem: ApproxMemory) -> tuple[np.ndarray, int]:
        src = mem.region("grid_a").array
        dst = mem.region("grid_b").array
        names = ("grid_a", "grid_b")
        for it in range(self.iterations):
            dst[1:-1, 1:-1] = 0.25 * (
                src[:-2, 1:-1] + src[2:, 1:-1] + src[1:-1, :-2] + src[1:-1, 2:]
            )
            # The freshly-written grid streams back to memory each sweep.
            mem.sync([names[(it + 1) % 2]])
            src, dst = dst, src
        return src.copy(), self.iterations

    def trace_spec(self) -> TraceSpec:
        # Per sweep: stencil-read the source grid (rows reused via the
        # caches), write the destination grid.
        return TraceSpec(
            iterations=self.iterations,
            phases=(
                Phase("grid_a", reads=True, writes=False, gap=110),
                Phase("grid_b", reads=False, writes=True, gap=110),
            ),
        )
