"""Synthetic input-data generators for the workloads.

The paper uses external inputs we cannot redistribute (a car-silhouette
raster for *lattice*, Lantmäteriet topographic elevations for
*k-means*, SPEC reference inputs for *lbm*/*wrf*).  These generators
produce inputs with the same structural properties — the properties the
evaluation actually depends on: value smoothness (compressibility),
dynamic range, and spatial ordering.
"""

from __future__ import annotations

import numpy as np


def car_silhouette(ny: int, nx: int) -> np.ndarray:
    """Boolean obstacle mask shaped like a car side profile.

    Body + cabin + two wheels, placed in the left-center of the domain
    the way the paper's lattice benchmark places its silhouette input.
    Returns ``(ny, nx)`` with True inside the solid.
    """
    if ny < 16 or nx < 32:
        raise ValueError(f"domain too small for a car: {(ny, nx)}")
    mask = np.zeros((ny, nx), dtype=bool)
    y = np.arange(ny)[:, None]
    x = np.arange(nx)[None, :]

    # Dimensions relative to the domain (car sits on the bottom wall).
    length = int(nx * 0.25)
    x0 = int(nx * 0.2)
    ground = int(ny * 0.15)
    body_h = int(ny * 0.12)
    cabin_h = int(ny * 0.10)
    wheel_r = max(2, int(ny * 0.06))

    body = (
        (x >= x0) & (x < x0 + length)
        & (y >= ground + wheel_r) & (y < ground + wheel_r + body_h)
    )
    cabin_x0 = x0 + int(length * 0.3)
    cabin_x1 = x0 + int(length * 0.75)
    cabin = (
        (x >= cabin_x0) & (x < cabin_x1)
        & (y >= ground + wheel_r + body_h)
        & (y < ground + wheel_r + body_h + cabin_h)
    )
    wheel_y = ground + wheel_r // 2
    for wx in (x0 + int(length * 0.2), x0 + int(length * 0.8)):
        wheel = (x - wx) ** 2 + (y - wheel_y) ** 2 <= wheel_r**2
        mask |= wheel
    mask |= body | cabin
    return mask


def sphere_mask(nz: int, ny: int, nx: int, radius_frac: float = 0.15) -> np.ndarray:
    """Boolean mask of a solid sphere for the 3D lbm benchmark."""
    z = np.arange(nz)[:, None, None]
    y = np.arange(ny)[None, :, None]
    x = np.arange(nx)[None, None, :]
    cz, cy, cx = nz / 2.0, ny / 2.0, nx * 0.3
    r = radius_frac * min(nz, ny)
    return (z - cz) ** 2 + (y - cy) ** 2 + (x - cx) ** 2 <= r**2


def fractal_terrain(
    n: int, roughness: float = 0.55, rng: np.random.Generator | None = None,
    base: float = 300.0, relief: float = 400.0,
) -> np.ndarray:
    """1D fractal elevation profile (midpoint displacement).

    Stands in for the Swedish topographic survey data used by the
    k-means benchmark: geographically ordered elevations with
    self-similar roughness.  ``roughness`` in (0, 1); higher = rougher
    (lower compressibility).  Returns float32 metres, length ``n``.
    """
    rng = rng or np.random.default_rng(0)
    levels = int(np.ceil(np.log2(max(2, n))))
    size = (1 << levels) + 1
    terrain = np.zeros(size, dtype=np.float64)
    terrain[0] = rng.uniform(0.3, 0.7)
    terrain[-1] = rng.uniform(0.3, 0.7)
    amplitude = 0.5
    step = size - 1
    while step > 1:
        half = step // 2
        idx = np.arange(half, size - 1, step)
        terrain[idx] = 0.5 * (terrain[idx - half] + terrain[idx + half])
        terrain[idx] += rng.normal(0.0, amplitude, idx.size)
        amplitude *= roughness
        step = half
    profile = terrain[:n]
    lo, hi = profile.min(), profile.max()
    span = hi - lo if hi > lo else 1.0
    return (base + relief * (profile - lo) / span).astype(np.float32)


def smooth_field_2d(
    ny: int, nx: int, rng: np.random.Generator, octaves: int = 4,
    roughness: float = 0.5,
) -> np.ndarray:
    """Smooth random 2D field in [0, 1] built from upsampled noise octaves."""
    field = np.zeros((ny, nx), dtype=np.float64)
    amplitude = 1.0
    for octave in range(octaves):
        cells = 2 ** (octave + 2)
        coarse = rng.normal(0.0, 1.0, (min(cells, ny), min(cells, nx)))
        field += amplitude * _bilinear_upsample(coarse, ny, nx)
        amplitude *= roughness
    lo, hi = field.min(), field.max()
    span = hi - lo if hi > lo else 1.0
    return ((field - lo) / span).astype(np.float32)


def _bilinear_upsample(coarse: np.ndarray, ny: int, nx: int) -> np.ndarray:
    """Bilinear resize of a small grid to (ny, nx)."""
    cy, cx = coarse.shape
    yi = np.linspace(0, cy - 1, ny)
    xi = np.linspace(0, cx - 1, nx)
    y0 = np.clip(yi.astype(int), 0, cy - 2)
    x0 = np.clip(xi.astype(int), 0, cx - 2)
    wy = (yi - y0)[:, None]
    wx = (xi - x0)[None, :]
    tl = coarse[y0][:, x0]
    tr = coarse[y0][:, x0 + 1]
    bl = coarse[y0 + 1][:, x0]
    br = coarse[y0 + 1][:, x0 + 1]
    return (tl * (1 - wy) + bl * wy) * (1 - wx) + (tr * (1 - wy) + br * wy) * wx


def clustered_option_values(
    n: int, distinct: int, low: float, high: float, rng: np.random.Generator
) -> np.ndarray:
    """Option-parameter array where many entries share identical values.

    The paper notes blackscholes inputs repeat field values across
    entries (which Doppelgänger exploits); this draws each entry from a
    small set of distinct levels.
    """
    levels = np.sort(rng.uniform(low, high, distinct)).astype(np.float32)
    return levels[rng.integers(0, distinct, n)]


def chained_strikes(
    n: int, low: float, high: float, rng: np.random.Generator,
    mean_run: int = 32,
) -> np.ndarray:
    """Strike prices organized in option chains: runs share one strike.

    Run lengths are geometric with mean ``mean_run``, so a cacheline
    usually holds a single repeated strike (dedup-friendly) while a
    memory block sees a handful of level jumps.
    """
    out = np.empty(n, dtype=np.float32)
    pos = 0
    while pos < n:
        run = 1 + int(rng.geometric(1.0 / mean_run))
        out[pos : pos + run] = np.float32(rng.uniform(low, high))
        pos += run
    return out
