"""bscholes — Black-Scholes option pricing (AxBench) [48].

Prices a portfolio of European call options with the closed-form
Black-Scholes formula.  The option input data is approximable (~30 % of
the footprint); several input fields repeat identical values across
entries, which is the structure Doppelgänger exploits.  The workload is
compute-bound — one streaming pass with heavy per-element math — so all
designs have little end-to-end impact (paper §4.3).
"""

from __future__ import annotations

import numpy as np
from scipy.special import ndtr

from ..approx.memory import ApproxMemory
from ..common.types import ErrorThresholds
from .base import Phase, TraceSpec, Workload
from .data import chained_strikes


class BlackScholesWorkload(Workload):
    """Black-Scholes option pricing (AxBench bscholes)."""

    name = "bscholes"
    description = "Financial forecasting of stock option prices"
    approx_data = "Options"
    output_data = "Prices"
    # Single-pass pricing: option deltas amplify input error, so the
    # per-app knob sits tighter than the iterative kernels'.
    default_thresholds = ErrorThresholds.from_t2(0.0025)

    RISK_FREE = 0.05

    def __init__(self, scale: float = 1.0, seed: int = 0, passes: int = 8) -> None:
        super().__init__(scale, seed)
        self.noptions = self._scaled(131_072, minimum=4096, quantum=256)
        #: repeated pricing passes (portfolio revaluation epochs)
        self.passes = passes

    def allocate(self, mem: ApproxMemory) -> None:
        rng = self._rng()
        n = self.noptions
        # Spot prices: sorted random walk -> smooth, compressible.
        # Spot prices: mean-reverting walk (stays near-the-money, smooth).
        steps_noise = rng.normal(0.0, 0.25, n)
        spot = np.empty(n, dtype=np.float64)
        # AR(1) around the 100.0 level: level_t = 100 + sum phi^(t-k) eps_k
        phi = 0.995
        ar = np.empty(n)
        acc = 0.0
        for i in range(n):
            acc = phi * acc + steps_noise[i]
            ar[i] = acc
        spot[:] = 100.0 + ar
        spot = np.clip(spot, 40.0, 200.0).astype(np.float32)
        # Option chains: runs of consecutive entries share one strike
        # (the repeated-field structure the paper notes).
        strikes = chained_strikes(n, 80.0, 120.0, rng, mean_run=384)
        # Chains also share volatility marks and expiries over long runs
        # (options on one underlying/expiry are stored consecutively).
        vols = chained_strikes(n, 0.1, 0.6, rng, mean_run=512)
        expiry = chained_strikes(n, 0.25, 2.0, rng, mean_run=512)
        # ~30% approximable: spot and strike arrays (2 of 6 regions
        # incl. the exact vol/expiry inputs and the two output arrays).
        mem.alloc("spot", (n,), approx=True, init=spot)
        mem.alloc("strike", (n,), approx=True, init=strikes)
        mem.alloc("volatility", (n,), approx=False, init=vols)
        mem.alloc("expiry", (n,), approx=False, init=expiry)
        # Prices are part of the annotated approximate dataset: they
        # are produced from approximate inputs and tolerate the same
        # error budget.
        mem.alloc("call_price", (n,), approx=True)
        mem.alloc("put_price", (n,), approx=True)

    def execute(self, mem: ApproxMemory) -> tuple[np.ndarray, int]:
        spot = mem.region("spot").array
        strike = mem.region("strike").array
        vol = mem.region("volatility").array
        expiry = mem.region("expiry").array
        call = mem.region("call_price").array
        put = mem.region("put_price").array

        for _ in range(self.passes):
            # Inputs stream from memory each revaluation pass.
            mem.sync(["spot", "strike"])
            s = spot.astype(np.float64)
            k = strike.astype(np.float64)
            v = vol.astype(np.float64)
            t = expiry.astype(np.float64)
            sqrt_t = np.sqrt(t)
            d1 = (np.log(s / k) + (self.RISK_FREE + 0.5 * v**2) * t) / (v * sqrt_t)
            d2 = d1 - v * sqrt_t
            disc = np.exp(-self.RISK_FREE * t)
            call[:] = (s * ndtr(d1) - k * disc * ndtr(d2)).astype(np.float32)
            put[:] = (k * disc * ndtr(-d2) - s * ndtr(-d1)).astype(np.float32)
            # The freshly written prices stream back to memory too.
            mem.sync(["call_price", "put_price"])

        return np.concatenate([call, put]), self.passes

    def trace_spec(self) -> TraceSpec:
        # Streaming read of 4 input arrays + write of 2 outputs, with a
        # large compute gap (log/exp/CDF per element): compute-bound.
        return TraceSpec(
            iterations=self.passes,
            phases=(
                Phase("spot", reads=True, gap=1700),
                Phase("strike", reads=True, gap=1700),
                Phase("volatility", reads=True, gap=1700),
                Phase("expiry", reads=True, gap=1700),
                Phase("call_price", writes=True, reads=False, gap=1700),
                Phase("put_price", writes=True, reads=False, gap=1700),
            ),
        )
