"""orbit — 3D two-particle orbit problem (FLASH) [10].

Integrates the bound orbit of two gravitating particles with a leapfrog
scheme, logging the full phase-space history ("Phys. data") into large
approximable arrays — half the footprint, the other half being the
exact solver state.  Trajectories are smooth in time, so the history
arrays compress almost perfectly (the paper reports 16.0:1); the output
is the logged physics data itself.

Coordinates oscillate across zero with a span of the orbit diameter,
which is exactly the regime where Doppelgänger's span-relative
deduplication produces runaway (>100 %) error in the paper.
"""

from __future__ import annotations

import numpy as np

from ..approx.memory import ApproxMemory
from .base import Phase, TraceSpec, Workload

#: gravitational constant in simulation units
G = 1.0
#: particle masses
M1, M2 = 1.0, 1.0


class OrbitWorkload(Workload):
    """Two-particle orbit integration logging phase-space history."""

    name = "orbit"
    description = "3D simulation of the two-particle orbit problem"
    approx_data = "Phys. data"
    output_data = "Phys. data"
    # Orbit coordinates sweep the full span and cross zero; at the
    # span-relative hash granularity Doppelgänger was configured with,
    # aliasing produces the paper's runaway (>100%) error.
    dganger_threshold = 0.03

    #: steps between history flushes to memory (one sync per chunk)
    CHUNK = 2048

    def __init__(self, scale: float = 1.0, seed: int = 0, steps: int = 32768) -> None:
        super().__init__(scale, seed)
        self.steps = self._scaled(steps, minimum=4096, quantum=self.CHUNK)
        self.dt = 2e-3

    def allocate(self, mem: ApproxMemory) -> None:
        # Coordinate-major layout: each row is one coordinate's time
        # series (x1 y1 z1 x2 y2 z2), so consecutive values are smooth.
        mem.alloc("pos_history", (6, self.steps), approx=True)
        mem.alloc("vel_history", (6, self.steps), approx=True)
        # Exact half of the footprint: solver state and diagnostics.
        mem.alloc("energy_log", (2, self.steps), approx=False)
        mem.alloc("angmom_log", (6, self.steps), approx=False)
        mem.alloc("work", (4, self.steps), approx=False)

    def execute(self, mem: ApproxMemory) -> tuple[np.ndarray, int]:
        pos_h = mem.region("pos_history").array
        vel_h = mem.region("vel_history").array
        energy = mem.region("energy_log").array

        # Mildly eccentric bound orbit in the xy plane, slight z wobble.
        r1 = np.array([0.5, 0.0, 0.02])
        r2 = np.array([-0.5, 0.0, -0.02])
        v_circ = np.sqrt(G * (M1 + M2) / np.linalg.norm(r1 - r2)) / 2.0
        v1 = np.array([0.0, 0.9 * v_circ, 0.0])
        v2 = np.array([0.0, -0.9 * v_circ, 0.0])

        def accel(r1: np.ndarray, r2: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
            d = r2 - r1
            dist3 = np.linalg.norm(d) ** 3
            return G * M2 * d / dist3, -G * M1 * d / dist3

        a1, a2 = accel(r1, r2)
        for step in range(self.steps):
            v1 += 0.5 * self.dt * a1
            v2 += 0.5 * self.dt * a2
            r1 += self.dt * v1
            r2 += self.dt * v2
            a1, a2 = accel(r1, r2)
            v1 += 0.5 * self.dt * a1
            v2 += 0.5 * self.dt * a2

            pos_h[:3, step] = r1
            pos_h[3:, step] = r2
            vel_h[:3, step] = v1
            vel_h[3:, step] = v2
            kinetic = 0.5 * (M1 * (v1**2).sum() + M2 * (v2**2).sum())
            potential = -G * M1 * M2 / np.linalg.norm(r1 - r2)
            energy[:, step] = (kinetic, potential)

            if (step + 1) % self.CHUNK == 0:
                # The filled chunk streams out to main memory.
                mem.sync(["pos_history", "vel_history"])

        output = np.concatenate([pos_h.ravel(), vel_h.ravel()])
        return output, self.steps

    def trace_spec(self) -> TraceSpec:
        # History logging is a pure streaming-write pattern; the exact
        # logs stream alongside.  One "iteration" = one chunk.
        return TraceSpec(
            iterations=self.steps // self.CHUNK,
            phases=(
                Phase("pos_history", reads=False, writes=True, gap=320, rolling=True),
                Phase("vel_history", reads=False, writes=True, gap=320, rolling=True),
                Phase("energy_log", reads=False, writes=True, gap=320, rolling=True),
                Phase("angmom_log", reads=False, writes=True, gap=320, rolling=True),
            ),
        )
