"""lbm — 3D Lattice-Boltzmann (D3Q19) fluid flow over a sphere [19].

A scaled-down stand-in for SPEC CPU2006 470.lbm: BGK collision on a
D3Q19 lattice with an immersed solid sphere, inflow/outflow along x.
Nearly the whole footprint (the 19 distribution fields and the velocity
field, ~98 %) is approximable, and the laminar velocity field is
extremely smooth — the combination behind the paper's 15.6:1 ratio.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..approx.memory import ApproxMemory
from ..common.types import ErrorThresholds
from .base import Phase, TraceSpec, Workload
from .data import sphere_mask

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..designs import DesignSpec


def _build_d3q19() -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Velocity set, weights and opposite-direction map for D3Q19."""
    vels = [(0, 0, 0)]
    for axis in range(3):
        for sign in (1, -1):
            v = [0, 0, 0]
            v[axis] = sign
            vels.append(tuple(v))
    for a in range(3):
        for b in range(a + 1, 3):
            for sa in (1, -1):
                for sb in (1, -1):
                    v = [0, 0, 0]
                    v[a], v[b] = sa, sb
                    vels.append(tuple(v))
    e = np.array(vels)  # (19, 3) in (x, y, z) order
    w = np.array([1 / 3] + [1 / 18] * 6 + [1 / 36] * 12)
    opposite = np.array(
        [next(j for j, vj in enumerate(vels) if vj == tuple(-c for c in vi))
         for i, vi in enumerate(vels)]
    )
    return e, w, opposite, np.arange(len(vels))


_E, _W, _OPPOSITE, _ = _build_d3q19()


def equilibrium_3d(rho: np.ndarray, u: np.ndarray) -> np.ndarray:
    """D3Q19 equilibrium; rho (nz,ny,nx), u (3,nz,ny,nx) -> (19,nz,ny,nx)."""
    eu = np.tensordot(_E, u, axes=([1], [0]))  # (19, nz, ny, nx)
    usq = (u**2).sum(axis=0)
    return (
        _W[:, None, None, None]
        * rho[None]
        * (1.0 + 3.0 * eu + 4.5 * eu**2 - 1.5 * usq[None])
    ).astype(np.float32)


class LbmWorkload(Workload):
    """3D Lattice-Boltzmann (D3Q19) fluid flow over a sphere."""

    name = "lbm"
    description = "3D Lattice-Boltzmann fluid flow over a sphere (SPEC 470.lbm)"
    approx_data = "Velocities"
    output_data = "Velocities"
    # ~98% of the footprint (the distribution grids) is annotated
    # approximable in the paper; functionally we round-trip the smooth
    # velocity field ("Velocities", Table 2) and let the timing layer
    # treat f as approximable with the velocity field's compressibility.
    timing_approx_regions = ("f", "velocity")
    timing_proxy_ratio = 15.6  # paper Table 4
    default_thresholds = ErrorThresholds.from_t2(0.01)
    # Doppelgänger hash granularity for lbm's expected span aliases
    # wake-scale differences (the paper's 22.3% failure).
    dganger_threshold = 0.012

    U_INFLOW = 0.04
    OMEGA = 1.0

    def approx_regions_for(self, design: "DesignSpec") -> tuple[str, ...] | None:
        if design.approximator == "dganger":
            # Doppelgänger has no per-value error bound exempting the
            # distribution arrays; its dedup aliases the small
            # directional signal they carry (the paper's lbm failure).
            return ("f", "velocity")
        return None

    def __init__(self, scale: float = 1.0, seed: int = 0, steps: int = 50) -> None:
        super().__init__(scale, seed)
        self.nz = self._scaled(12, minimum=8, quantum=2)
        self.ny = self._scaled(12, minimum=8, quantum=2)
        # nx >= 256 keeps a 256-value block inside one grid row
        self.nx = self._scaled(256, minimum=32, quantum=2)
        self.steps = steps
        self.mask = sphere_mask(self.nz, self.ny, self.nx, radius_frac=0.10)

    def allocate(self, mem: ApproxMemory) -> None:
        shape = (self.nz, self.ny, self.nx)
        rho0 = np.ones(shape, dtype=np.float32)
        u0 = np.zeros((3,) + shape, dtype=np.float32)
        u0[0] = self.U_INFLOW
        mem.alloc("f", (19,) + shape, approx=False, init=equilibrium_3d(rho0, u0))
        mem.alloc("velocity", (3,) + shape, approx=True, init=u0)
        # A small exact region for solver constants (the ~2% exact part).
        mem.alloc("params", (1024,), approx=False)

    def execute(self, mem: ApproxMemory) -> tuple[np.ndarray, int]:
        f = mem.region("f").array
        velocity = mem.region("velocity").array
        mask = self.mask
        for _ in range(self.steps):
            rho = f.sum(axis=0)
            inv_rho = 1.0 / np.maximum(rho, 1e-6)
            u = np.tensordot(_E.T.astype(np.float32), f, axes=([1], [0])) * inv_rho[None]

            # Inflow plane (x = 0) and density normalization.
            u[:, :, :, 0] = 0.0
            u[0, :, :, 0] = self.U_INFLOW
            rho[:, :, 0] = 1.0

            feq = equilibrium_3d(rho, u)
            f += self.OMEGA * (feq - f)
            f[:, mask] = f[_OPPOSITE][:, mask]

            for i in range(1, 19):
                shift = (int(_E[i, 2]), int(_E[i, 1]), int(_E[i, 0]))  # (z, y, x)
                f[i] = np.roll(f[i], shift, axis=(0, 1, 2))
            f[:, :, :, -1] = f[:, :, :, -2]  # outflow
            # Refill the inflow plane with equilibrium at the prescribed
            # velocity (prevents wrapped-around outflow recirculating).
            rho_in = np.ones((self.nz, self.ny, 1), dtype=np.float32)
            u_in = np.zeros((3, self.nz, self.ny, 1), dtype=np.float32)
            u_in[0] = self.U_INFLOW
            f[:, :, :, :1] = equilibrium_3d(rho_in, u_in)

            velocity[...] = u
            mem.sync(["f", "velocity"])

        # Output: the flow speed field (the per-cell velocity magnitude).
        speed = np.sqrt((velocity.astype(np.float64) ** 2).sum(axis=0))
        return speed.astype(np.float32), self.steps

    def trace_spec(self) -> TraceSpec:
        return TraceSpec(
            iterations=self.steps,
            phases=(
                Phase("f", reads=True, writes=True, gap=170),
                Phase("velocity", reads=False, writes=True, gap=170),
            ),
        )
