"""Workload abstraction shared by the seven evaluation applications.

A workload owns two views of itself:

* a *functional* view — :meth:`Workload.allocate` +
  :meth:`Workload.execute` run the real computation on numpy arrays
  registered with an :class:`~repro.approx.ApproxMemory`, calling
  ``mem.sync()`` wherever data streams through main memory.  This view
  produces the output error (Table 3) and compression ratios (Table 4).
* a *timing* view — :meth:`Workload.trace_spec` describes the memory
  access pattern (which regions are swept, how often, with how much
  compute in between) that the trace generator turns into the address
  stream replayed by the timing simulator (Figures 9-15).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..approx.memory import ApproxMemory, approximator_for
from ..common.types import Design, ErrorThresholds
from ..compression.errors import mean_relative_error

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from ..designs import DesignLike, DesignSpec


@dataclass(frozen=True)
class Phase:
    """One sweep over (part of) a region inside the workload's main loop."""

    region: str
    reads: bool = True
    writes: bool = False
    #: fraction of the region touched by this phase per iteration
    fraction: float = 1.0
    #: bytes between consecutive accesses (64 = one access per cacheline)
    stride: int = 64
    #: non-memory instructions executed between accesses (compute density)
    gap: int = 20
    #: times the sweep repeats within one iteration
    repeats: int = 1
    #: when True, iteration i sweeps the i-th successive window of the
    #: region (``fraction`` of it) instead of restarting from the base —
    #: the streaming-log pattern (e.g. orbit's history arrays)
    rolling: bool = False

    # ------------------------------------------------------------------
    # sweep geometry
    # ------------------------------------------------------------------
    # The single source of truth for how many addresses this phase
    # emits: the trace generator (both the vectorized and the reference
    # implementation) and the access-budget accounting all derive their
    # counts from these helpers, which is what keeps
    # ``budget_iterations`` exactly equal to the generated stream.

    @property
    def accesses_per_line(self) -> int:
        """Accesses emitted per swept cacheline (2 for read-modify-write)."""
        return (1 if self.reads else 0) + (1 if self.writes else 0)

    def span_bytes(self, nbytes: int, iterations: int) -> int:
        """Bytes one iteration of this phase sweeps (per full region).

        Rolling phases advance through successive ``nbytes /
        iterations`` windows; fixed phases sweep ``fraction`` of the
        region from its base every iteration.
        """
        if self.rolling:
            return nbytes // max(iterations, 1)
        return int(nbytes * self.fraction)

    def slice_span(self, nbytes: int, iterations: int, num_cores: int) -> int:
        """Bytes of one core's domain-decomposition slice of the sweep."""
        return self.span_bytes(nbytes, iterations) // max(num_cores, 1)

    def lines_per_core(self, nbytes: int, iterations: int, num_cores: int) -> int:
        """Cacheline addresses one core emits per iteration.

        Includes ``repeats`` but not the read-modify-write doubling
        (see :attr:`accesses_per_line`).  A slice narrower than the
        stride emits nothing — the sweep cannot place a single strided
        access inside it.
        """
        span = self.slice_span(nbytes, iterations, num_cores)
        if span < self.stride:
            return 0
        return -(-span // self.stride) * self.repeats


@dataclass(frozen=True)
class TraceSpec:
    """Access-pattern description consumed by the trace generator."""

    iterations: int
    phases: tuple[Phase, ...]


@dataclass
class WorkloadResult:
    """Outcome of one functional run."""

    output: np.ndarray
    memory: ApproxMemory
    iterations: int


class Workload(abc.ABC):
    """Base class for the seven paper applications."""

    #: short name used in tables/figures (matches the paper)
    name: str = "abstract"
    #: one-line description (Table 2)
    description: str = ""
    #: which data structures are approximated (Table 2, "Approx." column)
    approx_data: str = ""
    #: what the output is (Table 2, "Output" column)
    output_data: str = ""
    #: per-application error knob (paper §3.1: thresholds are a tunable
    #: knob; iterative kernels need tighter settings than single-pass
    #: ones to keep accumulated output error in the paper's range)
    default_thresholds: ErrorThresholds | None = None
    #: Doppelgänger similarity knob (bucket width / dataset value span)
    dganger_threshold: float = 0.001
    #: regions the *architecture* treats as approximable for footprint
    #: accounting and the timing layer.  Defaults to the functionally
    #: approximated regions; the LBM codes widen it (their distribution
    #: arrays are annotated approximable in the paper, but round-tripping
    #: them *functionally* is numerically meaningless — velocity is a
    #: small signal riding on f — so they are approximated in the timing
    #: view only, with compressibility proxied by the measured fields).
    timing_approx_regions: tuple[str, ...] | None = None
    #: compression ratio assumed for timing-approx regions that are not
    #: functionally measured (None = mean of the measured regions).
    #: The LBM codes pin this to the paper's reported ratio: their
    #: distribution-array compressibility depends on flow-feature scale
    #: that only the paper's full-size grids reach (see DESIGN.md).
    timing_proxy_ratio: float | None = None

    def __init__(self, scale: float = 1.0, seed: int = 0) -> None:
        if scale <= 0:
            raise ValueError(f"scale must be positive, got {scale}")
        self.scale = scale
        self.seed = seed

    # ------------------------------------------------------------------
    # functional interface
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def allocate(self, mem: ApproxMemory) -> None:
        """Allocate and initialize all regions."""

    @abc.abstractmethod
    def execute(self, mem: ApproxMemory) -> tuple[np.ndarray, int]:
        """Run the computation; returns (output, iterations executed).

        Implementations call ``mem.sync()`` at every point their data
        would round-trip through main memory.
        """

    def approx_regions_for(self, design: "DesignSpec") -> tuple[str, ...] | None:
        """Regions the *functional* round-trip touches under ``design``
        (a resolved :class:`~repro.designs.DesignSpec`).

        ``None`` keeps the flags set at allocation time.  Workloads
        override this when a design's approximation applies to more
        data than is numerically meaningful for another design (e.g.
        Doppelgänger dedups the LBM distribution arrays — it has no
        per-value error control that would exempt them).
        """
        return None

    def run(
        self,
        design: "DesignLike" = Design.BASELINE,
        thresholds: ErrorThresholds | None = None,
        check_mode: str = "hybrid",
        dganger_threshold: float | None = None,
    ) -> WorkloadResult:
        """Full functional run under one design point.

        ``design`` is anything :func:`repro.designs.get_design`
        resolves (spec, registry name, or legacy enum member).
        ``thresholds``/``dganger_threshold`` default to the workload's
        per-application knob settings; the design's
        ``thresholds_scale`` then scales the resolved thresholds (see
        :meth:`repro.designs.DesignSpec.resolve_thresholds`).
        """
        from ..designs import get_design

        design = get_design(design)
        approximator = approximator_for(
            design,
            design.resolve_thresholds(thresholds, self.default_thresholds),
            check_mode,
            dganger_threshold if dganger_threshold is not None else self.dganger_threshold,
        )
        mem = ApproxMemory(approximator)
        self.allocate(mem)
        marked = self.approx_regions_for(design)
        if marked is not None:
            for name, region in mem.regions.items():
                region.approx = name in marked
        output, iterations = self.execute(mem)
        return WorkloadResult(output=output, memory=mem, iterations=iterations)

    def output_error(self, result: WorkloadResult, reference: WorkloadResult) -> float:
        """Paper's quality metric: mean relative error of output values."""
        return mean_relative_error(reference.output, result.output)

    # ------------------------------------------------------------------
    # timing interface
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def trace_spec(self) -> TraceSpec:
        """Describe the main loop's memory access pattern."""

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _rng(self) -> np.random.Generator:
        return np.random.default_rng(self.seed)

    def _scaled(self, value: int, minimum: int = 1, quantum: int = 1) -> int:
        """Scale a nominal dimension, keeping it a positive multiple."""
        scaled = max(minimum, int(round(value * self.scale)))
        return max(quantum, (scaled // quantum) * quantum)
