"""kmeans — 1D k-means clustering of topographic elevations [2, 3].

Lloyd's algorithm on a geographically-ordered 1D elevation profile (a
synthetic stand-in for the Swedish topographic survey tile the paper
uses).  The point data is approximable; the output is the converged
cluster centroids.  Elevation data is rough, so AVR only reaches a
modest ratio (paper: 2.3:1), and — uniquely among the benchmarks — the
iteration count *depends on the approximation quality*: noisier points
move the convergence target, which is why the paper sees AVR execute
extra iterations.
"""

from __future__ import annotations

import numpy as np

from ..approx.memory import ApproxMemory
from .base import Phase, TraceSpec, Workload
from .data import fractal_terrain


class KMeansWorkload(Workload):
    """1D k-means clustering of a topographic elevation profile."""

    name = "kmeans"
    description = "1D k-means clustering of a geographic elevation map"
    approx_data = "Topol."
    output_data = "Clusters"

    def __init__(
        self,
        scale: float = 1.0,
        seed: int = 0,
        k: int = 16,
        max_iterations: int = 60,
        min_iterations: int = 12,
        tolerance: float = 1e-4,
    ) -> None:
        # tolerance: relative within-cluster-SSE improvement below which
        # the clustering is considered converged.  min_iterations is the
        # benchmark's fixed minimum epoch count (quantized inputs can
        # stall the SSE early without having settled the centroids).
        super().__init__(scale, seed)
        self.npoints = self._scaled(1_048_576, minimum=4096, quantum=256)
        self.k = k
        self.max_iterations = max_iterations
        self.min_iterations = min_iterations
        self.tolerance = tolerance

    def allocate(self, mem: ApproxMemory) -> None:
        rng = self._rng()
        # Multi-modal elevations: distinct biome base levels (valleys,
        # plateaus, ranges) + fractal detail + patchy meter-scale relief.
        # The modes make Lloyd's algorithm converge decisively; the
        # rugged tiles defeat 16-point averaging, capping the AVR ratio
        # near the paper's 2.3:1.
        tile = 4096
        ntiles = -(-self.npoints // tile)
        levels = np.sort(rng.uniform(50.0, 900.0, 10))
        base = np.repeat(levels[rng.integers(0, levels.size, ntiles)], tile)
        detail = fractal_terrain(
            self.npoints, roughness=0.72, rng=rng, base=0.0, relief=80.0
        )
        rugged = rng.random(ntiles) < 0.45
        sigma = np.repeat(np.where(rugged, 25.0, 1.5), tile)
        terrain = (
            base[: self.npoints]
            + detail
            + sigma[: self.npoints] * rng.normal(0.0, 1.0, self.npoints)
        ).astype(np.float32)
        mem.alloc("points", (self.npoints,), approx=True, init=terrain)
        # Per-point cluster labels: geographically ordered, written every
        # iteration, and approximation-tolerant (a flipped boundary label
        # is equivalent to a small point perturbation).
        mem.alloc("assignments", (self.npoints,), approx=True)
        mem.alloc("centroids", (self.k,), approx=False)
        mem.alloc("assign_counts", (self.k,), approx=False)

    def execute(self, mem: ApproxMemory) -> tuple[np.ndarray, int]:
        points = mem.region("points").array
        centroids_arr = mem.region("centroids").array

        # Deterministic init: evenly spaced percentiles of the data.
        centroids = np.percentile(
            points, np.linspace(2, 98, self.k)
        ).astype(np.float64)

        iterations = 0
        prev_sse: float | None = None
        for _ in range(self.max_iterations):
            iterations += 1
            # The full point array streams from memory every iteration.
            mem.sync(["points"])
            order = np.sort(centroids)
            boundaries = 0.5 * (order[1:] + order[:-1])
            assign = np.digitize(points, boundaries)
            mem.region("assignments").array[:] = assign
            mem.sync(["assignments"])
            p64 = points.astype(np.float64)
            sums = np.bincount(assign, weights=p64, minlength=self.k)
            sqs = np.bincount(assign, weights=p64 * p64, minlength=self.k)
            counts = np.bincount(assign, minlength=self.k)
            centroids = np.where(counts > 0, sums / np.maximum(counts, 1), order)
            sse = float(
                (sqs - np.where(counts > 0, sums**2 / np.maximum(counts, 1), 0.0)).sum()
            )
            if (
                prev_sse is not None
                and iterations >= self.min_iterations
                and abs(prev_sse - sse) < self.tolerance * prev_sse
            ):
                break
            prev_sse = sse

        centroids_arr[:] = np.sort(centroids).astype(np.float32)
        return centroids_arr.copy(), iterations

    def trace_spec(self) -> TraceSpec:
        # Per iteration: stream-read every point; centroid accumulators
        # stay in registers/L1 (k is tiny).  Nominal iteration count is
        # the cap; the harness rescales by the measured count.
        return TraceSpec(
            iterations=self.max_iterations // 2,
            phases=(
                Phase("points", reads=True, writes=False, gap=130),
                Phase("assignments", reads=False, writes=True, gap=130),
            ),
        )
