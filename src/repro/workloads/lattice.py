"""lattice — 2D Lattice-Boltzmann (D2Q9) air flow over a car silhouette [7].

A minimal entropic-style BGK lattice-Boltzmann method on a D2Q9
lattice, with an inflow at the left boundary, outflow at the right, and
half-way bounce-back on a solid car-shaped obstacle.  The approximable
data are the particle distribution functions and the macroscopic
fields ("P and M"), and the output is velocity + pressure, as in
Table 2.
"""

from __future__ import annotations

import numpy as np

from ..approx.memory import ApproxMemory
from ..common.types import ErrorThresholds
from .base import Phase, TraceSpec, Workload
from .data import car_silhouette

# D2Q9 lattice: rest, 4 axis-aligned, 4 diagonal directions.
_EX = np.array([0, 1, 0, -1, 0, 1, -1, -1, 1])
_EY = np.array([0, 0, 1, 0, -1, 1, 1, -1, -1])
_W = np.array([4 / 9] + [1 / 9] * 4 + [1 / 36] * 4)
_OPPOSITE = np.array([0, 3, 4, 1, 2, 7, 8, 5, 6])


def equilibrium(rho: np.ndarray, ux: np.ndarray, uy: np.ndarray) -> np.ndarray:
    """D2Q9 second-order equilibrium distribution, shape (9, ny, nx)."""
    eu = _EX[:, None, None] * ux[None] + _EY[:, None, None] * uy[None]
    usq = ux**2 + uy**2
    return (
        _W[:, None, None]
        * rho[None]
        * (1.0 + 3.0 * eu + 4.5 * eu**2 - 1.5 * usq[None])
    ).astype(np.float32)


class LatticeWorkload(Workload):
    """2D Lattice-Boltzmann (D2Q9) air flow over a car silhouette."""

    name = "lattice"
    description = "2D Lattice-Boltzmann air flow over a solid car silhouette"
    approx_data = "P and M"
    output_data = "Vel.+Pr."
    # Macroscopic fields take the functional round-trip; the distribution
    # functions are architecture-approximable (timing view) only — see
    # Workload.timing_approx_regions.
    timing_approx_regions = ("f", "macro")
    timing_proxy_ratio = 9.6  # paper Table 4
    default_thresholds = ErrorThresholds.from_t2(0.01)
    dganger_threshold = 0.0005

    U_INFLOW = 0.05
    OMEGA = 1.2

    def __init__(self, scale: float = 1.0, seed: int = 0, steps: int = 150) -> None:
        super().__init__(scale, seed)
        self.ny = self._scaled(192, minimum=24, quantum=8)
        # nx >= 256 keeps a 256-value block inside one grid row
        self.nx = self._scaled(512, minimum=64, quantum=8)
        self.steps = steps
        self.mask = car_silhouette(self.ny, self.nx)

    def allocate(self, mem: ApproxMemory) -> None:
        ny, nx = self.ny, self.nx
        rho0 = np.ones((ny, nx), dtype=np.float32)
        ux0 = np.full((ny, nx), self.U_INFLOW, dtype=np.float32)
        uy0 = np.zeros((ny, nx), dtype=np.float32)
        f0 = equilibrium(rho0, ux0, uy0)
        mem.alloc("f", (9, ny, nx), approx=False, init=f0)
        macro0 = np.stack([rho0, ux0, uy0])
        mem.alloc("macro", (3, ny, nx), approx=True, init=macro0)

    def execute(self, mem: ApproxMemory) -> tuple[np.ndarray, int]:
        f = mem.region("f").array
        macro = mem.region("macro").array
        mask = self.mask
        for _ in range(self.steps):
            rho = f.sum(axis=0)
            inv_rho = 1.0 / np.maximum(rho, 1e-6)
            ux = (f * _EX[:, None, None]).sum(axis=0) * inv_rho
            uy = (f * _EY[:, None, None]).sum(axis=0) * inv_rho

            # Inflow: fixed velocity at the left column (equilibrium refill).
            ux[:, 0] = self.U_INFLOW
            uy[:, 0] = 0.0
            rho[:, 0] = 1.0

            feq = equilibrium(rho, ux, uy)
            f += self.OMEGA * (feq - f)

            # Half-way bounce-back on the obstacle.
            f[:, mask] = f[_OPPOSITE][:, mask]

            # Streaming (periodic wrap vertically; open horizontally).
            for i in range(1, 9):
                f[i] = np.roll(f[i], (int(_EY[i]), int(_EX[i])), axis=(0, 1))
            f[:, :, 0] = equilibrium(
                np.ones(self.ny, dtype=np.float32)[:, None],
                np.full((self.ny, 1), self.U_INFLOW, dtype=np.float32),
                np.zeros((self.ny, 1), dtype=np.float32),
            )[:, :, 0]
            f[:, :, -1] = f[:, :, -2]  # zero-gradient outflow

            macro[0], macro[1], macro[2] = rho, ux, uy
            mem.sync(["f", "macro"])

        speed = np.sqrt(macro[1] ** 2 + macro[2] ** 2)
        pressure = macro[0] / 3.0
        return np.stack([speed, pressure]), self.steps

    def trace_spec(self) -> TraceSpec:
        # Per step: the distributions are read and rewritten (collide +
        # stream), macroscopic fields are computed and written.
        return TraceSpec(
            iterations=self.steps,
            phases=(
                Phase("f", reads=True, writes=True, gap=150),
                Phase("macro", reads=False, writes=True, gap=150),
            ),
        )
