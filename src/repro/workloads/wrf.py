"""wrf — weather forecasting model proxy (SPEC CPU2006 481.wrf) [19].

A multi-field 3D atmospheric kernel standing in for WRF: temperature,
pressure, humidity, three wind components and a static geopotential
field evolve under advection (by the wind), diffusion and
terrain-induced forcing.  Only the geographically-ordered temperature
metrics are approximable — about 15 % of the footprint, matching the
paper — and the temperature field is rough enough that AVR only reaches
a ~3.4:1 ratio with visible output error (paper: 8.9 %).
"""

from __future__ import annotations

import numpy as np

from ..approx.memory import ApproxMemory
from ..common.types import ErrorThresholds
from .base import Phase, TraceSpec, Workload
from .data import smooth_field_2d


class WrfWorkload(Workload):
    """Multi-field 3D atmospheric kernel standing in for WRF."""

    name = "wrf"
    description = "Weather forecasting model (advection-diffusion proxy)"
    approx_data = "Geo data"
    output_data = "Temp."
    default_thresholds = ErrorThresholds.from_t2(0.02)
    dganger_threshold = 0.006

    def __init__(self, scale: float = 1.0, seed: int = 0, steps: int = 60) -> None:
        super().__init__(scale, seed)
        self.nz = self._scaled(12, minimum=4, quantum=2)
        self.ny = self._scaled(96, minimum=16, quantum=8)
        self.nx = self._scaled(96, minimum=16, quantum=8)
        self.steps = steps

    def allocate(self, mem: ApproxMemory) -> None:
        rng = self._rng()
        nz, ny, nx = self.nz, self.ny, self.nx
        shape = (nz, ny, nx)

        terrain = smooth_field_2d(ny, nx, rng, octaves=5, roughness=0.65)
        # Temperature: lapse rate with altitude + terrain + mesoscale noise.
        altitude = np.linspace(0.0, 1.0, nz)[:, None, None]
        # Celsius-scale temperatures: geographically ordered, crossing
        # zero with altitude (the regime where span-relative dedup and
        # exponent-sensitive compression both struggle).
        temp = (
            15.0
            - 40.0 * altitude
            - 12.0 * terrain[None]
            + 1.5 * rng.normal(0.0, 1.0, shape)
        ).astype(np.float32)
        pressure = (1013.0 * np.exp(-1.2 * altitude) * np.ones(shape)).astype(np.float32)
        humidity = (0.5 + 0.4 * smooth_field_2d(ny, nx, rng)[None] * np.ones(shape)).astype(np.float32)
        wind_u = (6.0 * (smooth_field_2d(ny, nx, rng) - 0.5)[None] * np.ones(shape)).astype(np.float32)
        wind_v = (6.0 * (smooth_field_2d(ny, nx, rng) - 0.5)[None] * np.ones(shape)).astype(np.float32)
        wind_w = np.zeros(shape, dtype=np.float32)

        # Approximable: the geographically ordered temperature metrics
        # (~1/7 of the footprint ≈ the paper's 15 %).
        mem.alloc("temperature", shape, approx=True, init=temp)
        mem.alloc("pressure", shape, approx=False, init=pressure)
        mem.alloc("humidity", shape, approx=False, init=humidity)
        mem.alloc("wind_u", shape, approx=False, init=wind_u)
        mem.alloc("wind_v", shape, approx=False, init=wind_v)
        mem.alloc("wind_w", shape, approx=False, init=wind_w)
        mem.alloc("geopotential", shape, approx=False,
                  init=(9.81 * 1000.0 * altitude * np.ones(shape)).astype(np.float32))

    def execute(self, mem: ApproxMemory) -> tuple[np.ndarray, int]:
        temp = mem.region("temperature").array
        wind_u = mem.region("wind_u").array
        wind_v = mem.region("wind_v").array
        humidity = mem.region("humidity").array

        dt, dx = 0.2, 1.0
        kappa = 0.08
        for _ in range(self.steps):
            # First-order upwind advection (stable at any cell Peclet
            # number; centered differencing would amplify block-scale
            # approximation noise into a numerical instability).
            fwd_x = np.roll(temp, -1, axis=2) - temp
            bwd_x = temp - np.roll(temp, 1, axis=2)
            fwd_y = np.roll(temp, -1, axis=1) - temp
            bwd_y = temp - np.roll(temp, 1, axis=1)
            ddx = np.where(wind_u > 0, bwd_x, fwd_x) / dx
            ddy = np.where(wind_v > 0, bwd_y, fwd_y) / dx
            lap = (
                np.roll(temp, 1, axis=1) + np.roll(temp, -1, axis=1)
                + np.roll(temp, 1, axis=2) + np.roll(temp, -1, axis=2)
                - 4.0 * temp
            )
            latent = 0.4 * (humidity - 0.5)
            temp += dt * (-wind_u * ddx - wind_v * ddy + kappa * lap + latent)
            # The temperature field streams through memory every step.
            mem.sync(["temperature"])

        return temp.copy(), self.steps

    def trace_spec(self) -> TraceSpec:
        return TraceSpec(
            iterations=self.steps,
            phases=(
                Phase("temperature", reads=True, writes=True, gap=190),
                Phase("wind_u", reads=True, gap=190),
                Phase("wind_v", reads=True, gap=190),
                Phase("humidity", reads=True, gap=190),
                Phase("pressure", reads=True, fraction=0.5, gap=190),
            ),
        )
