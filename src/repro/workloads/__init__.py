"""The seven evaluation applications (paper Table 2)."""

from .base import Phase, TraceSpec, Workload, WorkloadResult
from .blackscholes import BlackScholesWorkload
from .heat import HeatWorkload
from .kmeans import KMeansWorkload
from .lattice import LatticeWorkload
from .lbm import LbmWorkload
from .orbit import OrbitWorkload
from .wrf import WrfWorkload

#: Registry in the paper's presentation order.
WORKLOADS: dict[str, type[Workload]] = {
    "heat": HeatWorkload,
    "lattice": LatticeWorkload,
    "lbm": LbmWorkload,
    "orbit": OrbitWorkload,
    "kmeans": KMeansWorkload,
    "bscholes": BlackScholesWorkload,
    "wrf": WrfWorkload,
}


def make_workload(
    name: str, scale: float = 1.0, seed: int = 0, **kwargs: object
) -> Workload:
    """Instantiate a workload by its paper name."""
    try:
        cls = WORKLOADS[name]
    except KeyError:
        raise ValueError(
            f"unknown workload {name!r}; available: {sorted(WORKLOADS)}"
        ) from None
    return cls(scale=scale, seed=seed, **kwargs)


__all__ = [
    "BlackScholesWorkload",
    "HeatWorkload",
    "KMeansWorkload",
    "LatticeWorkload",
    "LbmWorkload",
    "OrbitWorkload",
    "Phase",
    "TraceSpec",
    "WORKLOADS",
    "Workload",
    "WorkloadResult",
    "WrfWorkload",
    "make_workload",
]
