"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``evaluate``  — regenerate the paper's tables and figures
* ``workload``  — run one workload under one design and report
* ``scenario``  — co-run a multi-programmed workload mix and report
  per-core slowdown, weighted speedup and shared-LLC pressure
* ``ablate``    — run the LLC / compressor ablation studies
* ``overheads`` — print the §4.2 hardware-overhead accounting

All simulation commands accept ``--jobs N`` to fan the evaluation
grid's job units out over ``N`` worker processes (``1`` = serial,
bit-identical to parallel runs), ``--cache-dir PATH`` to memoize job
results on disk so repeated runs skip completed points, and
``--engine {vectorized,reference}`` to select the timing-replay
implementation (the batched fast path and the reference loop produce
bit-identical results).
"""

from __future__ import annotations

import argparse
import sys

from .common.config import SystemConfig
from .common.types import COMPARED_DESIGNS, Design
from .system.simulator import ENGINES
from .harness import (
    evaluate_all,
    evaluate_workload,
    fig09_execution_time,
    fig11_memory_traffic,
    fig12_amat,
    fig13_mpki,
    format_stacked,
    format_table,
    hardware_overheads,
    run_compressor_ablations,
    run_llc_ablations,
    table3_output_error,
    table4_compression,
)
from .workloads import WORKLOADS


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scale", type=float, default=1.0,
                        help="workload size multiplier (default 1.0)")
    parser.add_argument("--cores", type=_positive_int, default=None,
                        help="simulated cores (default 8; the scenario "
                             "command derives it from the mix)")
    parser.add_argument("--accesses", type=_positive_int, default=50_000,
                        help="trace accesses per core (default 50000)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--jobs", type=_positive_int, default=1,
                        help="worker processes for the sweep engine "
                             "(default 1 = serial)")
    parser.add_argument("--cache-dir", default=None, metavar="PATH",
                        help="on-disk result cache; re-runs skip "
                             "already-computed sweep points")
    parser.add_argument("--engine", choices=ENGINES, default="vectorized",
                        help="timing-replay engine: the batched fast "
                             "path (default) or the reference "
                             "access-at-a-time loop; results are "
                             "bit-identical")


def cmd_evaluate(args: argparse.Namespace) -> int:
    config = SystemConfig.scaled(num_cores=args.cores or 8)
    names = tuple(args.workloads) if args.workloads else None
    evals = evaluate_all(
        names=names, config=config, scale=args.scale, seed=args.seed,
        max_accesses_per_core=args.accesses,
        jobs=args.jobs, cache_dir=args.cache_dir, engine=args.engine,
    )
    order = list(evals)
    designs = [d.value for d in COMPARED_DESIGNS]
    print(format_table("Table 3: output error (%)",
                       table3_output_error(evals), "{:.2f}", col_order=order))
    print()
    print(format_table("Table 4: AVR compression",
                       table4_compression(evals), "{:.1f}", col_order=order))
    print()
    print(format_table("Figure 9: execution time (norm.)",
                       fig09_execution_time(evals), "{:.2f}", col_order=designs))
    print()
    print(format_stacked("Figure 11: memory traffic (norm.)",
                         fig11_memory_traffic(evals)))
    print()
    print(format_table("Figure 12: AMAT (norm.)",
                       fig12_amat(evals), "{:.2f}", col_order=designs))
    print()
    print(format_table("Figure 13: LLC MPKI (norm.)",
                       fig13_mpki(evals), "{:.2f}", col_order=designs))
    return 0


def cmd_workload(args: argparse.Namespace) -> int:
    config = SystemConfig.scaled(num_cores=args.cores or 8)
    ev = evaluate_workload(
        args.name, config=config, scale=args.scale, seed=args.seed,
        max_accesses_per_core=args.accesses,
        jobs=args.jobs, cache_dir=args.cache_dir, engine=args.engine,
    )
    print(f"{args.name}: footprint {ev.footprint_bytes / 1e6:.1f} MB, "
          f"AVR ratio {ev.avr_compression_ratio:.1f}:1, "
          f"footprint vs baseline {ev.footprint_vs_baseline * 100:.0f}%")
    header = f"{'design':>9} {'error %':>8} {'time':>6} {'traffic':>8} {'AMAT':>6} {'MPKI':>6}"
    print(header)
    for design in COMPARED_DESIGNS:
        run = ev.runs[design]
        print(f"{design.value:>9} {run.output_error * 100:8.3f}"
              f" {ev.normalized(design, 'time'):6.2f}"
              f" {ev.normalized(design, 'traffic'):8.2f}"
              f" {ev.normalized(design, 'amat'):6.2f}"
              f" {ev.normalized(design, 'mpki'):6.2f}")
    return 0


def cmd_scenario(args: argparse.Namespace) -> int:
    from .harness.scenario import evaluate_scenario
    from .scenario import get_scenario, named_scenarios

    if args.mix == "list":
        print("named mixes:")
        for name, scenario in named_scenarios().items():
            print(f"  {name:>18}  {scenario.mix_string()}  "
                  f"({scenario.total_cores} cores, {scenario.placement})")
        print("or compose one: WORKLOAD[*N][@CORES]+... "
              "(e.g. kmeans*2@2+heat@4)")
        return 0

    try:
        scenario = get_scenario(args.mix).scaled(args.scale)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    cores = args.cores or scenario.total_cores
    if cores < scenario.total_cores:
        print(f"error: mix {scenario.name!r} needs {scenario.total_cores} "
              f"cores, --cores gave {cores}", file=sys.stderr)
        return 2
    designs = tuple(
        Design(d) for d in (args.designs or [d.value for d in
                                             (Design.BASELINE, Design.AVR)])
    )
    config = SystemConfig.scaled(num_cores=cores)
    ev = evaluate_scenario(
        scenario, config=config, designs=designs, seed=args.seed,
        max_accesses_per_core=args.accesses,
        jobs=args.jobs, cache_dir=args.cache_dir, engine=args.engine,
    )

    print(f"scenario {ev.name}: {scenario.mix_string()} — "
          f"{scenario.num_instances} instances on {cores} cores, "
          f"footprint {ev.footprint_bytes / 1e6:.1f} MB")
    with_baseline = Design.BASELINE in ev.runs
    summary = {
        design.value: {
            "wspeedup": run.weighted_speedup,
            **({"mix time": ev.normalized_mix_time(design)}
               if with_baseline else {}),
            "LLC infl": run.llc_miss_inflation,
        }
        for design, run in ev.runs.items()
    }
    columns = ["wspeedup"] + (["mix time"] if with_baseline else []) + ["LLC infl"]
    print()
    print(format_table(
        f"Mix summary (weighted speedup, ideal {scenario.num_instances})",
        summary, "{:.3f}", col_order=columns))
    for design, run in ev.runs.items():
        rows = {
            f"{inst.workload}#{inst.index}": {
                "slowdown": inst.slowdown,
                "solo Mcyc": inst.solo_cycles / 1e6,
                "corun Mcyc": inst.corun_cycles / 1e6,
                "solo miss": inst.solo_llc_misses,
                "pressure": inst.pressure_llc_misses,
                "induced": inst.induced_llc_misses,
            }
            for inst in run.instances
        }
        print()
        print(format_table(
            f"{design.value}: per-instance contention",
            rows, "{:.2f}",
            col_order=["slowdown", "solo Mcyc", "corun Mcyc",
                       "solo miss", "pressure", "induced"]))
        for inst in run.instances:
            percore = "  ".join(
                f"c{c}:{s:.2f}"
                for c, s in zip(inst.cores, inst.per_core_slowdown)
            )
            print(f"  {inst.workload}#{inst.index} per-core slowdown: "
                  f"{percore}")
    return 0


def cmd_ablate(args: argparse.Namespace) -> int:
    config = SystemConfig.scaled(num_cores=args.cores or 8)
    llc = run_llc_ablations(
        args.name, config=config, scale=args.scale,
        max_accesses_per_core=args.accesses,
        jobs=args.jobs, cache_dir=args.cache_dir, engine=args.engine,
    )
    full = llc["full AVR"]
    rows = {
        label: {
            "time": p.cycles / full.cycles,
            "traffic": p.total_bytes / full.total_bytes,
            "AMAT": p.amat_cycles / full.amat_cycles,
        }
        for label, p in llc.items()
    }
    print(format_table(f"LLC ablations on {args.name} (norm. to full AVR)",
                       rows, "{:.2f}", col_order=["time", "traffic", "AMAT"]))
    print()
    comp = run_compressor_ablations(
        args.name, scale=min(args.scale, 0.5), cache_dir=args.cache_dir,
    )
    print(format_table(f"Compressor ablations on {args.name} data", comp,
                       "{:.2f}", col_order=["ratio", "mean_error_pct", "success_pct"]))
    return 0


def cmd_overheads(_args: argparse.Namespace) -> int:
    o = hardware_overheads()
    print("AVR hardware overheads (paper §4.2):")
    print(f"  CMT + TLB bits per page:    {o['cmt_bits_per_page']:.0f}")
    print(f"  vs an 88-bit TLB entry:     {o['tlb_overhead_factor']:.2f}x")
    print(f"  extra LLC bits per entry:   {o['llc_extra_bits_per_entry']:.0f}")
    print(f"  LLC storage overhead:       {o['llc_extra_kbytes']:.0f} kB "
          f"({o['llc_overhead_fraction'] * 100:.1f}%)")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="AVR (ICPP 2019) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_eval = sub.add_parser("evaluate", help="regenerate the paper's evaluation")
    p_eval.add_argument("--workloads", nargs="*", choices=sorted(WORKLOADS),
                        help="subset of workloads (default: all)")
    _add_common(p_eval)
    p_eval.set_defaults(func=cmd_evaluate)

    p_wl = sub.add_parser("workload", help="evaluate one workload")
    p_wl.add_argument("name", choices=sorted(WORKLOADS))
    _add_common(p_wl)
    p_wl.set_defaults(func=cmd_workload)

    p_sc = sub.add_parser(
        "scenario",
        help="co-run a multi-programmed workload mix",
        description="Evaluate a named mix (heat+lbm, kmeans4+bscholes4, "
                    "all7), a mix string (kmeans*2@2+heat@4), or 'list' "
                    "to enumerate the shipped mixes.",
    )
    p_sc.add_argument("mix", help="named mix, mix string, or 'list'")
    p_sc.add_argument("--designs", nargs="+", metavar="DESIGN",
                      choices=sorted(d.value for d in Design),
                      help="designs to compare (default: baseline + AVR)")
    _add_common(p_sc)
    p_sc.set_defaults(func=cmd_scenario)

    p_ab = sub.add_parser("ablate", help="run the ablation studies")
    p_ab.add_argument("name", nargs="?", default="heat", choices=sorted(WORKLOADS))
    _add_common(p_ab)
    p_ab.set_defaults(func=cmd_ablate)

    p_ov = sub.add_parser("overheads", help="print §4.2 hardware overheads")
    p_ov.set_defaults(func=cmd_overheads)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
