"""Command-line interface: ``python -m repro <command>`` (or ``repro``).

Commands:

* ``evaluate``   — regenerate the paper's tables and figures
* ``workload``   — run one workload under one design and report
* ``scenario``   — co-run a multi-programmed workload mix and report
  per-core slowdown, weighted speedup and shared-LLC pressure
* ``experiment`` — run a declarative experiment spec (TOML/JSON)
* ``designs``    — list the registered design points
* ``ablate``     — run the LLC / compressor ablation studies
* ``overheads``  — print the §4.2 hardware-overhead accounting
* ``plan``       — search the design space for Pareto-optimal
  configurations under an objective, constraints and eval budget
* ``cache``      — inspect and maintain an on-disk result cache
  (``stats`` / ``gc`` / ``verify`` / ``ls``)
* ``check``      — run the repo-invariant static analysis pass
* ``serve``      — run the resident evaluation daemon (shared pool,
  shared cache, cross-client job-unit dedup)
* ``submit``     — send a spec to a running daemon and stream events
* ``status``     — report a running daemon's queue and sessions

``--designs`` / ``--design`` options accept any registered design name
(see ``python -m repro designs``); unknown names fail with close-match
suggestions.  All simulation commands accept ``--jobs N`` to fan the
evaluation grid's job units out over ``N`` worker processes (``1`` =
serial, bit-identical to parallel runs), ``--cache-dir PATH`` to
memoize job results on disk so repeated runs skip completed points,
``--cache-backend {sharded,memory[:N],readthrough:PATH}`` to pick the
cache storage stack (execution-only; every backend is bit-identical),
and ``--engine {vectorized,reference}`` to select the timing-replay
implementation (the batched fast path and the reference loop produce
bit-identical results).  ``--trace-store PATH|off`` controls the
memory-mapped composed-trace store (default: ``<cache-dir>/traces``
whenever ``--cache-dir`` is given); warm runs map stored traces
instead of regenerating them.
"""

from __future__ import annotations

import argparse
import sys
from typing import TYPE_CHECKING

from .common.config import SystemConfig
from .designs import get_design, list_designs, resolve_designs
from .harness import (
    evaluate_all,
    evaluate_workload,
    fig09_execution_time,
    fig11_memory_traffic,
    fig12_amat,
    fig13_mpki,
    format_stacked,
    format_table,
    hardware_overheads,
    run_compressor_ablations,
    run_llc_ablations,
    table3_output_error,
    table4_compression,
)
from .system.simulator import ENGINES
from .workloads import WORKLOADS

if TYPE_CHECKING:  # pragma: no cover - typing only
    from typing import Sequence

    from .designs import DesignSpec
    from .harness.runner import WorkloadEvaluation


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _parse_designs(
    names: "Sequence[str] | None",
    default: "tuple[DesignSpec, ...]",
    ensure_baseline: bool = False,
) -> "tuple[DesignSpec, ...]":
    """Resolve CLI design names through the registry.

    Unknown names surface :func:`repro.designs.get_design`'s
    "did you mean ..." ``ValueError`` (listing every registered
    design) instead of a raw enum ``KeyError``.  ``ensure_baseline``
    prepends the baseline design when absent — the evaluation tables
    normalize against it.
    """
    designs = resolve_designs(names) if names else default
    if ensure_baseline and get_design("baseline") not in designs:
        designs = (get_design("baseline"),) + designs
    return designs


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scale", type=float, default=1.0,
                        help="workload size multiplier (default 1.0)")
    parser.add_argument("--cores", type=_positive_int, default=None,
                        help="simulated cores (default 8; the scenario "
                             "command derives it from the mix)")
    parser.add_argument("--accesses", type=_positive_int, default=50_000,
                        help="trace accesses per core (default 50000)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--jobs", type=_positive_int, default=1,
                        help="worker processes for the sweep engine "
                             "(default 1 = serial)")
    parser.add_argument("--cache-dir", default=None, metavar="PATH",
                        help="on-disk result cache; re-runs skip "
                             "already-computed sweep points")
    parser.add_argument("--cache-backend", default=None, metavar="SPEC",
                        help="cache storage stack: 'sharded' (default), "
                             "'memory[:N]' (in-process LRU tier over the "
                             "shards), or 'readthrough:PATH' (read-only "
                             "secondary cache consulted on miss); every "
                             "backend is bit-identical")
    parser.add_argument("--engine", choices=ENGINES, default="vectorized",
                        help="timing-replay engine: the batched fast "
                             "path (default) or the reference "
                             "access-at-a-time loop; results are "
                             "bit-identical")
    parser.add_argument("--trace-store", default=None, metavar="PATH|off",
                        help="memory-mapped composed-trace store; "
                             "default derives <cache-dir>/traces when "
                             "--cache-dir is set, 'off' disables it")


def _emit_json(dest: str, mapping: "dict[str, object]") -> None:
    """Write a ``--json`` payload to stdout (``-``) or a file path."""
    import json
    from pathlib import Path

    payload = json.dumps(mapping, indent=2) + "\n"
    if dest == "-":
        print(payload, end="")
    else:
        Path(dest).write_text(payload)
        print(f"wrote {dest}")


def _print_evaluations(evals: "dict[str, WorkloadEvaluation]") -> None:
    from .harness.experiments import compared_designs

    order = list(evals)
    designs = [d.value for d in compared_designs(evals)]
    print(format_table("Table 3: output error (%)",
                       table3_output_error(evals), "{:.2f}", col_order=order))
    print()
    print(format_table("Table 4: AVR compression",
                       table4_compression(evals), "{:.1f}", col_order=order))
    print()
    print(format_table("Figure 9: execution time (norm.)",
                       fig09_execution_time(evals), "{:.2f}", col_order=designs))
    print()
    print(format_stacked("Figure 11: memory traffic (norm.)",
                         fig11_memory_traffic(evals)))
    print()
    print(format_table("Figure 12: AMAT (norm.)",
                       fig12_amat(evals), "{:.2f}", col_order=designs))
    print()
    print(format_table("Figure 13: LLC MPKI (norm.)",
                       fig13_mpki(evals), "{:.2f}", col_order=designs))


def cmd_evaluate(args: argparse.Namespace) -> int:
    """Run the headline sweep: every design over every workload."""
    from .harness import ALL_DESIGNS

    config = SystemConfig.scaled(num_cores=args.cores or 8)
    names = tuple(args.workloads) if args.workloads else None
    try:
        designs = _parse_designs(args.designs, ALL_DESIGNS, ensure_baseline=True)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    evals = evaluate_all(
        names=names, config=config, scale=args.scale, seed=args.seed,
        designs=designs, max_accesses_per_core=args.accesses,
        jobs=args.jobs, cache_dir=args.cache_dir, engine=args.engine,
        trace_store=args.trace_store, cache_backend=args.cache_backend,
    )
    _print_evaluations(evals)
    return 0


def cmd_workload(args: argparse.Namespace) -> int:
    """Sweep one workload across designs and approximation levels."""
    from .harness import ALL_DESIGNS

    config = SystemConfig.scaled(num_cores=args.cores or 8)
    try:
        designs = _parse_designs(args.designs, ALL_DESIGNS, ensure_baseline=True)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    ev = evaluate_workload(
        args.name, config=config, scale=args.scale, seed=args.seed,
        designs=designs, max_accesses_per_core=args.accesses,
        jobs=args.jobs, cache_dir=args.cache_dir, engine=args.engine,
        trace_store=args.trace_store, cache_backend=args.cache_backend,
    )
    print(f"{args.name}: footprint {ev.footprint_bytes / 1e6:.1f} MB, "
          f"AVR ratio {ev.avr_compression_ratio:.1f}:1, "
          f"footprint vs baseline {ev.footprint_vs_baseline * 100:.0f}%")
    width = max(16, max(len(d.value) for d in designs))
    header = (f"{'design':>{width}} {'error %':>8} {'time':>6} "
              f"{'traffic':>8} {'AMAT':>6} {'MPKI':>6}")
    print(header)
    for design in designs:
        if design == "baseline" or design not in ev.runs:
            continue
        run = ev.runs[design]
        print(f"{design.value:>{width}} {run.output_error * 100:8.3f}"
              f" {ev.normalized(design, 'time'):6.2f}"
              f" {ev.normalized(design, 'traffic'):8.2f}"
              f" {ev.normalized(design, 'amat'):6.2f}"
              f" {ev.normalized(design, 'mpki'):6.2f}")
    return 0


def cmd_scenario(args: argparse.Namespace) -> int:
    """Evaluate a named multi-programmed scenario mix."""
    from .harness.scenario import evaluate_scenario
    from .scenario import get_scenario, named_scenarios

    if args.mix == "list":
        print("named mixes:")
        for name, scenario in named_scenarios().items():
            print(f"  {name:>18}  {scenario.mix_string()}  "
                  f"({scenario.total_cores} cores, {scenario.placement})")
        print("or compose one: WORKLOAD[*N][@CORES]+... "
              "(e.g. kmeans*2@2+heat@4)")
        return 0

    from .harness.scenario import SCENARIO_DESIGNS

    try:
        scenario = get_scenario(args.mix).scaled(args.scale)
        designs = _parse_designs(args.designs, SCENARIO_DESIGNS)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    cores = args.cores or scenario.total_cores
    if cores < scenario.total_cores:
        print(f"error: mix {scenario.name!r} needs {scenario.total_cores} "
              f"cores, --cores gave {cores}", file=sys.stderr)
        return 2
    config = SystemConfig.scaled(num_cores=cores)
    ev = evaluate_scenario(
        scenario, config=config, designs=designs, seed=args.seed,
        max_accesses_per_core=args.accesses,
        jobs=args.jobs, cache_dir=args.cache_dir, engine=args.engine,
        trace_store=args.trace_store, cache_backend=args.cache_backend,
    )

    print(f"scenario {ev.name}: {scenario.mix_string()} — "
          f"{scenario.num_instances} instances on {cores} cores, "
          f"footprint {ev.footprint_bytes / 1e6:.1f} MB")
    with_baseline = "baseline" in ev.runs
    summary = {
        design.value: {
            "wspeedup": run.weighted_speedup,
            **({"mix time": ev.normalized_mix_time(design)}
               if with_baseline else {}),
            "LLC infl": run.llc_miss_inflation,
        }
        for design, run in ev.runs.items()
    }
    columns = ["wspeedup"] + (["mix time"] if with_baseline else []) + ["LLC infl"]
    print()
    print(format_table(
        f"Mix summary (weighted speedup, ideal {scenario.num_instances})",
        summary, "{:.3f}", col_order=columns))
    for design, run in ev.runs.items():
        rows = {
            f"{inst.workload}#{inst.index}": {
                "slowdown": inst.slowdown,
                "solo Mcyc": inst.solo_cycles / 1e6,
                "corun Mcyc": inst.corun_cycles / 1e6,
                "solo miss": inst.solo_llc_misses,
                "pressure": inst.pressure_llc_misses,
                "induced": inst.induced_llc_misses,
            }
            for inst in run.instances
        }
        print()
        print(format_table(
            f"{design.value}: per-instance contention",
            rows, "{:.2f}",
            col_order=["slowdown", "solo Mcyc", "corun Mcyc",
                       "solo miss", "pressure", "induced"]))
        for inst in run.instances:
            percore = "  ".join(
                f"c{c}:{s:.2f}"
                for c, s in zip(inst.cores, inst.per_core_slowdown)
            )
            print(f"  {inst.workload}#{inst.index} per-core slowdown: "
                  f"{percore}")
    if args.json:
        from .harness import scenario_evaluation_to_mapping

        _emit_json(args.json, scenario_evaluation_to_mapping(ev))
    return 0


def cmd_ablate(args: argparse.Namespace) -> int:
    """Run the ablation sweep for one design's variants."""
    config = SystemConfig.scaled(num_cores=args.cores or 8)
    try:
        design = get_design(args.design)
        if not design.consumes_avr_options:
            raise ValueError(
                f"design {design.name!r} cannot consume LLC ablation "
                "options; pick an AVR-family design"
            )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    llc = run_llc_ablations(
        args.name, config=config, scale=args.scale,
        max_accesses_per_core=args.accesses, design=design,
        jobs=args.jobs, cache_dir=args.cache_dir, engine=args.engine,
        cache_backend=args.cache_backend,
    )
    full = llc["full AVR"]
    rows = {
        label: {
            "time": p.cycles / full.cycles,
            "traffic": p.total_bytes / full.total_bytes,
            "AMAT": p.amat_cycles / full.amat_cycles,
        }
        for label, p in llc.items()
    }
    print(format_table(f"LLC ablations on {args.name} (norm. to full AVR)",
                       rows, "{:.2f}", col_order=["time", "traffic", "AMAT"]))
    print()
    comp = run_compressor_ablations(
        args.name, scale=min(args.scale, 0.5), cache_dir=args.cache_dir,
        cache_backend=args.cache_backend,
    )
    print(format_table(f"Compressor ablations on {args.name} data", comp,
                       "{:.2f}", col_order=["ratio", "mean_error_pct", "success_pct"]))
    return 0


def cmd_designs(_args: argparse.Namespace) -> int:
    """List the registered cache designs."""
    from .designs import get_design

    print("registered designs:")
    for name in list_designs():
        spec = get_design(name)
        print(f"  {name:>16}  {spec.doc}")
    print("add your own with repro.designs.register_design "
          "(see examples/custom_design.py)")
    return 0


def cmd_experiment(args: argparse.Namespace) -> int:
    """Run a declarative experiment from a spec file."""
    from .experiment import ExperimentSpec, run_experiment

    try:
        spec = ExperimentSpec.from_file(args.spec)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"experiment {spec.name!r} ({spec.content_hash()[:12]}): "
          f"{len(spec.workloads) or 'all'} workload(s), "
          f"{len(spec.scenarios)} scenario(s), designs "
          f"{', '.join(spec.designs)}")
    result = run_experiment(
        spec, jobs=args.jobs, cache_dir=args.cache_dir, engine=args.engine,
        trace_store=args.trace_store, cache_backend=args.cache_backend,
    )

    if result.evaluations:
        try:
            evals = result.by_workload()
        except ValueError:
            evals = None
        if evals is not None:
            print()
            _print_evaluations(evals)
        else:
            print()
            for point, ev in result.evaluations.items():
                row = "  ".join(
                    f"{d.value}:{ev.normalized(d, 'time'):.2f}"
                    for d in ev.runs
                    if d != "baseline" and "baseline" in ev.runs
                )
                print(f"{point.workload} scale={point.scale} "
                      f"seed={point.seed}: time {row}")
    for sev in result.scenario_evaluations.values():
        print()
        summary = {
            design.value: {"wspeedup": run.weighted_speedup,
                           "LLC infl": run.llc_miss_inflation}
            for design, run in sev.runs.items()
        }
        print(format_table(
            f"scenario {sev.name} (weighted speedup, ideal "
            f"{sev.scenario.num_instances})",
            summary, "{:.3f}", col_order=["wspeedup", "LLC infl"]))

    stats = result.stats
    print()
    print(f"sweep: {stats.executed} job(s) executed, "
          f"{stats.cache_hits} cache hit(s), {stats.cache_misses} miss(es), "
          f"{stats.cache_stores} stored, "
          f"{stats.traces_mapped} trace(s) mapped, "
          f"{stats.traces_generated} generated")
    if args.json:
        from .harness import experiment_result_to_mapping

        _emit_json(args.json, experiment_result_to_mapping(result))
    if args.expect_cached and stats.executed:
        print(f"error: expected a fully cache-served run but "
              f"{stats.executed} job(s) executed", file=sys.stderr)
        return 1
    return 0


def cmd_plan(args: argparse.Namespace) -> int:
    """Search the design space with the multi-fidelity planner."""
    import dataclasses

    from .planner import PlanSpec, run_plan

    overrides: dict[str, object] = {}
    for attr, key in (
        ("workload", "workload"), ("designs", "designs"),
        ("scales", "thresholds_scales"), ("t2", "t2_thresholds"),
        ("widths", "approx_line_bytes"), ("toggles", "avr_toggles"),
        ("objective", "objective"), ("constraint", "constraints"),
        ("budget", "budget"), ("eta", "eta"),
        ("initial", "initial_candidates"), ("plan_seed", "seed"),
        ("scale", "scale"), ("seed", "trace_seed"),
        ("accesses", "max_accesses_per_core"), ("cores", "num_cores"),
    ):
        value = getattr(args, attr)
        if value is not None:
            overrides[key] = tuple(value) if isinstance(value, list) else value
    try:
        if args.spec:
            spec = dataclasses.replace(PlanSpec.from_file(args.spec), **overrides)
        else:
            spec = PlanSpec(**overrides)  # type: ignore[arg-type]
    except (OSError, ValueError, TypeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    result = run_plan(
        spec, jobs=args.jobs, cache_dir=args.cache_dir, engine=args.engine,
        trace_store=args.trace_store, cache_backend=args.cache_backend,
    )
    stats = result.stats

    budget = spec.budget or "unbounded"
    print(f"plan {spec.name!r} ({spec.content_hash()[:12]}): "
          f"{stats.candidates} candidate(s) on {spec.workload}, "
          f"objective {spec.objective}"
          + (f", s.t. {', '.join(spec.constraints)}" if spec.constraints else "")
          + f", budget {budget}")
    ladder = " -> ".join(
        f"{len(r.outcomes)}@{r.fidelity}" for r in result.rungs
    )
    print(f"rungs (count@accesses/core): {ladder}")
    print()
    if not result.front:
        print("no feasible candidate satisfies the constraints")
    else:
        width = max(16, max(len(o.candidate.label()) for o in result.front))
        print(f"Pareto front ({len(result.front)} of {stats.candidates}, "
              f"best {spec.objective} first):")
        print(f"{'candidate':>{width}} {'traffic':>8} {'time':>6} "
              f"{'error %':>8} {'compr':>6}")
        for outcome in result.recommended:
            m = outcome.metrics
            print(f"{outcome.candidate.label():>{width}}"
                  f" {m['traffic']:8.3f} {m['time']:6.2f}"
                  f" {m['error'] * 100:8.3f} {m['compression']:6.1f}")
    print()
    print(f"evals: {stats.full_fidelity_evals} full-fidelity + "
          f"{stats.low_fidelity_evals} low-fidelity "
          f"(exhaustive grid: {stats.exhaustive_full_evals}; "
          f"{stats.savings:.1f}x fewer full evals); "
          f"{stats.jobs_executed} job(s) executed, "
          f"{stats.cache_hits} cache hit(s)"
          + (f"; surrogate fitted from {stats.surrogate_points} cached "
             f"point(s)" if stats.surrogate_points else ""))

    if args.json:
        _emit_json(args.json, result.to_mapping())
    if args.expect_cached and stats.jobs_executed:
        print(f"error: expected a fully cache-served plan but "
              f"{stats.jobs_executed} job(s) executed", file=sys.stderr)
        return 1
    return 0


def cmd_cache(args: argparse.Namespace) -> int:
    """Inspect and maintain an on-disk result cache directory."""
    from pathlib import Path

    from .harness.cache import ShardedFileBackend

    root = Path(args.dir)
    if not root.is_dir():
        print(f"error: {root} is not a cache directory", file=sys.stderr)
        return 2
    backend = ShardedFileBackend(root, read_only=args.action != "gc")

    if args.action == "stats":
        usage = backend.disk_usage()
        print(f"cache {root}:")
        print(f"  entries:   {usage.entries} ({usage.indexed} indexed)")
        print(f"  bytes:     {usage.total_bytes:,} "
              f"({usage.total_bytes / 1e6:.1f} MB)")
        print(f"  shards:    {usage.shards}")
        print(f"  tmp files: {usage.tmp_files}")
        for version, count in sorted(usage.versions.items()):
            print(f"  version {version}: {count} entr(ies)")
        return 0

    if args.action == "ls":
        for key in backend.keys():
            if args.prefix and not key.startswith(args.prefix):
                continue
            print(key)
        return 0

    if args.action == "verify":
        report = backend.verify()
        print(f"cache {root}: {report.entries} entr(ies), "
              f"{report.total_bytes:,} bytes, {report.tmp_files} tmp file(s)")
        for label, keys in (
            ("corrupt", report.corrupt),
            ("phantom (indexed, payload gone)", report.phantom),
            ("unindexed (self-heals on next put/gc)", report.unindexed),
        ):
            if keys:
                print(f"  {label}: {len(keys)}")
                for key in keys[:10]:
                    print(f"    {key}")
                if len(keys) > 10:
                    print(f"    ... and {len(keys) - 10} more")
        if not report.ok:
            print("error: corrupt payload(s) found; 'repro cache gc' "
                  "leaves them (version-keyed entries re-execute "
                  "bit-identically) — remove the listed files to "
                  "reclaim space", file=sys.stderr)
            return 1
        print("  ok")
        return 0

    report = backend.gc(
        max_bytes=args.max_bytes, stale=args.stale,
        tmp_max_age_s=args.tmp_age, dry_run=args.dry_run,
    )
    verb = "would remove" if report.dry_run else "removed"
    print(f"cache {root}: {verb} {report.tmp_removed} tmp file(s), "
          f"{report.stale_removed} stale entr(ies), "
          f"{report.evicted} evicted ({report.bytes_removed:,} bytes); "
          f"kept {report.entries_kept} entr(ies), "
          f"{report.bytes_kept:,} bytes")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the resident evaluation daemon until SIGTERM/SIGINT."""
    import asyncio

    from .serve.daemon import EvalDaemon

    try:
        daemon = EvalDaemon(
            cache_dir=args.cache_dir,
            socket_path=args.socket,
            host=args.host,
            port=args.port,
            workers=args.workers,
            cache_backend=args.cache_backend,
            engine=args.engine,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    def announce(line: str) -> None:
        print(line, flush=True)

    try:
        asyncio.run(daemon.run_until_stopped(announce=announce))
    except KeyboardInterrupt:
        pass
    return 0


def cmd_submit(args: argparse.Namespace) -> int:
    """Submit a spec file to a running daemon and stream its events."""
    from .experiment import ExperimentSpec, load_spec_mapping
    from .planner import PlanSpec
    from .serve.client import ServeClient, ServeError

    try:
        mapping = load_spec_mapping(args.spec)
        kind = args.kind
        if kind is None:
            # sniff: an experiment spec first, a plan spec second
            try:
                ExperimentSpec.from_mapping(dict(mapping))
                kind = "experiment"
            except (ValueError, TypeError):
                PlanSpec.from_mapping(dict(mapping))
                kind = "plan"
    except (OSError, ValueError, TypeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    try:
        with ServeClient(
            socket_path=args.socket, host=args.host, port=args.port
        ) as client:
            job = client.submit(mapping, kind=kind, priority=args.priority)
            print(f"submitted {job}: {kind} "
                  f"{mapping.get('name', args.spec)!r} "
                  f"(priority {args.priority})")
            if args.detach:
                return 0
            stats: "dict[str, object] | None" = None
            result: "dict[str, object] | None" = None
            launched = joined = 0
            for event in client.events(job):
                name = event.get("event")
                if name == "unit_done":
                    if event.get("launched"):
                        launched += 1
                    else:
                        joined += 1
                    if not args.quiet:
                        verb = "ran" if event.get("launched") else "joined"
                        print(f"  unit {event.get('unit')} {verb}")
                elif name == "stats":
                    stats = event.get("stats")  # type: ignore[assignment]
                elif name == "error":
                    print(f"error: {event.get('error')}", file=sys.stderr)
                    return 1
                else:
                    result = event.get("result")  # type: ignore[assignment]
            executed = 0
            if stats is not None:
                executed = int(
                    stats.get("executed", stats.get("jobs_executed", 0))  # type: ignore[union-attr]
                )
                print(f"sweep: {executed} job(s) executed "
                      f"({launched} launched, {joined} joined in flight), "
                      f"{stats.get('cache_hits', 0)} cache hit(s), "
                      f"{stats.get('units_deduped', 0)} deduped")
            if args.json and result is not None:
                _emit_json(args.json, result)
            if args.expect_cached and executed:
                print(f"error: expected a fully cache-served run but "
                      f"{executed} job(s) executed", file=sys.stderr)
                return 1
    except (ServeError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


def cmd_status(args: argparse.Namespace) -> int:
    """Report a running daemon's sessions, queue and cache rollup."""
    from .serve.client import ServeClient, ServeError

    try:
        with ServeClient(
            socket_path=args.socket, host=args.host, port=args.port
        ) as client:
            snap = client.status()
    except (ServeError, OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    if args.json == "-":
        # machine mode: the snapshot alone, parseable from stdout
        _emit_json(args.json, snap)
        return 0
    sched = snap.get("scheduler", {})
    stats = sched.get("stats", {})
    cache = snap.get("cache_stats", {})
    print(f"repro serve @ {snap.get('address')} — "
          f"version {snap.get('version')}, "
          f"up {snap.get('uptime_s', 0.0):.1f}s")
    print(f"scheduler: {sched.get('queue_depth', 0)} queued, "
          f"{sched.get('running', 0)} running, "
          f"{sched.get('workers', 0)} worker(s)")
    print(f"  units: {stats.get('units_launched', 0)} launched, "
          f"{stats.get('units_deduped', 0)} deduped, "
          f"{stats.get('units_completed', 0)} completed, "
          f"{stats.get('units_failed', 0)} failed, "
          f"{stats.get('units_cancelled', 0)} cancelled")
    print(f"cache: {snap.get('cache_entries', 0)} entr(ies); "
          f"{cache.get('hits', 0)} hit(s), {cache.get('misses', 0)} "
          f"miss(es), {cache.get('stores', 0)} store(s)")
    sessions = snap.get("sessions", [])
    print(f"sessions: {snap.get('active_sessions', 0)} active")
    for session in sessions:
        for job in session.get("jobs", []):
            flag = " (cancelling)" if job.get("cancelled") else ""
            print(f"  session {session.get('session')}: job {job.get('job')} "
                  f"{job.get('kind')} {job.get('name')!r} "
                  f"priority {job.get('priority')} — "
                  f"{job.get('units_done')} unit(s) done "
                  f"({job.get('units_launched')} launched){flag}")
    if args.json:
        _emit_json(args.json, snap)
    return 0


def cmd_overheads(_args: argparse.Namespace) -> int:
    """Print the AVR hardware-overhead model (paper \u00a74.2)."""
    o = hardware_overheads()
    print("AVR hardware overheads (paper §4.2):")
    print(f"  CMT + TLB bits per page:    {o['cmt_bits_per_page']:.0f}")
    print(f"  vs an 88-bit TLB entry:     {o['tlb_overhead_factor']:.2f}x")
    print(f"  extra LLC bits per entry:   {o['llc_extra_bits_per_entry']:.0f}")
    print(f"  LLC storage overhead:       {o['llc_extra_kbytes']:.0f} kB "
          f"({o['llc_overhead_fraction'] * 100:.1f}%)")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="AVR (ICPP 2019) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_eval = sub.add_parser("evaluate", help="regenerate the paper's evaluation")
    p_eval.add_argument("--workloads", nargs="*", choices=sorted(WORKLOADS),
                        help="subset of workloads (default: all)")
    p_eval.add_argument("--designs", nargs="+", metavar="DESIGN", default=None,
                        help="design points to compare, by registry name "
                             "(see 'designs'; default: the five paper designs)")
    _add_common(p_eval)
    p_eval.set_defaults(func=cmd_evaluate)

    p_wl = sub.add_parser("workload", help="evaluate one workload")
    p_wl.add_argument("name", choices=sorted(WORKLOADS))
    p_wl.add_argument("--designs", nargs="+", metavar="DESIGN", default=None,
                      help="design points to compare, by registry name "
                           "(see 'designs'; default: the five paper designs)")
    _add_common(p_wl)
    p_wl.set_defaults(func=cmd_workload)

    p_ex = sub.add_parser(
        "experiment",
        help="run a declarative experiment spec (TOML/JSON)",
        description="Load an ExperimentSpec file, run it through the "
                    "sweep engine, and print the evaluation tables. "
                    "Spec-driven runs share the on-disk result cache "
                    "with programmatic sweeps of the same points.",
    )
    p_ex.add_argument("spec", help="path to a .toml or .json experiment spec")
    p_ex.add_argument("--jobs", type=_positive_int, default=None,
                      help="override the spec's worker-process count")
    p_ex.add_argument("--cache-dir", default=None, metavar="PATH",
                      help="override the spec's result-cache directory")
    p_ex.add_argument("--cache-backend", default=None, metavar="SPEC",
                      help="override the spec's cache backend stack "
                           "(sharded | memory[:N] | readthrough:PATH)")
    p_ex.add_argument("--engine", choices=ENGINES, default=None,
                      help="override the spec's timing-replay engine")
    p_ex.add_argument("--trace-store", default=None, metavar="PATH|off",
                      help="override the spec's trace-store directory "
                           "('off' disables the store)")
    p_ex.add_argument("--expect-cached", action="store_true",
                      help="exit 1 unless every job was served from the "
                           "cache (CI warm-cache assertion)")
    p_ex.add_argument("--json", default=None, metavar="PATH|-",
                      help="also emit the full result as JSON, to a "
                           "file or stdout ('-')")
    p_ex.set_defaults(func=cmd_experiment)

    p_ds = sub.add_parser("designs", help="list the registered design points")
    p_ds.set_defaults(func=cmd_designs)

    p_sc = sub.add_parser(
        "scenario",
        help="co-run a multi-programmed workload mix",
        description="Evaluate a named mix (heat+lbm, kmeans4+bscholes4, "
                    "all7), a mix string (kmeans*2@2+heat@4), or 'list' "
                    "to enumerate the shipped mixes.",
    )
    p_sc.add_argument("mix", help="named mix, mix string, or 'list'")
    p_sc.add_argument("--designs", nargs="+", metavar="DESIGN", default=None,
                      help="designs to compare, by registry name "
                           "(default: baseline + AVR)")
    p_sc.add_argument("--json", default=None, metavar="PATH|-",
                      help="also emit the evaluation as JSON, to a "
                           "file or stdout ('-')")
    _add_common(p_sc)
    p_sc.set_defaults(func=cmd_scenario)

    p_ab = sub.add_parser("ablate", help="run the ablation studies")
    p_ab.add_argument("name", nargs="?", default="heat", choices=sorted(WORKLOADS))
    p_ab.add_argument("--design", default="AVR", metavar="DESIGN",
                      help="AVR-family design to ablate, by registry name "
                           "(default: %(default)s)")
    _add_common(p_ab)
    p_ab.set_defaults(func=cmd_ablate)

    p_ov = sub.add_parser("overheads", help="print §4.2 hardware overheads")
    p_ov.set_defaults(func=cmd_overheads)

    def _add_connect(parser: argparse.ArgumentParser) -> None:
        parser.add_argument("--socket", default=None, metavar="PATH",
                            help="Unix socket of the daemon")
        parser.add_argument("--host", default=None,
                            help="daemon host (default 127.0.0.1)")
        parser.add_argument("--port", type=int, default=None,
                            help="daemon TCP port")

    p_sv = sub.add_parser(
        "serve",
        help="run the resident evaluation daemon",
        description="Listen on a Unix socket (--socket) or TCP port "
                    "(--port; 0 picks a free one) for ExperimentSpec/"
                    "PlanSpec submissions from 'repro submit'.  All "
                    "sessions share one process pool, one result "
                    "cache, and one trace store; job units already in "
                    "flight for another client are joined, not "
                    "re-executed.  SIGTERM/SIGINT shut down cleanly.",
    )
    p_sv.add_argument("--socket", default=None, metavar="PATH",
                      help="Unix socket to listen on")
    p_sv.add_argument("--host", default=None,
                      help="TCP bind host (default 127.0.0.1)")
    p_sv.add_argument("--port", type=int, default=None,
                      help="TCP port to listen on (0 = pick a free one)")
    p_sv.add_argument("--workers", type=_positive_int, default=2,
                      help="shared worker processes (default 2)")
    p_sv.add_argument("--cache-dir", required=True, metavar="PATH",
                      help="shared result-cache directory (the trace "
                           "store derives under it)")
    p_sv.add_argument("--cache-backend", default=None, metavar="SPEC",
                      help="cache storage stack "
                           "(sharded | memory[:N] | readthrough:PATH)")
    p_sv.add_argument("--engine", choices=ENGINES, default=None,
                      help="override every submission's timing-replay "
                           "engine (results are bit-identical)")
    p_sv.set_defaults(func=cmd_serve)

    p_su = sub.add_parser(
        "submit",
        help="submit a spec to a running daemon",
        description="Send an ExperimentSpec or PlanSpec file to a "
                    "'repro serve' daemon and stream its progress "
                    "events.  The daemon substitutes its shared cache "
                    "and executor for the spec's execution settings; "
                    "results are bit-identical to a one-shot "
                    "'repro experiment' of the same spec.",
    )
    p_su.add_argument("spec", help="path to a .toml or .json spec file")
    p_su.add_argument("--kind", choices=("experiment", "plan"), default=None,
                      help="spec flavor (default: sniff from the fields)")
    _add_connect(p_su)
    p_su.add_argument("--priority", type=int, default=0,
                      help="scheduling priority (higher runs first; "
                           "default 0)")
    p_su.add_argument("--wait", dest="detach", action="store_false",
                      default=False,
                      help="stream events until the result arrives "
                           "(default)")
    p_su.add_argument("--detach", dest="detach", action="store_true",
                      help="return right after the daemon accepts "
                           "the job")
    p_su.add_argument("--quiet", action="store_true",
                      help="suppress per-unit progress lines")
    p_su.add_argument("--json", default=None, metavar="PATH|-",
                      help="write the final result mapping as JSON, "
                           "to a file or stdout ('-')")
    p_su.add_argument("--expect-cached", action="store_true",
                      help="exit 1 unless every job was served from "
                           "the shared cache (CI warm assertion)")
    p_su.set_defaults(func=cmd_submit)

    p_st = sub.add_parser(
        "status",
        help="report a running daemon's queue and sessions",
        description="Query a 'repro serve' daemon for queue depth, "
                    "active sessions, per-session unit counts, and "
                    "the shared scheduler/cache stats rollup.",
    )
    _add_connect(p_st)
    p_st.add_argument("--json", default=None, metavar="PATH|-",
                      help="also emit the raw snapshot as JSON")
    p_st.set_defaults(func=cmd_status)

    p_ca = sub.add_parser(
        "cache",
        help="inspect and maintain an on-disk result cache",
        description="Operate on a --cache-dir directory: 'stats' "
                    "summarizes usage from the shard indexes, 'gc' "
                    "sweeps orphaned temp files / purges stale-version "
                    "entries / evicts to a byte budget, 'verify' "
                    "unpickles every payload and cross-checks the "
                    "indexes (exit 1 on corruption), and 'ls' prints "
                    "the committed keys.",
    )
    p_ca.add_argument("action", choices=("stats", "gc", "verify", "ls"))
    p_ca.add_argument("dir", help="cache directory (the runs' --cache-dir)")
    p_ca.add_argument("--max-bytes", type=int, default=None, metavar="N",
                      help="gc: evict oldest entries (LRU by mtime) "
                           "until the survivors fit N bytes")
    p_ca.add_argument("--stale", action="store_true",
                      help="gc: purge entries recorded under a "
                           "different package version (unreadable "
                           "anyway — version is part of every key)")
    p_ca.add_argument("--tmp-age", type=float, default=3600.0,
                      metavar="SECONDS",
                      help="gc: remove orphaned *.tmp files older than "
                           "this (default 3600; guards live writers)")
    p_ca.add_argument("--dry-run", action="store_true",
                      help="gc: report what would go without removing "
                           "anything")
    p_ca.add_argument("--prefix", default=None, metavar="HEX",
                      help="ls: only keys starting with this prefix")
    p_ca.set_defaults(func=cmd_cache)

    p_pl = sub.add_parser(
        "plan",
        help="search the design space (multi-fidelity Pareto planner)",
        description="Search the DesignSpec parameter space for "
                    "configurations optimizing an objective under "
                    "constraints — e.g. minimize DRAM traffic subject "
                    "to an output-error budget — via successive "
                    "halving over trace fidelity plus Pareto-front "
                    "selection.  Every probe is an ordinary sweep job "
                    "unit sharing the --cache-dir result cache, and "
                    "planning is deterministic given the spec and "
                    "--plan-seed.",
    )
    p_pl.add_argument("spec", nargs="?", default=None,
                      help="optional .toml/.json PlanSpec file; flags "
                           "below override its fields")
    p_pl.add_argument("--workload", choices=sorted(WORKLOADS), default=None)
    p_pl.add_argument("--designs", nargs="+", metavar="DESIGN", default=None,
                      help="base designs spanning the space, by registry "
                           "name (default: AVR)")
    p_pl.add_argument("--scales", nargs="+", type=float, default=None,
                      metavar="S", help="thresholds_scale variants")
    p_pl.add_argument("--t2", nargs="+", type=float, default=None,
                      metavar="T2", help="T2 error-threshold overrides "
                                         "(T1 = 2*T2)")
    p_pl.add_argument("--widths", nargs="+", type=_positive_int, default=None,
                      metavar="BYTES",
                      help="approx-line-byte widths for truncate designs")
    p_pl.add_argument("--toggles", nargs="+", default=None, metavar="OPT",
                      help="AVR options to toggle off one at a time")
    p_pl.add_argument("--objective", default=None,
                      help="metric to optimize (default traffic)")
    p_pl.add_argument("--constraint", action="append", default=None,
                      metavar="METRIC<=VALUE",
                      help="feasibility bound, repeatable "
                           "(e.g. 'error<=0.05')")
    p_pl.add_argument("--budget", type=int, default=None,
                      help="max full-fidelity evaluations "
                           "(0 = unbounded/exhaustive)")
    p_pl.add_argument("--eta", type=int, default=None,
                      help="halving factor between rungs (default 2)")
    p_pl.add_argument("--initial", type=int, default=None, metavar="N",
                      help="cap on rung-0 candidates (surrogate-seeded)")
    p_pl.add_argument("--plan-seed", type=int, default=None, dest="plan_seed",
                      help="planner RNG seed (default 0)")
    p_pl.add_argument("--scale", type=float, default=None,
                      help="workload size multiplier")
    p_pl.add_argument("--seed", type=int, default=None,
                      help="trace-jitter seed of every evaluation")
    p_pl.add_argument("--accesses", type=_positive_int, default=None,
                      help="full-fidelity trace accesses per core")
    p_pl.add_argument("--cores", type=_positive_int, default=None)
    p_pl.add_argument("--jobs", type=_positive_int, default=None,
                      help="worker processes for the sweep engine")
    p_pl.add_argument("--cache-dir", default=None, metavar="PATH",
                      help="on-disk result cache shared with "
                           "sweeps/experiments of the same points")
    p_pl.add_argument("--cache-backend", default=None, metavar="SPEC",
                      help="cache backend stack (sharded | memory[:N] | "
                           "readthrough:PATH); 'memory' keeps a plan's "
                           "repeated probes in RAM across rungs")
    p_pl.add_argument("--engine", choices=ENGINES, default=None)
    p_pl.add_argument("--trace-store", default=None, metavar="PATH|off")
    p_pl.add_argument("--json", default=None, metavar="PATH|-",
                      help="write the full plan report as JSON "
                           "('-' for stdout)")
    p_pl.add_argument("--expect-cached", action="store_true",
                      help="exit 1 unless every job was served from the "
                           "cache (CI warm-cache assertion)")
    p_pl.set_defaults(func=cmd_plan)

    p_ck = sub.add_parser(
        "check",
        help="run the repo-invariant static analysis pass",
        description="AST-level checks of the repository's correctness "
                    "conventions: RNG/dtype discipline, cache-key "
                    "completeness, picklable job units, engine parity "
                    "and docstring coverage.  Exit 1 on findings.",
    )
    from .analysis.cli import add_check_arguments, cmd_check
    add_check_arguments(p_ck)
    p_ck.set_defaults(func=cmd_check)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
