"""Composition of per-instance layouts and traces into one system view.

Each workload instance of a scenario is simulated functionally in its
own private address space (every :class:`~repro.approx.ApproxMemory`
starts at the same base).  To co-run instances on one machine, the
composer assigns each instance a *base offset* — disjoint,
block/page-aligned slices of the simulated physical address space —
and shifts the instance's :class:`~repro.system.layout.AddressLayout`
ranges and trace addresses by it.  Instance 0's offset is zero, which
is what keeps the trivial (single-instance) scenario bit-identical to
the pre-scenario evaluation path.

Trace composition also performs *instruction-count balancing*: the
co-run contention story only makes sense while every instance is
actually running, so each core's stream is trimmed to the largest
prefix whose instruction count does not exceed the shortest instance's
completion (measured as that instance's longest per-core instruction
total).  For a single-instance scenario the target equals the
instance's own maximum, so balancing is exactly a no-op.

Per-instance RNG streams come from seed spawning
(:func:`instance_seeds`): instance ``i`` derives a child seed from the
scenario seed via ``numpy``'s :class:`~numpy.random.SeedSequence`, so
two instances of the same workload never emit identical jitter
streams.  A single-instance scenario keeps the raw seed — the
compatibility rule that preserves existing single-workload traces bit
for bit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..system.layout import AddressLayout
from ..trace.generator import GeneratedTrace
from .spec import Scenario, ScenarioEntry

#: instance base offsets are multiples of this (1 MB: whole pages and
#: whole 1 KB AVR blocks, so block offsets within a line never shift)
OFFSET_ALIGN = 1 << 20


@dataclass(frozen=True)
class InstancePlan:
    """Placement + seeding of one workload instance (no heavy state)."""

    index: int
    entry: ScenarioEntry
    cores: tuple[int, ...]
    seed: int

    @property
    def workload(self) -> str:
        return self.entry.workload

    def label(self) -> str:
        cores = (
            f"{self.cores[0]}-{self.cores[-1]}"
            if len(self.cores) > 1
            else str(self.cores[0])
        )
        return f"{self.workload}#{self.index}@c{cores}"


def instance_seeds(seed: int, count: int) -> list[int]:
    """Spawn one trace seed per instance from the scenario seed.

    ``count == 1`` returns the raw seed (the trivial scenario must
    regenerate existing single-workload traces bit-identically);
    otherwise every instance gets an independent
    :class:`~numpy.random.SeedSequence` child, collapsed to a plain
    int so plans stay picklable and cache-key friendly.
    """
    if count == 1:
        return [seed]
    children = np.random.SeedSequence(seed).spawn(count)
    return [int(child.generate_state(1)[0]) for child in children]


def plan_instances(scenario: Scenario, seed: int) -> list[InstancePlan]:
    """Expand a scenario into per-instance placement/seed plans."""
    expanded = scenario.expanded()
    assignment = scenario.core_assignment()
    seeds = instance_seeds(seed, len(expanded))
    return [
        InstancePlan(index=i, entry=entry, cores=cores, seed=child)
        for i, (entry, cores, child) in enumerate(
            zip(expanded, assignment, seeds)
        )
    ]


def assign_offsets(spans: list[int]) -> list[int]:
    """Disjoint base offsets for instances with the given address spans.

    Instance 0 sits at offset 0 (trivial-scenario compatibility); each
    subsequent instance starts at the previous end rounded up to
    :data:`OFFSET_ALIGN`.
    """
    offsets = []
    next_offset = 0
    for span in spans:
        offsets.append(next_offset)
        next_offset = -(-(next_offset + span) // OFFSET_ALIGN) * OFFSET_ALIGN
    return offsets


def compose_layouts(
    layouts: list[AddressLayout], offsets: list[int]
) -> AddressLayout:
    """Merge per-instance layouts shifted to their base offsets.

    Ranges keep instance-major order, so the first-match semantics of
    the scalar lookups are preserved (the ranges are disjoint anyway —
    see :func:`assign_offsets`).
    """
    composed = AddressLayout()
    for layout, offset in zip(layouts, offsets):
        composed.ranges.extend(layout.shifted(offset).ranges)
    return composed


def _trim_to_instructions(core: np.ndarray, target: int) -> np.ndarray:
    """Largest prefix of a trace whose instruction count <= ``target``.

    Each record represents ``gap + 1`` instructions (the gap's compute
    plus the memory op itself), matching
    :func:`repro.trace.events.total_instructions`.
    """
    if core.size == 0:
        return core
    instructions = np.add.accumulate(core["gap"].astype(np.int64) + 1)
    if int(instructions[-1]) <= target:
        return core
    keep = int(np.searchsorted(instructions, target, side="right"))
    return core[:keep]


def compose_traces(
    traces: list[GeneratedTrace],
    plans: list[InstancePlan],
    offsets: list[int],
    num_cores: int,
    balance: bool = True,
) -> GeneratedTrace:
    """Merge per-instance traces into one machine-wide trace.

    Each instance's per-core streams land on the global core ids its
    plan assigns, with addresses shifted by the instance base offset.
    Cores no instance occupies get empty streams.  With ``balance``
    (the default), every core is trimmed to the shortest instance's
    completion — the minimum over instances of the instance's largest
    per-core instruction total — so contention metrics only integrate
    over the window where the whole mix is running.  Single-instance
    scenarios are returned with their arrays untouched (offset 0, trim
    target equal to the instance's own maximum): the trivial scenario
    is bit-identical to the classic path.
    """
    from ..trace.events import TRACE_DTYPE

    cores: list[np.ndarray] = [
        np.empty(0, dtype=TRACE_DTYPE) for _ in range(num_cores)
    ]
    for trace, plan, offset in zip(traces, plans, offsets):
        if len(trace.cores) != len(plan.cores):
            raise ValueError(
                f"instance {plan.label()} generated {len(trace.cores)} core "
                f"streams for {len(plan.cores)} assigned cores"
            )
        for stream, core_id in zip(trace.cores, plan.cores):
            if core_id >= num_cores:
                raise ValueError(
                    f"instance {plan.label()} assigned core {core_id} on a "
                    f"{num_cores}-core machine"
                )
            if offset:
                shifted = stream.copy()
                shifted["addr"] += np.uint64(offset)
                cores[core_id] = shifted
            else:
                cores[core_id] = stream

    if balance:
        per_instance_max = [
            max(
                (int(t["gap"].sum()) + len(t) for t in trace.cores),
                default=0,
            )
            for trace in traces
        ]
        target = min(per_instance_max) if per_instance_max else 0
        cores = [_trim_to_instructions(c, target) for c in cores]

    if len(traces) == 1:
        iterations_simulated = traces[0].iterations_simulated
        iterations_total = traces[0].iterations_total
    else:
        # A mix has no single iteration count; per-instance scale
        # factors live in the scenario evaluation instead.
        iterations_simulated = iterations_total = 1
    return GeneratedTrace(
        cores=cores,
        iterations_simulated=iterations_simulated,
        iterations_total=iterations_total,
    )
