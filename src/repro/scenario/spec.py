"""Scenario specs: named multi-programmed workload mixes.

A :class:`Scenario` is a first-class description of *what runs on the
machine*: an ordered list of workload instances, how many cores each
instance spans (OpenMP-style domain decomposition within the
instance), and a placement policy mapping instances to core ids.  The
evaluation stack runs scenarios everywhere; the classic single-workload
evaluation is the trivial scenario (:meth:`Scenario.solo`) — one
instance spanning every core — and is bit-identical to the
pre-scenario code path.

Scenarios are frozen, hashable and built from picklable scalars, so
they key result dictionaries and enter sweep-cache content keys the
same way :class:`~repro.harness.sweep.SweepPoint` does.

Mix strings give a compact CLI surface::

    heat+lbm            two instances, 1 core each
    heat@4+lbm@4        two instances, 4 cores each
    kmeans*4+bscholes*4 four 1-core instances of each
    kmeans*2@2          two instances, 2 cores each

(``×`` is accepted in place of ``*``.)  A few named mixes ship in the
:func:`named_scenarios` registry; :func:`get_scenario` resolves a name
from the registry first and falls back to parsing it as a mix string.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, replace
from typing import Any

#: placement policies understood by :meth:`Scenario.core_assignment`
PLACEMENTS = ("block", "interleave")


@dataclass(frozen=True)
class ScenarioEntry:
    """One kind of workload instance inside a scenario.

    ``cores`` is the number of cores *one* instance spans (its trace is
    domain-decomposed across them, exactly like the classic
    single-workload run decomposes across the whole machine);
    ``instances`` is how many independent copies of that instance the
    scenario schedules.
    """

    workload: str
    cores: int = 1
    instances: int = 1
    scale: float = 1.0
    workload_kwargs: tuple[tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ValueError(f"entry cores must be >= 1, got {self.cores}")
        if self.instances < 1:
            raise ValueError(
                f"entry instances must be >= 1, got {self.instances}"
            )
        if self.scale <= 0:
            raise ValueError(f"entry scale must be positive, got {self.scale}")

    def label(self) -> str:
        """Compact mix-string form of this entry (``kmeans*4@2``)."""
        text = self.workload
        if self.instances > 1:
            text += f"*{self.instances}"
        if self.cores > 1:
            text += f"@{self.cores}"
        return text


@dataclass(frozen=True)
class Scenario:
    """A named assignment of workload instances to cores.

    ``entries`` is ordered; :meth:`core_assignment` expands it (one
    expanded entry per instance) and maps instances to global core ids
    under the ``placement`` policy:

    * ``"block"`` — instances occupy consecutive core ranges in entry
      order (instance 0 on cores ``0..c0-1``, instance 1 next, ...).
    * ``"interleave"`` — core ids round-robin across instances, so
      co-runners alternate in the LLC's chunk-interleaved service
      order instead of forming contiguous bursts.

    Placement changes *which* core ids an instance's streams occupy,
    and therefore the interleaving pattern the shared LLC and the AVR
    module's single DBUF observe — a contention knob, not cosmetics.
    """

    name: str
    entries: tuple[ScenarioEntry, ...]
    placement: str = "block"

    def __post_init__(self) -> None:
        if not self.entries:
            raise ValueError("a scenario needs at least one entry")
        if self.placement not in PLACEMENTS:
            raise ValueError(
                f"unknown placement {self.placement!r}; expected one of "
                f"{PLACEMENTS}"
            )

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def solo(
        cls,
        workload: str,
        cores: int,
        scale: float = 1.0,
        workload_kwargs: tuple[tuple[str, Any], ...] = (),
    ) -> "Scenario":
        """The trivial scenario: one instance spanning every core.

        This is the classic single-workload evaluation, expressed as a
        scenario; the composed layout and trace it produces are
        bit-identical to the pre-scenario path.
        """
        return cls(
            name=workload,
            entries=(
                ScenarioEntry(
                    workload=workload,
                    cores=cores,
                    scale=scale,
                    workload_kwargs=workload_kwargs,
                ),
            ),
        )

    def scaled(self, factor: float) -> "Scenario":
        """A copy with every entry's workload scale multiplied."""
        if factor == 1.0:
            return self
        return replace(
            self,
            entries=tuple(
                replace(e, scale=e.scale * factor) for e in self.entries
            ),
        )

    # ------------------------------------------------------------------
    # shape
    # ------------------------------------------------------------------
    @property
    def total_cores(self) -> int:
        return sum(e.cores * e.instances for e in self.entries)

    @property
    def num_instances(self) -> int:
        return sum(e.instances for e in self.entries)

    def expanded(self) -> tuple[ScenarioEntry, ...]:
        """One entry per instance, in entry order (``instances=1`` each)."""
        return tuple(
            replace(entry, instances=1)
            for entry in self.entries
            for _ in range(entry.instances)
        )

    def core_assignment(self) -> tuple[tuple[int, ...], ...]:
        """Global core ids of each expanded instance, per ``placement``."""
        expanded = self.expanded()
        if self.placement == "block":
            assignment = []
            next_core = 0
            for entry in expanded:
                assignment.append(
                    tuple(range(next_core, next_core + entry.cores))
                )
                next_core += entry.cores
            return tuple(assignment)
        # interleave: deal core ids round-robin over instances that
        # still need cores, so co-runners alternate in service order.
        remaining = [entry.cores for entry in expanded]
        cores: list[list[int]] = [[] for _ in expanded]
        next_core = 0
        while any(remaining):
            for idx in range(len(expanded)):
                if remaining[idx]:
                    cores[idx].append(next_core)
                    next_core += 1
                    remaining[idx] -= 1
        return tuple(tuple(c) for c in cores)

    def mix_string(self) -> str:
        """Canonical ``+``-joined mix form of the entries."""
        return "+".join(entry.label() for entry in self.entries)


# ----------------------------------------------------------------------
# mix-string parsing and the named registry
# ----------------------------------------------------------------------
_PART_RE = re.compile(
    r"^(?P<workload>[a-z][a-z0-9_]*)"
    r"(?:[*×](?P<instances>\d+))?"
    r"(?:@(?P<cores>\d+))?$"
)


def parse_mix(text: str, name: str | None = None) -> Scenario:
    """Parse a mix string (``heat@4+lbm@4``, ``kmeans*4+bscholes*4``).

    Workload names are validated against the registry so a typo fails
    here rather than deep inside a sweep.
    """
    from ..workloads import WORKLOADS

    parts = [p.strip() for p in text.split("+")]
    if not parts or not all(parts):
        raise ValueError(f"empty mix string {text!r}")
    entries = []
    for part in parts:
        match = _PART_RE.match(part)
        if match is None:
            raise ValueError(
                f"cannot parse mix part {part!r} "
                "(expected WORKLOAD[*N][@CORES])"
            )
        workload = match["workload"]
        if workload not in WORKLOADS:
            raise ValueError(
                f"unknown workload {workload!r} in mix {text!r}; "
                f"available: {sorted(WORKLOADS)}"
            )
        entries.append(
            ScenarioEntry(
                workload=workload,
                cores=int(match["cores"] or 1),
                instances=int(match["instances"] or 1),
            )
        )
    return Scenario(name=name or text, entries=tuple(entries))


def _named() -> dict[str, Scenario]:
    from ..workloads import WORKLOADS

    return {
        # Two parallel applications co-scheduled on half the machine
        # each: the paper's 8-core CMP split down the middle.
        "heat+lbm": Scenario(
            name="heat+lbm",
            entries=(
                ScenarioEntry("heat", cores=4),
                ScenarioEntry("lbm", cores=4),
            ),
        ),
        # Eight single-core instances: a throughput mix of a cache-hungry
        # iterative kernel against a streaming single-pass one.
        "kmeans4+bscholes4": Scenario(
            name="kmeans4+bscholes4",
            entries=(
                ScenarioEntry("kmeans", instances=4),
                ScenarioEntry("bscholes", instances=4),
            ),
        ),
        # Every paper workload at once, one core each, interleaved so
        # all seven rotate through the shared LLC's service order.
        "all7": Scenario(
            name="all7",
            entries=tuple(ScenarioEntry(name) for name in WORKLOADS),
            placement="interleave",
        ),
    }


#: memoized registry of shipped mixes; read through named_scenarios()
_NAMED_CACHE: dict[str, Scenario] = {}


def named_scenarios() -> dict[str, Scenario]:
    """The shipped named mixes (memoized)."""
    if not _NAMED_CACHE:
        _NAMED_CACHE.update(_named())
    return dict(_NAMED_CACHE)


def get_scenario(name_or_mix: str | Scenario) -> Scenario:
    """Resolve a scenario: registry name first, then mix syntax."""
    if isinstance(name_or_mix, Scenario):
        return name_or_mix
    named = named_scenarios()
    if name_or_mix in named:
        return named[name_or_mix]
    return parse_mix(name_or_mix)
