"""Scenario subsystem: multi-programmed workload mixes.

* :mod:`repro.scenario.spec` — the :class:`Scenario` abstraction
  (entries, placement, mix-string parsing, named registry).
* :mod:`repro.scenario.compose` — composition of per-instance layouts
  and traces into one machine-wide view (disjoint base offsets,
  instruction-count balancing, instance seed spawning).

Evaluation entry points (:func:`repro.harness.evaluate_scenario`, the
``python -m repro scenario`` command) live in the harness layer.
"""

from .compose import (
    OFFSET_ALIGN,
    InstancePlan,
    assign_offsets,
    compose_layouts,
    compose_traces,
    instance_seeds,
    plan_instances,
)
from .spec import (
    PLACEMENTS,
    Scenario,
    ScenarioEntry,
    get_scenario,
    named_scenarios,
    parse_mix,
)

__all__ = [
    "InstancePlan",
    "OFFSET_ALIGN",
    "PLACEMENTS",
    "Scenario",
    "ScenarioEntry",
    "assign_offsets",
    "compose_layouts",
    "compose_traces",
    "get_scenario",
    "instance_seeds",
    "named_scenarios",
    "parse_mix",
    "plan_instances",
]
