"""Open design registry: design points as first-class, registrable values.

Historically the evaluated system designs were a closed ``Design`` enum
dispatched through an if/elif chain in ``system/factory.py``.  This
module replaces that with an *open registry*: a design point is a
:class:`DesignSpec` — a frozen, hashable, picklable value describing
how the functional layer approximates data and how the timing layer's
LLC is wired — and the five paper designs are simply the first five
registry entries.  A new design point is one :func:`register_design`
call; nothing in ``system/factory.py`` or ``common/types.py`` changes.

Three layers of extensibility, cheapest first:

1. **Parameterized variants** — new capacity/compression parameters on
   the built-in LLC families (``llc="baseline"`` /, ``llc="avr"``).
   The shipped ``truncate-16`` (quarter-width approximate lines) and
   ``avr-conservative`` (halved error thresholds, self-measured
   layout) are examples.
2. **Baked-in AVR options** — ``avr_options`` pins
   :class:`~repro.cache.llc_avr.AVRLLC` ablation knobs into a design's
   identity (e.g. a no-DBUF AVR variant).
3. **A custom builder hook** — ``builder`` takes over LLC construction
   entirely for genuinely new cache organizations (see
   ``examples/custom_design.py``).  The hook must be a module-level
   callable so specs still pickle into sweep worker processes; it is
   excluded from a spec's identity (equality, hashing and sweep-cache
   keys cover the declarative fields only, so two specs that differ
   only in builder must differ in name).

The old :class:`~repro.common.types.Design` enum remains importable as
a deprecated alias layer: every API that accepts a design resolves
enum members (and plain registry names) through :func:`get_design`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from difflib import get_close_matches
from typing import Any, Callable, Iterable, TYPE_CHECKING

from .common.types import Design, ErrorThresholds

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from .cache.llc_avr import AVRLLC
    from .cache.llc_baseline import BaselineLLC
    from .common.config import SystemConfig
    from .memory.dram import DRAM
    from .system.layout import AddressLayout

__all__ = [
    "AVR",
    "AVR_CONSERVATIVE",
    "BASELINE",
    "COMPARED",
    "DGANGER",
    "DesignMap",
    "DesignLike",
    "DesignSpec",
    "LLCBuildContext",
    "PAPER_DESIGNS",
    "TRUNCATE",
    "TRUNCATE_16",
    "ZERO_AVR",
    "derive_design",
    "get_design",
    "layout_source_design",
    "list_designs",
    "register_design",
    "resolve_designs",
    "unregister_design",
]

#: approximation strategies the functional layer knows how to apply
APPROXIMATORS = ("exact", "avr", "truncate", "dganger")

#: built-in LLC families ``DesignSpec.build_llc`` can construct
LLC_FAMILIES = ("baseline", "avr")

#: capacity models for the ``baseline`` LLC family
CAPACITY_MODELS = ("none", "truncate", "dganger")


@dataclass
class LLCBuildContext:
    """Everything an LLC builder may consume, bundled as one value.

    Passed to :meth:`DesignSpec.build_llc` and to custom ``builder``
    hooks, so growing the construction interface never changes hook
    signatures.  ``options`` already merges the spec's baked-in
    ``avr_options`` with the caller's runtime overrides (ablations).
    """

    config: "SystemConfig"
    dram: "DRAM"
    layout: "AddressLayout"
    footprint_bytes: int
    dedup_factor: float = 1.0
    options: dict[str, Any] = field(default_factory=dict)

    @property
    def approx_fraction(self) -> float:
        """Fraction of the workload footprint that is approximable."""
        if not self.footprint_bytes:
            return 0.0
        return min(1.0, self.layout.approx_bytes / self.footprint_bytes)


@dataclass(frozen=True, eq=False)
class DesignSpec:
    """One system design point, as an open, declarative value.

    Identity (equality, hashing, and sweep-cache canonicalization)
    covers every field except ``builder``; a spec therefore keys result
    dictionaries and on-disk cache entries stably across processes and
    interpreter runs.  For interoperability with pre-registry code a
    spec also compares equal to the legacy :class:`Design` enum member
    (and to the plain string) carrying its name.
    """

    #: registry name; also the display label in tables and the CLI
    name: str
    #: built-in LLC family the timing layer builds (see ``builder``)
    llc: str = "baseline"
    #: functional-layer approximation strategy applied to marked data
    approximator: str = "exact"
    #: capacity model of the ``baseline`` LLC family: ``"none"`` (plain
    #: cache), ``"truncate"`` (approximate lines stored narrow) or
    #: ``"dganger"`` (measured dedup, capped by the tag-array reach)
    capacity_model: str = "none"
    #: bytes an approximate line occupies in the cache and on the
    #: memory link (``truncate`` capacity model); None = full width
    approx_line_bytes: int | None = None
    #: multiplier applied to the resolved error thresholds (t1 and t2)
    #: of every functional run — ``0.5`` halves the error budget
    thresholds_scale: float = 1.0
    #: AVRLLC keyword overrides baked into the design's identity,
    #: as a sorted tuple of pairs (``(("enable_dbuf", False),)``)
    avr_options: tuple[tuple[str, Any], ...] = ()
    #: AVR machinery present but nothing marked approximable (ZeroAVR)
    approximate_nothing: bool = False
    #: name of the design whose functional run measures the block sizes
    #: this design's timing layout uses; None = the canonical ``AVR``
    #: reference run (only AVR-family timing reads block sizes)
    layout_source: str | None = None
    #: one-line description shown by ``list`` surfaces and docs
    doc: str = ""
    #: custom LLC constructor hook ``(spec, ctx) -> LLC``; overrides the
    #: built-in family dispatch.  Excluded from identity — must be a
    #: picklable module-level callable.
    builder: Callable[["DesignSpec", LLCBuildContext], Any] | None = field(
        default=None, compare=False, repr=False
    )

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ValueError(f"design name must be a non-empty string, got {self.name!r}")
        if self.llc not in LLC_FAMILIES:
            raise ValueError(
                f"unknown LLC family {self.llc!r}; expected one of {LLC_FAMILIES}"
            )
        if self.approximator not in APPROXIMATORS:
            raise ValueError(
                f"unknown approximator {self.approximator!r}; "
                f"expected one of {APPROXIMATORS}"
            )
        if self.capacity_model not in CAPACITY_MODELS:
            raise ValueError(
                f"unknown capacity model {self.capacity_model!r}; "
                f"expected one of {CAPACITY_MODELS}"
            )
        if self.thresholds_scale <= 0:
            raise ValueError(
                f"thresholds_scale must be positive, got {self.thresholds_scale}"
            )
        if self.approx_line_bytes is not None and not (
            0 < self.approx_line_bytes <= 64
        ):
            raise ValueError(
                f"approx_line_bytes must be in (0, 64], got {self.approx_line_bytes}"
            )
        # The functional and timing views of a truncate-family design
        # both key off the stored line width; requiring it up front
        # keeps them consistent by construction.
        if (
            "truncate" in (self.approximator, self.capacity_model)
            and self.approx_line_bytes is None
        ):
            raise ValueError(
                f"design {self.name!r} uses the truncate approximator/"
                "capacity model but does not set approx_line_bytes"
            )
        options = self.avr_options
        if isinstance(options, dict):
            options = tuple(options.items())
        for pair in options:
            if not (
                isinstance(pair, tuple)
                and len(pair) == 2
                and isinstance(pair[0], str)
            ):
                raise ValueError(
                    f"avr_options must be (name, value) pairs, got {pair!r}"
                )
        if options and self.llc != "avr" and self.builder is None:
            raise ValueError(
                f"design {self.name!r} bakes in avr_options but its "
                f"{self.llc!r} LLC family cannot consume them"
            )
        object.__setattr__(self, "avr_options", tuple(sorted(options)))

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------
    def _identity(self) -> tuple:
        return tuple(
            getattr(self, f.name) for f in fields(self) if f.compare
        )

    def __eq__(self, other: object) -> bool:
        if isinstance(other, DesignSpec):
            return self._identity() == other._identity()
        if isinstance(other, (Design, str)):
            name = other.value if isinstance(other, Design) else other
            return self.name.lower() == name.lower()
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._identity())

    # ------------------------------------------------------------------
    # enum-compatible surface
    # ------------------------------------------------------------------
    @property
    def value(self) -> str:
        """The display label, mirroring ``Design.<member>.value``."""
        return self.name

    # ------------------------------------------------------------------
    # derived roles
    # ------------------------------------------------------------------
    @property
    def is_reference(self) -> bool:
        """Functionally exact: its run equals the baseline reference."""
        return self.approximator == "exact"

    @property
    def runs_functional(self) -> bool:
        """Needs its own functional round-trip (non-exact designs)."""
        return not self.is_reference

    @property
    def measures_dedup(self) -> bool:
        """Its functional run's dedup factor parameterizes capacity."""
        return self.approximator == "dganger"

    @property
    def consumes_avr_options(self) -> bool:
        """Whether runtime ``avr_options`` overrides are meaningful."""
        return self.llc == "avr" or self.builder is not None

    def validate_options(self, avr_options: dict | None) -> None:
        """Reject runtime LLC options a design cannot consume.

        ``build_system`` used to silently drop ``avr_options`` for
        non-AVR designs; an ablation sweep over the wrong design then
        measured nothing.  Now it is a loud error.
        """
        if avr_options and not self.consumes_avr_options:
            raise ValueError(
                f"design {self.name!r} ({self.llc!r} LLC family) cannot "
                f"consume avr_options {sorted(avr_options)}; only AVR-family "
                "designs (or designs with a custom builder) accept them"
            )

    # ------------------------------------------------------------------
    # functional layer
    # ------------------------------------------------------------------
    def resolve_thresholds(
        self,
        explicit: ErrorThresholds | None = None,
        default: ErrorThresholds | None = None,
    ) -> ErrorThresholds | None:
        """Error thresholds of one functional run under this design.

        ``explicit`` (a sweep-point override) wins over ``default`` (the
        workload's per-application knob); ``thresholds_scale`` then
        scales whichever applies, so a tightened design stays tightened
        even inside threshold-ablation sweeps.
        """
        base = explicit if explicit is not None else default
        if self.thresholds_scale == 1.0:
            return base
        base = base if base is not None else ErrorThresholds()
        return ErrorThresholds(
            t1=min(1.0, base.t1 * self.thresholds_scale),
            t2=min(1.0, base.t2 * self.thresholds_scale),
        )

    # ------------------------------------------------------------------
    # timing layer
    # ------------------------------------------------------------------
    def build_llc(self, ctx: LLCBuildContext) -> Any:
        """Construct this design's LLC from the build context.

        Custom ``builder`` hooks take over entirely; otherwise the
        built-in family dispatch applies (the open-registry replacement
        of the old ``build_system`` if/elif chain).
        """
        if self.builder is not None:
            return self.builder(self, ctx)
        if self.llc == "avr":
            return self._build_avr_llc(ctx)
        return self._build_baseline_llc(ctx)

    def _capacity_multiplier(self, ctx: LLCBuildContext) -> float:
        frac = ctx.approx_fraction
        if self.capacity_model == "truncate":
            # Approximate lines stored at ``approx_line_bytes`` width:
            # capacity stretches by the approximate share's saved space.
            line = ctx.config.llc.line_bytes
            narrow = self.approx_line_bytes or line
            return 1.0 / (1.0 - frac * (1.0 - narrow / line))
        if self.capacity_model == "dganger":
            # Dedup shares data entries between similar lines; reach is
            # bounded by the enlarged tag array.
            effective = min(
                max(ctx.dedup_factor, 1.0), float(ctx.config.dganger_tag_factor)
            )
            return 1.0 / (1.0 - frac * (1.0 - 1.0 / effective))
        return 1.0

    def _build_baseline_llc(self, ctx: LLCBuildContext) -> BaselineLLC:
        from .cache.llc_baseline import BaselineLLC

        if self.capacity_model == "none" and self.approx_line_bytes is None:
            return BaselineLLC(ctx.config.llc, ctx.dram)
        return BaselineLLC(
            ctx.config.llc,
            ctx.dram,
            is_approx=ctx.layout.is_approx,
            capacity_multiplier=self._capacity_multiplier(ctx),
            approx_line_bytes=self.approx_line_bytes
            or ctx.config.llc.line_bytes,
            is_approx_batch=ctx.layout.is_approx_batch,
        )

    def _build_avr_llc(self, ctx: LLCBuildContext) -> AVRLLC:
        import numpy as np

        from .cache.llc_avr import AVRLLC
        from .common.constants import BLOCK_CACHELINES

        if self.approximate_nothing:
            # AVR machinery present, nothing marked approximable.
            return AVRLLC(
                ctx.config.llc,
                ctx.dram,
                block_size_of=lambda addr: BLOCK_CACHELINES,
                is_approx=lambda addr: False,
                is_approx_batch=lambda addrs: np.zeros(addrs.shape, dtype=bool),
                block_size_of_batch=lambda addrs: np.full(
                    addrs.shape, BLOCK_CACHELINES, dtype=np.int64
                ),
                **ctx.options,
            )
        return AVRLLC(
            ctx.config.llc,
            ctx.dram,
            block_size_of=ctx.layout.block_size_of,
            is_approx=ctx.layout.is_approx,
            is_approx_batch=ctx.layout.is_approx_batch,
            block_size_of_batch=ctx.layout.block_size_of_batch,
            **ctx.options,
        )


#: anything the design-accepting APIs resolve through :func:`get_design`
DesignLike = DesignSpec | Design | str


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
_REGISTRY: dict[str, DesignSpec] = {}


def register_design(spec: DesignSpec, replace: bool = False) -> DesignSpec:
    """Add ``spec`` to the registry (returned for chaining).

    Names are matched case-insensitively; registering a taken name
    raises unless ``replace=True`` (re-registering the identical spec
    is always a no-op, so module re-imports stay idempotent).
    """
    key = spec.name.lower()
    existing = _REGISTRY.get(key)
    if existing is not None and not replace:
        if existing == spec and existing.builder is spec.builder:
            return existing
        raise ValueError(
            f"design name {spec.name!r} is already registered; pass "
            "replace=True to override it"
        )
    _REGISTRY[key] = spec
    return spec


def unregister_design(name: str) -> None:
    """Remove a registered design (primarily for tests)."""
    _REGISTRY.pop(name.lower(), None)


def list_designs() -> tuple[str, ...]:
    """Display names of every registered design, registration order."""
    return tuple(spec.name for spec in _REGISTRY.values())


def get_design(design: DesignLike) -> DesignSpec:
    """Resolve a design reference to its :class:`DesignSpec`.

    Accepts a spec (returned as-is, registered or not), a legacy
    :class:`Design` enum member, or a registry name (case-insensitive).
    Unknown names raise a ``ValueError`` with close-match suggestions —
    the error surface the CLI and :class:`~repro.experiment.ExperimentSpec`
    share.
    """
    if isinstance(design, DesignSpec):
        return design
    if isinstance(design, Design):
        return _REGISTRY[design.value.lower()]
    if isinstance(design, str):
        spec = _REGISTRY.get(design.lower())
        if spec is not None:
            return spec
        names = list_designs()
        by_lower = {n.lower(): n for n in names}
        close = [
            by_lower[c]
            for c in get_close_matches(design.lower(), list(by_lower), n=3, cutoff=0.4)
        ]
        hint = f"; did you mean {', '.join(repr(c) for c in close)}?" if close else ""
        raise ValueError(
            f"unknown design {design!r}{hint} registered designs: "
            f"{', '.join(names)}"
        )
    raise TypeError(
        f"cannot resolve a design from {type(design).__name__}: {design!r}"
    )


def resolve_designs(designs: Iterable[DesignLike]) -> tuple[DesignSpec, ...]:
    """Resolve a sequence of design references to specs."""
    return tuple(get_design(d) for d in designs)


def derive_design(
    base: DesignLike,
    *,
    thresholds_scale: float | None = None,
    approx_line_bytes: int | None = None,
    avr_options: tuple[tuple[str, Any], ...] | None = None,
    name: str | None = None,
) -> DesignSpec:
    """A parameterized variant of ``base``, deterministically named.

    The planner's way of turning one registry design into a family of
    candidate design points: each override that actually changes the
    spec contributes a stable name suffix (``AVR~s0.5``,
    ``truncate~w16``, ``AVR~no-enable_dbuf``), so the same overrides
    always produce the same spec — and therefore the same sweep-cache
    keys — across processes and runs.  Passing no effective overrides
    returns ``base`` itself.
    """
    from dataclasses import replace as _replace

    spec = get_design(base)
    changes: dict[str, Any] = {}
    suffixes: list[str] = []
    if (
        thresholds_scale is not None
        and thresholds_scale != spec.thresholds_scale
    ):
        changes["thresholds_scale"] = thresholds_scale
        suffixes.append(f"s{thresholds_scale:g}")
    if (
        approx_line_bytes is not None
        and approx_line_bytes != spec.approx_line_bytes
    ):
        changes["approx_line_bytes"] = approx_line_bytes
        suffixes.append(f"w{approx_line_bytes}")
    if avr_options:
        merged = dict(spec.avr_options)
        merged.update(avr_options)
        merged_tuple = tuple(sorted(merged.items()))
        if merged_tuple != spec.avr_options:
            changes["avr_options"] = merged_tuple
            for key, value in sorted(avr_options):
                suffixes.append(
                    f"no-{key}" if value is False else f"{key}={value!r}"
                )
    if not changes:
        return spec
    derived_name = name or f"{spec.name}~{'~'.join(suffixes)}"
    return _replace(spec, name=derived_name, **changes)


def layout_source_design(design: DesignLike) -> DesignSpec:
    """The design whose functional run measures a design's timing layout.

    ``layout_source=None`` means the canonical ``AVR`` reference run
    (only AVR-family LLCs consume measured block sizes).
    """
    spec = get_design(design)
    return get_design(spec.layout_source) if spec.layout_source else AVR


class DesignMap(dict):
    """Result mapping keyed by :class:`DesignSpec`.

    The deprecated-alias seam for pre-registry callers: lookups accept
    legacy :class:`Design` enum members and registry names, normalizing
    them through :func:`get_design` — ``runs[Design.AVR]``,
    ``runs["AVR"]`` and ``runs[AVR]`` address the same entry.
    """

    @staticmethod
    def _key(key: object) -> object:
        try:
            return get_design(key)
        except (TypeError, ValueError, KeyError):
            return key

    def __getitem__(self, key: object) -> Any:
        return super().__getitem__(self._key(key))

    def __setitem__(self, key: object, value: Any) -> None:
        super().__setitem__(self._key(key), value)

    def __contains__(self, key: object) -> bool:
        return super().__contains__(self._key(key))

    def get(self, key: object, default: Any = None) -> Any:
        return super().get(self._key(key), default)

    def pop(self, key: object, *args: Any) -> Any:
        return super().pop(self._key(key), *args)

    def setdefault(self, key: object, default: Any = None) -> Any:
        return super().setdefault(self._key(key), default)


# ----------------------------------------------------------------------
# shipped designs: the five paper design points ...
# ----------------------------------------------------------------------
BASELINE = register_design(DesignSpec(
    name="baseline",
    doc="Conventional LLC, no approximation (the normalization anchor).",
))

TRUNCATE = register_design(DesignSpec(
    name="truncate",
    approximator="truncate",
    capacity_model="truncate",
    approx_line_bytes=32,
    doc="Approximate lines truncated to half width in cache and on the link.",
))

DGANGER = register_design(DesignSpec(
    name="dganger",
    approximator="dganger",
    capacity_model="dganger",
    doc="Doppelgänger: similar approximate lines share one data entry.",
))

ZERO_AVR = register_design(DesignSpec(
    name="ZeroAVR",
    llc="avr",
    approximate_nothing=True,
    doc="AVR hardware present, nothing marked approximable (overhead probe).",
))

AVR = register_design(DesignSpec(
    name="AVR",
    llc="avr",
    approximator="avr",
    doc="Approximate Value Reconstruction: compressed approximate LLC lines.",
))

# ... and two parameterized variants demonstrating the open registry.
AVR_CONSERVATIVE = register_design(DesignSpec(
    name="avr-conservative",
    llc="avr",
    approximator="avr",
    thresholds_scale=0.5,
    layout_source="avr-conservative",
    doc="AVR with halved error budgets; layout from its own measured blocks.",
))

TRUNCATE_16 = register_design(DesignSpec(
    name="truncate-16",
    approximator="truncate",
    capacity_model="truncate",
    approx_line_bytes=16,
    doc="Truncation to quarter-width lines: more capacity, coarser values.",
))

#: the five paper design points, registry order (baseline first)
PAPER_DESIGNS = (BASELINE, DGANGER, TRUNCATE, ZERO_AVR, AVR)

#: design points shown in the figures, paper order (baseline is the
#: normalization reference); the spec twin of ``types.COMPARED_DESIGNS``
COMPARED = (DGANGER, TRUNCATE, ZERO_AVR, AVR)
