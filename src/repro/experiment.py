"""Declarative experiments: one serializable value describes a whole run.

An :class:`ExperimentSpec` composes everything the evaluation stack can
vary — workloads and multi-programmed scenarios, registered designs,
machine size, grid axes (scales / seeds / error thresholds), trace
budget, replay engine, and execution settings (worker processes, cache
directory) — into a single frozen value that loads from and dumps to
TOML or JSON.  :func:`run_experiment` executes it through the sweep
engine, so a spec-driven run decomposes into exactly the same job units
(with exactly the same content-hash cache keys) as the equivalent
programmatic :func:`~repro.harness.sweep.run_sweep` /
:func:`~repro.harness.evaluate_all` /
:func:`~repro.harness.scenario.evaluate_scenario` call — those remain
as thin shims over the same engine, and a warm cache serves either
path.

::

    spec = ExperimentSpec.from_file("examples/experiment_spec.toml")
    result = run_experiment(spec)
    result.by_workload()["heat"].normalized("AVR", "time")

Specs are identity-stable: :meth:`ExperimentSpec.content_hash` is a
SHA-256 over the spec's canonical form (the same canonicalization the
sweep cache uses), so two specs hash equal iff they describe the same
experiment — file round-trips are bit-identical.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields, replace
from pathlib import Path
from typing import Any, TYPE_CHECKING

from .common.config import SystemConfig
from .common.types import ErrorThresholds
from .designs import resolve_designs
from .harness.cache import content_key

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from .harness.runner import WorkloadEvaluation
    from .harness.scenario import ScenarioEvaluation
    from .harness.sweep import SweepSpec

__all__ = [
    "ExperimentResult",
    "ExperimentSpec",
    "dump_flat_toml",
    "load_spec_mapping",
    "run_experiment",
]

#: default machine width when the spec pins neither cores nor scenarios
DEFAULT_CORES = 8


@dataclass(frozen=True)
class ExperimentSpec:
    """One experiment — workloads/scenarios x designs x settings.

    Every field is a plain scalar or tuple, so specs are hashable,
    picklable, canonicalizable into cache keys, and round-trip through
    TOML/JSON bit-identically.  Designs and scenarios are referenced by
    *name* (registry names / mix strings); resolution happens at
    construction (typos fail fast, with suggestions).
    """

    #: label for reports and file names (not part of the grid identity)
    name: str = "experiment"
    #: workload names; empty = all seven paper workloads unless
    #: ``scenarios`` is non-empty (mixes bring their own workloads)
    workloads: tuple[str, ...] = ()
    #: scenario registry names or mix strings (``heat@4+lbm@4``)
    scenarios: tuple[str, ...] = ()
    #: registered design names (see :func:`repro.designs.list_designs`)
    designs: tuple[str, ...] = ("baseline", "dganger", "truncate", "ZeroAVR", "AVR")
    #: workload size multipliers
    scales: tuple[float, ...] = (1.0,)
    #: trace-jitter seeds
    seeds: tuple[int, ...] = (0,)
    #: T2 error-threshold overrides (T1 = 2*T2); empty = per-workload
    #: defaults
    t2_thresholds: tuple[float, ...] = ()
    #: trace accesses per core
    max_accesses_per_core: int = 50_000
    #: simulated cores; None derives it (scenario width, else 8)
    num_cores: int | None = None
    #: timing-replay engine (``vectorized`` or ``reference``)
    engine: str = "vectorized"
    #: default worker processes (overridable at :func:`run_experiment`)
    jobs: int = 1
    #: default on-disk result-cache directory (None = no cache)
    cache_dir: str | None = None
    #: result-cache backend stack (``sharded`` | ``memory[:N]`` |
    #: ``readthrough:PATH``); every backend is bit-identical, so this
    #: is execution-only (see :func:`repro.harness.cache.resolve_backend`)
    cache_backend: str | None = None
    #: memory-mapped composed-trace store directory; None derives
    #: ``<cache_dir>/traces`` when caching, ``"off"`` disables it (see
    #: :func:`repro.trace.store.resolve_trace_store`)
    trace_store: str | None = None

    def __post_init__(self) -> None:
        for name, kind in (("workloads", str), ("scenarios", str),
                           ("designs", str), ("seeds", int)):
            object.__setattr__(
                self, name, tuple(kind(v) for v in getattr(self, name))
            )
        object.__setattr__(self, "scales", tuple(float(s) for s in self.scales))
        object.__setattr__(
            self, "t2_thresholds", tuple(float(t) for t in self.t2_thresholds)
        )
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {self.jobs}")
        if not self.designs:
            raise ValueError("an experiment needs at least one design")
        # Fail fast, with did-you-mean suggestions, on unknown names.
        resolve_designs(self.designs)
        from .scenario import get_scenario
        from .workloads import WORKLOADS

        for scenario in self.scenarios:
            get_scenario(scenario)
        for workload in self.workloads:
            if workload not in WORKLOADS:
                raise ValueError(
                    f"unknown workload {workload!r}; available: "
                    f"{', '.join(sorted(WORKLOADS))}"
                )

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------
    #: fields that do not affect results: the display label, execution
    #: settings, and the engine (both engines are bit-identical, as the
    #: sweep-cache keys already assume); stored traces are bit-identical
    #: to regenerated ones, so the trace store is execution-only too
    _NON_IDENTITY_FIELDS = frozenset(
        {"name", "jobs", "cache_dir", "cache_backend", "engine", "trace_store"}
    )

    def content_hash(self) -> str:
        """Stable SHA-256 of the spec's *grid identity*.

        Built by the same canonicalization the sweep cache keys use, so
        it is stable across processes and interpreter runs and blind to
        everything that cannot change results: field ordering in a spec
        file, the ``name`` label, ``jobs``/``cache_dir`` execution
        settings, and the (bit-identical) replay ``engine``.  Two specs
        hash equal iff they enumerate the same job units.

        The digest is computed once per instance and memoized: the
        planner and sweep hot paths hash the same spec repeatedly (for
        cache probes, dedup, and logging), and the spec is frozen, so
        re-serializing the full canonical form each call is pure waste.
        The memo rides along through ``pickle`` (it lives in the
        instance ``__dict__``), so worker processes inherit it too.
        """
        cached = self.__dict__.get("_content_hash")
        if cached is not None:
            return cached  # type: ignore[no-any-return]
        identity = tuple(
            (f.name, getattr(self, f.name))
            for f in fields(self)
            if f.name not in self._NON_IDENTITY_FIELDS
        )
        digest = content_key("experiment", identity)
        object.__setattr__(self, "_content_hash", digest)
        return digest

    def pruned(
        self,
        designs: tuple[str, ...],
        t2_thresholds: tuple[float, ...] | None = None,
    ) -> "ExperimentSpec":
        """This experiment with its design/threshold axes narrowed.

        The sweep pre-pruning seam the planner uses: a plan's Pareto
        recommendations replace the exhaustive ``designs`` (and
        optionally ``t2_thresholds``) axes, so the pruned experiment
        evaluates only the configurations worth full-fidelity runs.
        Everything else — workloads, scenarios, scales, seeds,
        execution settings — carries over unchanged.
        """
        changes: dict[str, Any] = {"designs": tuple(designs)}
        if t2_thresholds is not None:
            changes["t2_thresholds"] = tuple(t2_thresholds)
        return replace(self, **changes)

    # ------------------------------------------------------------------
    # execution view
    # ------------------------------------------------------------------
    def resolved_cores(self) -> int:
        """Machine width: pinned, or wide enough for every scenario."""
        if self.num_cores is not None:
            return self.num_cores
        from .scenario import get_scenario

        widths = [get_scenario(s).total_cores for s in self.scenarios]
        if self.workloads or not self.scenarios:
            widths.append(DEFAULT_CORES)
        return max(widths)

    def to_sweep_spec(self) -> SweepSpec:
        """The :class:`~repro.harness.sweep.SweepSpec` this spec runs as.

        The decomposition seam that makes spec-driven and programmatic
        runs share cache entries: both enumerate identical job units.
        """
        from .harness.sweep import SweepSpec
        from .scenario import get_scenario

        thresholds = (
            tuple(ErrorThresholds.from_t2(t) for t in self.t2_thresholds)
            or (None,)
        )
        return SweepSpec(
            workloads=self.workloads,
            designs=resolve_designs(self.designs),
            config=SystemConfig.scaled(num_cores=self.resolved_cores()),
            scales=self.scales,
            seeds=self.seeds,
            thresholds=thresholds,
            max_accesses_per_core=self.max_accesses_per_core,
            scenarios=tuple(get_scenario(s) for s in self.scenarios),
            engine=self.engine,
        )

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_mapping(self) -> dict[str, Any]:
        """Plain-scalar mapping form (tuples as lists, None omitted)."""
        out: dict[str, Any] = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if value is None:
                continue
            out[f.name] = list(value) if isinstance(value, tuple) else value
        return out

    @classmethod
    def from_mapping(cls, mapping: dict[str, Any]) -> "ExperimentSpec":
        """Build a spec from a mapping, rejecting unknown keys."""
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(mapping) - known)
        if unknown:
            raise ValueError(
                f"unknown experiment spec keys {unknown}; "
                f"expected a subset of {sorted(known)}"
            )
        return cls(**mapping)

    def to_file(self, path: str | Path) -> Path:
        """Write the spec as TOML (default) or JSON, by extension."""
        path = Path(path)
        mapping = self.to_mapping()
        if path.suffix == ".json":
            text = json.dumps(mapping, indent=2) + "\n"
        else:
            text = dump_flat_toml(mapping)
        path.write_text(text)
        return path

    @classmethod
    def from_file(cls, path: str | Path) -> "ExperimentSpec":
        """Load a spec from a ``.toml`` or ``.json`` file."""
        return cls.from_mapping(load_spec_mapping(path))


def load_spec_mapping(path: str | Path) -> dict[str, Any]:
    """Parse a ``.toml`` or ``.json`` spec file into a plain mapping.

    The shared loading seam of every declarative spec in the package
    (:class:`ExperimentSpec`, the planner's
    :class:`~repro.planner.PlanSpec`): format is chosen by extension,
    and the returned mapping feeds the spec's ``from_mapping``.
    """
    path = Path(path)
    text = path.read_text()
    if path.suffix == ".json":
        return dict(json.loads(text))
    import tomllib

    return tomllib.loads(text)


def dump_flat_toml(mapping: dict[str, Any]) -> str:
    """Minimal TOML emitter for the flat spec schemas.

    The stdlib parses TOML (``tomllib``) but cannot write it; specs are
    flat scalars/lists, so a small exact emitter keeps the round trip
    dependency-free and bit-stable.
    """

    def scalar(value: Any) -> str:
        if isinstance(value, bool):
            return "true" if value else "false"
        if isinstance(value, (int, float)):
            return repr(value)
        if isinstance(value, str):
            return json.dumps(value)  # TOML basic strings == JSON strings
        raise TypeError(f"cannot emit {type(value).__name__} as TOML: {value!r}")

    lines = []
    for key, value in mapping.items():
        if isinstance(value, list):
            lines.append(f"{key} = [{', '.join(scalar(v) for v in value)}]")
        else:
            lines.append(f"{key} = {scalar(value)}")
    return "\n".join(lines) + "\n"


@dataclass
class ExperimentResult:
    """A finished experiment: the spec plus its sweep results."""

    spec: ExperimentSpec
    sweep: Any  # SweepResult (kept loose to avoid import cycles)

    @property
    def stats(self) -> Any:
        """Execution accounting (jobs executed vs served from cache)."""
        return self.sweep.stats

    def by_workload(self) -> dict[str, WorkloadEvaluation]:
        """``{workload name: WorkloadEvaluation}`` (singleton grids)."""
        return self.sweep.by_workload()

    def by_scenario(self) -> dict[str, ScenarioEvaluation]:
        """``{scenario name: ScenarioEvaluation}`` (singleton grids)."""
        return self.sweep.by_scenario()

    @property
    def evaluations(self) -> Any:
        """Raw per-point evaluations, keyed by sweep point."""
        return self.sweep.evaluations

    @property
    def scenario_evaluations(self) -> Any:
        """Raw per-point scenario evaluations, keyed by scenario point."""
        return self.sweep.scenario_evaluations


def run_experiment(
    spec: ExperimentSpec | str | Path,
    jobs: int | None = None,
    cache_dir: str | Path | Any | None = None,
    engine: str | None = None,
    trace_store: str | Path | bool | None = None,
    cache_backend: str | None = None,
    executor: Any | None = None,
    on_unit_done: Any | None = None,
) -> ExperimentResult:
    """Execute an experiment spec (or spec file) end to end.

    The declarative superset of :func:`~repro.harness.evaluate_all`,
    :func:`~repro.harness.sweep.run_sweep` and
    :func:`~repro.harness.scenario.evaluate_scenario`: the spec is
    decomposed into the same sweep job units, so results are
    bit-identical to the equivalent programmatic calls and cache
    entries are shared with them.  ``jobs`` / ``cache_dir`` /
    ``engine`` / ``trace_store`` / ``cache_backend`` override the
    spec's execution settings without touching its identity;
    ``cache_dir`` may also be a prebuilt
    :class:`~repro.harness.cache.ResultCache`.  ``executor`` /
    ``on_unit_done`` forward to :func:`~repro.harness.sweep.run_sweep`
    — the ``repro serve`` daemon injects its shared deduplicating
    scheduler and streams per-unit progress through them.
    """
    from .harness.sweep import run_sweep

    if isinstance(spec, (str, Path)):
        spec = ExperimentSpec.from_file(spec)
    if engine is not None:
        spec = replace(spec, engine=engine)
    resolved_cache = cache_dir if cache_dir is not None else spec.cache_dir
    sweep = run_sweep(
        spec.to_sweep_spec(),
        jobs=jobs if jobs is not None else spec.jobs,
        cache_dir=resolved_cache,
        trace_store=trace_store if trace_store is not None else spec.trace_store,
        cache_backend=(
            cache_backend if cache_backend is not None else spec.cache_backend
        ),
        executor=executor,
        on_unit_done=on_unit_done,
    )
    return ExperimentResult(spec=spec, sweep=sweep)
