"""Per-block exponent biasing (paper §3.3, "Biasing & unbiasing").

Very large or very small float32 values lose precision when converted
to a fixed-point format of limited range.  AVR therefore *biases* a
block before compression: a per-block constant is added to the exponent
field of every value, sliding the whole block into the Q-format's sweet
spot.  The bias is stored in the block's CMT entry (8-bit field) and
removed after decompression.

Biasing is skipped (bias = 0) when the block contains special values
(NaN/Inf) or when no single offset keeps every value's exponent inside
(0, 255) while bringing the largest magnitude into range — the cases
the paper lists as (a) and (b).
"""

from __future__ import annotations

import numpy as np

from ..common import bitops
from .convert import DEFAULT_FORMAT, FixedPointFormat

#: Target biased exponent of the largest-magnitude value.  127 + 5 puts
#: the block maximum in [32, 64): comfortably inside Q8.24's (-128, 128)
#: range with headroom, while using most of the 24 fractional bits.
TARGET_MAX_EXPONENT = 127 + 5

#: 8-bit signed field in the CMT limits the representable bias.
BIAS_FIELD_MIN = -128
BIAS_FIELD_MAX = 127


def choose_bias(
    values: np.ndarray, fmt: FixedPointFormat = DEFAULT_FORMAT
) -> int:
    """Select the exponent bias for one block of float32 values.

    Returns the signed bias to *add* to every exponent before the
    float-to-fixed conversion (0 when biasing is skipped).
    """
    values = np.asarray(values, dtype=np.float32)
    if bool(np.any(bitops.is_special(values))):
        return 0  # rule (a): bias would create/destroy NaN/Inf semantics
    exps = bitops.exponent_bits(values)
    nonzero = exps > 0  # exponent field 0 = zero/denormal, never biased
    if not bool(np.any(nonzero)):
        return 0  # all-zero block: nothing to bias
    max_exp = int(exps[nonzero].max())
    min_exp = int(exps[nonzero].min())
    bias = TARGET_MAX_EXPONENT - max_exp
    if bias == 0:
        return 0
    # rule (b): the offset must keep every value's exponent in (0, 255)
    if min_exp + bias < 1 or max_exp + bias > 254:
        return 0
    if not BIAS_FIELD_MIN <= bias <= BIAS_FIELD_MAX:
        return 0
    return bias


def apply_bias(values: np.ndarray, bias: int) -> np.ndarray:
    """Add ``bias`` to the exponent of every value (multiply by 2**bias)."""
    return bitops.add_exponent(values, bias)


def remove_bias(values: np.ndarray, bias: int) -> np.ndarray:
    """Undo :func:`apply_bias` after decompression.

    Reconstructed values (averages, interpolants) may have smaller
    exponents than any original value, so exact exponent-field
    subtraction could underflow; the hardware flushes such results to
    zero.  ``ldexp`` reproduces that behaviour.
    """
    if bias == 0:
        return np.array(values, dtype=np.float32, copy=True)
    return np.ldexp(np.asarray(values, dtype=np.float32), -bias).astype(np.float32)
