"""Fixed-point arithmetic substrate for the AVR compressor core."""

from .bias import apply_bias, choose_bias, remove_bias
from .convert import DEFAULT_FORMAT, FixedPointFormat, fixed_to_float, float_to_fixed

__all__ = [
    "DEFAULT_FORMAT",
    "FixedPointFormat",
    "apply_bias",
    "choose_bias",
    "fixed_to_float",
    "float_to_fixed",
    "remove_bias",
]
