"""Float <-> fixed-point conversion (after Saldanha et al. [35]).

The AVR compressor core operates on fixed-point values to keep the
averaging/interpolation datapath a pure integer pipeline.  Floating
point blocks are exponent-biased (see :mod:`repro.fixedpoint.bias`),
converted to a signed Q-format here, downsampled, and converted back.

The conversion is a single-cycle hardware operation; here it is one
vectorized numpy expression per array.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class FixedPointFormat:
    """Signed two's-complement Qm.n format in a 32-bit container.

    ``frac_bits`` is n; the integer part (including sign) uses the
    remaining ``32 - frac_bits`` bits.
    """

    frac_bits: int = 24

    def __post_init__(self) -> None:
        if not 1 <= self.frac_bits <= 30:
            raise ValueError(f"frac_bits must be in [1, 30], got {self.frac_bits}")

    @property
    def scale(self) -> float:
        return float(1 << self.frac_bits)

    @property
    def max_int(self) -> int:
        return 2**31 - 1

    @property
    def min_int(self) -> int:
        return -(2**31)

    @property
    def max_value(self) -> float:
        """Largest representable real value."""
        return self.max_int / self.scale

    @property
    def min_value(self) -> float:
        return self.min_int / self.scale

    @property
    def resolution(self) -> float:
        return 1.0 / self.scale


#: Default Q8.24 format: range (-128, 128), resolution ~6e-8.
DEFAULT_FORMAT = FixedPointFormat(frac_bits=24)


def float_to_fixed(
    values: np.ndarray, fmt: FixedPointFormat = DEFAULT_FORMAT
) -> tuple[np.ndarray, np.ndarray]:
    """Convert float values to fixed point, saturating out-of-range ones.

    Returns ``(fixed, saturated)`` where ``fixed`` is int32 and
    ``saturated`` marks values that were clamped (these will show up as
    outliers downstream, mirroring hardware behaviour).
    """
    scaled = np.asarray(values, dtype=np.float64) * fmt.scale
    rounded = np.rint(scaled)
    saturated = (rounded > fmt.max_int) | (rounded < fmt.min_int) | ~np.isfinite(rounded)
    clipped = np.clip(np.nan_to_num(rounded, nan=0.0), fmt.min_int, fmt.max_int)
    return clipped.astype(np.int32), saturated


def fixed_to_float(
    fixed: np.ndarray, fmt: FixedPointFormat = DEFAULT_FORMAT
) -> np.ndarray:
    """Convert fixed-point int32 values back to float32."""
    return (np.asarray(fixed, dtype=np.float64) / fmt.scale).astype(np.float32)
