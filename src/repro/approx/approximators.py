"""Approximation strategies applied to region data at sync points.

Each design point round-trips approximable data differently:

* **AVR** — block-wise downsampling compression (with outliers and the
  T1/T2 error checks); also records the per-block compressed sizes the
  timing layer consumes.
* **Truncate** — drops the 16 LSBs of every value (flat 2:1).
* **Doppelgänger** — approximate cacheline deduplication.
* **Exact** — identity (baseline and ZeroAVR: nothing is approximated).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from ..common import bitops
from ..common.constants import BLOCK_CACHELINES, VALUES_PER_BLOCK
from ..common.types import DataType, ErrorThresholds
from ..compression.compressor import AVRCompressor
from ..compression.truncate import KEPT_MANTISSA_BITS, TRUNCATE_RATIO
from ..doppelganger import dedup_roundtrip
from .region import Region


@dataclass
class SyncStats:
    """Result of applying an approximator to one region once."""

    blocks: int = 0
    stored_cachelines: int = 0
    compressed_blocks: int = 0
    #: effective capacity multiplier for dedup designs (1.0 otherwise)
    dedup_factor: float = 1.0

    @property
    def compression_ratio(self) -> float:
        if self.stored_cachelines == 0:
            return 1.0
        return self.blocks * BLOCK_CACHELINES / self.stored_cachelines


class Approximator(abc.ABC):
    """Round-trips a region's values through an approximate memory path."""

    name: str = "abstract"

    @abc.abstractmethod
    def apply(self, region: Region) -> SyncStats:
        """Approximate ``region.array`` in place; return statistics."""


class ExactApproximator(Approximator):
    """Identity: used by the baseline and by ZeroAVR (no data marked)."""

    name = "exact"

    def apply(self, region: Region) -> SyncStats:
        nblocks = region.num_blocks
        return SyncStats(blocks=nblocks, stored_cachelines=nblocks * BLOCK_CACHELINES)


class AVRApproximator(Approximator):
    """Blockwise AVR compression round-trip.

    Regions carrying their own :class:`ErrorThresholds` (the paper's
    per-region-knob extension) are compressed with a dedicated
    compressor instance at those settings.
    """

    name = "AVR"

    def __init__(
        self,
        thresholds: ErrorThresholds | None = None,
        check_mode: str = "hybrid",
    ) -> None:
        self.check_mode = check_mode
        self.compressor = AVRCompressor(thresholds, check_mode=check_mode)
        self._per_region: dict[str, AVRCompressor] = {}

    def _compressor_for(self, region: Region) -> AVRCompressor:
        if region.thresholds is None:
            return self.compressor
        comp = self._per_region.get(region.name)
        if comp is None or comp.thresholds != region.thresholds:
            comp = AVRCompressor(region.thresholds, check_mode=self.check_mode)
            self._per_region[region.name] = comp
        return comp

    def apply(self, region: Region) -> SyncStats:
        flat = region.array.ravel()
        n = flat.size
        nblocks = -(-n // VALUES_PER_BLOCK)
        # Pad the tail block by replicating the final value: the paper's
        # page-aligned allocator compresses whole blocks, and edge
        # replication avoids manufacturing artificial outliers.
        padded = np.empty(nblocks * VALUES_PER_BLOCK, dtype=flat.dtype)
        padded[:n] = flat
        if n < padded.size:
            padded[n:] = flat[-1] if n else 0
        blocks = padded.reshape(nblocks, VALUES_PER_BLOCK)
        result = self._compressor_for(region).compress_blocks(blocks, region.dtype)
        flat[:] = result.reconstructed.reshape(-1)[:n]
        region.block_sizes = result.size_cachelines.copy()
        return SyncStats(
            blocks=nblocks,
            stored_cachelines=int(result.size_cachelines.sum()),
            compressed_blocks=int(result.success.sum()),
        )


class TruncateApproximator(Approximator):
    """Mantissa-truncation round-trip (flat ``ratio``:1 storage).

    The default models the paper's half-width Truncate baseline
    (bfloat16-style: 7 kept mantissa bits, 2:1).  Registry variants
    with narrower stored lines tighten it: :meth:`for_line_bytes` maps
    a design's stored line width to the kept value width, keeping the
    functional and timing views of a truncate-family design consistent.
    """

    name = "truncate"

    def __init__(
        self,
        kept_mantissa_bits: int = KEPT_MANTISSA_BITS,
        ratio: float = TRUNCATE_RATIO,
    ) -> None:
        if ratio < 1.0:
            raise ValueError(f"truncation ratio must be >= 1, got {ratio}")
        self.kept_mantissa_bits = kept_mantissa_bits
        self.ratio = ratio

    @classmethod
    def for_line_bytes(cls, approx_line_bytes: int | None) -> "TruncateApproximator":
        """The truncation matching a design's stored line width.

        ``approx_line_bytes=32`` is the paper baseline (16-bit values:
        sign + 8-bit exponent + 7 mantissa bits); narrower lines drop
        further mantissa bits proportionally, down to the sign+exponent-
        only point for quarter-width lines.
        """
        line = approx_line_bytes if approx_line_bytes is not None else 32
        stored_value_bits = 32 * line // 64
        return cls(
            kept_mantissa_bits=max(0, stored_value_bits - 9),
            ratio=64.0 / line,
        )

    def apply(self, region: Region) -> SyncStats:
        if region.dtype != DataType.FLOAT32:
            raise NotImplementedError("Truncate models float32 data only")
        region.array[...] = bitops.truncate_mantissa(
            np.asarray(region.array, dtype=np.float32), self.kept_mantissa_bits
        )
        nblocks = region.num_blocks
        stored = int(round(nblocks * BLOCK_CACHELINES / self.ratio))
        region.block_sizes = np.full(
            nblocks, max(1, int(BLOCK_CACHELINES // self.ratio)), dtype=np.int32
        )
        return SyncStats(
            blocks=nblocks, stored_cachelines=stored, compressed_blocks=nblocks
        )


class DoppelgangerApproximator(Approximator):
    """Approximate cacheline dedup round-trip."""

    name = "dganger"

    def __init__(self, similarity_threshold: float = 0.02) -> None:
        self.similarity_threshold = similarity_threshold

    def apply(self, region: Region) -> SyncStats:
        approx, stats = dedup_roundtrip(region.array, self.similarity_threshold)
        region.array[...] = approx
        nblocks = region.num_blocks
        return SyncStats(
            blocks=nblocks,
            stored_cachelines=nblocks * BLOCK_CACHELINES,
            dedup_factor=stats.dedup_factor,
        )
