"""Approximable memory regions and per-design approximation strategies."""

from .approximators import (
    Approximator,
    AVRApproximator,
    DoppelgangerApproximator,
    ExactApproximator,
    SyncStats,
    TruncateApproximator,
)
from .memory import ApproxMemory, RegionReport, approximator_for
from .region import Region, padded_bytes, padded_pages

__all__ = [
    "AVRApproximator",
    "ApproxMemory",
    "Approximator",
    "DoppelgangerApproximator",
    "ExactApproximator",
    "Region",
    "RegionReport",
    "SyncStats",
    "TruncateApproximator",
    "approximator_for",
    "padded_bytes",
    "padded_pages",
]
