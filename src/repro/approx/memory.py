"""Approximable-memory registry: the software-visible side of AVR.

Workloads allocate their data structures through :class:`ApproxMemory`,
marking some regions approximable (the paper's annotated ``malloc``
wrapper + OS page marking).  At *sync points* — the moments data would
stream through the memory hierarchy — the registry round-trips every
approximable region through the active design's approximator and
accumulates compression statistics.

The registry also lays regions out in a simulated physical address
space (page-aligned, gap between regions) so the trace generator and
the timing simulator agree on which addresses are approximable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from ..common.constants import BLOCK_CACHELINES
from ..common.types import DataType, Design, ErrorThresholds
from .approximators import (
    Approximator,
    AVRApproximator,
    DoppelgangerApproximator,
    ExactApproximator,
    SyncStats,
    TruncateApproximator,
)
from .region import Region, padded_pages

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from ..designs import DesignLike


def approximator_for(
    design: "DesignLike",
    thresholds: ErrorThresholds | None = None,
    check_mode: str = "hybrid",
    dganger_threshold: float = 0.02,
) -> Approximator:
    """The approximation strategy a design applies to marked data.

    ``design`` is anything :func:`repro.designs.get_design` resolves
    (spec, registry name, or legacy :class:`Design` enum member); the
    spec's ``approximator`` field selects the strategy, and its
    capacity/compression parameters configure it (a truncate-family
    design's functional value width follows its stored line width).
    """
    from ..designs import get_design

    spec = get_design(design)
    if spec.approximator == "exact":
        return ExactApproximator()
    if spec.approximator == "avr":
        return AVRApproximator(thresholds, check_mode)
    if spec.approximator == "truncate":
        return TruncateApproximator.for_line_bytes(spec.approx_line_bytes)
    if spec.approximator == "dganger":
        return DoppelgangerApproximator(dganger_threshold)
    raise ValueError(f"unknown approximator {spec.approximator!r}")


@dataclass
class RegionReport:
    """Aggregated compression statistics for one region."""

    name: str
    nbytes: int
    approx: bool
    syncs: int = 0
    last: SyncStats = field(default_factory=SyncStats)

    @property
    def compression_ratio(self) -> float:
        return self.last.compression_ratio if self.approx and self.syncs else 1.0


class ApproxMemory:
    """Allocation registry + approximation sync engine."""

    #: address where the first region is placed (skip a null page)
    BASE_ADDRESS = 0x1_0000

    def __init__(self, approximator: Approximator | None = None) -> None:
        self.approximator = approximator or ExactApproximator()
        self.regions: dict[str, Region] = {}
        self.reports: dict[str, RegionReport] = {}
        self._next_addr = self.BASE_ADDRESS
        self.sync_count = 0

    # ------------------------------------------------------------------
    # allocation
    # ------------------------------------------------------------------
    def alloc(
        self,
        name: str,
        shape: tuple[int, ...] | int,
        approx: bool = True,
        dtype: DataType = DataType.FLOAT32,
        init: np.ndarray | None = None,
        thresholds: ErrorThresholds | None = None,
    ) -> np.ndarray:
        """Allocate a named region; returns the backing numpy array.

        ``thresholds`` sets a per-region error knob (the paper's §3.1
        extension); None inherits the program-wide setting.
        """
        if name in self.regions:
            raise ValueError(f"region {name!r} already allocated")
        np_dtype = np.float32 if dtype == DataType.FLOAT32 else np.int32
        array = np.zeros(shape, dtype=np_dtype)
        if init is not None:
            array[...] = init
        region = Region(
            name=name,
            base_addr=self._next_addr,
            array=array,
            approx=approx,
            dtype=dtype,
            thresholds=thresholds,
        )
        self._next_addr += padded_pages(array.nbytes)
        self.regions[name] = region
        self.reports[name] = RegionReport(name=name, nbytes=array.nbytes, approx=approx)
        return array

    def region(self, name: str) -> Region:
        return self.regions[name]

    def region_for_addr(self, addr: int) -> Region | None:
        for region in self.regions.values():
            if region.contains(addr):
                return region
        return None

    # ------------------------------------------------------------------
    # synchronization (the approximation point)
    # ------------------------------------------------------------------
    def sync(self, names: list[str] | None = None) -> None:
        """Round-trip approximable regions through the active design.

        Called by workloads wherever their data would stream through
        main memory (typically once per outer iteration).
        """
        targets = names if names is not None else list(self.regions)
        for name in targets:
            region = self.regions[name]
            if not region.approx:
                continue
            stats = self.approximator.apply(region)
            report = self.reports[name]
            report.syncs += 1
            report.last = stats
        self.sync_count += 1

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    @property
    def footprint_bytes(self) -> int:
        return sum(r.nbytes for r in self.regions.values())

    @property
    def address_span(self) -> int:
        """Extent of the simulated address space this memory occupies.

        The first address past the last allocation (page-padded).  The
        scenario composer sizes per-instance base offsets from this so
        co-running instances' address spaces never overlap.
        """
        return self._next_addr

    @property
    def approx_bytes(self) -> int:
        return sum(r.nbytes for r in self.regions.values() if r.approx)

    @property
    def approx_fraction(self) -> float:
        total = self.footprint_bytes
        return self.approx_bytes / total if total else 0.0

    def compression_ratio(self) -> float:
        """Aggregate ratio over approximable data (paper Table 4, row 1)."""
        blocks = stored = 0
        for name, report in self.reports.items():
            if not self.regions[name].approx or report.syncs == 0:
                continue
            blocks += report.last.blocks
            stored += report.last.stored_cachelines
        if stored == 0:
            return 1.0
        return blocks * BLOCK_CACHELINES / stored

    def footprint_vs_baseline(self) -> float:
        """Total stored bytes / baseline bytes (paper Table 4, row 2).

        AVR does not reclaim capacity (blocks keep their 1 KB slots),
        but the paper reports the *data volume* footprint: compressed
        approximable data + exact data.
        """
        total = self.footprint_bytes
        if total == 0:
            return 1.0
        exact = total - self.approx_bytes
        ratio = self.compression_ratio()
        return (exact + self.approx_bytes / ratio) / total

    def dedup_factor(self) -> float:
        """Capacity multiplier measured by dedup designs (Doppelgänger)."""
        factors = [
            self.reports[n].last.dedup_factor
            for n, r in self.regions.items()
            if r.approx and self.reports[n].syncs
        ]
        return float(np.mean(factors)) if factors else 1.0

    def block_size_map(self) -> dict[int, np.ndarray]:
        """Per-region compressed block sizes keyed by region base address.

        The timing simulator uses this to know how many cachelines each
        1 KB block costs to fetch/write, without invoking the
        compressor on every simulated eviction.
        """
        out: dict[int, np.ndarray] = {}
        for region in self.regions.values():
            if region.approx and region.block_sizes is not None:
                out[region.base_addr] = region.block_sizes
        return out
