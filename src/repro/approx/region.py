"""Approximable memory regions (the paper's annotated allocations).

The paper's applications annotate approximable data structures through
a wrapped ``malloc`` that page-aligns the allocation and registers the
address range (with its datatype) as approximable.  :class:`Region`
models one such allocation inside the simulated physical address space;
:class:`repro.approx.memory.ApproxMemory` is the registry.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..common.constants import BLOCK_BYTES, PAGE_BYTES
from ..common.types import DataType, ErrorThresholds


@dataclass
class Region:
    """One allocation in the simulated address space."""

    name: str
    base_addr: int
    array: np.ndarray
    approx: bool
    dtype: DataType = DataType.FLOAT32
    #: Optional per-region error knob (the paper's "thresholds per
    #: allocated memory region" extension, §3.1); None uses the
    #: program-wide setting.
    thresholds: ErrorThresholds | None = None
    #: Most recent per-block compressed sizes (cachelines), None before
    #: the first compression pass or for non-AVR designs.
    block_sizes: np.ndarray | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.base_addr % PAGE_BYTES:
            raise ValueError(
                f"region {self.name!r} base 0x{self.base_addr:x} not page aligned"
            )

    @property
    def nbytes(self) -> int:
        return int(self.array.nbytes)

    @property
    def end_addr(self) -> int:
        """First address past the region, rounded up to a block boundary."""
        return self.base_addr + padded_bytes(self.nbytes)

    @property
    def num_blocks(self) -> int:
        """1 KB memory blocks spanned by this region."""
        return padded_bytes(self.nbytes) // BLOCK_BYTES

    def contains(self, addr: int) -> bool:
        return self.base_addr <= addr < self.end_addr

    def block_index(self, addr: int) -> int:
        """Index of the memory block containing ``addr`` within the region."""
        if not self.contains(addr):
            raise ValueError(f"0x{addr:x} outside region {self.name!r}")
        return (addr - self.base_addr) // BLOCK_BYTES


def padded_bytes(nbytes: int) -> int:
    """Round a size up to a whole number of 1 KB memory blocks."""
    return -(-nbytes // BLOCK_BYTES) * BLOCK_BYTES


def padded_pages(nbytes: int) -> int:
    """Round a size up to whole 4 KB pages."""
    return -(-nbytes // PAGE_BYTES) * PAGE_BYTES
