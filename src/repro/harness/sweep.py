"""Parallel sweep engine for the evaluation harness.

The paper's evaluation (Tables 3-4, Figures 9-15) is a grid of
workloads x designs x error thresholds x seeds.  This module treats
that grid as a first-class object — a :class:`SweepSpec` enumerating
independent, picklable :class:`SweepPoint` jobs — and fans it out over
a ``concurrent.futures.ProcessPoolExecutor`` via :func:`run_sweep`.

Each grid point decomposes into two kinds of *job units*, both pure
functions of their spec (and therefore safe to execute in any process
and to cache on disk):

* :func:`run_functional_job` — one workload's functional round-trip
  under one design (output error, compression ratios, iteration
  counts).  The ``Design.BASELINE`` reference run is its own job so
  that every design of a point shares one reference result, exactly as
  the serial path shares ``functional[...]``.
* :func:`run_timing_job` — one design's trace replay through the
  timing system, given the layout and trace derived from the
  functional results.

``run_sweep(spec, jobs=1)`` executes the same job units in-process in
deterministic order, so the serial and parallel paths are one code
path and their results are bit-identical.  With a ``cache_dir``, job
results are memoized by a content hash of (spec point, design,
``SystemConfig``, package version) — see :mod:`repro.harness.cache` —
so re-runs and overlapping ablation sweeps skip already-computed
points entirely.
"""

from __future__ import annotations

import abc
import itertools
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, replace
from functools import partial
from pathlib import Path
from types import TracebackType
from typing import Any, Callable, Iterable, TYPE_CHECKING

from .. import __version__
from ..common.config import SystemConfig
from ..common.types import ErrorThresholds
from ..designs import (
    AVR,
    BASELINE,
    DesignSpec,
    get_design,
    layout_source_design,
    resolve_designs,
)
from ..scenario import Scenario
from ..system.factory import build_system
from ..system.layout import AddressLayout
from ..system.simulator import SimResult
from ..trace.generator import GeneratedTrace
from ..trace.store import TraceHandle, TraceStore, resolve_trace_store
from ..workloads import WORKLOADS, make_workload
from ..workloads.base import Workload, WorkloadResult
from .cache import ResultCache, content_key, resolve_result_cache

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..designs import DesignLike
from .runner import ALL_DESIGNS, DesignRun, WorkloadEvaluation
from .scenario import (
    ScenarioEvaluation,
    ScenarioPoint,
    assemble_scenario_evaluation,
    build_scenario_context,
    scenario_functional_designs,
    scenario_subsets,
    scenario_timing_key,
)

__all__ = [
    "JobExecutor",
    "UnitCallback",
    "SweepPoint",
    "SweepSpec",
    "SweepStats",
    "SweepResult",
    "functional_designs",
    "functional_job_key",
    "run_functional_job",
    "run_timing_job",
    "run_sweep",
    "timing_job_key",
]


# ----------------------------------------------------------------------
# Spec
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SweepPoint:
    """One grid point: a workload instance the engine evaluates.

    Frozen and hashable so it can key result dictionaries, and built
    only from picklable scalars so job arguments cross process
    boundaries.  ``workload_kwargs`` holds extra constructor arguments
    (e.g. ``(("iterations", 12),)``) as a sorted tuple of pairs.
    """

    workload: str
    scale: float = 1.0
    seed: int = 0
    #: per-point override of the workload's default error thresholds
    thresholds: ErrorThresholds | None = None
    max_accesses_per_core: int = 50_000
    workload_kwargs: tuple[tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        overlap = {"scale", "seed"} & {k for k, _ in self.workload_kwargs}
        if overlap:
            raise ValueError(
                f"{sorted(overlap)} must be set via the SweepPoint fields, "
                "not workload_kwargs"
            )

    def make(self) -> Workload:
        """Instantiate the workload this point describes."""
        return make_workload(
            self.workload,
            scale=self.scale,
            seed=self.seed,
            **dict(self.workload_kwargs),
        )


@dataclass(frozen=True)
class SweepSpec:
    """The full evaluation grid, as a serializable value.

    ``points()`` enumerates the cartesian product of workloads x
    scales x seeds x thresholds in deterministic (workload-major)
    order; every point is evaluated under every design in ``designs``.
    An empty ``workloads`` tuple means "all seven paper workloads".
    """

    workloads: tuple[str, ...] = ()
    #: design points evaluated at every grid point; entries may be
    #: given as :class:`~repro.designs.DesignSpec`, registry names or
    #: legacy ``Design`` enum members — normalized to specs on
    #: construction.
    designs: tuple[DesignSpec, ...] = ALL_DESIGNS
    config: SystemConfig | None = None
    scales: tuple[float, ...] = (1.0,)
    seeds: tuple[int, ...] = (0,)
    thresholds: tuple[ErrorThresholds | None, ...] = (None,)
    max_accesses_per_core: int = 50_000
    workload_kwargs: tuple[tuple[str, Any], ...] = ()
    #: multi-programmed mixes evaluated alongside the workload grid
    #: (see :mod:`repro.harness.scenario`); each is crossed with seeds
    #: and thresholds like a workload is.
    scenarios: tuple[Scenario, ...] = ()
    #: timing-replay engine (see :meth:`repro.system.TimingSystem.run`);
    #: both engines produce bit-identical results, so they share cache
    #: entries — the key deliberately excludes this field.
    engine: str = "vectorized"

    def __post_init__(self) -> None:
        object.__setattr__(self, "designs", resolve_designs(self.designs))

    def resolved_config(self) -> SystemConfig:
        return self.config or SystemConfig.scaled(num_cores=8)

    def resolved_workloads(self) -> tuple[str, ...]:
        if not self.workloads and self.scenarios:
            # A pure scenario sweep: the empty tuple means "none", not
            # "all seven" — mixes bring their own workloads.
            return ()
        return self.workloads or tuple(WORKLOADS)

    def points(self) -> tuple[SweepPoint, ...]:
        """Enumerate every grid point as an independent job spec."""
        return tuple(
            SweepPoint(
                workload=name,
                scale=scale,
                seed=seed,
                thresholds=thresholds,
                max_accesses_per_core=self.max_accesses_per_core,
                workload_kwargs=self.workload_kwargs,
            )
            for name, scale, seed, thresholds in itertools.product(
                self.resolved_workloads(), self.scales, self.seeds, self.thresholds
            )
        )

    def scenario_points(self) -> tuple[ScenarioPoint, ...]:
        """Enumerate the scenario grid (scenarios x scales x seeds x
        thresholds); ``scales`` multiplies every entry's workload scale,
        mirroring what it does to workload points."""
        return tuple(
            ScenarioPoint(
                scenario=scenario.scaled(scale),
                seed=seed,
                thresholds=thresholds,
                max_accesses_per_core=self.max_accesses_per_core,
            )
            for scenario, scale, seed, thresholds in itertools.product(
                self.scenarios, self.scales, self.seeds, self.thresholds
            )
        )


def functional_designs(designs: Iterable[DesignLike]) -> tuple[DesignSpec, ...]:
    """Designs whose functional layer actually executes for a point.

    ``baseline`` is always needed (it is the reference every other
    design's error and iteration factor are measured against) and
    ``AVR`` is always needed (its measured block sizes build the
    default timing layout).  Exact designs (baseline-like, ZeroAVR)
    approximate nothing and reuse the reference, so they never appear
    on their own; designs with a custom ``layout_source`` additionally
    pull in that source's run.
    """
    needed = [BASELINE]
    for design in resolve_designs(designs):
        if design.runs_functional and design not in needed:
            needed.append(design)
        if design.layout_source is not None:
            source = layout_source_design(design)
            if source not in needed:
                needed.append(source)
    if AVR not in needed:
        needed.append(AVR)
    return tuple(needed)


# ----------------------------------------------------------------------
# Job units (module-level so they pickle into worker processes)
# ----------------------------------------------------------------------
def run_functional_job(point: SweepPoint, design: DesignLike) -> WorkloadResult:
    """Job unit: one functional round-trip of one design point.

    Pure function of ``(point, design)``: the workload is freshly
    instantiated from the point's seed, so the result is bit-identical
    wherever the job runs.  Exact (reference) designs ignore threshold
    overrides (they approximate nothing), which lets threshold-ablation
    sweeps share one cached reference run.
    """
    design = get_design(design)
    workload = point.make()
    thresholds = None if design.is_reference else point.thresholds
    return workload.run(design, thresholds=thresholds)


def run_timing_job(
    design: DesignSpec,
    config: SystemConfig,
    layout: AddressLayout,
    trace: GeneratedTrace | TraceHandle,
    footprint_bytes: int,
    dedup_factor: float = 1.0,
    avr_options: dict | None = None,
    engine: str = "vectorized",
) -> SimResult:
    """Job unit: one design's timing replay of one point's trace.

    ``layout`` and ``trace`` are derived deterministically from the
    point's functional results, so this too is a pure function of its
    arguments.  ``trace`` may arrive as a
    :class:`~repro.trace.store.TraceHandle`: a content-keyed reference
    into the memory-mapped trace store, which the job resolves here —
    so worker processes map the shared payload file instead of
    unpickling megabytes of trace, and replay bit-identically either
    way.  ``avr_options`` forwards LLC ablation flags; ``engine``
    selects the replay implementation (``"vectorized"`` fast path or
    the ``"reference"`` loop — bit-identical results either way, so
    neither choice enters the cache key).
    """
    if isinstance(trace, TraceHandle):
        trace = trace.load()
    system = build_system(
        design, config, layout, footprint_bytes, dedup_factor,
        avr_options=avr_options,
    )
    return system.run(trace, engine=engine)


def _functional_key(point: SweepPoint, design: DesignLike) -> str:
    """Cache key of a functional job.

    Normalized so equivalent jobs share an entry: the trace budget
    (``max_accesses_per_core``) does not affect functional results, and
    thresholds do not affect exact (reference) runs.
    """
    design = get_design(design)
    normalized = replace(
        point,
        max_accesses_per_core=0,
        thresholds=None if design.is_reference else point.thresholds,
    )
    return content_key("functional", __version__, normalized, design)


def _timing_key(
    point: SweepPoint,
    design: DesignLike,
    config: SystemConfig,
    avr_options: dict | None = None,
) -> str:
    """Cache key of a timing job (config-dependent, unlike functional)."""
    return content_key(
        "timing", __version__, point, get_design(design), config,
        avr_options or {},
    )


def functional_job_key(point: SweepPoint, design: DesignLike) -> str:
    """Public name of :func:`_functional_key`.

    The planner's surrogate model probes the result cache for
    already-computed sweep points without running a sweep; going
    through this helper guarantees its speculative keys can never
    drift from the keys ``run_sweep`` itself reads and writes.
    """
    return _functional_key(point, design)


def timing_job_key(
    point: SweepPoint,
    design: DesignLike,
    config: SystemConfig,
    avr_options: dict | None = None,
) -> str:
    """Public name of :func:`_timing_key` (see :func:`functional_job_key`)."""
    return _timing_key(point, design, config, avr_options)


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------
class _SerialFuture:
    """Future-alike wrapping an already-computed value."""

    __slots__ = ("_value",)

    def __init__(self, value: Any) -> None:
        self._value = value

    def result(self) -> Any:
        return self._value


class JobExecutor(abc.ABC):
    """Execution seam every sweep runs through.

    One method, keyed by the unit's content-hash cache key:
    ``submit_unit`` returns a future-alike plus whether *this call*
    launched the unit (``False`` means the executor joined an
    execution already in flight — the evaluation-service scheduler
    dedups overlapping submissions from concurrent clients this way;
    the in-process executors below always launch).  Only the launching
    submission stores the unit's result into the cache, so joined
    units are never double-written.  ``shutdown`` releases whatever
    the executor owns; ``cancel_futures=True`` is the
    KeyboardInterrupt path — queued units are dropped instead of
    drained.
    """

    @abc.abstractmethod
    def submit_unit(
        self, key: str, fn: Callable, /, *args: Any
    ) -> tuple[Any, bool]:
        """Run ``fn(*args)`` for unit ``key``; return (future, launched)."""

    def shutdown(self, cancel_futures: bool = False) -> None:
        """Release executor resources (no-op for stateless executors)."""

    def __enter__(self) -> "JobExecutor":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        # Mirror run_sweep's cleanup: an exception drops queued units
        # instead of draining them.
        self.shutdown(cancel_futures=exc_type is not None)


class _SerialExecutor(JobExecutor):
    """Drop-in executor that runs jobs eagerly in-process.

    This is the ``jobs=1`` path: same submission order, same job
    functions, no pickling — the determinism anchor the parallel path
    is tested against.
    """

    def submit_unit(
        self, key: str, fn: Callable, /, *args: Any
    ) -> tuple[_SerialFuture, bool]:
        return _SerialFuture(fn(*args)), True


class _PoolExecutor(JobExecutor):
    """Process-pool execution of the sweep's picklable job units."""

    def __init__(self, workers: int) -> None:
        self._pool = ProcessPoolExecutor(max_workers=workers)

    def submit_unit(
        self, key: str, fn: Callable, /, *args: Any
    ) -> tuple[Any, bool]:
        return self._pool.submit(fn, *args), True

    def shutdown(self, cancel_futures: bool = False) -> None:
        """Shut the pool down; with ``cancel_futures`` drop queued work.

        ``cancel_futures=True`` is what makes Ctrl-C on a fanned-out
        sweep prompt instead of draining every queued job: running
        units finish (workers exit cleanly, no orphaned processes) and
        everything still queued is cancelled.
        """
        self._pool.shutdown(wait=True, cancel_futures=cancel_futures)


@dataclass
class SweepStats:
    """What one :func:`run_sweep` call actually executed vs. reused."""

    functional_executed: int = 0
    timing_executed: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    #: result-cache entries written this run, folded from the cache's
    #: own counters at collection time — with ``jobs>1`` the *work*
    #: happens in pool workers, but every store happens in the parent,
    #: so this reflects the whole run regardless of worker count
    cache_stores: int = 0
    #: composed traces memory-mapped from the trace store vs generated
    #: (and committed) this run — a warm store maps everything
    traces_mapped: int = 0
    traces_generated: int = 0
    #: cache-missed units this run *joined* instead of launching — an
    #: injected executor (the ``repro serve`` scheduler) found them
    #: already in flight for another client; always 0 for the
    #: in-process executors, which launch everything they are given
    units_deduped: int = 0

    @property
    def executed(self) -> int:
        """Total jobs that ran (i.e. were not served from the cache)."""
        return self.functional_executed + self.timing_executed


@dataclass
class SweepResult:
    """Evaluations for every grid point, plus execution accounting."""

    spec: SweepSpec
    evaluations: dict[SweepPoint, WorkloadEvaluation] = field(default_factory=dict)
    scenario_evaluations: dict[ScenarioPoint, ScenarioEvaluation] = field(
        default_factory=dict
    )
    stats: SweepStats = field(default_factory=SweepStats)

    def __len__(self) -> int:
        return len(self.evaluations) + len(self.scenario_evaluations)

    def __getitem__(self, point: SweepPoint) -> WorkloadEvaluation:
        return self.evaluations[point]

    def by_scenario(self) -> dict[str, ScenarioEvaluation]:
        """Collapse scenario results to ``{scenario name: evaluation}``.

        Like :meth:`by_workload`, only valid when names identify
        scenario points uniquely (one seed and threshold setting).
        """
        names = [p.scenario.name for p in self.scenario_evaluations]
        if len(set(names)) != len(names):
            raise ValueError(
                "sweep grid has multiple points per scenario; "
                "index scenario_evaluations by ScenarioPoint instead"
            )
        return {
            p.scenario.name: ev for p, ev in self.scenario_evaluations.items()
        }

    def by_workload(self) -> dict[str, WorkloadEvaluation]:
        """Collapse to ``{workload name: evaluation}``.

        Only valid for a singleton grid (one scale, seed and threshold
        setting), where workload names identify points uniquely —
        exactly the shape :func:`repro.harness.evaluate_all` runs.
        """
        names = [p.workload for p in self.evaluations]
        if len(set(names)) != len(names):
            raise ValueError(
                "sweep grid has multiple points per workload; "
                "index evaluations by SweepPoint instead"
            )
        return {p.workload: ev for p, ev in self.evaluations.items()}


#: per-unit completion hook: called in the parent as each unit's
#: result is collected, with the unit's cache key and whether this run
#: launched it (vs joining another client's in-flight execution or
#: re-reading it).  The evaluation service streams progress events
#: from it; raising from the hook aborts the sweep (the service's
#: cancellation path).
UnitCallback = Callable[[str, bool], None]


def _execute_jobs(
    pool: JobExecutor,
    cache: ResultCache | None,
    jobs: dict[str, tuple],
    stats: SweepStats | None = None,
    on_unit_done: UnitCallback | None = None,
) -> tuple[dict[str, Any], int]:
    """Submit ``{key: (fn, *args)}``, collect results, store them.

    Returns the results by key and how many units this call actually
    *launched* — with a deduplicating executor, units joined from
    another client's in-flight execution are collected but not counted
    (and not re-stored: the launching run owns the cache write).
    Cache stores happen only in the parent process, so workers stay
    free of filesystem coordination.
    """
    futures: dict[str, Any] = {}
    launched: set[str] = set()
    for key, (fn, *args) in jobs.items():
        future, fresh = pool.submit_unit(key, fn, *args)
        futures[key] = future
        if fresh:
            launched.add(key)
    results: dict[str, Any] = {}
    for key, future in futures.items():
        results[key] = future.result()
        if on_unit_done is not None:
            on_unit_done(key, key in launched)
    if cache is not None:
        cache.put_many({key: results[key] for key in launched})
    if stats is not None:
        stats.units_deduped += len(jobs) - len(launched)
    return results, len(launched)


def _run_jobs(
    pool: JobExecutor,
    cache: ResultCache | None,
    jobs: dict[str, tuple],
    stats: SweepStats | None = None,
    on_unit_done: UnitCallback | None = None,
) -> tuple[dict[str, Any], int]:
    """Execute ``{key: (fn, *args)}``, consulting the cache first.

    All pending keys are resolved in **one** batched cache pass (one
    index scan per touched shard) before any miss is submitted to the
    pool.  Returns the results by key and the number of jobs actually
    launched (i.e. neither served from the cache nor joined in flight).
    """
    results: dict[str, Any] = {}
    pending = dict(jobs)
    if cache is not None:
        cached = cache.get_many(list(jobs))
        results.update(cached)
        for key in cached:
            del pending[key]
        if stats is not None:
            stats.cache_hits += len(cached)
            stats.cache_misses += len(pending)
    executed_results, launched = _execute_jobs(
        pool, cache, pending, stats, on_unit_done
    )
    results.update(executed_results)
    return results, launched


def _make_pool(jobs: int) -> JobExecutor:
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if jobs == 1:
        return _SerialExecutor()
    return _PoolExecutor(jobs)


def run_sweep(
    spec: SweepSpec,
    jobs: int = 1,
    cache_dir: str | Path | ResultCache | None = None,
    trace_store: TraceStore | str | Path | bool | None = None,
    cache_backend: str | None = None,
    executor: JobExecutor | None = None,
    on_unit_done: UnitCallback | None = None,
) -> SweepResult:
    """Evaluate every point of ``spec`` and reassemble the results.

    ``jobs=1`` runs every job unit in-process (the deterministic serial
    path); ``jobs>1`` fans them out over a process pool.  Both paths
    submit the same jobs in the same order and produce bit-identical
    :class:`~repro.harness.runner.WorkloadEvaluation` objects.  With
    ``cache_dir`` set, job results are reused across runs; a warm cache
    re-executes nothing (``result.stats.executed == 0``).

    ``cache_dir`` may also be an already-built
    :class:`~repro.harness.cache.ResultCache` — the planner passes one
    instance through every internal sweep so a memory tier spans the
    whole plan.  ``cache_backend`` picks the storage stack for a plain
    directory (``sharded`` | ``memory[:N]`` | ``readthrough:PATH`` —
    see :func:`repro.harness.cache.resolve_backend`); every backend is
    bit-identical, it only changes where warm reads are served from.

    ``trace_store`` selects the memory-mapped composed-trace store
    (see :func:`repro.trace.store.resolve_trace_store`): by default a
    ``traces/`` directory under ``cache_dir``, so warm runs that still
    need a trace — new designs, a cleared result cache — map the
    stored stream instead of regenerating it; ``False``/``"off"``
    disables it.  Stored or not, traces are bit-identical, so the
    result-cache keys are unaffected.

    ``executor`` injects a caller-owned :class:`JobExecutor` in place
    of the per-run pool (``jobs`` is then ignored and the executor is
    *not* shut down here) — the ``repro serve`` daemon multiplexes
    many concurrent sweeps onto one shared scheduler this way.
    ``on_unit_done`` is invoked in the calling process as each
    executed unit's result lands (see :data:`UnitCallback`); raising
    from it aborts the sweep, which is the service's cancellation
    path.  A run that owns its pool shuts it down with
    ``cancel_futures=True`` on any error (including
    ``KeyboardInterrupt``), so interrupted sweeps drop queued units
    and leak neither worker processes nor half-written cache entries
    (stores are atomic and happen only in the parent).
    """
    config = spec.resolved_config()
    cache = resolve_result_cache(cache_dir, cache_backend)
    store = resolve_trace_store(
        trace_store, cache.root if cache is not None else None
    )
    # Snapshot so a caller-supplied store's (or shared cache's) prior
    # traffic is not attributed to this run.
    store_hits0 = store.stats.hits if store is not None else 0
    store_stores0 = store.stats.stores if store is not None else 0
    cache_stores0 = cache.stats.stores if cache is not None else 0
    points = spec.points()
    scenario_points = spec.scenario_points()
    needed_functional = functional_designs(spec.designs)
    stats = SweepStats()

    pool = executor if executor is not None else _make_pool(jobs)
    try:
        # --- stage 1: functional jobs, deduplicated by content key ----
        # Workload points and scenario instances enumerate into one job
        # dict: a mix containing a workload that is also swept solo
        # shares the very same functional jobs and cache entries.
        functional_jobs: dict[str, tuple] = {}
        for point in points:
            for design in needed_functional:
                key = _functional_key(point, design)
                functional_jobs.setdefault(key, (run_functional_job, point, design))
        for spoint in scenario_points:
            for plan in spoint.plans():
                ipoint = spoint.instance_point(plan)
                for design in scenario_functional_designs(spec.designs):
                    key = _functional_key(ipoint, design)
                    functional_jobs.setdefault(
                        key, (run_functional_job, ipoint, design)
                    )
        functional, executed = _run_jobs(
            pool, cache, functional_jobs, stats, on_unit_done
        )
        stats.functional_executed += executed

        def functional_for(
            point: SweepPoint, design: DesignLike
        ) -> WorkloadResult:
            return functional[_functional_key(point, design)]

        # --- stage 2: per-point composed layout + trace, then timing --
        # Every point — classic single-workload or multi-programmed mix
        # — is a scenario: a workload point becomes the trivial solo
        # scenario (one instance spanning every core), whose composed
        # layout and trace are bit-identical to the historical path.
        # Keys for *all* timing replays are enumerated first and
        # resolved in one batched cache pass; only then are misses
        # turned into pool jobs.  The trace is only composed for points
        # with at least one timing cache miss: a warm re-run
        # reassembles everything without regenerating a single address
        # stream and without a single per-key cache probe.
        contexts: list[tuple[SweepPoint, Workload, WorkloadResult, AddressLayout]] = []
        timing: dict[str, SimResult] = {}
        #: key -> how to build the job if the batched lookup misses
        descriptors: dict[str, tuple] = {}
        dedups: dict[tuple[SweepPoint, DesignSpec], float] = {}
        for point in points:
            workload = point.make()
            reference = functional[_functional_key(point, BASELINE)]
            solo = ScenarioPoint(
                scenario=Scenario.solo(
                    point.workload,
                    cores=config.num_cores,
                    scale=point.scale,
                    workload_kwargs=point.workload_kwargs,
                ),
                seed=point.seed,
                thresholds=point.thresholds,
                max_accesses_per_core=point.max_accesses_per_core,
            )
            context = build_scenario_context(
                solo, config, functional_for, designs=spec.designs, store=store
            )
            contexts.append((point, workload, reference, context.layout))
            for design in spec.designs:
                func = functional.get(_functional_key(point, design), reference)
                dedup = (
                    func.memory.dedup_factor() if design.measures_dedup else 1.0
                )
                dedups[(point, design)] = dedup
                key = _timing_key(point, design, config)
                descriptors[key] = (
                    context,
                    design,
                    None,
                    reference.memory.footprint_bytes,
                    dedup,
                )

        # Scenario points: one co-run replay per design, plus the solo
        # and leave-one-out subset replays the contention metrics need.
        scenario_contexts = []
        for spoint in scenario_points:
            context = build_scenario_context(
                spoint, config, functional_for, designs=spec.designs, store=store
            )
            scenario_contexts.append(context)
            subsets = scenario_subsets(len(context.plans))
            for design in spec.designs:
                for active in subsets:
                    key = scenario_timing_key(spoint, design, config, active)
                    descriptors[key] = (
                        context,
                        design,
                        active,
                        context.footprint_bytes,
                        context.dedup_factors.get(design, 1.0),
                    )

        if cache is not None:
            cached_timing = cache.get_many(list(descriptors))
            timing.update(cached_timing)
            stats.cache_hits += len(cached_timing)
            stats.cache_misses += len(descriptors) - len(cached_timing)
        timing_jobs: dict[str, tuple] = {}
        for key, (context, design, active, footprint, dedup) in descriptors.items():
            if key in timing:
                continue
            # Bind the keyword tail by name (partials pickle into
            # workers) so a signature change fails loudly instead of
            # silently misbinding positionals.
            timing_jobs[key] = (
                partial(run_timing_job, engine=spec.engine),
                design,
                config,
                context.layout_for(design),
                (
                    context.trace_payload()
                    if active is None
                    else context.subset_payload(active)
                ),
                footprint,
                dedup,
            )
        timing_results, launched = _execute_jobs(
            pool, cache, timing_jobs, stats, on_unit_done
        )
        timing.update(timing_results)
        stats.timing_executed += launched
    except BaseException:
        # An interrupted (Ctrl-C) or cancelled sweep must not leak its
        # pool: queued units are dropped, running workers drain and
        # exit.  Injected executors are caller-owned and survive.
        if executor is None:
            pool.shutdown(cancel_futures=True)
        raise
    if executor is None:
        pool.shutdown()
    if store is not None:
        stats.traces_mapped = store.stats.hits - store_hits0
        stats.traces_generated = store.stats.stores - store_stores0
    if cache is not None:
        stats.cache_stores = cache.stats.stores - cache_stores0

    # --- stage 3: reassemble WorkloadEvaluations ----------------------
    result = SweepResult(spec=spec, stats=stats)
    for point, workload, reference, layout in contexts:
        evaluation = WorkloadEvaluation(
            name=point.workload,
            baseline_iterations=reference.iterations,
            footprint_bytes=reference.memory.footprint_bytes,
            timing_approx_bytes=layout.approx_bytes,
            avr_compression_ratio=layout.mean_compression_ratio(),
        )
        for design in spec.designs:
            func = functional.get(_functional_key(point, design), reference)
            sim = timing[_timing_key(point, design, config)]
            sim.iteration_factor = func.iterations / max(reference.iterations, 1)
            error = (
                0.0
                if design.is_reference
                else workload.output_error(func, reference)
            )
            evaluation.runs[design] = DesignRun(
                design=design,
                output_error=error,
                iterations=func.iterations,
                compression_ratio=func.memory.compression_ratio(),
                dedup_factor=dedups[(point, design)],
                timing=sim,
            )
        result.evaluations[point] = evaluation

    for spoint, context in zip(scenario_points, scenario_contexts):
        subset_results = {
            (design, active): timing[
                scenario_timing_key(spoint, design, config, active)
            ]
            for design in spec.designs
            for active in scenario_subsets(len(context.plans))
        }
        result.scenario_evaluations[spoint] = assemble_scenario_evaluation(
            spoint, context, spec.designs, subset_results
        )
    return result
