"""Plain-text rendering of the tables and figure series.

The paper's figures are bar charts; the harness prints the underlying
series as aligned tables (one column per workload), which is what a
reproduction compares against.

This module also hosts the JSON-able serializers (``*_to_mapping``)
that turn evaluation objects into plain dicts of str/int/float/list —
what ``repro experiment --json`` / ``repro scenario --json`` print and
what the ``repro serve`` daemon streams in its ``result`` events.  The
mappings are deterministic: identical evaluation objects serialize to
identical JSON, so a daemon result can be compared bit-for-bit against
a one-shot run.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Any, Mapping

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..system.simulator import SimResult
    from .runner import DesignRun, WorkloadEvaluation
    from .scenario import (
        InstanceContention,
        ScenarioDesignRun,
        ScenarioEvaluation,
        ScenarioPoint,
    )
    from .sweep import SweepPoint, SweepStats


def format_table(
    title: str,
    rows: Mapping[str, Mapping[str, float]],
    fmt: str = "{:.2f}",
    col_order: list[str] | None = None,
) -> str:
    """Render ``rows[row_label][col_label] = value`` as aligned text."""
    columns = col_order or sorted({c for r in rows.values() for c in r})
    widths = [max(len(c), 8) for c in columns]
    label_w = max([len(r) for r in rows] + [10])

    lines = [title, "=" * len(title)]
    header = " " * label_w + "  " + "  ".join(
        c.rjust(w) for c, w in zip(columns, widths)
    )
    lines.append(header)
    for label, row in rows.items():
        cells = []
        for c, w in zip(columns, widths):
            cells.append(
                fmt.format(row[c]).rjust(w) if c in row else "-".rjust(w)
            )
        lines.append(label.ljust(label_w) + "  " + "  ".join(cells))
    return "\n".join(lines)


def format_stacked(
    title: str,
    data: Mapping[str, Mapping[str, Mapping[str, float]]],
    fmt: str = "{:.3f}",
) -> str:
    """Render nested ``data[workload][design][part]`` tables."""
    blocks = [title, "=" * len(title)]
    for workload, designs in data.items():
        parts = sorted({p for d in designs.values() for p in d})
        blocks.append(f"\n[{workload}]")
        header = " " * 12 + "  ".join(p.rjust(12) for p in parts + ["total"])
        blocks.append(header)
        for design, values in designs.items():
            cells = [fmt.format(values.get(p, 0.0)).rjust(12) for p in parts]
            cells.append(fmt.format(sum(values.values())).rjust(12))
            blocks.append(design.ljust(12) + "  ".join(cells))
    return "\n".join(blocks)


def transpose(
    rows: Mapping[str, Mapping[str, float]]
) -> dict[str, dict[str, float]]:
    """Swap row/column orientation of a 2-level table."""
    out: dict[str, dict[str, float]] = {}
    for r, cols in rows.items():
        for c, v in cols.items():
            out.setdefault(c, {})[r] = v
    return out


#: metrics ``WorkloadEvaluation.normalized`` understands, in print order
_NORMALIZED_METRICS = ("time", "energy", "traffic", "amat", "mpki")


def sim_result_to_mapping(result: "SimResult") -> dict[str, Any]:
    """One timing replay as a plain mapping (floats kept exact)."""
    return {
        "design": result.design.name,
        "cycles": result.cycles,
        "instructions": result.instructions,
        "seconds": result.seconds,
        "amat_cycles": result.amat_cycles,
        "llc_mpki": result.llc_mpki,
        "dram_bytes_read": result.dram_bytes_read,
        "dram_bytes_written": result.dram_bytes_written,
        "approx_bytes": result.approx_bytes,
        "exact_bytes": result.exact_bytes,
        "llc_stats": {k: result.llc_stats[k] for k in sorted(result.llc_stats)},
        "dram_stats": {k: result.dram_stats[k] for k in sorted(result.dram_stats)},
        "energy_joules": {
            k: result.energy.joules[k] for k in sorted(result.energy.joules)
        },
        "core_cycles": list(result.core_cycles),
        "scale_factor": result.scale_factor,
        "iteration_factor": result.iteration_factor,
    }


def design_run_to_mapping(run: "DesignRun") -> dict[str, Any]:
    """One design point's functional + timing outcome as a mapping."""
    return {
        "design": run.design.name,
        "output_error": run.output_error,
        "iterations": run.iterations,
        "compression_ratio": run.compression_ratio,
        "dedup_factor": run.dedup_factor,
        "timing": sim_result_to_mapping(run.timing),
    }


def evaluation_to_mapping(ev: "WorkloadEvaluation") -> dict[str, Any]:
    """A :class:`WorkloadEvaluation` as a mapping.

    ``normalized`` carries the design/baseline metric ratios the
    figures plot; it is present only when the evaluation includes the
    baseline design (nothing to normalize against otherwise).
    """
    out: dict[str, Any] = {
        "name": ev.name,
        "baseline_iterations": ev.baseline_iterations,
        "footprint_bytes": ev.footprint_bytes,
        "timing_approx_bytes": ev.timing_approx_bytes,
        "avr_compression_ratio": ev.avr_compression_ratio,
        "approx_fraction": ev.approx_fraction,
        "footprint_vs_baseline": ev.footprint_vs_baseline,
        "runs": {
            design.name: design_run_to_mapping(run)
            for design, run in ev.runs.items()
        },
    }
    if "baseline" in ev.runs:
        out["normalized"] = {
            design.name: {
                metric: ev.normalized(design, metric)
                for metric in _NORMALIZED_METRICS
            }
            for design in ev.runs
            if design != "baseline"
        }
    return out


def instance_contention_to_mapping(inst: "InstanceContention") -> dict[str, Any]:
    """One co-running instance's contention outcome as a mapping."""
    return {
        "index": inst.index,
        "workload": inst.workload,
        "cores": list(inst.cores),
        "scale_factor": inst.scale_factor,
        "instructions": inst.instructions,
        "solo_cycles": inst.solo_cycles,
        "corun_cycles": inst.corun_cycles,
        "per_core_slowdown": list(inst.per_core_slowdown),
        "solo_llc_misses": inst.solo_llc_misses,
        "pressure_llc_misses": inst.pressure_llc_misses,
        "slowdown": inst.slowdown,
        "induced_llc_misses": inst.induced_llc_misses,
    }


def scenario_run_to_mapping(run: "ScenarioDesignRun") -> dict[str, Any]:
    """One design's scenario contention outcome as a mapping."""
    return {
        "design": run.design.name,
        "weighted_speedup": run.weighted_speedup,
        "llc_miss_inflation": run.llc_miss_inflation,
        "corun": sim_result_to_mapping(run.corun),
        "instances": [
            instance_contention_to_mapping(inst) for inst in run.instances
        ],
    }


def scenario_evaluation_to_mapping(sev: "ScenarioEvaluation") -> dict[str, Any]:
    """A :class:`ScenarioEvaluation` as a mapping."""
    out: dict[str, Any] = {
        "name": sev.name,
        "mix": sev.scenario.mix_string(),
        "num_instances": sev.scenario.num_instances,
        "num_cores": sev.num_cores,
        "footprint_bytes": sev.footprint_bytes,
        "seed": sev.point.seed,
        "runs": {
            design.name: scenario_run_to_mapping(run)
            for design, run in sev.runs.items()
        },
    }
    if "baseline" in sev.runs:
        out["normalized_mix_time"] = {
            design.name: sev.normalized_mix_time(design)
            for design in sev.runs
            if design != "baseline"
        }
    return out


def sweep_point_to_mapping(point: "SweepPoint") -> dict[str, Any]:
    """A sweep grid point's identity as a mapping."""
    out: dict[str, Any] = {
        "workload": point.workload,
        "scale": point.scale,
        "seed": point.seed,
        "max_accesses_per_core": point.max_accesses_per_core,
    }
    if point.thresholds is not None:
        out["thresholds"] = dataclasses.asdict(point.thresholds)
    if point.workload_kwargs:
        out["workload_kwargs"] = [list(pair) for pair in point.workload_kwargs]
    return out


def scenario_point_to_mapping(point: "ScenarioPoint") -> dict[str, Any]:
    """A scenario grid point's identity as a mapping."""
    out: dict[str, Any] = {
        "scenario": point.scenario.name,
        "mix": point.scenario.mix_string(),
        "seed": point.seed,
        "max_accesses_per_core": point.max_accesses_per_core,
    }
    if point.thresholds is not None:
        out["thresholds"] = dataclasses.asdict(point.thresholds)
    return out


def sweep_stats_to_mapping(stats: "SweepStats") -> dict[str, Any]:
    """Sweep execution accounting as a mapping (plus ``executed``)."""
    out = dataclasses.asdict(stats)
    out["executed"] = stats.executed
    return out


def experiment_result_to_mapping(result: Any) -> dict[str, Any]:
    """A finished :class:`~repro.experiment.ExperimentResult` as a mapping.

    ``stats`` is a separate top-level key so clients comparing two runs
    for *result* identity (e.g. daemon vs one-shot, cold vs warm) can
    pop it first — execution accounting legitimately differs between a
    cold and a warm run even though every evaluation is bit-identical.
    """
    return {
        "experiment": result.spec.name,
        "spec_hash": result.spec.content_hash(),
        "evaluations": [
            {"point": sweep_point_to_mapping(point), **evaluation_to_mapping(ev)}
            for point, ev in result.evaluations.items()
        ],
        "scenario_evaluations": [
            {
                "point": scenario_point_to_mapping(point),
                **scenario_evaluation_to_mapping(sev),
            }
            for point, sev in result.scenario_evaluations.items()
        ],
        "stats": sweep_stats_to_mapping(result.stats),
    }
