"""Plain-text rendering of the tables and figure series.

The paper's figures are bar charts; the harness prints the underlying
series as aligned tables (one column per workload), which is what a
reproduction compares against.
"""

from __future__ import annotations

from typing import Mapping


def format_table(
    title: str,
    rows: Mapping[str, Mapping[str, float]],
    fmt: str = "{:.2f}",
    col_order: list[str] | None = None,
) -> str:
    """Render ``rows[row_label][col_label] = value`` as aligned text."""
    columns = col_order or sorted({c for r in rows.values() for c in r})
    widths = [max(len(c), 8) for c in columns]
    label_w = max([len(r) for r in rows] + [10])

    lines = [title, "=" * len(title)]
    header = " " * label_w + "  " + "  ".join(
        c.rjust(w) for c, w in zip(columns, widths)
    )
    lines.append(header)
    for label, row in rows.items():
        cells = []
        for c, w in zip(columns, widths):
            cells.append(
                fmt.format(row[c]).rjust(w) if c in row else "-".rjust(w)
            )
        lines.append(label.ljust(label_w) + "  " + "  ".join(cells))
    return "\n".join(lines)


def format_stacked(
    title: str,
    data: Mapping[str, Mapping[str, Mapping[str, float]]],
    fmt: str = "{:.3f}",
) -> str:
    """Render nested ``data[workload][design][part]`` tables."""
    blocks = [title, "=" * len(title)]
    for workload, designs in data.items():
        parts = sorted({p for d in designs.values() for p in d})
        blocks.append(f"\n[{workload}]")
        header = " " * 12 + "  ".join(p.rjust(12) for p in parts + ["total"])
        blocks.append(header)
        for design, values in designs.items():
            cells = [fmt.format(values.get(p, 0.0)).rjust(12) for p in parts]
            cells.append(fmt.format(sum(values.values())).rjust(12))
            blocks.append(design.ljust(12) + "  ".join(cells))
    return "\n".join(blocks)


def transpose(
    rows: Mapping[str, Mapping[str, float]]
) -> dict[str, dict[str, float]]:
    """Swap row/column orientation of a 2-level table."""
    out: dict[str, dict[str, float]] = {}
    for r, cols in rows.items():
        for c, v in cols.items():
            out.setdefault(c, {})[r] = v
    return out
