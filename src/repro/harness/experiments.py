"""Regenerators for every table and figure of the paper's evaluation.

Each function turns a set of :class:`WorkloadEvaluation` objects into
the rows/series the corresponding paper artifact reports.  Numbers are
normalized to the baseline exactly as in the paper; "Geom. Mean"
columns are appended where the paper plots them.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..common.config import SystemConfig
from ..common.constants import (
    AVR_LLC_EXTRA_BITS_PER_ENTRY,
    BLOCKS_PER_PAGE,
    CMT_ENTRY_BITS,
)
from ..common.types import EvictionOutcome, LLCRequestOutcome
from ..designs import AVR, BASELINE
from .runner import WorkloadEvaluation

GEOMEAN = "Geom. Mean"

#: figure 14 category labels (paper legend order)
REQUEST_CATEGORIES = {
    LLCRequestOutcome.MISS: "Miss",
    LLCRequestOutcome.HIT_UNCOMPRESSED: "Uncompressed Hit",
    LLCRequestOutcome.HIT_DBUF: "DBUF Hit",
    LLCRequestOutcome.HIT_COMPRESSED: "Compressed Hit",
}

#: figure 15 category labels (paper legend order)
EVICTION_CATEGORIES = {
    EvictionOutcome.RECOMPRESS: "Recompress",
    EvictionOutcome.LAZY_WRITEBACK: "Lazy Writeback",
    EvictionOutcome.FETCH_RECOMPRESS: "Fetch+Recompress",
    EvictionOutcome.UNCOMPRESSED_WRITEBACK: "Uncompressed Writeback",
}

_REQUEST_STATS = {
    LLCRequestOutcome.MISS: "req_miss",
    LLCRequestOutcome.HIT_UNCOMPRESSED: "req_hit_uncompressed",
    LLCRequestOutcome.HIT_DBUF: "req_hit_dbuf",
    LLCRequestOutcome.HIT_COMPRESSED: "req_hit_compressed",
}

_EVICTION_STATS = {
    EvictionOutcome.RECOMPRESS: "evict_recompress",
    EvictionOutcome.LAZY_WRITEBACK: "evict_lazy_writeback",
    EvictionOutcome.FETCH_RECOMPRESS: "evict_fetch_recompress",
    EvictionOutcome.UNCOMPRESSED_WRITEBACK: "evict_uncompressed_writeback",
}


def _geomean(values: list[float]) -> float:
    """Geometric mean over the positive entries (0.0 if none)."""
    arr = np.asarray([v for v in values if v > 0], dtype=np.float64)
    return float(np.exp(np.log(arr).mean())) if arr.size else 0.0


def compared_designs(evals: dict[str, WorkloadEvaluation]) -> list:
    """Non-baseline designs present in the evaluations, stable order.

    Evaluation runs preserve the sweep's design order, so for the
    default grid this is exactly the paper's ``COMPARED`` tuple; extra
    registry designs appear after, in evaluation order.
    """
    out: list = []
    for ev in evals.values():
        for design in ev.runs:
            if design != BASELINE and design not in out:
                out.append(design)
    return out


def _normalized_metric(
    evals: dict[str, WorkloadEvaluation], metric: str
) -> dict[str, dict[str, float]]:
    """Per-workload design/baseline ratios plus a geomean column."""
    compared = compared_designs(evals)
    out: dict[str, dict[str, float]] = {}
    for name, ev in evals.items():
        out[name] = {
            d.value: ev.normalized(d, metric)
            for d in compared
            if d in ev.runs
        }
    designs = [d.value for d in compared]
    out[GEOMEAN] = {
        d: _geomean([out[w][d] for w in evals if d in out[w]]) for d in designs
    }
    return out


# ----------------------------------------------------------------------
# One-call regeneration (sweep-powered)
# ----------------------------------------------------------------------
def regenerate_all(
    names: tuple[str, ...] | None = None,
    config: SystemConfig | None = None,
    scale: float = 1.0,
    seed: int = 0,
    max_accesses_per_core: int = 50_000,
    jobs: int = 1,
    cache_dir: str | Path | None = None,
    cache_backend: str | None = None,
) -> dict[str, object]:
    """Regenerate every paper artifact in one call.

    Runs the full workloads x designs grid through the sweep engine
    (``jobs`` workers, optional on-disk ``cache_dir``) and returns a
    mapping from artifact name (``"table3"`` ... ``"fig15"``,
    ``"overheads"``) to the corresponding rows/series, plus the raw
    ``"evaluations"`` for custom post-processing.
    """
    from .runner import evaluate_all

    evals = evaluate_all(
        names=names,
        config=config,
        scale=scale,
        seed=seed,
        max_accesses_per_core=max_accesses_per_core,
        jobs=jobs,
        cache_dir=cache_dir,
        cache_backend=cache_backend,
    )
    return {
        "evaluations": evals,
        "table3": table3_output_error(evals),
        "table4": table4_compression(evals),
        "fig09": fig09_execution_time(evals),
        "fig10": fig10_energy(evals),
        "fig11": fig11_memory_traffic(evals),
        "fig12": fig12_amat(evals),
        "fig13": fig13_mpki(evals),
        "fig14": fig14_llc_requests(evals),
        "fig15": fig15_llc_evictions(evals),
        "overheads": hardware_overheads(),  # §4.2 uses the paper config
    }


# ----------------------------------------------------------------------
# Tables
# ----------------------------------------------------------------------
def table3_output_error(
    evals: dict[str, WorkloadEvaluation]
) -> dict[str, dict[str, float]]:
    """Table 3: application output error (%) per design.

    Rows cover every approximating design present in the evaluations
    (exact designs — baseline, ZeroAVR — have zero error by
    construction and are omitted, as in the paper).
    """
    rows: dict[str, dict[str, float]] = {}
    for design in compared_designs(evals):
        if not design.runs_functional:
            continue
        rows[design.value] = {
            name: ev.runs[design].output_error * 100.0
            for name, ev in evals.items()
            if design in ev.runs
        }
    return rows


def table4_compression(
    evals: dict[str, WorkloadEvaluation]
) -> dict[str, dict[str, float]]:
    """Table 4: AVR compression ratio and memory footprint (%)."""
    return {
        "Compr. Ratio": {n: ev.avr_compression_ratio for n, ev in evals.items()},
        "Mem. Footprint": {
            n: ev.footprint_vs_baseline * 100.0 for n, ev in evals.items()
        },
    }


# ----------------------------------------------------------------------
# Figures 9-13 (normalized bar charts)
# ----------------------------------------------------------------------
def fig09_execution_time(evals: dict[str, WorkloadEvaluation]) -> dict[str, dict[str, float]]:
    """Figure 9: total execution time, normalized to baseline."""
    return _normalized_metric(evals, "time")


def fig10_energy(evals: dict[str, WorkloadEvaluation]) -> dict[str, dict[str, dict[str, float]]]:
    """Figure 10: energy breakdown per component, normalized to the
    baseline's *total* energy (so stacked bars compare directly)."""
    out: dict[str, dict[str, dict[str, float]]] = {}
    compared = compared_designs(evals)
    for name, ev in evals.items():
        base_total = ev.baseline().timing.energy.total
        per_design: dict[str, dict[str, float]] = {
            BASELINE.value: {
                c: j / base_total for c, j in ev.baseline().timing.energy.joules.items()
            }
        }
        for design in compared:
            if design not in ev.runs:
                continue
            run = ev.runs[design]
            factor = run.timing.iteration_factor / base_total
            per_design[design.value] = {
                c: j * factor for c, j in run.timing.energy.joules.items()
            }
        out[name] = per_design
    return out


def fig11_memory_traffic(evals: dict[str, WorkloadEvaluation]) -> dict[str, dict[str, dict[str, float]]]:
    """Figure 11: DRAM traffic normalized to baseline, split into the
    approximate and non-approximate shares."""
    out: dict[str, dict[str, dict[str, float]]] = {}
    compared = compared_designs(evals)
    for name, ev in evals.items():
        base_bytes = ev.baseline().timing.total_bytes
        per_design: dict[str, dict[str, float]] = {}
        for design in compared:
            if design not in ev.runs:
                continue
            run = ev.runs[design].timing
            total = run.adjusted_bytes / base_bytes if base_bytes else 0.0
            tagged = run.approx_bytes + run.exact_bytes
            approx_share = run.approx_bytes / tagged if tagged else 0.0
            per_design[design.value] = {
                "Approx": total * approx_share,
                "Non-approx": total * (1.0 - approx_share),
            }
        out[name] = per_design
    return out


def fig12_amat(evals: dict[str, WorkloadEvaluation]) -> dict[str, dict[str, float]]:
    """Figure 12: average memory access time, normalized to baseline."""
    return _normalized_metric(evals, "amat")


def fig13_mpki(evals: dict[str, WorkloadEvaluation]) -> dict[str, dict[str, float]]:
    """Figure 13: LLC misses per kilo-instruction, normalized."""
    return _normalized_metric(evals, "mpki")


# ----------------------------------------------------------------------
# Figures 14-15 (AVR LLC behaviour breakdowns)
# ----------------------------------------------------------------------
def fig14_llc_requests(evals: dict[str, WorkloadEvaluation]) -> dict[str, dict[str, float]]:
    """Figure 14: AVR LLC requests on approximate cachelines (%)."""
    out: dict[str, dict[str, float]] = {}
    for name, ev in evals.items():
        stats = ev.runs[AVR].timing.llc_stats
        counts = {
            label: stats.get(_REQUEST_STATS[outcome], 0)
            for outcome, label in REQUEST_CATEGORIES.items()
        }
        total = sum(counts.values())
        out[name] = {
            label: 100.0 * v / total if total else 0.0 for label, v in counts.items()
        }
    return out


def fig15_llc_evictions(evals: dict[str, WorkloadEvaluation]) -> dict[str, dict[str, float]]:
    """Figure 15: AVR LLC evictions of approximate cachelines (%)."""
    out: dict[str, dict[str, float]] = {}
    for name, ev in evals.items():
        stats = ev.runs[AVR].timing.llc_stats
        counts = {
            label: stats.get(_EVICTION_STATS[outcome], 0)
            for outcome, label in EVICTION_CATEGORIES.items()
        }
        total = sum(counts.values())
        out[name] = {
            label: 100.0 * v / total if total else 0.0 for label, v in counts.items()
        }
    return out


# ----------------------------------------------------------------------
# §4.2 hardware overheads
# ----------------------------------------------------------------------
def hardware_overheads(config: SystemConfig | None = None) -> dict[str, float]:
    """Static overhead accounting of §4.2."""
    config = config or SystemConfig.paper()
    cmt_bits_per_page = CMT_ENTRY_BITS * BLOCKS_PER_PAGE + 1  # + TLB approx bit
    tlb_entry_bits = 52 + 36
    llc_lines = config.llc.num_lines
    extra_bytes = llc_lines * AVR_LLC_EXTRA_BITS_PER_ENTRY / 8
    return {
        "cmt_bits_per_page": cmt_bits_per_page,
        "tlb_overhead_factor": cmt_bits_per_page / tlb_entry_bits,
        "llc_extra_bits_per_entry": AVR_LLC_EXTRA_BITS_PER_ENTRY,
        "llc_extra_kbytes": extra_bytes / 1024,
        "llc_overhead_fraction": extra_bytes / config.llc.size_bytes,
    }
