"""Content-addressed result cache with pluggable storage backends.

Every sweep job (a functional round-trip or a timing replay) is a pure
function of its spec: the :class:`~repro.harness.sweep.SweepPoint`, the
design, the :class:`~repro.common.config.SystemConfig` and the package
version.  :func:`content_key` folds those inputs into a stable SHA-256
digest, and :class:`ResultCache` maps digests to pickled results, so
re-runs and ablation sweeps skip already-computed points.

Keys are built from a *canonical text form* of the inputs (dataclasses
by field, enums by name, dicts sorted) rather than from ``pickle``
bytes, so the digest is stable across interpreter runs and does not
depend on pickle protocol details.  Results themselves are stored with
``pickle`` — numpy arrays round-trip exactly, which the sweep engine's
bit-identical guarantee relies on.

Storage is a :class:`CacheBackend` behind a stable protocol
(``get``/``put``/``contains`` plus the batched ``get_many`` /
``peek_many`` / ``put_many`` the warm paths use), with three shipped
implementations:

* :class:`ShardedFileBackend` — the on-disk store: 256-way sharded
  pickle files plus a per-shard append-only ``index.jsonl`` so key
  enumeration, ``contains`` and speculative bulk probes are index
  scans instead of per-key ``open()`` attempts.  The index is a pure
  accelerator: payloads commit first, corrupt or missing indexes are
  rebuilt from the shard, and old (pre-index) cache directories stay
  valid.
* :class:`MemoryTierBackend` — a size-bounded in-process LRU wrapped
  over any backend, so repeated reads inside one process (planner
  rungs re-reading shared functional results, scenario subsets
  re-reading baselines) skip the filesystem entirely.
* :class:`ReadThroughBackend` — a read-only secondary cache consulted
  on primary miss, with hits promoted into the primary: the first step
  toward multi-host cache sharing (e.g. a preseeded NFS cache).

Maintenance — orphaned ``*.tmp`` sweeps, stale-``__version__`` purges
and LRU-by-mtime eviction under a byte budget — lives in
:meth:`CacheBackend.gc` / :meth:`CacheBackend.verify` and is exposed as
the ``repro cache`` CLI.
"""

from __future__ import annotations

import abc
import dataclasses
import hashlib
import json
import os
import pickle
import tempfile
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from enum import Enum
from pathlib import Path
from typing import Any, Iterable, Mapping

from .. import __version__

__all__ = [
    "CacheBackend",
    "CacheStats",
    "DiskUsage",
    "GCReport",
    "MemoryTierBackend",
    "ReadThroughBackend",
    "ResultCache",
    "ShardedFileBackend",
    "VerifyReport",
    "content_key",
    "resolve_backend",
    "resolve_result_cache",
]


def _canonical(obj: Any) -> str:
    """Deterministic text form of a job-spec value.

    Supports the types that appear in sweep specs: dataclasses, enums,
    containers, and scalars.  Unknown objects raise ``TypeError`` so a
    new un-canonicalizable spec field fails loudly instead of silently
    hashing by ``repr`` identity.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        # Fields marked compare=False are outside a value's identity
        # (e.g. a DesignSpec's builder callable) and stay out of keys.
        fields = ",".join(
            f"{f.name}={_canonical(getattr(obj, f.name))}"
            for f in dataclasses.fields(obj)
            if f.compare
        )
        return f"{type(obj).__qualname__}({fields})"
    if isinstance(obj, Enum):
        return f"{type(obj).__qualname__}.{obj.name}"
    if isinstance(obj, dict):
        items = ",".join(
            f"{_canonical(k)}:{_canonical(v)}" for k, v in sorted(obj.items())
        )
        return "{" + items + "}"
    if isinstance(obj, (tuple, list)):
        return "(" + ",".join(_canonical(v) for v in obj) + ")"
    if isinstance(obj, float):
        return obj.hex()  # exact: no decimal rounding ambiguity
    if obj is None or isinstance(obj, (bool, int, str, bytes)):
        return repr(obj)
    raise TypeError(f"cannot build a cache key from {type(obj).__name__}: {obj!r}")


def content_key(*parts: Any) -> str:
    """SHA-256 hex digest of the canonical form of ``parts``."""
    text = "|".join(_canonical(p) for p in parts)
    return hashlib.sha256(text.encode()).hexdigest()


@dataclass
class CacheStats:
    """Traffic counters for one cache instance.

    A composed backend stack (memory tier over sharded files, or a
    read-through pair) shares *one* stats object, so ``hits`` /
    ``misses`` / ``stores`` describe the stack's externally visible
    traffic regardless of which layer served it; the remaining fields
    break that traffic down (``memory_hits`` of the ``hits`` never
    touched disk, ``index_hits`` were answered from shard indexes,
    ``promotions`` were copied up from a read-through secondary).
    ``file_opens`` counts payload ``open()`` *attempts*, including
    failed probes of absent keys — the syscall traffic the shard
    indexes exist to eliminate.
    """

    hits: int = 0
    misses: int = 0
    stores: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    file_opens: int = 0
    index_hits: int = 0
    memory_hits: int = 0
    promotions: int = 0
    evictions: int = 0


@dataclass
class GCReport:
    """What one :meth:`CacheBackend.gc` pass removed and kept."""

    tmp_removed: int = 0
    stale_removed: int = 0
    evicted: int = 0
    bytes_removed: int = 0
    entries_kept: int = 0
    bytes_kept: int = 0
    dry_run: bool = False

    @property
    def entries_removed(self) -> int:
        """Payload entries removed (stale purge + byte-budget eviction)."""
        return self.stale_removed + self.evicted


@dataclass
class VerifyReport:
    """Read-only consistency report of an on-disk cache.

    ``corrupt`` entries (unreadable payloads) are the only hard
    failures; ``phantom`` (indexed but payload gone) and ``unindexed``
    (payload present but not indexed — e.g. written by a pre-index
    version, or a writer that died between payload commit and index
    append) are advisory and self-heal on the next ``put``/``gc``.
    """

    entries: int = 0
    total_bytes: int = 0
    corrupt: list[str] = field(default_factory=list)
    phantom: list[str] = field(default_factory=list)
    unindexed: list[str] = field(default_factory=list)
    tmp_files: int = 0

    @property
    def ok(self) -> bool:
        """True when every payload on disk unpickles."""
        return not self.corrupt


@dataclass
class DiskUsage:
    """Light-weight (no unpickling) usage summary of an on-disk cache."""

    entries: int = 0
    total_bytes: int = 0
    shards: int = 0
    indexed: int = 0
    tmp_files: int = 0
    #: entry count per recorded package version ("?" = unrecorded,
    #: i.e. indexed by a rebuild or written before indexes existed)
    versions: dict[str, int] = field(default_factory=dict)


#: pickle failure modes treated as cache misses (torn writes, version
#: skew of pickled classes, foreign entries)
_READ_ERRORS = (
    OSError,
    pickle.UnpicklingError,
    EOFError,
    AttributeError,
    ImportError,
)

#: sentinel distinguishing "absent" from a cached ``None``-ish default
_MISS = object()


class CacheBackend(abc.ABC):
    """Storage protocol every result-cache implementation speaks.

    Single-key ``get``/``peek``/``put``/``contains`` plus the batched
    ``get_many``/``peek_many``/``put_many`` the warm paths drive.
    ``peek*`` are stats-neutral on hits/misses (the planner's
    speculative surrogate probes must not skew ``--expect-cached``
    accounting); ``get*`` count.  Subclasses may override the batch
    methods with bulk implementations; the defaults loop.
    """

    #: shared traffic counters (one object per composed backend stack)
    stats: CacheStats

    @abc.abstractmethod
    def get(self, key: str, default: Any = None) -> Any:
        """Return the cached value for ``key`` (counted), or ``default``."""

    @abc.abstractmethod
    def peek(self, key: str, default: Any = None) -> Any:
        """Like :meth:`get` but without hit/miss accounting."""

    @abc.abstractmethod
    def put(self, key: str, value: Any) -> None:
        """Store ``value`` under ``key`` (atomic for on-disk backends)."""

    @abc.abstractmethod
    def contains(self, key: str) -> bool:
        """Whether ``key`` has a committed entry (stats-neutral)."""

    @abc.abstractmethod
    def keys(self) -> list[str]:
        """Every committed key, sorted (an index scan, not N stats)."""

    @abc.abstractmethod
    def __len__(self) -> int:
        """Number of committed entries (``*.tmp`` orphans excluded)."""

    def get_many(self, keys: Iterable[str]) -> dict[str, Any]:
        """Resolve many keys in one pass; absent keys are omitted.

        Counts one hit per returned key and one miss per omitted key.
        """
        results: dict[str, Any] = {}
        for key in keys:
            value = self.get(key, _MISS)
            if value is not _MISS:
                results[key] = value
        return results

    def peek_many(self, keys: Iterable[str]) -> dict[str, Any]:
        """Batched :meth:`peek`: stats-neutral bulk probe."""
        results: dict[str, Any] = {}
        for key in keys:
            value = self.peek(key, _MISS)
            if value is not _MISS:
                results[key] = value
        return results

    def put_many(self, items: Mapping[str, Any]) -> None:
        """Store many entries (each individually atomic)."""
        for key, value in items.items():
            self.put(key, value)

    def gc(
        self,
        max_bytes: int | None = None,
        stale: bool = False,
        tmp_max_age_s: float = 3600.0,
        dry_run: bool = False,
    ) -> GCReport:
        """Collect garbage; backends without storage return a no-op report."""
        return GCReport(dry_run=dry_run)

    def verify(self) -> VerifyReport:
        """Check storage consistency; default reports nothing to check."""
        return VerifyReport()


class ShardedFileBackend(CacheBackend):
    """Pickle-per-key store sharded 256 ways, with per-shard indexes.

    The layout is ``<root>/<key[:2]>/<key>.pkl`` — unchanged since the
    first cache, so existing cache directories remain valid.  New to
    this backend is ``<root>/<shard>/index.jsonl``: one JSON line per
    committed entry (key, payload bytes, recording package version),
    appended atomically *after* the payload's ``os.replace``.  The
    index is an accelerator, never an authority:

    * a missing or corrupt index is rebuilt from the shard's ``*.pkl``
      files (version recorded as unknown);
    * a payload whose index append was lost (writer died in between)
      reads as absent from batch probes until the next ``put`` of the
      same key heals it — the job just re-executes, bit-identically;
    * concurrent writers may append duplicate lines; readers keep the
      last occurrence.

    ``read_only=True`` (the read-through secondary) never creates the
    directory, never rewrites indexes and refuses ``put``/``gc``.
    """

    INDEX_NAME = "index.jsonl"

    def __init__(
        self,
        root: str | Path,
        stats: CacheStats | None = None,
        read_only: bool = False,
    ) -> None:
        self.root = Path(root)
        self.read_only = read_only
        if not read_only:
            try:
                self.root.mkdir(parents=True, exist_ok=True)
            except (FileExistsError, NotADirectoryError) as exc:
                raise NotADirectoryError(
                    f"cache dir {self.root} exists but is not a directory"
                ) from exc
        self.stats = stats if stats is not None else CacheStats()
        #: in-process view of shard indexes: shard -> {key: (bytes, version)}
        self._index: dict[str, dict[str, tuple[int, str | None]]] = {}

    # -- paths ---------------------------------------------------------
    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    def _index_path(self, shard: str) -> Path:
        return self.root / shard / self.INDEX_NAME

    def _shards(self) -> list[Path]:
        if not self.root.is_dir():
            return []
        return sorted(
            d for d in self.root.iterdir() if d.is_dir() and len(d.name) == 2
        )

    # -- index ---------------------------------------------------------
    def _rebuild_index(self, shard: str) -> dict[str, tuple[int, str | None]]:
        """Reconstruct one shard's index from its payload files."""
        shard_dir = self.root / shard
        entries: dict[str, tuple[int, str | None]] = {}
        for path in sorted(shard_dir.glob("*.pkl")):
            try:
                size = path.stat().st_size
            except OSError:
                continue
            entries[path.stem] = (size, None)
        if not self.read_only:
            self._write_index(shard, entries)
        return entries

    def _write_index(
        self, shard: str, entries: Mapping[str, tuple[int, str | None]]
    ) -> None:
        """Atomically rewrite one shard's index file."""
        shard_dir = self.root / shard
        if not shard_dir.is_dir():
            return
        lines = "".join(
            json.dumps({"k": key, "n": size, "v": version}) + "\n"
            for key, (size, version) in sorted(entries.items())
        )
        fd, tmp = tempfile.mkstemp(dir=shard_dir, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(lines)
            os.replace(tmp, self._index_path(shard))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def _shard_index(self, shard: str) -> dict[str, tuple[int, str | None]]:
        """This shard's key index, loading (or rebuilding) on first use."""
        cached = self._index.get(shard)
        if cached is not None:
            return cached
        path = self._index_path(shard)
        entries: dict[str, tuple[int, str | None]] = {}
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            # No index yet: a pre-index cache dir (rebuild) or an
            # untouched shard (empty).
            if (self.root / shard).is_dir():
                entries = self._rebuild_index(shard)
            self._index[shard] = entries
            return entries
        try:
            for line in text.splitlines():
                if not line.strip():
                    continue
                record = json.loads(line)
                entries[record["k"]] = (record["n"], record.get("v"))
        except (json.JSONDecodeError, KeyError, TypeError):
            entries = self._rebuild_index(shard)
        self._index[shard] = entries
        return entries

    def _index_append(self, key: str, size: int) -> None:
        """Record one committed payload (atomic O_APPEND write)."""
        shard = key[:2]
        line = json.dumps({"k": key, "n": size, "v": __version__}) + "\n"
        with self._index_path(shard).open("a", encoding="utf-8") as fh:
            fh.write(line)
        if shard in self._index:
            self._index[shard][key] = (size, __version__)

    # -- payload I/O ---------------------------------------------------
    def _load(self, key: str) -> Any:
        """Read one payload, returning the ``_MISS`` sentinel on failure."""
        self.stats.file_opens += 1
        try:
            with self._path(key).open("rb") as fh:
                data = fh.read()
            value = pickle.loads(data)
        except _READ_ERRORS:
            return _MISS
        self.stats.bytes_read += len(data)
        return value

    def get(self, key: str, default: Any = None) -> Any:
        """Return the cached value for ``key`` (counted), or ``default``."""
        value = self._load(key)
        if value is _MISS:
            self.stats.misses += 1
            return default
        self.stats.hits += 1
        return value

    def peek(self, key: str, default: Any = None) -> Any:
        """Like :meth:`get` but without hit/miss accounting."""
        value = self._load(key)
        return default if value is _MISS else value

    def contains(self, key: str) -> bool:
        """Index-first presence check, falling back to the filesystem.

        The fallback covers entries another process committed after
        this process loaded the shard's index.
        """
        if key in self._shard_index(key[:2]):
            self.stats.index_hits += 1
            return True
        return self._path(key).exists()

    def put(self, key: str, value: Any) -> None:
        """Store ``value`` under ``key``: atomic replace, then index."""
        if self.read_only:
            raise RuntimeError(f"cache at {self.root} is read-only")
        data = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(data)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self._index_append(key, len(data))
        self.stats.stores += 1
        self.stats.bytes_written += len(data)

    def _probe_many(
        self, keys: Iterable[str], count: bool
    ) -> dict[str, Any]:
        """Index-gated bulk read shared by ``get_many``/``peek_many``.

        One index load per touched shard decides which keys exist; only
        those payloads are opened.  Speculative probes of absent keys
        therefore cost zero ``open()`` attempts — the warm-path win
        ``bench_cache.py`` measures.
        """
        by_shard: dict[str, list[str]] = {}
        for key in keys:
            by_shard.setdefault(key[:2], []).append(key)
        results: dict[str, Any] = {}
        for shard, shard_keys in by_shard.items():
            index = self._shard_index(shard)
            for key in shard_keys:
                if key not in index:
                    if count:
                        self.stats.misses += 1
                    continue
                self.stats.index_hits += 1
                value = self._load(key)
                if value is _MISS:
                    if count:
                        self.stats.misses += 1
                    continue
                if count:
                    self.stats.hits += 1
                results[key] = value
        return results

    def get_many(self, keys: Iterable[str]) -> dict[str, Any]:
        """Batched :meth:`get` via per-shard index scans."""
        return self._probe_many(keys, count=True)

    def peek_many(self, keys: Iterable[str]) -> dict[str, Any]:
        """Batched :meth:`peek` via per-shard index scans (stats-neutral)."""
        return self._probe_many(keys, count=False)

    def keys(self) -> list[str]:
        """Every committed key across all shards, sorted."""
        found: set[str] = set()
        for shard_dir in self._shards():
            found.update(self._shard_index(shard_dir.name))
        return sorted(found)

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.pkl"))

    # -- maintenance ---------------------------------------------------
    def _scan(self) -> list[tuple[str, Path, int, float, str | None]]:
        """Enumerate committed payloads: (key, path, bytes, mtime, version).

        Driven by the payload files (the authority), with versions
        looked up from the shard indexes where recorded.
        """
        entries: list[tuple[str, Path, int, float, str | None]] = []
        for shard_dir in self._shards():
            index = self._shard_index(shard_dir.name)
            for path in sorted(shard_dir.glob("*.pkl")):
                try:
                    stat = path.stat()
                except OSError:
                    continue
                _, version = index.get(path.stem, (0, None))
                entries.append(
                    (path.stem, path, stat.st_size, stat.st_mtime, version)
                )
        return entries

    def disk_usage(self) -> DiskUsage:
        """Summarize the store without unpickling anything."""
        usage = DiskUsage(shards=len(self._shards()))
        for shard_dir in self._shards():
            index = self._shard_index(shard_dir.name)
            usage.tmp_files += sum(1 for _ in shard_dir.glob("*.tmp"))
            for path in shard_dir.glob("*.pkl"):
                try:
                    size = path.stat().st_size
                except OSError:
                    continue
                usage.entries += 1
                usage.total_bytes += size
                record = index.get(path.stem)
                if record is not None:
                    usage.indexed += 1
                label = record[1] if record and record[1] else "?"
                usage.versions[label] = usage.versions.get(label, 0) + 1
        return usage

    def gc(
        self,
        max_bytes: int | None = None,
        stale: bool = False,
        tmp_max_age_s: float = 3600.0,
        dry_run: bool = False,
    ) -> GCReport:
        """Sweep orphans, purge stale versions, evict to a byte budget.

        Three independent passes, each optional:

        1. orphaned ``*.tmp`` files older than ``tmp_max_age_s`` are
           removed (the age guard keeps a live writer's in-flight temp
           file safe from a concurrent ``gc``);
        2. with ``stale=True``, entries recorded under a different
           package ``__version__`` are purged — version is part of
           every key, so they can never be read again (entries with no
           recorded version are conservatively kept);
        3. with ``max_bytes``, the oldest entries by mtime are evicted
           until the survivors fit the budget (LRU: a hit's ``open``
           does not bump mtime, but re-``put`` does, and eviction
           order among a run's entries is deterministic enough for a
           maintenance pass).

        Surviving entries get their shard indexes compacted (duplicate
        append lines dropped, removed keys forgotten).  ``dry_run``
        reports what *would* go without touching anything.
        """
        if self.read_only:
            raise RuntimeError(f"cache at {self.root} is read-only")
        report = GCReport(dry_run=dry_run)
        now = time.time()  # repro: ignore[RNG001] - GC ages files, not results
        for shard_dir in self._shards():
            for tmp in shard_dir.glob("*.tmp"):
                try:
                    age = now - tmp.stat().st_mtime
                except OSError:
                    continue
                if age >= tmp_max_age_s:
                    report.tmp_removed += 1
                    if not dry_run:
                        tmp.unlink(missing_ok=True)

        entries = self._scan()
        doomed: dict[str, tuple[Path, int]] = {}
        if stale:
            for key, path, size, _, version in entries:
                if version is not None and version != __version__:
                    doomed[key] = (path, size)
                    report.stale_removed += 1
        if max_bytes is not None:
            survivors = [e for e in entries if e[0] not in doomed]
            total = sum(size for _, _, size, _, _ in survivors)
            for key, path, size, _, _ in sorted(
                survivors, key=lambda e: (e[3], e[0])
            ):
                if total <= max_bytes:
                    break
                doomed[key] = (path, size)
                report.evicted += 1
                total -= size

        for path, size in doomed.values():
            report.bytes_removed += size
            if not dry_run:
                path.unlink(missing_ok=True)
                self.stats.evictions += 1
        for key, _, size, _, _ in entries:
            if key not in doomed:
                report.entries_kept += 1
                report.bytes_kept += size

        if not dry_run:
            # Compact: rewrite each touched shard's index from the
            # surviving payloads, preserving recorded versions.
            for shard_dir in self._shards():
                shard = shard_dir.name
                index = self._shard_index(shard)
                fresh = {
                    key: index.get(key, (size, None))
                    for key, path, size, _, _ in entries
                    if key[:2] == shard and key not in doomed
                }
                self._write_index(shard, fresh)
                self._index[shard] = dict(fresh)
        return report

    def verify(self) -> VerifyReport:
        """Unpickle every payload and cross-check it against the indexes."""
        report = VerifyReport()
        for shard_dir in self._shards():
            shard = shard_dir.name
            index = self._shard_index(shard)
            report.tmp_files += sum(1 for _ in shard_dir.glob("*.tmp"))
            on_disk: set[str] = set()
            for path in sorted(shard_dir.glob("*.pkl")):
                key = path.stem
                on_disk.add(key)
                try:
                    with path.open("rb") as fh:
                        data = fh.read()
                    pickle.loads(data)
                except _READ_ERRORS:
                    report.corrupt.append(key)
                    continue
                report.entries += 1
                report.total_bytes += len(data)
                if key not in index:
                    report.unindexed.append(key)
            report.phantom.extend(
                sorted(key for key in index if key not in on_disk)
            )
        return report


class MemoryTierBackend(CacheBackend):
    """Size-bounded in-process LRU over any inner backend.

    Reads that miss RAM fall through to ``inner`` and populate the
    tier; writes go to both.  Values served from RAM are the *same*
    objects handed out before — cached results are treated as
    immutable by every consumer (the sweep's ``iteration_factor``
    stamping is deterministic and idempotent), and the differential
    backend tests pin that bit-identity.  Eviction is LRU by access
    order, counted in ``stats.evictions``.
    """

    def __init__(self, inner: CacheBackend, max_entries: int = 4096) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.inner = inner
        self.max_entries = max_entries
        self.stats = inner.stats
        self._lru: OrderedDict[str, Any] = OrderedDict()

    def _remember(self, key: str, value: Any) -> None:
        self._lru[key] = value
        self._lru.move_to_end(key)
        while len(self._lru) > self.max_entries:
            self._lru.popitem(last=False)
            self.stats.evictions += 1

    def get(self, key: str, default: Any = None) -> Any:
        """RAM first (counted as a hit), then the inner backend."""
        if key in self._lru:
            self._lru.move_to_end(key)
            self.stats.hits += 1
            self.stats.memory_hits += 1
            return self._lru[key]
        value = self.inner.get(key, _MISS)
        if value is _MISS:
            return default
        self._remember(key, value)
        return value

    def peek(self, key: str, default: Any = None) -> Any:
        """Stats-neutral read; still populates the tier on inner hits."""
        if key in self._lru:
            self._lru.move_to_end(key)
            return self._lru[key]
        value = self.inner.peek(key, _MISS)
        if value is _MISS:
            return default
        self._remember(key, value)
        return value

    def put(self, key: str, value: Any) -> None:
        """Write through to the inner backend and refresh the tier."""
        self.inner.put(key, value)
        self._remember(key, value)

    def contains(self, key: str) -> bool:
        """RAM membership or the inner backend's answer."""
        return key in self._lru or self.inner.contains(key)

    def get_many(self, keys: Iterable[str]) -> dict[str, Any]:
        """Serve what RAM has, batch the rest through the inner backend."""
        results: dict[str, Any] = {}
        missing: list[str] = []
        for key in keys:
            if key in self._lru:
                self._lru.move_to_end(key)
                self.stats.hits += 1
                self.stats.memory_hits += 1
                results[key] = self._lru[key]
            else:
                missing.append(key)
        fetched = self.inner.get_many(missing)
        for key, value in fetched.items():
            self._remember(key, value)
        results.update(fetched)
        return results

    def peek_many(self, keys: Iterable[str]) -> dict[str, Any]:
        """Stats-neutral batched read through the tier."""
        results: dict[str, Any] = {}
        missing: list[str] = []
        for key in keys:
            if key in self._lru:
                self._lru.move_to_end(key)
                results[key] = self._lru[key]
            else:
                missing.append(key)
        fetched = self.inner.peek_many(missing)
        for key, value in fetched.items():
            self._remember(key, value)
        results.update(fetched)
        return results

    def put_many(self, items: Mapping[str, Any]) -> None:
        """Batched write-through."""
        self.inner.put_many(items)
        for key, value in items.items():
            self._remember(key, value)

    def keys(self) -> list[str]:
        """The inner backend's committed keys (RAM holds no extras)."""
        return self.inner.keys()

    def __len__(self) -> int:
        return len(self.inner)

    def gc(
        self,
        max_bytes: int | None = None,
        stale: bool = False,
        tmp_max_age_s: float = 3600.0,
        dry_run: bool = False,
    ) -> GCReport:
        """Delegate to the inner backend; RAM copies stay valid.

        Evicted disk entries may survive in RAM until they age out of
        the LRU — harmless, since the package version is part of every
        key and RAM dies with the process.
        """
        return self.inner.gc(
            max_bytes=max_bytes,
            stale=stale,
            tmp_max_age_s=tmp_max_age_s,
            dry_run=dry_run,
        )

    def verify(self) -> VerifyReport:
        """Delegate to the inner backend (RAM needs no verification)."""
        return self.inner.verify()


class ReadThroughBackend(CacheBackend):
    """Primary cache backed by a read-only secondary on miss.

    ``get`` consults the primary, then the secondary; secondary hits
    are *promoted* — written into the primary — so one preseeded or
    shared cache warms many private ones.  ``peek``/``peek_many`` stay
    non-destructive (no promotion): speculative probes must not copy
    data around.  Writes, GC and verification address the primary
    only; the secondary is never mutated.
    """

    def __init__(self, primary: CacheBackend, secondary: CacheBackend) -> None:
        self.primary = primary
        self.secondary = secondary
        self.stats = primary.stats

    def get(self, key: str, default: Any = None) -> Any:
        """Primary, then secondary with promotion (one hit either way)."""
        value = self.primary.peek(key, _MISS)
        if value is not _MISS:
            self.stats.hits += 1
            return value
        value = self.secondary.peek(key, _MISS)
        if value is not _MISS:
            self.primary.put(key, value)
            self.stats.hits += 1
            self.stats.promotions += 1
            return value
        self.stats.misses += 1
        return default

    def peek(self, key: str, default: Any = None) -> Any:
        """Stats-neutral, promotion-free read through both tiers."""
        value = self.primary.peek(key, _MISS)
        if value is _MISS:
            value = self.secondary.peek(key, _MISS)
        return default if value is _MISS else value

    def put(self, key: str, value: Any) -> None:
        """Write to the primary (the secondary is read-only)."""
        self.primary.put(key, value)

    def contains(self, key: str) -> bool:
        """Present in either tier."""
        return self.primary.contains(key) or self.secondary.contains(key)

    def get_many(self, keys: Iterable[str]) -> dict[str, Any]:
        """Batched read: primary hits, then promoted secondary hits."""
        keys = list(keys)
        results = self.primary.peek_many(keys)
        missing = [key for key in keys if key not in results]
        promoted = self.secondary.peek_many(missing)
        if promoted:
            self.primary.put_many(promoted)
            self.stats.promotions += len(promoted)
            results.update(promoted)
        self.stats.hits += len(results)
        self.stats.misses += len(keys) - len(results)
        return results

    def peek_many(self, keys: Iterable[str]) -> dict[str, Any]:
        """Stats-neutral, promotion-free batched read."""
        keys = list(keys)
        results = self.primary.peek_many(keys)
        missing = [key for key in keys if key not in results]
        results.update(self.secondary.peek_many(missing))
        return results

    def put_many(self, items: Mapping[str, Any]) -> None:
        """Batched write to the primary."""
        self.primary.put_many(items)

    def keys(self) -> list[str]:
        """Union of both tiers' committed keys."""
        return sorted(set(self.primary.keys()) | set(self.secondary.keys()))

    def __len__(self) -> int:
        return len(self.primary)

    def gc(
        self,
        max_bytes: int | None = None,
        stale: bool = False,
        tmp_max_age_s: float = 3600.0,
        dry_run: bool = False,
    ) -> GCReport:
        """Collect the primary only (the secondary is read-only)."""
        return self.primary.gc(
            max_bytes=max_bytes,
            stale=stale,
            tmp_max_age_s=tmp_max_age_s,
            dry_run=dry_run,
        )

    def verify(self) -> VerifyReport:
        """Verify the primary only."""
        return self.primary.verify()


def resolve_backend(
    spec: CacheBackend | str | None, cache_dir: str | Path
) -> CacheBackend:
    """Build a backend stack from a CLI-style spec string.

    * ``None`` or ``"sharded"`` — the plain on-disk store;
    * ``"memory"`` / ``"memory:N"`` — an in-process LRU of up to N
      entries (default 4096) over the on-disk store;
    * ``"readthrough:PATH"`` — the on-disk store under ``cache_dir``
      with a read-only secondary at ``PATH`` consulted on miss.

    Every layer of the stack shares one :class:`CacheStats`, so
    traffic accounting is per-cache, not per-layer.
    """
    if isinstance(spec, CacheBackend):
        return spec
    stats = CacheStats()
    if spec is None or spec == "sharded":
        return ShardedFileBackend(cache_dir, stats=stats)
    if spec == "memory" or spec.startswith("memory:"):
        max_entries = 4096
        if ":" in spec:
            try:
                max_entries = int(spec.split(":", 1)[1])
            except ValueError:
                raise ValueError(f"bad memory tier size in {spec!r}") from None
        return MemoryTierBackend(
            ShardedFileBackend(cache_dir, stats=stats), max_entries=max_entries
        )
    if spec.startswith("readthrough:"):
        secondary_dir = spec.split(":", 1)[1]
        if not secondary_dir:
            raise ValueError("readthrough backend needs a secondary path")
        return ReadThroughBackend(
            ShardedFileBackend(cache_dir, stats=stats),
            ShardedFileBackend(secondary_dir, stats=stats, read_only=True),
        )
    raise ValueError(
        f"unknown cache backend {spec!r} "
        "(expected sharded | memory[:N] | readthrough:PATH)"
    )


class ResultCache:
    """Pickle-backed key/value store under ``cache_dir``.

    The stable front door every consumer holds: construction resolves
    ``backend`` (a :class:`CacheBackend` instance or a spec string —
    see :func:`resolve_backend`; default the sharded on-disk store)
    and every operation delegates to it.  Entries are written
    atomically (temp file + rename), so concurrent sweeps sharing a
    cache directory never observe torn entries; unreadable or
    truncated entries are treated as misses.
    """

    def __init__(
        self,
        cache_dir: str | Path,
        backend: CacheBackend | str | None = None,
    ) -> None:
        self.root = Path(cache_dir)
        self.backend = resolve_backend(backend, self.root)

    @property
    def stats(self) -> CacheStats:
        """The backend stack's shared traffic counters."""
        return self.backend.stats

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    def get(self, key: str, default: Any = None) -> Any:
        """Return the cached value for ``key``, or ``default``."""
        return self.backend.get(key, default)

    def peek(self, key: str, default: Any = None) -> Any:
        """Like :meth:`get`, but without touching the hit/miss stats.

        The planner's surrogate model harvests already-cached sweep
        points by probing many speculative keys; those probes are not
        part of any run's cache-efficiency accounting, so they must not
        skew ``stats`` (which tests and ``--expect-cached`` assertions
        read).
        """
        return self.backend.peek(key, default)

    def put(self, key: str, value: Any) -> None:
        """Store ``value`` under ``key`` (atomic replace)."""
        self.backend.put(key, value)

    def contains(self, key: str) -> bool:
        """Whether ``key`` has a committed entry."""
        return self.backend.contains(key)

    def get_many(self, keys: Iterable[str]) -> dict[str, Any]:
        """Batched :meth:`get`; absent keys are omitted from the result."""
        return self.backend.get_many(keys)

    def peek_many(self, keys: Iterable[str]) -> dict[str, Any]:
        """Batched :meth:`peek` (stats-neutral bulk probe)."""
        return self.backend.peek_many(keys)

    def put_many(self, items: Mapping[str, Any]) -> None:
        """Store many entries (each individually atomic)."""
        self.backend.put_many(items)

    def keys(self) -> list[str]:
        """Every committed key, sorted."""
        return self.backend.keys()

    def gc(
        self,
        max_bytes: int | None = None,
        stale: bool = False,
        tmp_max_age_s: float = 3600.0,
        dry_run: bool = False,
    ) -> GCReport:
        """Collect garbage — see :meth:`ShardedFileBackend.gc`."""
        return self.backend.gc(
            max_bytes=max_bytes,
            stale=stale,
            tmp_max_age_s=tmp_max_age_s,
            dry_run=dry_run,
        )

    def verify(self) -> VerifyReport:
        """Consistency-check the store — see :meth:`ShardedFileBackend.verify`."""
        return self.backend.verify()

    def __len__(self) -> int:
        return len(self.backend)


def resolve_result_cache(
    cache_dir: str | Path | ResultCache | None,
    backend: CacheBackend | str | None = None,
) -> ResultCache | None:
    """Normalize a ``cache_dir`` argument into a :class:`ResultCache`.

    Callers (``run_sweep``, the planner) accept either a directory or
    an already-built cache; passing an instance through lets one
    memory tier or read-through stack span many internal sweep calls.
    ``None`` stays ``None`` (caching disabled).
    """
    if cache_dir is None:
        return None
    if isinstance(cache_dir, ResultCache):
        return cache_dir
    return ResultCache(cache_dir, backend=backend)
