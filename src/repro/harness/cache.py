"""Content-addressed on-disk cache for sweep job results.

Every sweep job (a functional round-trip or a timing replay) is a pure
function of its spec: the :class:`~repro.harness.sweep.SweepPoint`, the
design, the :class:`~repro.common.config.SystemConfig` and the package
version.  :func:`content_key` folds those inputs into a stable SHA-256
digest, and :class:`ResultCache` maps digests to pickled results under
a cache directory, so re-runs and ablation sweeps skip already-computed
points.

Keys are built from a *canonical text form* of the inputs (dataclasses
by field, enums by name, dicts sorted) rather than from ``pickle``
bytes, so the digest is stable across interpreter runs and does not
depend on pickle protocol details.  Results themselves are stored with
``pickle`` — numpy arrays round-trip exactly, which the sweep engine's
bit-identical guarantee relies on.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import pickle
import tempfile
from dataclasses import dataclass
from enum import Enum
from pathlib import Path
from typing import Any

__all__ = ["CacheStats", "ResultCache", "content_key"]


def _canonical(obj: Any) -> str:
    """Deterministic text form of a job-spec value.

    Supports the types that appear in sweep specs: dataclasses, enums,
    containers, and scalars.  Unknown objects raise ``TypeError`` so a
    new un-canonicalizable spec field fails loudly instead of silently
    hashing by ``repr`` identity.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        # Fields marked compare=False are outside a value's identity
        # (e.g. a DesignSpec's builder callable) and stay out of keys.
        fields = ",".join(
            f"{f.name}={_canonical(getattr(obj, f.name))}"
            for f in dataclasses.fields(obj)
            if f.compare
        )
        return f"{type(obj).__qualname__}({fields})"
    if isinstance(obj, Enum):
        return f"{type(obj).__qualname__}.{obj.name}"
    if isinstance(obj, dict):
        items = ",".join(
            f"{_canonical(k)}:{_canonical(v)}" for k, v in sorted(obj.items())
        )
        return "{" + items + "}"
    if isinstance(obj, (tuple, list)):
        return "(" + ",".join(_canonical(v) for v in obj) + ")"
    if isinstance(obj, float):
        return obj.hex()  # exact: no decimal rounding ambiguity
    if obj is None or isinstance(obj, (bool, int, str, bytes)):
        return repr(obj)
    raise TypeError(f"cannot build a cache key from {type(obj).__name__}: {obj!r}")


def content_key(*parts: Any) -> str:
    """SHA-256 hex digest of the canonical form of ``parts``."""
    text = "|".join(_canonical(p) for p in parts)
    return hashlib.sha256(text.encode()).hexdigest()


@dataclass
class CacheStats:
    """Hit/miss/store counters for one cache instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0


class ResultCache:
    """Pickle-backed key/value store under ``cache_dir``.

    Entries are sharded into 256 subdirectories by digest prefix and
    written atomically (temp file + rename), so concurrent sweeps
    sharing a cache directory never observe torn entries.  Unreadable
    or truncated entries are treated as misses.
    """

    def __init__(self, cache_dir: str | Path) -> None:
        self.root = Path(cache_dir)
        try:
            self.root.mkdir(parents=True, exist_ok=True)
        except (FileExistsError, NotADirectoryError) as exc:
            raise NotADirectoryError(
                f"cache dir {self.root} exists but is not a directory"
            ) from exc
        self.stats = CacheStats()

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    def get(self, key: str, default: Any = None) -> Any:
        """Return the cached value for ``key``, or ``default``."""
        path = self._path(key)
        try:
            with path.open("rb") as fh:
                value = pickle.load(fh)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError, ImportError):
            self.stats.misses += 1
            return default
        self.stats.hits += 1
        return value

    def contains(self, key: str) -> bool:
        return self._path(key).exists()

    def peek(self, key: str, default: Any = None) -> Any:
        """Like :meth:`get`, but without touching the hit/miss stats.

        The planner's surrogate model harvests already-cached sweep
        points by probing many speculative keys; those probes are not
        part of any run's cache-efficiency accounting, so they must not
        skew ``stats`` (which tests and ``--expect-cached`` assertions
        read).
        """
        path = self._path(key)
        try:
            with path.open("rb") as fh:
                return pickle.load(fh)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError, ImportError):
            return default

    def put(self, key: str, value: Any) -> None:
        """Store ``value`` under ``key`` (atomic replace)."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(value, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stats.stores += 1

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.pkl"))
