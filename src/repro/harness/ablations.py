"""Ablation studies for the design choices DESIGN.md calls out.

Two families:

* **LLC ablations** — switch off the AVR architecture's optimizations
  one at a time (DBUF, PFE policy, lazy eviction, skip counters,
  CMS-LRU refresh) and measure time/traffic/AMAT against full AVR.
* **Compressor ablations** — restrict the compression pipeline (single
  downsampling variant, no exponent biasing, strict hardware error
  check) and measure ratio/error on real workload data.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from ..common.config import SystemConfig
from ..common.constants import VALUES_PER_BLOCK
from ..common.types import CompressionMethod
from ..compression.compressor import AVRCompressor
from ..compression.errors import relative_error
from ..designs import AVR, BASELINE, get_design, layout_source_design
from ..trace.generator import generate_trace
from .cache import resolve_result_cache
from .runner import _build_layout
from .sweep import (
    SweepPoint,
    _execute_jobs,
    _functional_key,
    _make_pool,
    _run_jobs,
    _SerialExecutor,
    _timing_key,
    run_functional_job,
    run_timing_job,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..designs import DesignLike

#: LLC-level ablation variants: label -> AVRLLC keyword overrides.
#: ``pfe_threshold=None`` genuinely disables the PFE (the paper default
#: is the :data:`repro.cache.llc_avr.PFE_DEFAULT` sentinel, so ``None``
#: is free to mean "off" all the way down to the DBUF).
LLC_ABLATIONS: dict[str, dict] = {
    "full AVR": {},
    "no DBUF": {"enable_dbuf": False},
    "no lazy eviction": {"enable_lazy_eviction": False},
    "no skip counters": {"enable_skip_counters": False},
    "no CMS-LRU refresh": {"enable_cms_lru_refresh": False},
    "PFE always": {"pfe_threshold": 0},
    "PFE disabled": {"pfe_threshold": None},
}


@dataclass
class AblationPoint:
    """Timing metrics of one ablation variant (normalized by caller)."""

    cycles: float
    total_bytes: int
    amat_cycles: float
    llc_mpki: float


def run_llc_ablations(
    workload_name: str = "heat",
    config: SystemConfig | None = None,
    scale: float = 1.0,
    max_accesses_per_core: int = 40_000,
    variants: dict[str, dict] | None = None,
    seed: int = 0,
    jobs: int = 1,
    cache_dir: str | Path | None = None,
    engine: str = "vectorized",
    design: "DesignLike" = "AVR",
    cache_backend: str | None = None,
    **workload_kwargs: object,
) -> dict[str, AblationPoint]:
    """Run one AVR-family design under each LLC ablation variant.

    ``design`` is any registered AVR-family design (spec, name, or
    legacy enum member) — a design that cannot consume ``avr_options``
    is rejected up front.  Built on the sweep engine's job units: the
    functional runs (baseline reference + the design's layout source)
    and each variant's timing replay are independent jobs, fanned out
    over ``jobs`` workers and memoized in ``cache_dir``.  The
    functional jobs share cache entries with
    :func:`repro.harness.evaluate_all` sweeps of the same point, and
    the "full AVR" variant shares its timing entry with them too.
    """
    config = config or SystemConfig.scaled(num_cores=8)
    variants = variants if variants is not None else LLC_ABLATIONS
    design = get_design(design)
    if not design.consumes_avr_options:
        raise ValueError(
            f"design {design.name!r} cannot consume LLC ablation options; "
            "pick an AVR-family design"
        )
    layout_design = layout_source_design(design)
    point = SweepPoint(
        workload=workload_name,
        scale=scale,
        seed=seed,
        max_accesses_per_core=max_accesses_per_core,
        workload_kwargs=tuple(sorted(workload_kwargs.items())),
    )
    cache = resolve_result_cache(cache_dir, cache_backend)
    workload = point.make()

    with _make_pool(jobs) as pool:
        functional_jobs = {
            _functional_key(point, d): (run_functional_job, point, d)
            for d in (BASELINE, layout_design)
        }
        functional, _ = _run_jobs(pool, cache, functional_jobs)
        reference = functional[_functional_key(point, BASELINE)]
        layout_run = functional[_functional_key(point, layout_design)]

        layout = _build_layout(workload, layout_run)
        timing: dict[str, object] = {}
        timing_jobs: dict[str, tuple] = {}
        variant_keys = {
            _timing_key(point, design, config, options): options
            for options in variants.values()
        }
        # One batched pass over every variant's key; only misses pay
        # for trace generation and a replay job.
        if cache is not None:
            timing.update(cache.get_many(list(variant_keys)))
        trace = None
        for key, options in variant_keys.items():
            if key in timing:
                continue
            if trace is None:
                trace = generate_trace(
                    workload.trace_spec(),
                    reference.memory,
                    num_cores=config.num_cores,
                    max_accesses_per_core=max_accesses_per_core,
                    seed=point.seed,
                )
            timing_jobs[key] = (
                partial(run_timing_job, avr_options=options, engine=engine),
                design,
                config,
                layout,
                trace,
                reference.memory.footprint_bytes,
                1.0,
            )
        timing_results, _ = _execute_jobs(pool, cache, timing_jobs)
        timing.update(timing_results)

    results: dict[str, AblationPoint] = {}
    for label, options in variants.items():
        res = timing[_timing_key(point, design, config, options)]
        results[label] = AblationPoint(
            cycles=res.cycles,
            total_bytes=res.total_bytes,
            amat_cycles=res.amat_cycles,
            llc_mpki=res.llc_mpki,
        )
    return results


#: Compressor-level ablation variants: label -> AVRCompressor kwargs.
COMPRESSOR_ABLATIONS: dict[str, dict] = {
    "full pipeline": {},
    "1D only": {"methods": (CompressionMethod.DOWNSAMPLE_1D,)},
    "2D only": {"methods": (CompressionMethod.DOWNSAMPLE_2D,)},
    "no biasing": {"enable_bias": False},
    "strict float check": {"check_mode": "hardware"},
}


def run_compressor_ablations(
    workload_name: str = "orbit",
    scale: float = 0.5,
    variants: dict[str, dict] | None = None,
    seed: int = 0,
    cache_dir: str | Path | None = None,
    cache_backend: str | None = None,
    **workload_kwargs: object,
) -> dict[str, dict[str, float]]:
    """Compression ratio / mean error per compressor variant, measured
    on the workload's real (baseline-run) approximable data.

    The baseline run is the sweep engine's functional job unit, so with
    ``cache_dir`` it is shared with any other sweep of the same point.
    """
    variants = variants if variants is not None else COMPRESSOR_ABLATIONS
    point = SweepPoint(
        workload=workload_name,
        scale=scale,
        seed=seed,
        workload_kwargs=tuple(sorted(workload_kwargs.items())),
    )
    cache = resolve_result_cache(cache_dir, cache_backend)
    key = _functional_key(point, BASELINE)
    functional, _ = _run_jobs(
        _SerialExecutor(), cache, {key: (run_functional_job, point, BASELINE)}
    )
    reference = functional[key]
    workload = point.make()

    arrays = [
        region.array.ravel()
        for region in reference.memory.regions.values()
        if region.approx
    ]
    flat = np.concatenate(arrays).astype(np.float32)
    nblocks = flat.size // VALUES_PER_BLOCK
    blocks = flat[: nblocks * VALUES_PER_BLOCK].reshape(nblocks, VALUES_PER_BLOCK)

    thresholds = workload.default_thresholds
    out: dict[str, dict[str, float]] = {}
    for label, kwargs in variants.items():
        comp = AVRCompressor(thresholds, **kwargs)
        result = comp.compress_blocks(blocks)
        err = relative_error(blocks, result.reconstructed)
        out[label] = {
            "ratio": result.compression_ratio,
            "mean_error_pct": float(err.mean()) * 100.0,
            "success_pct": float(result.success.mean()) * 100.0,
        }
    return out
