"""Ablation studies for the design choices DESIGN.md calls out.

Two families:

* **LLC ablations** — switch off the AVR architecture's optimizations
  one at a time (DBUF, PFE policy, lazy eviction, skip counters,
  CMS-LRU refresh) and measure time/traffic/AMAT against full AVR.
* **Compressor ablations** — restrict the compression pipeline (single
  downsampling variant, no exponent biasing, strict hardware error
  check) and measure ratio/error on real workload data.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..common.config import SystemConfig
from ..common.constants import VALUES_PER_BLOCK
from ..common.types import CompressionMethod, Design
from ..compression.compressor import AVRCompressor
from ..compression.errors import relative_error
from ..system.factory import build_system
from ..trace.generator import generate_trace
from ..workloads import make_workload
from .runner import _build_layout

#: LLC-level ablation variants: label -> AVRLLC keyword overrides.
LLC_ABLATIONS: dict[str, dict] = {
    "full AVR": {},
    "no DBUF": {"enable_dbuf": False},
    "no lazy eviction": {"enable_lazy_eviction": False},
    "no skip counters": {"enable_skip_counters": False},
    "no CMS-LRU refresh": {"enable_cms_lru_refresh": False},
    "PFE always": {"pfe_threshold": 0},
    "PFE never": {"pfe_threshold": 17},  # more lines than a block has
}


@dataclass
class AblationPoint:
    """Timing metrics of one ablation variant (normalized by caller)."""

    cycles: float
    total_bytes: int
    amat_cycles: float
    llc_mpki: float


def run_llc_ablations(
    workload_name: str = "heat",
    config: SystemConfig | None = None,
    scale: float = 1.0,
    max_accesses_per_core: int = 40_000,
    variants: dict[str, dict] | None = None,
    **workload_kwargs,
) -> dict[str, AblationPoint]:
    """Run the AVR timing system under each ablation variant."""
    config = config or SystemConfig.scaled(num_cores=8)
    variants = variants if variants is not None else LLC_ABLATIONS
    workload = make_workload(workload_name, scale=scale, **workload_kwargs)
    reference = workload.run(Design.BASELINE)
    avr_run = workload.run(Design.AVR)
    layout = _build_layout(workload, avr_run)
    trace = generate_trace(
        workload.trace_spec(),
        reference.memory,
        num_cores=config.num_cores,
        max_accesses_per_core=max_accesses_per_core,
    )

    results: dict[str, AblationPoint] = {}
    for label, options in variants.items():
        system = build_system(
            Design.AVR,
            config,
            layout,
            reference.memory.footprint_bytes,
            avr_options=options,
        )
        res = system.run(trace)
        results[label] = AblationPoint(
            cycles=res.cycles,
            total_bytes=res.total_bytes,
            amat_cycles=res.amat_cycles,
            llc_mpki=res.llc_mpki,
        )
    return results


#: Compressor-level ablation variants: label -> AVRCompressor kwargs.
COMPRESSOR_ABLATIONS: dict[str, dict] = {
    "full pipeline": {},
    "1D only": {"methods": (CompressionMethod.DOWNSAMPLE_1D,)},
    "2D only": {"methods": (CompressionMethod.DOWNSAMPLE_2D,)},
    "no biasing": {"enable_bias": False},
    "strict float check": {"check_mode": "hardware"},
}


def run_compressor_ablations(
    workload_name: str = "orbit",
    scale: float = 0.5,
    variants: dict[str, dict] | None = None,
    **workload_kwargs,
) -> dict[str, dict[str, float]]:
    """Compression ratio / mean error per compressor variant, measured
    on the workload's real (baseline-run) approximable data."""
    variants = variants if variants is not None else COMPRESSOR_ABLATIONS
    workload = make_workload(workload_name, scale=scale, **workload_kwargs)
    reference = workload.run(Design.BASELINE)

    arrays = [
        region.array.ravel()
        for region in reference.memory.regions.values()
        if region.approx
    ]
    flat = np.concatenate(arrays).astype(np.float32)
    nblocks = flat.size // VALUES_PER_BLOCK
    blocks = flat[: nblocks * VALUES_PER_BLOCK].reshape(nblocks, VALUES_PER_BLOCK)

    thresholds = workload.default_thresholds
    out: dict[str, dict[str, float]] = {}
    for label, kwargs in variants.items():
        comp = AVRCompressor(thresholds, **kwargs)
        result = comp.compress_blocks(blocks)
        err = relative_error(blocks, result.reconstructed)
        out[label] = {
            "ratio": result.compression_ratio,
            "mean_error_pct": float(err.mean()) * 100.0,
            "success_pct": float(result.success.mean()) * 100.0,
        }
    return out
