"""Scenario evaluation: contention experiments over workload mixes.

A :class:`~repro.scenario.Scenario` assigns workload instances to
cores; this module runs the mix through the timing layer and measures
what sharing the LLC and DRAM costs each co-runner:

* **per-core slowdown vs solo** — each instance is also replayed
  *alone* on the same machine (same composed layout, same capacity
  model, only its cores populated), and every core's co-run cycle
  count is compared against its solo count;
* **weighted speedup** — the standard multiprogramming throughput
  metric ``sum_i(solo_time_i / corun_time_i)``, which equals the IPC
  ratio sum here because an instance executes the identical
  instruction stream solo and co-run;
* **shared-LLC eviction pressure per co-runner** — a leave-one-out
  replay per instance: the LLC misses the mix suffers *because
  instance i is present* (``misses(mix) - misses(mix without i)``),
  split into the instance's own solo misses and the misses it induces
  on everyone else.

All replays are sweep-engine job units (:func:`run_timing_job` on
subset traces of one composed trace), cached under scenario-qualified
content keys, and exact under both timing engines.  Completion times
fold the bandwidth bound in proportionally: when a run is
bandwidth-bound, every core's latency-bound count is stretched by
``cycles / max(core_cycles)`` so per-core comparisons still see the
DRAM-saturation effect the paper is about.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, TYPE_CHECKING

from .. import __version__
from ..common.config import SystemConfig
from ..common.types import ErrorThresholds
from ..designs import (
    AVR,
    BASELINE,
    DesignMap,
    DesignSpec,
    layout_source_design,
    resolve_designs,
)
from ..scenario import (
    InstancePlan,
    Scenario,
    assign_offsets,
    compose_layouts,
    compose_traces,
    get_scenario,
    plan_instances,
)
from ..system.layout import AddressLayout
from ..system.simulator import SimResult
from ..trace.generator import GeneratedTrace, budget_iterations, generate_trace
from ..trace.store import TraceHandle, TraceStore
from ..workloads.base import Workload, WorkloadResult
from .cache import content_key
from .runner import _build_layout

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from ..designs import DesignLike
    from .sweep import SweepPoint

__all__ = [
    "SCENARIO_DESIGNS",
    "InstanceContention",
    "ScenarioContext",
    "ScenarioDesignRun",
    "ScenarioEvaluation",
    "ScenarioPoint",
    "build_scenario_context",
    "evaluate_scenario",
    "scenario_functional_designs",
    "scenario_subsets",
    "scenario_timing_context",
    "scenario_trace_key",
]

#: designs a scenario evaluation compares by default (baseline anchors
#: the mix-level normalization; AVR is the paper's proposal)
SCENARIO_DESIGNS = (BASELINE, AVR)


@dataclass(frozen=True)
class ScenarioPoint:
    """One scenario grid point: a mix instance the sweep evaluates.

    The scenario analogue of :class:`~repro.harness.sweep.SweepPoint`:
    frozen, hashable, picklable, and canonicalizable into cache keys —
    the *scenario-qualified identity* every timing replay of the mix is
    stored under.
    """

    scenario: Scenario
    seed: int = 0
    thresholds: ErrorThresholds | None = None
    max_accesses_per_core: int = 50_000

    def plans(self) -> list[InstancePlan]:
        return plan_instances(self.scenario, self.seed)

    def instance_point(self, plan: InstancePlan) -> SweepPoint:
        """The functional-layer :class:`SweepPoint` of one instance.

        Instances of identical configuration map to the *same* point
        (and therefore share functional job results and cache entries):
        the functional layer simulates values, which do not depend on
        which cores run the code or how the mix is seeded — only the
        trace jitter consumes the instance's spawned seed.
        """
        from .sweep import SweepPoint

        return SweepPoint(
            workload=plan.entry.workload,
            scale=plan.entry.scale,
            seed=self.seed,
            thresholds=self.thresholds,
            max_accesses_per_core=self.max_accesses_per_core,
            workload_kwargs=plan.entry.workload_kwargs,
        )


def scenario_functional_designs(
    designs: Iterable[DesignLike],
) -> tuple[DesignSpec, ...]:
    """Functional runs a scenario evaluation needs per instance.

    ``baseline`` (reference memory: layouts, footprints, traces) and
    ``AVR`` (measured block sizes for the default timing layout)
    always; dedup-measuring designs (Doppelgänger family) only when
    evaluated (their measured dedup factor parameterizes the capacity
    model), and custom ``layout_source`` designs pull in their source
    run.  Scenario runs report timing contention, not output error, so
    the other designs' functional layers never execute.
    """
    needed = [BASELINE, AVR]
    for design in resolve_designs(designs):
        if design.measures_dedup and design not in needed:
            needed.append(design)
        if design.layout_source is not None:
            source = layout_source_design(design)
            if source not in needed:
                needed.append(source)
    return tuple(needed)


def scenario_subsets(num_instances: int) -> tuple[tuple[int, ...], ...]:
    """Instance subsets the contention experiment replays.

    The full mix, each instance solo, and each leave-one-out
    complement — deduplicated (for a two-instance mix the solo and
    leave-one-out sets coincide) and deterministically ordered.
    """
    full = tuple(range(num_instances))
    if num_instances == 1:
        return (full,)
    subsets = {full}
    for i in range(num_instances):
        subsets.add((i,))
        subsets.add(tuple(j for j in full if j != i))
    return tuple(sorted(subsets, key=lambda s: (len(s), s)))


# ----------------------------------------------------------------------
# Context: everything derived from the functional layer
# ----------------------------------------------------------------------
@dataclass
class ScenarioContext:
    """Composed machine view of one scenario point.

    Built in the parent process from (cached) functional results; the
    composed trace is generated lazily so a fully warm timing cache
    never pays for trace generation, mirroring the single-workload
    sweep path.
    """

    point: ScenarioPoint
    num_cores: int
    plans: list[InstancePlan]
    workloads: list[Workload]
    references: list[WorkloadResult]
    offsets: list[int]
    #: composed timing layout per layout-source design (the canonical
    #: ``AVR`` source is always present; see ``layout_for``)
    layouts: DesignMap
    footprint_bytes: int
    instance_footprints: list[int]
    scale_factors: list[float]
    dedup_factors: DesignMap
    #: memory-mapped trace store consulted before composing the trace
    #: (None = always generate in-process), plus this point's content
    #: key in it — see :func:`scenario_trace_key`
    store: TraceStore | None = field(default=None, repr=False)
    store_key: str | None = None
    _trace: GeneratedTrace | None = field(default=None, repr=False)

    @property
    def layout(self) -> AddressLayout:
        """The default composed layout (canonical AVR-measured sizes)."""
        return self.layouts[AVR]

    def layout_for(self, design: DesignLike) -> AddressLayout:
        """The composed layout a design's timing replay consumes."""
        return self.layouts[layout_source_design(design)]

    def trace(self) -> GeneratedTrace:
        """The composed machine-wide trace.

        With a :class:`~repro.trace.store.TraceStore` attached, a warm
        run memory-maps the stored composed stream instead of
        regenerating and recomposing per-instance traces; a cold run
        generates it once and commits it for the next run.  Without a
        store the trace is generated in-process on first use.
        """
        if self._trace is None:
            if self.store is not None and self.store_key is not None:
                self._trace = self.store.get_or_generate(
                    self.store_key, self._compose
                )
            else:
                self._trace = self._compose()
        return self._trace

    def _compose(self) -> GeneratedTrace:
        per_instance = [
            generate_trace(
                workload.trace_spec(),
                reference.memory,
                num_cores=plan.entry.cores,
                max_accesses_per_core=self.point.max_accesses_per_core,
                seed=plan.seed,
            )
            for plan, workload, reference in zip(
                self.plans, self.workloads, self.references
            )
        ]
        return compose_traces(
            per_instance, self.plans, self.offsets, self.num_cores
        )

    def trace_payload(self) -> GeneratedTrace | TraceHandle:
        """What a timing job should carry as its trace argument.

        When the composed trace is committed to the store, jobs get a
        tiny picklable :class:`~repro.trace.store.TraceHandle` and the
        worker maps the shared payload file; otherwise they carry the
        arrays themselves (the historical behaviour).
        """
        trace = self.trace()
        if (
            self.store is not None
            and self.store_key is not None
            and self.store.contains(self.store_key)
        ):
            return TraceHandle(root=str(self.store.root), key=self.store_key)
        return trace

    def subset_payload(
        self, active: tuple[int, ...]
    ) -> GeneratedTrace | TraceHandle:
        """Trace argument for a subset replay (full mix -> handle)."""
        if len(active) == len(self.plans):
            return self.trace_payload()
        return self.subset_trace(active)

    def subset_trace(self, active: tuple[int, ...]) -> GeneratedTrace:
        """The composed trace with only ``active`` instances populated."""
        full = self.trace()
        if len(active) == len(self.plans):
            return full
        import numpy as np

        from ..trace.events import TRACE_DTYPE

        keep = {c for i in active for c in self.plans[i].cores}
        cores = [
            stream if cid in keep else np.empty(0, dtype=TRACE_DTYPE)
            for cid, stream in enumerate(full.cores)
        ]
        return GeneratedTrace(
            cores=cores,
            iterations_simulated=full.iterations_simulated,
            iterations_total=full.iterations_total,
        )


def scenario_trace_key(point: ScenarioPoint, num_cores: int) -> str:
    """Content key of one point's composed machine-wide trace.

    Covers everything trace composition consumes: the mix's entries,
    placement, seed and access budget (via the point's canonical form),
    the machine width, and the package version.  Excluded, like the
    timing keys: the scenario's cosmetic ``name``, and the error
    ``thresholds`` — traces are generated from reference (exact)
    memory layouts, so every threshold setting of one mix maps the
    same stored stream.
    """
    from dataclasses import replace

    identity = replace(
        point,
        scenario=replace(point.scenario, name=""),
        thresholds=None,
    )
    return content_key("scenario-trace", __version__, identity, num_cores)


def build_scenario_context(
    point: ScenarioPoint,
    config: SystemConfig,
    functional_for: Callable[[SweepPoint, DesignSpec], WorkloadResult],
    designs: Iterable[DesignLike] = SCENARIO_DESIGNS,
    store: TraceStore | None = None,
) -> ScenarioContext:
    """Compose per-instance functional results into one machine view.

    ``functional_for(sweep_point, design)`` supplies the (possibly
    cached) :class:`WorkloadResult` of one instance configuration —
    the seam that lets :func:`repro.harness.sweep.run_sweep` and the
    standalone :func:`evaluate_scenario` share this builder.  With a
    ``store``, the context serves its composed trace from (and commits
    it to) the memory-mapped trace store.
    """
    designs = resolve_designs(designs)
    scenario = point.scenario
    if config.num_cores < scenario.total_cores:
        raise ValueError(
            f"scenario {scenario.name!r} needs {scenario.total_cores} cores "
            f"but the machine has {config.num_cores}"
        )
    # Layout-source designs whose measured block sizes we compose, and
    # dedup-measuring designs whose functional runs we weight.
    sources = [AVR]
    for design in designs:
        source = layout_source_design(design)
        if source not in sources:
            sources.append(source)
    dedup_designs = [d for d in designs if d.measures_dedup]

    plans = point.plans()
    workloads, references, spans = [], [], []
    source_layouts = {source: [] for source in sources}
    dedup_runs = {design: [] for design in dedup_designs}
    for plan in plans:
        ipoint = point.instance_point(plan)
        workload = ipoint.make()
        reference = functional_for(ipoint, BASELINE)
        workloads.append(workload)
        references.append(reference)
        for source in sources:
            run = functional_for(ipoint, source)
            source_layouts[source].append(_build_layout(workload, run))
        spans.append(reference.memory.address_span)
        for design in dedup_designs:
            dedup_runs[design].append(functional_for(ipoint, design))

    offsets = assign_offsets(spans)
    layouts = DesignMap(
        (source, compose_layouts(per_instance, offsets))
        for source, per_instance in source_layouts.items()
    )
    footprints = [ref.memory.footprint_bytes for ref in references]
    scale_factors = []
    for plan, workload, reference in zip(plans, workloads, references):
        spec = workload.trace_spec()
        iters = budget_iterations(
            spec,
            reference.memory,
            plan.entry.cores,
            point.max_accesses_per_core,
        )
        scale_factors.append(spec.iterations / iters if iters else 1.0)

    dedup_factors = DesignMap((design, 1.0) for design in designs)
    for design in dedup_designs:
        # One machine-wide capacity multiplier: the per-instance
        # measured dedup factors, weighted by how much approximable
        # data each instance contributes to the shared LLC.
        runs = dedup_runs[design]
        weights = [run.memory.approx_bytes for run in runs]
        total = sum(weights)
        if total:
            dedup_factors[design] = (
                sum(
                    run.memory.dedup_factor() * w
                    for run, w in zip(runs, weights)
                )
                / total
            )

    return ScenarioContext(
        point=point,
        num_cores=config.num_cores,
        plans=plans,
        workloads=workloads,
        references=references,
        offsets=offsets,
        layouts=layouts,
        footprint_bytes=sum(footprints),
        instance_footprints=footprints,
        scale_factors=scale_factors,
        dedup_factors=dedup_factors,
        store=store,
        store_key=(
            scenario_trace_key(point, config.num_cores)
            if store is not None
            else None
        ),
    )


def scenario_timing_key(
    point: ScenarioPoint,
    design: DesignSpec,
    config: SystemConfig,
    active: tuple[int, ...],
) -> str:
    """Cache key of one subset replay: the scenario-qualified identity.

    Deliberate exclusions, like single-workload timing keys: the
    engine (both engines are bit-identical and share entries) and the
    scenario's cosmetic ``name`` — the registry mix ``heat+lbm`` and
    the equivalent mix string ``heat@4+lbm@4`` describe the same run
    and must share entries, so the key covers only the content
    (entries, placement, seed, budget, thresholds).
    """
    from dataclasses import replace

    identity = replace(point, scenario=replace(point.scenario, name=""))
    return content_key(
        "scenario-timing", __version__, identity, design, config, active
    )


# ----------------------------------------------------------------------
# Results
# ----------------------------------------------------------------------
def _completion_stretch(sim: SimResult) -> float:
    """Bandwidth-bound stretch factor of one replay.

    ``SimResult.cycles`` is ``max(latency bound, bandwidth bound)``;
    when the bandwidth bound wins, every core's completion stretches
    proportionally so per-core comparisons still reflect the
    DRAM-saturation effect.
    """
    peak = max(sim.core_cycles, default=0.0)
    return sim.cycles / peak if peak else 1.0


@dataclass
class InstanceContention:
    """What co-running cost one workload instance."""

    index: int
    workload: str
    cores: tuple[int, ...]
    scale_factor: float
    instructions: int
    solo_cycles: float
    corun_cycles: float
    #: per-core co-run/solo cycle ratio, aligned with ``cores``
    per_core_slowdown: tuple[float, ...]
    solo_llc_misses: float
    #: LLC misses the mix suffers because this instance is present
    #: (full mix minus the leave-one-out replay)
    pressure_llc_misses: float

    @property
    def slowdown(self) -> float:
        """Instance completion-time ratio, co-run vs solo (>= ~1)."""
        return self.corun_cycles / self.solo_cycles if self.solo_cycles else 1.0

    @property
    def speedup(self) -> float:
        """This instance's contribution to the weighted speedup."""
        slowdown = self.slowdown
        return 1.0 / slowdown if slowdown else 0.0

    @property
    def induced_llc_misses(self) -> float:
        """Misses this instance inflicts on its co-runners."""
        return self.pressure_llc_misses - self.solo_llc_misses


@dataclass
class ScenarioDesignRun:
    """One design point's contention outcome on one mix."""

    design: DesignSpec
    corun: SimResult
    instances: list[InstanceContention]

    @property
    def weighted_speedup(self) -> float:
        """``sum_i(solo_time_i / corun_time_i)`` — ideal = #instances."""
        return sum(inst.speedup for inst in self.instances)

    @property
    def llc_miss_inflation(self) -> float:
        """Co-run LLC misses / sum of solo misses (capacity contention)."""
        solo = sum(inst.solo_llc_misses for inst in self.instances)
        corun = float(self.corun.llc_stats.get("llc_misses", 0))
        return corun / solo if solo else 1.0


@dataclass
class ScenarioEvaluation:
    """Everything measured for one scenario across the compared designs."""

    scenario: Scenario
    point: ScenarioPoint
    num_cores: int
    footprint_bytes: int
    runs: DesignMap = field(default_factory=DesignMap)

    @property
    def name(self) -> str:
        return self.scenario.name

    def normalized_mix_time(self, design: DesignLike) -> float:
        """Mix completion time vs the baseline design's co-run.

        NaN when the evaluation did not include the baseline design
        (nothing to normalize against).
        """
        base_run = self.runs.get(BASELINE)
        if base_run is None:
            return float("nan")
        base = base_run.corun.cycles
        return self.runs[design].corun.cycles / base if base else 1.0


def assemble_scenario_evaluation(
    point: ScenarioPoint,
    context: ScenarioContext,
    designs: tuple[DesignSpec, ...],
    timing: dict[tuple[DesignSpec, tuple[int, ...]], SimResult],
) -> ScenarioEvaluation:
    """Fold subset replays into per-design contention metrics."""
    plans = context.plans
    full = tuple(range(len(plans)))
    evaluation = ScenarioEvaluation(
        scenario=point.scenario,
        point=point,
        num_cores=context.num_cores,
        footprint_bytes=context.footprint_bytes,
    )
    for design in designs:
        corun = timing[(design, full)]
        corun_stretch = _completion_stretch(corun)
        corun_misses = float(corun.llc_stats.get("llc_misses", 0))
        instances = []
        for plan, scale_factor in zip(plans, context.scale_factors):
            solo = timing.get((design, (plan.index,)), corun)
            solo_stretch = _completion_stretch(solo)
            per_core = tuple(
                (corun.core_cycles[c] * corun_stretch)
                / (solo.core_cycles[c] * solo_stretch)
                if solo.core_cycles[c]
                else 1.0
                for c in plan.cores
            )
            corun_completion = (
                max(corun.core_cycles[c] for c in plan.cores) * corun_stretch
            )
            solo_misses = float(solo.llc_stats.get("llc_misses", 0))
            if len(plans) == 1:
                pressure = corun_misses
            else:
                loo = timing[
                    (design, tuple(j for j in full if j != plan.index))
                ]
                pressure = corun_misses - float(
                    loo.llc_stats.get("llc_misses", 0)
                )
            instances.append(
                InstanceContention(
                    index=plan.index,
                    workload=plan.workload,
                    cores=plan.cores,
                    scale_factor=scale_factor,
                    instructions=solo.instructions,
                    solo_cycles=solo.cycles,
                    corun_cycles=corun_completion,
                    per_core_slowdown=per_core,
                    solo_llc_misses=solo_misses,
                    pressure_llc_misses=pressure,
                )
            )
        evaluation.runs[design] = ScenarioDesignRun(
            design=design, corun=corun, instances=instances
        )
    return evaluation


# ----------------------------------------------------------------------
# Standalone entry points
# ----------------------------------------------------------------------
def evaluate_scenario(
    scenario: Scenario | str,
    config: SystemConfig | None = None,
    designs: tuple[DesignSpec, ...] = SCENARIO_DESIGNS,
    seed: int = 0,
    thresholds: ErrorThresholds | None = None,
    max_accesses_per_core: int = 50_000,
    jobs: int = 1,
    cache_dir: str | Path | None = None,
    engine: str = "vectorized",
    trace_store: TraceStore | str | Path | bool | None = None,
    cache_backend: str | None = None,
) -> ScenarioEvaluation:
    """Run one multi-programmed mix end to end.

    A convenience wrapper around :func:`repro.harness.sweep.run_sweep`
    for a singleton scenario grid: ``scenario`` may be a
    :class:`Scenario`, a registry name (``heat+lbm``) or a mix string
    (``kmeans*2+heat@2``).  The machine defaults to exactly the mix's
    core count; a wider ``config`` leaves the extra cores idle.
    ``trace_store`` follows :func:`repro.trace.store.resolve_trace_store`
    semantics (default: ``<cache_dir>/traces`` when caching).
    """
    from .sweep import SweepSpec, run_sweep

    scenario = get_scenario(scenario)
    config = config or SystemConfig.scaled(num_cores=scenario.total_cores)
    spec = SweepSpec(
        workloads=(),
        scenarios=(scenario,),
        designs=designs,
        config=config,
        seeds=(seed,),
        thresholds=(thresholds,),
        max_accesses_per_core=max_accesses_per_core,
        engine=engine,
    )
    return run_sweep(
        spec, jobs=jobs, cache_dir=cache_dir, trace_store=trace_store,
        cache_backend=cache_backend,
    ).by_scenario()[scenario.name]


def scenario_timing_context(
    scenario: Scenario | str,
    config: SystemConfig | None = None,
    seed: int = 0,
    max_accesses_per_core: int = 50_000,
    store: TraceStore | None = None,
) -> tuple[SystemConfig, AddressLayout, GeneratedTrace, int]:
    """Composed (config, layout, trace, footprint) of a mix's full co-run.

    The scenario analogue of ``bench_timing.build_context``: runs the
    functional layer serially in-process and returns everything a
    timing replay of the complete mix needs — used by the benchmarks'
    ``--scenario`` modes and the CI scenario smoke job.  With a
    ``store``, the composed trace is served from / committed to it.
    """
    from .sweep import run_functional_job

    scenario = get_scenario(scenario)
    config = config or SystemConfig.scaled(num_cores=scenario.total_cores)
    point = ScenarioPoint(
        scenario=scenario, seed=seed, max_accesses_per_core=max_accesses_per_core
    )
    cache: dict = {}

    def functional_for(ipoint: SweepPoint, design: DesignSpec) -> WorkloadResult:
        key = (ipoint, design)
        if key not in cache:
            cache[key] = run_functional_job(ipoint, design)
        return cache[key]

    context = build_scenario_context(
        point, config, functional_for, designs=(BASELINE, AVR), store=store
    )
    return config, context.layout, context.trace(), context.footprint_bytes
