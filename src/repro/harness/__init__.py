"""Experiment harness: regenerates every table and figure."""

from .ablations import (
    COMPRESSOR_ABLATIONS,
    LLC_ABLATIONS,
    run_compressor_ablations,
    run_llc_ablations,
)
from .experiments import (
    EVICTION_CATEGORIES,
    GEOMEAN,
    REQUEST_CATEGORIES,
    fig09_execution_time,
    fig10_energy,
    fig11_memory_traffic,
    fig12_amat,
    fig13_mpki,
    fig14_llc_requests,
    fig15_llc_evictions,
    hardware_overheads,
    table3_output_error,
    table4_compression,
)
from .report import format_stacked, format_table, transpose
from .runner import (
    ALL_DESIGNS,
    DesignRun,
    WorkloadEvaluation,
    evaluate_all,
    evaluate_workload,
)

__all__ = [
    "ALL_DESIGNS",
    "COMPRESSOR_ABLATIONS",
    "LLC_ABLATIONS",
    "run_compressor_ablations",
    "run_llc_ablations",
    "DesignRun",
    "EVICTION_CATEGORIES",
    "GEOMEAN",
    "REQUEST_CATEGORIES",
    "WorkloadEvaluation",
    "evaluate_all",
    "evaluate_workload",
    "fig09_execution_time",
    "fig10_energy",
    "fig11_memory_traffic",
    "fig12_amat",
    "fig13_mpki",
    "fig14_llc_requests",
    "fig15_llc_evictions",
    "format_stacked",
    "format_table",
    "hardware_overheads",
    "table3_output_error",
    "table4_compression",
    "transpose",
]
