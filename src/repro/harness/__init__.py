"""Experiment harness: regenerates every table and figure.

The heavy lifting happens in the sweep engine
(:mod:`repro.harness.sweep`): a :class:`SweepSpec` enumerates the
evaluation grid as independent job units, :func:`run_sweep` executes
them serially or over a process pool, and
:class:`~repro.harness.cache.ResultCache` memoizes job results on disk.
:func:`evaluate_all` / :func:`evaluate_workload` /
:func:`regenerate_all` are convenience entry points layered on top —
as is the declarative facade :func:`repro.experiment.run_experiment`,
which decomposes an :class:`~repro.experiment.ExperimentSpec` into the
same job units (and therefore the same cache entries).  Designs are
resolved through the open registry (:mod:`repro.designs`) everywhere.
"""

from .ablations import (
    COMPRESSOR_ABLATIONS,
    LLC_ABLATIONS,
    run_compressor_ablations,
    run_llc_ablations,
)
from .cache import (
    CacheBackend,
    CacheStats,
    MemoryTierBackend,
    ReadThroughBackend,
    ResultCache,
    ShardedFileBackend,
    content_key,
    resolve_backend,
)
from .experiments import (
    EVICTION_CATEGORIES,
    GEOMEAN,
    REQUEST_CATEGORIES,
    regenerate_all,
    fig09_execution_time,
    fig10_energy,
    fig11_memory_traffic,
    fig12_amat,
    fig13_mpki,
    fig14_llc_requests,
    fig15_llc_evictions,
    hardware_overheads,
    table3_output_error,
    table4_compression,
)
from .report import (
    evaluation_to_mapping,
    experiment_result_to_mapping,
    format_stacked,
    format_table,
    scenario_evaluation_to_mapping,
    sim_result_to_mapping,
    sweep_stats_to_mapping,
    transpose,
)
from .runner import (
    ALL_DESIGNS,
    DesignRun,
    WorkloadEvaluation,
    evaluate_all,
    evaluate_workload,
)
from .scenario import (
    SCENARIO_DESIGNS,
    InstanceContention,
    ScenarioDesignRun,
    ScenarioEvaluation,
    ScenarioPoint,
    evaluate_scenario,
    scenario_timing_context,
)
from .sweep import (
    SweepPoint,
    SweepResult,
    SweepSpec,
    SweepStats,
    run_functional_job,
    run_sweep,
    run_timing_job,
)

__all__ = [
    "ALL_DESIGNS",
    "CacheBackend",
    "CacheStats",
    "COMPRESSOR_ABLATIONS",
    "InstanceContention",
    "LLC_ABLATIONS",
    "MemoryTierBackend",
    "ReadThroughBackend",
    "ResultCache",
    "ShardedFileBackend",
    "SCENARIO_DESIGNS",
    "ScenarioDesignRun",
    "ScenarioEvaluation",
    "ScenarioPoint",
    "SweepPoint",
    "SweepResult",
    "SweepSpec",
    "SweepStats",
    "content_key",
    "regenerate_all",
    "resolve_backend",
    "run_compressor_ablations",
    "run_functional_job",
    "run_llc_ablations",
    "run_sweep",
    "run_timing_job",
    "DesignRun",
    "EVICTION_CATEGORIES",
    "GEOMEAN",
    "REQUEST_CATEGORIES",
    "WorkloadEvaluation",
    "evaluate_all",
    "evaluate_scenario",
    "evaluate_workload",
    "scenario_timing_context",
    "fig09_execution_time",
    "fig10_energy",
    "fig11_memory_traffic",
    "fig12_amat",
    "fig13_mpki",
    "fig14_llc_requests",
    "fig15_llc_evictions",
    "evaluation_to_mapping",
    "experiment_result_to_mapping",
    "format_stacked",
    "format_table",
    "hardware_overheads",
    "scenario_evaluation_to_mapping",
    "sim_result_to_mapping",
    "sweep_stats_to_mapping",
    "table3_output_error",
    "table4_compression",
    "transpose",
]
