"""End-to-end evaluation runner: functional layer + timing layer.

For one workload, :func:`evaluate_workload` runs the functional
simulation under every design (output error, compression ratios, dedup
factors, iteration counts), builds the timing layer's address layout
from the measured per-block sizes, replays the workload's synthetic
trace through each design's timing system, and bundles everything the
tables and figures need.

Execution is delegated to the sweep engine
(:mod:`repro.harness.sweep`), which decomposes each workload into
independent functional and timing *job units* that can run serially
in-process, fan out over a process pool, or be served from the on-disk
result cache — all three paths produce bit-identical
:class:`WorkloadEvaluation` objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, TYPE_CHECKING

import numpy as np

from ..common.config import SystemConfig
from ..common.constants import BLOCK_CACHELINES
from ..designs import BASELINE, COMPARED, DesignMap, DesignSpec
from ..system.layout import AddressLayout
from ..system.simulator import SimResult
from ..workloads.base import Workload, WorkloadResult

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from ..common.types import ErrorThresholds
    from ..designs import DesignLike
    from ..trace.store import TraceStore

#: design points evaluated by default (baseline + the four compared)
ALL_DESIGNS = (BASELINE,) + COMPARED


@dataclass
class DesignRun:
    """One design point's functional + timing outcome on one workload."""

    design: DesignSpec
    output_error: float
    iterations: int
    compression_ratio: float
    dedup_factor: float
    timing: SimResult


@dataclass
class WorkloadEvaluation:
    """Everything measured for one workload across all designs.

    ``runs`` is a :class:`~repro.designs.DesignMap`: keyed by
    :class:`~repro.designs.DesignSpec`, with lookups also accepting
    registry names and legacy ``Design`` enum members.
    """

    name: str
    baseline_iterations: int
    footprint_bytes: int
    timing_approx_bytes: int
    avr_compression_ratio: float
    runs: DesignMap = field(default_factory=DesignMap)

    @property
    def approx_fraction(self) -> float:
        if not self.footprint_bytes:
            return 0.0
        return min(1.0, self.timing_approx_bytes / self.footprint_bytes)

    @property
    def footprint_vs_baseline(self) -> float:
        """Table 4 row 2: stored data volume / baseline volume."""
        frac = self.approx_fraction
        ratio = max(self.avr_compression_ratio, 1e-9)
        return (1.0 - frac) + frac / ratio

    def baseline(self) -> DesignRun:
        return self.runs[BASELINE]

    def normalized(self, design: DesignLike, metric: str) -> float:
        """Design metric / baseline metric (iteration-count adjusted)."""
        run, base = self.runs[design], self.baseline()
        if metric == "time":
            return run.timing.adjusted_cycles / base.timing.cycles
        if metric == "energy":
            return run.timing.adjusted_energy_total / base.timing.energy.total
        if metric == "traffic":
            return run.timing.adjusted_bytes / base.timing.total_bytes
        if metric == "amat":
            return run.timing.amat_cycles / base.timing.amat_cycles
        if metric == "mpki":
            return run.timing.llc_mpki / base.timing.llc_mpki
        raise ValueError(f"unknown metric {metric!r}")


def _build_layout(workload: Workload, avr_run: WorkloadResult) -> AddressLayout:
    """Timing-layer approximable ranges with measured block sizes.

    Regions the architecture treats as approximable but that were not
    functionally round-tripped (the LBM distribution arrays) get a
    proxy size: the mean measured compressed size of the regions that
    were (see ``Workload.timing_approx_regions``).
    """
    mem = avr_run.memory
    names = workload.timing_approx_regions
    if names is None:
        names = tuple(n for n, r in mem.regions.items() if r.approx)

    if workload.timing_proxy_ratio is not None:
        proxy = max(1, int(round(BLOCK_CACHELINES / workload.timing_proxy_ratio)))
    else:
        measured = [
            mem.regions[n].block_sizes
            for n in names
            if mem.regions[n].block_sizes is not None
        ]
        proxy = (
            int(round(float(np.concatenate(measured).mean())))
            if measured
            else BLOCK_CACHELINES
        )
    layout = AddressLayout()
    for name in names:
        region = mem.regions[name]
        sizes = region.block_sizes if region.block_sizes is not None else proxy
        layout.add_region(region.base_addr, region.nbytes, sizes)
    return layout


def evaluate_workload(
    name: str,
    config: SystemConfig | None = None,
    scale: float = 1.0,
    seed: int = 0,
    designs: tuple[DesignSpec, ...] = ALL_DESIGNS,
    max_accesses_per_core: int = 50_000,
    thresholds: ErrorThresholds | None = None,
    jobs: int = 1,
    cache_dir: str | Path | None = None,
    engine: str = "vectorized",
    trace_store: TraceStore | str | Path | bool | None = None,
    cache_backend: str | None = None,
    **workload_kwargs: Any,
) -> WorkloadEvaluation:
    """Run one workload through the functional and timing layers.

    A convenience wrapper around :func:`repro.harness.sweep.run_sweep`
    for a single-point grid.  ``jobs`` parallelizes across this
    workload's designs; ``cache_dir`` reuses previously computed job
    results (see :mod:`repro.harness.cache`); ``engine`` selects the
    timing-replay implementation (both produce identical results);
    ``trace_store`` selects the memory-mapped trace store (default:
    ``<cache_dir>/traces`` when caching).
    """
    from .sweep import SweepSpec, run_sweep

    spec = SweepSpec(
        workloads=(name,),
        designs=designs,
        config=config,
        scales=(scale,),
        seeds=(seed,),
        thresholds=(thresholds,),
        max_accesses_per_core=max_accesses_per_core,
        workload_kwargs=tuple(sorted(workload_kwargs.items())),
        engine=engine,
    )
    return run_sweep(
        spec, jobs=jobs, cache_dir=cache_dir, trace_store=trace_store,
        cache_backend=cache_backend,
    ).by_workload()[name]


def evaluate_all(
    names: tuple[str, ...] | None = None,
    config: SystemConfig | None = None,
    scale: float = 1.0,
    seed: int = 0,
    designs: tuple[DesignSpec, ...] = ALL_DESIGNS,
    max_accesses_per_core: int = 50_000,
    jobs: int = 1,
    cache_dir: str | Path | None = None,
    engine: str = "vectorized",
    trace_store: TraceStore | str | Path | bool | None = None,
    cache_backend: str | None = None,
) -> dict[str, WorkloadEvaluation]:
    """Evaluate every workload (paper order).

    Built on the sweep engine: ``jobs`` fans the grid's functional and
    timing job units out over a process pool (``1`` keeps the fully
    serial, in-process path), ``cache_dir`` enables the on-disk result
    cache so repeated evaluations skip completed points, ``engine``
    selects the timing-replay implementation, and ``trace_store``
    selects the memory-mapped trace store (default:
    ``<cache_dir>/traces`` when caching).
    """
    from ..workloads import WORKLOADS
    from .sweep import SweepSpec, run_sweep

    spec = SweepSpec(
        workloads=names or tuple(WORKLOADS),
        designs=designs,
        config=config,
        scales=(scale,),
        seeds=(seed,),
        max_accesses_per_core=max_accesses_per_core,
        engine=engine,
    )
    return run_sweep(
        spec, jobs=jobs, cache_dir=cache_dir, trace_store=trace_store,
        cache_backend=cache_backend,
    ).by_workload()
