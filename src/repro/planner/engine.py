"""The planning engine: multi-fidelity search over the design space.

:func:`run_plan` answers the paper's real question — *which design
configuration minimizes DRAM traffic (or any other metric) within an
output-error budget?* — without the exhaustive full-fidelity grid the
harness historically swept.  Three cooperating layers:

1. Every candidate evaluation decomposes into ordinary sweep job units
   (:func:`~repro.harness.sweep.run_sweep` on a one-point grid), so
   planner probes share the on-disk result cache — and the process
   pool, trace store, and bit-identical results — with sweeps and
   experiments of the same configurations.  A warm re-plan executes
   nothing.
2. A successive-halving loop over a trace-fidelity ladder
   (:mod:`~repro.planner.halving`): the whole population runs at a
   cheap accesses-per-core budget, survivors are promoted by Pareto
   rank + objective, and only the final rung pays full fidelity.
   Functional jobs are fidelity-independent (their cache keys
   normalize the trace budget away), so climbing a rung costs only
   timing replays.
3. A cheap numpy surrogate (:mod:`~repro.planner.surrogate`) fitted
   from already-cached sweep points seeds rung 0 when
   ``initial_candidates`` caps the starting population; with no cached
   data the seed order falls back to a shuffle drawn from the plan's
   explicitly threaded :class:`numpy.random.Generator`.

The result is the Pareto front over the plan's metrics at full
fidelity, plus recommended :class:`~repro.designs.DesignSpec`s and an
accounting of full-fidelity evaluations saved vs the exhaustive grid.
Planning is deterministic given (spec, seed).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import TYPE_CHECKING, Any

import numpy as np

from ..common.config import SystemConfig
from ..common.types import ErrorThresholds
from ..designs import BASELINE, DesignSpec, register_design
from ..harness.cache import resolve_result_cache
from ..harness.sweep import (
    SweepSpec,
    SweepStats,
    functional_job_key,
    run_sweep,
    timing_job_key,
)
from .halving import Rung, rank_candidates, rung_schedule
from .pareto import metric_matrix, nondominated_mask
from .space import Candidate, enumerate_candidates
from .spec import MAXIMIZE, PlanSpec
from .surrogate import Surrogate, candidate_features

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..experiment import ExperimentSpec
    from ..harness.runner import WorkloadEvaluation
    from ..workloads.base import Workload

__all__ = [
    "CandidateOutcome",
    "PlanResult",
    "PlanStats",
    "RungResult",
    "run_plan",
]


@dataclass
class PlanStats:
    """What one plan measured, executed, and saved."""

    #: size of the enumerated candidate space
    candidates: int = 0
    #: full-fidelity evaluations the exhaustive grid would need
    exhaustive_full_evals: int = 0
    #: distinct candidates this plan evaluated at full fidelity
    full_fidelity_evals: int = 0
    #: candidate evaluations performed below full fidelity
    low_fidelity_evals: int = 0
    #: sweep jobs actually executed (not served from the cache)
    jobs_executed: int = 0
    #: timing jobs executed inside full-fidelity rung sweeps — a warm
    #: re-plan keeps this (and ``jobs_executed``) at zero
    full_fidelity_executed: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    #: already-cached sweep points the surrogate model was fitted from
    surrogate_points: int = 0

    @property
    def savings(self) -> float:
        """Exhaustive-grid full-fidelity evals / this plan's."""
        return self.exhaustive_full_evals / max(self.full_fidelity_evals, 1)


@dataclass(frozen=True)
class CandidateOutcome:
    """One candidate's measured metrics at one fidelity."""

    candidate: Candidate
    fidelity: int
    #: every :data:`~repro.planner.spec.METRICS` entry, measured
    metrics: dict[str, float] = field(compare=False)
    feasible: bool = True

    def to_mapping(self) -> dict[str, Any]:
        """JSON-able form (reports, ``repro plan --json``)."""
        return {
            "key": self.candidate.key(),
            "design": self.candidate.design.name,
            "t2": self.candidate.t2,
            "fidelity": self.fidelity,
            "feasible": self.feasible,
            "metrics": {k: float(v) for k, v in self.metrics.items()},
        }


@dataclass(frozen=True)
class RungResult:
    """One rung of the halving loop, as run."""

    index: int
    fidelity: int
    outcomes: tuple[CandidateOutcome, ...]
    #: candidate keys promoted to the next rung (empty on the last)
    promoted: tuple[str, ...]


@dataclass
class PlanResult:
    """A finished plan: the front, the rungs, and the accounting."""

    spec: PlanSpec
    candidates: tuple[Candidate, ...]
    rungs: tuple[RungResult, ...]
    #: non-dominated, feasible full-fidelity outcomes
    front: tuple[CandidateOutcome, ...]
    #: the front ordered by the plan objective (best first)
    recommended: tuple[CandidateOutcome, ...]
    stats: PlanStats

    def recommended_designs(self) -> tuple[DesignSpec, ...]:
        """The design specs behind :attr:`recommended`, best first."""
        seen: list[DesignSpec] = []
        for outcome in self.recommended:
            if outcome.candidate.design not in seen:
                seen.append(outcome.candidate.design)
        return tuple(seen)

    def prune_experiment(self, experiment: "ExperimentSpec") -> "ExperimentSpec":
        """Narrow an experiment grid to this plan's recommendations.

        The sweep pre-pruning seam: the experiment's ``designs`` axis
        is replaced by the front's designs (derived variants are
        registered so their names resolve), and — when this plan
        searched a T2 axis — its ``t2_thresholds`` axis is replaced by
        the T2 values the front actually uses.
        """
        if not self.front:
            raise ValueError(
                "cannot prune an experiment from an empty Pareto front "
                "(no feasible candidates)"
            )
        names: list[str] = []
        for outcome in self.recommended:
            design = outcome.candidate.design
            register_design(design)
            if design.name not in names:
                names.append(design.name)
        t2s: tuple[float, ...] | None = None
        if self.spec.t2_thresholds:
            t2s = tuple(
                sorted(
                    {
                        o.candidate.t2
                        for o in self.recommended
                        if o.candidate.t2 is not None
                    }
                )
            )
        return experiment.pruned(tuple(names), t2s)

    def to_mapping(self) -> dict[str, Any]:
        """JSON-able summary of the whole plan."""
        return {
            "name": self.spec.name,
            "plan_hash": self.spec.content_hash(),
            "workload": self.spec.workload,
            "objective": self.spec.objective,
            "constraints": list(self.spec.constraints),
            "pareto_metrics": list(self.spec.pareto_metrics),
            "budget": self.spec.budget,
            "seed": self.spec.seed,
            "candidates": len(self.candidates),
            "rungs": [
                {
                    "index": rung.index,
                    "fidelity": rung.fidelity,
                    "evaluated": [o.candidate.key() for o in rung.outcomes],
                    "promoted": list(rung.promoted),
                }
                for rung in self.rungs
            ],
            "front": [o.to_mapping() for o in self.front],
            "recommended": [o.candidate.label() for o in self.recommended],
            "stats": {
                "candidates": self.stats.candidates,
                "exhaustive_full_evals": self.stats.exhaustive_full_evals,
                "full_fidelity_evals": self.stats.full_fidelity_evals,
                "low_fidelity_evals": self.stats.low_fidelity_evals,
                "jobs_executed": self.stats.jobs_executed,
                "full_fidelity_executed": self.stats.full_fidelity_executed,
                "cache_hits": self.stats.cache_hits,
                "cache_misses": self.stats.cache_misses,
                "surrogate_points": self.stats.surrogate_points,
                "savings": round(self.stats.savings, 3),
            },
        }


class _Planner:
    """One planning run's mutable state (see :func:`run_plan`)."""

    def __init__(
        self,
        spec: PlanSpec,
        jobs: int,
        cache_dir: str | Path | None,
        trace_store: str | Path | bool | None,
        cache_backend: str | None = None,
        executor: Any | None = None,
        on_unit_done: Any | None = None,
    ) -> None:
        self.spec = spec
        self.jobs = jobs
        self.trace_store = trace_store
        self.executor = executor
        self.on_unit_done = on_unit_done
        # One cache instance threads through every internal sweep, so a
        # memory tier (or read-through stack) spans the whole plan —
        # rungs re-reading shared functional results hit RAM.
        self.cache = resolve_result_cache(cache_dir, cache_backend)
        self.config = SystemConfig.scaled(num_cores=spec.resolved_cores())
        self.constraints = spec.parsed_constraints()
        self.stats = PlanStats()
        self.rng = np.random.default_rng(spec.seed)
        self._full_keys: set[str] = set()
        self._workload: "Workload | None" = None

    # ------------------------------------------------------------------
    # measurement: candidate evaluations as sweep job units
    # ------------------------------------------------------------------
    def measure(
        self, candidates: list[Candidate], fidelity: int
    ) -> list[CandidateOutcome]:
        """Evaluate ``candidates`` at ``fidelity`` through the sweep engine.

        Candidates sharing a T2 override share one sweep grid point —
        one composed trace, one baseline replay — exactly as an
        exhaustive sweep of the same designs would.
        """
        full = fidelity == self.spec.max_accesses_per_core
        groups: dict[float | None, list[Candidate]] = {}
        for candidate in candidates:
            groups.setdefault(candidate.t2, []).append(candidate)
        outcomes: dict[Candidate, CandidateOutcome] = {}
        for t2, group in groups.items():
            designs: list[DesignSpec] = [BASELINE]
            for candidate in group:
                if candidate.design not in designs:
                    designs.append(candidate.design)
            thresholds = (
                ErrorThresholds.from_t2(t2) if t2 is not None else None
            )
            sweep = run_sweep(
                SweepSpec(
                    workloads=(self.spec.workload,),
                    designs=tuple(designs),
                    config=self.config,
                    scales=(self.spec.scale,),
                    seeds=(self.spec.trace_seed,),
                    thresholds=(thresholds,),
                    max_accesses_per_core=fidelity,
                    engine=self.spec.engine,
                ),
                jobs=self.jobs,
                cache_dir=self.cache,
                trace_store=self.trace_store,
                executor=self.executor,
                on_unit_done=self.on_unit_done,
            )
            self._absorb(sweep.stats, full)
            evaluation = sweep.by_workload()[self.spec.workload]
            for candidate in group:
                metrics = self._metrics(evaluation, candidate.design)
                outcomes[candidate] = CandidateOutcome(
                    candidate=candidate,
                    fidelity=fidelity,
                    metrics=metrics,
                    feasible=all(
                        c.satisfied(metrics[c.metric]) for c in self.constraints
                    ),
                )
        for candidate in candidates:
            if full:
                self._full_keys.add(candidate.key())
            else:
                self.stats.low_fidelity_evals += 1
        return [outcomes[candidate] for candidate in candidates]

    def _absorb(self, sweep_stats: SweepStats, full: bool) -> None:
        self.stats.jobs_executed += sweep_stats.executed
        self.stats.cache_hits += sweep_stats.cache_hits
        self.stats.cache_misses += sweep_stats.cache_misses
        if full:
            self.stats.full_fidelity_executed += sweep_stats.timing_executed

    @staticmethod
    def _metrics(
        evaluation: "WorkloadEvaluation", design: DesignSpec
    ) -> dict[str, float]:
        run = evaluation.runs[design]
        return {
            "traffic": evaluation.normalized(design, "traffic"),
            "time": evaluation.normalized(design, "time"),
            "amat": evaluation.normalized(design, "amat"),
            "mpki": evaluation.normalized(design, "mpki"),
            "energy": evaluation.normalized(design, "energy"),
            "error": run.output_error,
            "compression": run.compression_ratio,
        }

    # ------------------------------------------------------------------
    # surrogate: harvest already-cached sweep points
    # ------------------------------------------------------------------
    def harvest_surrogate(
        self, candidates: tuple[Candidate, ...], fidelities: tuple[int, ...]
    ) -> Surrogate | None:
        """Fit the surrogate from whatever the result cache already holds.

        Every (candidate, fidelity) pair's speculative job keys are
        enumerated up front and resolved in **one** index-backed bulk
        probe (:meth:`ResultCache.peek_many` — stats-neutral, and
        absent keys cost index lookups, not ``open()`` attempts,
        instead of the historical four ``peek`` calls per pair).
        Metrics are reconstructed from the probe's results — no
        simulation runs here, ever.
        """
        if self.cache is None:
            return None
        probes: list[tuple[Candidate, int, tuple[str, str, str, str]]] = []
        keys: set[str] = set()
        for candidate in candidates:
            for fidelity in fidelities:
                group = self._probe_keys(candidate, fidelity)
                probes.append((candidate, fidelity, group))
                keys.update(group)
        blob = self.cache.peek_many(sorted(keys))
        features: list[np.ndarray] = []
        values: list[float] = []
        for candidate, fidelity, group in probes:
            metrics = self._cached_metrics(candidate, group, blob)
            if metrics is None:
                continue
            features.append(
                candidate_features(
                    candidate, fidelity, self.spec.max_accesses_per_core
                )
            )
            values.append(metrics[self.spec.objective])
        surrogate = Surrogate.fit(features, values)
        self.stats.surrogate_points = len(values)
        return surrogate

    def _probe_keys(
        self, candidate: Candidate, fidelity: int
    ) -> tuple[str, str, str, str]:
        """The four speculative job keys one (candidate, fidelity) needs.

        (reference functional, design functional, reference timing,
        design timing) — reference designs reuse the reference
        functional key, exactly as :func:`run_sweep` deduplicates them.
        """
        point = candidate.sweep_point(self.spec, fidelity)
        design = candidate.design
        reference_key = functional_job_key(point, BASELINE)
        return (
            reference_key,
            reference_key
            if design.is_reference
            else functional_job_key(point, design),
            timing_job_key(point, BASELINE, self.config),
            timing_job_key(point, design, self.config),
        )

    def _cached_metrics(
        self,
        candidate: Candidate,
        group: tuple[str, str, str, str],
        blob: dict[str, Any],
    ) -> dict[str, float] | None:
        """Reconstruct one evaluation's metrics from the bulk probe."""
        design = candidate.design
        reference = blob.get(group[0])
        functional = blob.get(group[1])
        base_sim = blob.get(group[2])
        sim = blob.get(group[3])
        if reference is None:
            return None
        if functional is None or base_sim is None or sim is None:
            return None
        factor = functional.iterations / max(reference.iterations, 1)
        if self._workload is None:
            # Same workload instance for every candidate: the plan pins
            # (workload, scale, seed), and the trace budget does not
            # enter workload construction.
            self._workload = candidate.sweep_point(
                self.spec, self.spec.max_accesses_per_core
            ).make()
        error = (
            0.0
            if design.is_reference
            else self._workload.output_error(functional, reference)
        )
        return {
            "traffic": sim.total_bytes * factor / base_sim.total_bytes,
            "time": sim.cycles * factor / base_sim.cycles,
            "amat": sim.amat_cycles / base_sim.amat_cycles,
            "mpki": sim.llc_mpki / base_sim.llc_mpki,
            "energy": sim.energy.total * factor / base_sim.energy.total,
            "error": error,
            "compression": functional.memory.compression_ratio(),
        }

    # ------------------------------------------------------------------
    # rung 0 seeding
    # ------------------------------------------------------------------
    def seed_population(
        self,
        candidates: tuple[Candidate, ...],
        surrogate: Surrogate | None,
        count: int,
        low_fidelity: int,
    ) -> list[Candidate]:
        """Pick the rung-0 population of ``count`` candidates.

        With a fitted surrogate: the candidates predicted best on the
        objective (deterministic, keyed tie-break).  Without one: a
        shuffle drawn from the plan's seeded Generator — stochastic,
        but a pure function of (spec, seed).
        """
        if count >= len(candidates):
            return list(candidates)
        if surrogate is not None:
            sign = -1.0 if self.spec.objective in MAXIMIZE else 1.0
            scored = sorted(
                candidates,
                key=lambda c: (
                    sign
                    * surrogate.predict(
                        candidate_features(
                            c, low_fidelity, self.spec.max_accesses_per_core
                        )
                    ),
                    c.key(),
                ),
            )
            return scored[:count]
        order = self.rng.permutation(len(candidates))
        return [candidates[i] for i in order[:count]]

    # ------------------------------------------------------------------
    # the halving loop
    # ------------------------------------------------------------------
    def run(self) -> PlanResult:
        spec = self.spec
        candidates = enumerate_candidates(spec)
        self.stats.candidates = len(candidates)
        self.stats.exhaustive_full_evals = len(candidates)

        population_cap = (
            min(spec.initial_candidates, len(candidates))
            if spec.initial_candidates
            else len(candidates)
        )
        schedule = rung_schedule(
            population_cap,
            spec.budget,
            spec.eta,
            spec.max_accesses_per_core,
            spec.min_fidelity,
        )
        surrogate = self.harvest_surrogate(
            candidates, tuple(r.fidelity for r in schedule)
        )
        population = self.seed_population(
            candidates, surrogate, population_cap, schedule[0].fidelity
        )

        rungs: list[RungResult] = []
        outcomes: list[CandidateOutcome] = []
        for index, rung in enumerate(schedule):
            population = population[: rung.count]
            outcomes = self.measure(population, rung.fidelity)
            promoted: tuple[str, ...] = ()
            if index + 1 < len(schedule):
                order = rank_candidates(
                    [o.candidate.key() for o in outcomes],
                    [o.metrics for o in outcomes],
                    spec.objective,
                    self.constraints,
                    spec.pareto_metrics,
                )
                keep = schedule[index + 1].count
                population = [outcomes[i].candidate for i in order[:keep]]
                promoted = tuple(o.key() for o in population)
            rungs.append(
                RungResult(
                    index=index,
                    fidelity=rung.fidelity,
                    outcomes=tuple(outcomes),
                    promoted=promoted,
                )
            )
        self.stats.full_fidelity_evals = len(self._full_keys)

        feasible = [o for o in outcomes if o.feasible]
        front: tuple[CandidateOutcome, ...] = ()
        if feasible:
            mask = nondominated_mask(
                metric_matrix([o.metrics for o in feasible], spec.pareto_metrics)
            )
            front = tuple(o for o, keep in zip(feasible, mask) if keep)
        sign = -1.0 if spec.objective in MAXIMIZE else 1.0
        recommended = tuple(
            sorted(
                front,
                key=lambda o: (sign * o.metrics[spec.objective], o.candidate.key()),
            )
        )
        return PlanResult(
            spec=spec,
            candidates=candidates,
            rungs=tuple(rungs),
            front=front,
            recommended=recommended,
            stats=self.stats,
        )


def run_plan(
    spec: PlanSpec | str | Path,
    jobs: int | None = None,
    cache_dir: str | Path | None = None,
    engine: str | None = None,
    trace_store: str | Path | bool | None = None,
    cache_backend: str | None = None,
    executor: Any | None = None,
    on_unit_done: Any | None = None,
) -> PlanResult:
    """Execute a plan spec (or spec file) end to end.

    ``jobs`` / ``cache_dir`` / ``engine`` / ``trace_store`` /
    ``cache_backend`` override the spec's execution settings without
    touching its identity, mirroring
    :func:`~repro.experiment.run_experiment`; ``executor`` /
    ``on_unit_done`` thread a caller-owned
    :class:`~repro.harness.sweep.JobExecutor` and per-unit progress
    hook through every internal sweep (the ``repro serve`` daemon's
    seam).  Planning is deterministic given (spec, seed): re-running
    the same plan yields an identical :class:`PlanResult`, and with a
    warm cache it executes zero sweep jobs.
    """
    if isinstance(spec, (str, Path)):
        spec = PlanSpec.from_file(spec)
    if engine is not None:
        spec = replace(spec, engine=engine)
    planner = _Planner(
        spec,
        jobs=jobs if jobs is not None else spec.jobs,
        cache_dir=cache_dir if cache_dir is not None else spec.cache_dir,
        trace_store=trace_store if trace_store is not None else spec.trace_store,
        cache_backend=(
            cache_backend if cache_backend is not None else spec.cache_backend
        ),
        executor=executor,
        on_unit_done=on_unit_done,
    )
    return planner.run()
