"""Non-dominated sorting over candidate metric vectors.

Pure numpy, deterministic, O(n^2) pairwise domination — plan spaces
are small by construction (the whole point of the planner is to keep
the evaluated set small), so clarity wins over asymptotics.

Direction handling: metrics named in :data:`repro.planner.spec.MAXIMIZE`
(compression ratio) are negated into minimization space once, so the
core works on a single convention — *smaller is better on every
column*.
"""

from __future__ import annotations

import numpy as np

from .spec import MAXIMIZE

__all__ = ["metric_matrix", "nondominated_mask", "nondominated_rank"]


def metric_matrix(
    metric_rows: list[dict[str, float]], metrics: tuple[str, ...]
) -> np.ndarray:
    """Stack per-candidate metric dicts into minimization space.

    Returns an ``(n_candidates, n_metrics)`` float64 matrix with
    maximize-direction columns negated, ready for the domination
    kernels below.
    """
    matrix = np.empty((len(metric_rows), len(metrics)), dtype=np.float64)
    for j, metric in enumerate(metrics):
        sign = -1.0 if metric in MAXIMIZE else 1.0
        matrix[:, j] = [sign * row[metric] for row in metric_rows]
    return matrix


def nondominated_mask(values: np.ndarray) -> np.ndarray:
    """Boolean mask of the Pareto front of ``values`` (minimize-all).

    Row ``a`` dominates row ``b`` iff ``a <= b`` everywhere and
    ``a < b`` somewhere; the mask marks rows no other row dominates.
    Duplicate rows do not dominate each other, so ties all stay on the
    front (deterministic and order-independent).
    """
    if values.ndim != 2:
        raise ValueError(f"expected a 2-D metric matrix, got shape {values.shape}")
    n = values.shape[0]
    if n == 0:
        return np.zeros(0, dtype=bool)
    # Pairwise comparison tensors: leq[i, j] = row i <= row j everywhere.
    leq = (values[:, None, :] <= values[None, :, :]).all(axis=2)
    lt = (values[:, None, :] < values[None, :, :]).any(axis=2)
    dominates = leq & lt
    return ~dominates.any(axis=0)


def nondominated_rank(values: np.ndarray) -> np.ndarray:
    """Pareto rank of every row: 0 = front, 1 = front once peeled, ...

    The halving loop promotes by ``(rank, objective)`` so rung
    survivors cover the whole emerging front instead of only the
    scalar-objective winners — that is what lets a budgeted plan
    recover the exhaustive grid's front.
    """
    n = values.shape[0]
    ranks = np.full(n, -1, dtype=np.int64)
    remaining = np.arange(n)
    rank = 0
    while remaining.size:
        front = nondominated_mask(values[remaining])
        ranks[remaining[front]] = rank
        remaining = remaining[~front]
        rank += 1
    return ranks
