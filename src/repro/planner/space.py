"""Candidate enumeration: the design points a plan searches over.

A :class:`Candidate` is one concrete configuration the planner may
evaluate — a (possibly derived) :class:`~repro.designs.DesignSpec`
plus an optional T2 error-threshold override.  Candidates are built
from the :class:`~repro.planner.spec.PlanSpec` axes by
:func:`enumerate_candidates`, in deterministic order and deduplicated
by identity, so the same spec always enumerates the same space — the
anchor both the cache-key sharing and the determinism guarantee rest
on.

A candidate's evaluation is *not* a new kind of job: it decomposes
into exactly the sweep engine's functional/timing job units (see
:meth:`Candidate.sweep_point`), so every probe the planner makes
shares the on-disk result cache with ordinary sweeps and experiments
of the same configurations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from ..common.types import ErrorThresholds
from ..designs import DesignSpec, derive_design, resolve_designs
from ..harness.cache import content_key
from ..harness.sweep import SweepPoint
from .spec import PlanSpec

__all__ = ["Candidate", "enumerate_candidates"]


@dataclass(frozen=True)
class Candidate:
    """One configuration in the search space.

    ``t2`` of ``None`` means the workload's default error thresholds;
    otherwise thresholds follow the paper's ``T1 = 2*T2`` relation.
    Frozen and hashable so candidates key result dictionaries; the
    stable :meth:`key` (a content hash of design identity + T2) names
    them across processes, runs and JSON reports.
    """

    design: DesignSpec
    t2: float | None = None

    def thresholds(self) -> ErrorThresholds | None:
        """The sweep-point threshold override this candidate carries."""
        return ErrorThresholds.from_t2(self.t2) if self.t2 is not None else None

    def key(self) -> str:
        """Stable short identity used in rankings and JSON output."""
        return content_key("candidate", self.design, self.t2)[:16]

    def label(self) -> str:
        """Human-readable display form (tables, logs)."""
        if self.t2 is None:
            return self.design.name
        return f"{self.design.name} t2={self.t2:g}"

    def sweep_point(self, spec: PlanSpec, fidelity: int) -> SweepPoint:
        """The sweep grid point evaluating this candidate at ``fidelity``.

        ``fidelity`` is the trace budget in accesses per core — the
        multi-fidelity knob.  Everything else (workload, scale, trace
        seed, thresholds) comes from the plan spec and the candidate,
        so the resulting job-unit cache keys are exactly the ones an
        exhaustive sweep of the same configuration would use.
        """
        return SweepPoint(
            workload=spec.workload,
            scale=spec.scale,
            seed=spec.trace_seed,
            thresholds=self.thresholds(),
            max_accesses_per_core=fidelity,
        )


def _design_variants(spec: PlanSpec) -> Iterator[DesignSpec]:
    """Expand the design axes of ``spec`` into concrete specs.

    Axes apply only where meaningful: ``approx_line_bytes`` widens
    truncate-family designs, ``avr_toggles`` widens AVR-family designs;
    for every other base design those axes collapse to the base itself
    rather than multiplying identical variants.
    """
    for base in resolve_designs(spec.designs):
        widths: tuple[int | None, ...] = (None,)
        if "truncate" in (base.approximator, base.capacity_model):
            widths = tuple(spec.approx_line_bytes) or (None,)
        toggles: tuple[str | None, ...] = (None,)
        if base.llc == "avr":
            toggles = (None,) + tuple(spec.avr_toggles)
        for scale in spec.thresholds_scales:
            for width in widths:
                for toggle in toggles:
                    yield derive_design(
                        base,
                        thresholds_scale=scale,
                        approx_line_bytes=width,
                        avr_options=(
                            ((toggle, False),) if toggle is not None else None
                        ),
                    )


def enumerate_candidates(spec: PlanSpec) -> tuple[Candidate, ...]:
    """Every candidate of ``spec``'s search space, deterministically.

    Order is axis-major (designs, then scales/widths/toggles, then T2
    overrides) with duplicates — axes that collapse onto the same
    design identity — dropped on first occurrence, so the enumeration
    is a pure function of the spec.
    """
    t2s: tuple[float | None, ...] = tuple(spec.t2_thresholds) or (None,)
    seen: set[Candidate] = set()
    out: list[Candidate] = []
    for design in _design_variants(spec):
        for t2 in t2s:
            candidate = Candidate(design=design, t2=t2)
            if candidate in seen:
                continue
            seen.add(candidate)
            out.append(candidate)
    return tuple(out)
