"""Successive-halving schedule and promotion logic.

The multi-fidelity core of the planner, kept as pure functions so the
engine stays thin and the arithmetic is unit-testable without running
a single simulation:

* :func:`rung_schedule` — how many candidates run at which trace
  fidelity (accesses per core), from the starting population down to
  the full-fidelity budget.  Survivor counts shrink by ``eta`` per
  rung while fidelity grows by ``eta``, so total low-fidelity work
  stays within a small constant factor of one full-fidelity pass.
* :func:`rank_candidates` — the promotion order at a rung: feasible
  before infeasible, then by Pareto rank over the plan's front
  metrics, then by the scalar objective, with the candidate key as the
  final deterministic tie-break.

Unbounded budgets degenerate on purpose: one rung, full fidelity,
every candidate — exactly the exhaustive grid, which is the
equivalence anchor the tests pin the planner against.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .pareto import metric_matrix, nondominated_rank
from .spec import MAXIMIZE, Constraint

__all__ = ["Rung", "rank_candidates", "rung_schedule"]

#: lowest fidelity a derived ladder will descend to, in accesses per
#: core — below this the timing replay is mostly warm-up noise
MIN_DERIVED_FIDELITY = 1_000


@dataclass(frozen=True)
class Rung:
    """One rung of the ladder: ``count`` candidates at ``fidelity``."""

    count: int
    #: trace accesses per core this rung evaluates candidates at
    fidelity: int


def rung_schedule(
    n_candidates: int,
    budget: int,
    eta: int,
    full_fidelity: int,
    min_fidelity: int = 0,
) -> tuple[Rung, ...]:
    """The successive-halving ladder for a plan.

    ``budget`` caps full-fidelity evaluations; ``0`` (unbounded) or a
    budget covering the whole population yields the single exhaustive
    rung.  Otherwise candidate counts shrink geometrically from
    ``n_candidates`` to the budget while fidelity climbs to
    ``full_fidelity``, the lowest rung clamped at ``min_fidelity``
    (derived when 0: ``full/eta^depth`` floored at
    :data:`MIN_DERIVED_FIDELITY`).
    """
    if n_candidates < 1:
        raise ValueError("a schedule needs at least one candidate")
    target = n_candidates if budget == 0 else min(budget, n_candidates)
    counts = [n_candidates]
    while counts[-1] > target:
        counts.append(max(target, math.ceil(counts[-1] / eta)))
    depth = len(counts)
    floor = min(min_fidelity or MIN_DERIVED_FIDELITY, full_fidelity)
    return tuple(
        Rung(
            count=count,
            fidelity=max(floor, full_fidelity // eta ** (depth - 1 - i)),
        )
        for i, count in enumerate(counts)
    )


def rank_candidates(
    keys: list[str],
    metric_rows: list[dict[str, float]],
    objective: str,
    constraints: tuple[Constraint, ...],
    pareto_metrics: tuple[str, ...],
) -> list[int]:
    """Promotion order of one rung's outcomes (indices, best first).

    Feasible candidates come first; within each feasibility class the
    order is (Pareto rank over ``pareto_metrics``, objective value,
    candidate key).  Pareto rank — not the scalar objective alone —
    drives promotion so that rung survivors span the emerging front;
    the key tie-break makes the order a pure function of the inputs.
    """
    if len(keys) != len(metric_rows):
        raise ValueError("keys and metric rows must align")
    ranks = nondominated_rank(metric_matrix(metric_rows, pareto_metrics))
    sign = -1.0 if objective in MAXIMIZE else 1.0

    def sort_key(i: int) -> tuple[bool, int, float, str]:
        infeasible = not all(
            c.satisfied(metric_rows[i][c.metric]) for c in constraints
        )
        return (infeasible, int(ranks[i]), sign * metric_rows[i][objective],
                keys[i])

    return sorted(range(len(keys)), key=sort_key)
