"""Declarative plan specs: a design-space search as one value.

A :class:`PlanSpec` describes everything a planning run needs — the
candidate :class:`~repro.designs.DesignSpec` parameter space (base
designs x thresholds scales x T2 overrides x compression widths x AVR
option toggles), the objective and constraints, the full-fidelity
evaluation budget, and the fidelity ladder the successive-halving loop
climbs — as a frozen value that round-trips through TOML/JSON and
hashes stably (:meth:`PlanSpec.content_hash`), mirroring
:class:`~repro.experiment.ExperimentSpec`.

Objectives and constraints name *metrics*: quantities the sweep
engine's :class:`~repro.harness.runner.WorkloadEvaluation` already
measures per design.  ``traffic`` / ``time`` / ``amat`` / ``mpki`` /
``energy`` are normalized against the baseline design (lower is
better); ``error`` is the absolute output-error fraction; and
``compression`` is the functional compression ratio (the one metric
where higher is better).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, fields
from pathlib import Path
from typing import Any

from ..designs import resolve_designs
from ..harness.cache import content_key
from ..workloads import WORKLOADS

__all__ = ["Constraint", "METRICS", "MAXIMIZE", "PlanSpec"]

#: every metric a plan may target, in display order
METRICS = ("traffic", "time", "amat", "mpki", "energy", "error", "compression")

#: metrics where larger values are better (all others are minimized)
MAXIMIZE = frozenset({"compression"})

#: AVRLLC boolean options ``avr_toggles`` may switch off
AVR_TOGGLEABLE = (
    "enable_dbuf",
    "enable_lazy_eviction",
    "enable_skip_counters",
    "enable_cms_lru_refresh",
)


@dataclass(frozen=True)
class Constraint:
    """One feasibility bound: ``metric <op> value``.

    Parsed from the compact text form the CLI and spec files use
    (``"error<=0.05"``); a candidate violating any constraint is
    infeasible — it is ranked behind every feasible candidate during
    halving and excluded from the final Pareto front.
    """

    metric: str
    op: str
    value: float

    def __post_init__(self) -> None:
        if self.metric not in METRICS:
            raise ValueError(
                f"unknown constraint metric {self.metric!r}; "
                f"expected one of {METRICS}"
            )
        if self.op not in ("<=", ">="):
            raise ValueError(f"constraint operator must be <= or >=, got {self.op!r}")

    @classmethod
    def parse(cls, text: str) -> "Constraint":
        """Parse ``"error<=0.05"`` / ``"compression>=4"`` forms."""
        for op in ("<=", ">="):
            if op in text:
                metric, _, value = text.partition(op)
                try:
                    return cls(metric.strip(), op, float(value))
                except ValueError as exc:
                    raise ValueError(
                        f"cannot parse constraint {text!r}: {exc}"
                    ) from exc
        raise ValueError(
            f"cannot parse constraint {text!r}; expected METRIC<=VALUE "
            "or METRIC>=VALUE"
        )

    def satisfied(self, value: float) -> bool:
        """Whether a measured metric value meets this bound."""
        return value <= self.value if self.op == "<=" else value >= self.value

    def render(self) -> str:
        """The compact text form this constraint parses from."""
        return f"{self.metric}{self.op}{self.value:g}"


@dataclass(frozen=True)
class PlanSpec:
    """One planning run: search space x objective x budget x fidelity.

    Every field is a plain scalar or tuple (like
    :class:`~repro.experiment.ExperimentSpec`), so specs are hashable,
    picklable, and TOML/JSON round-trippable.  The candidate space is
    the cross product of ``designs`` x ``thresholds_scales`` x
    ``t2_thresholds``, widened by ``approx_line_bytes`` for
    truncate-family designs and ``avr_toggles`` for AVR-family designs
    (axes that do not apply to a base design collapse instead of
    multiplying), deduplicated by design identity.
    """

    #: label for reports and file names (not part of the plan identity)
    name: str = "plan"
    #: the workload the plan optimizes over
    workload: str = "heat"
    #: base registry designs the candidate space varies
    designs: tuple[str, ...] = ("AVR",)
    #: ``DesignSpec.thresholds_scale`` variants of every base design
    thresholds_scales: tuple[float, ...] = (1.0,)
    #: T2 error-threshold overrides (T1 = 2*T2) crossed with every
    #: candidate design; empty = the workload's default thresholds
    t2_thresholds: tuple[float, ...] = ()
    #: compression-width variants for truncate-family designs (bytes an
    #: approximate line occupies); other designs ignore this axis
    approx_line_bytes: tuple[int, ...] = ()
    #: AVRLLC boolean options toggled *off* one at a time, each
    #: producing an extra AVR-family candidate (see ``AVR_TOGGLEABLE``)
    avr_toggles: tuple[str, ...] = ()
    #: metric the plan minimizes (``compression`` maximizes)
    objective: str = "traffic"
    #: feasibility bounds in ``METRIC<=VALUE`` text form
    constraints: tuple[str, ...] = ()
    #: metrics spanning the final Pareto front
    pareto_metrics: tuple[str, ...] = ("traffic", "error", "compression")
    #: max candidates promoted to full fidelity; 0 = unbounded, which
    #: degenerates to the exhaustive grid (every candidate evaluated at
    #: full fidelity — the equivalence anchor the tests pin)
    budget: int = 0
    #: halving factor between rungs (survivors and fidelity both)
    eta: int = 2
    #: accesses/core at the lowest rung; 0 derives it from the ladder
    min_fidelity: int = 0
    #: cap on rung-0 candidates; 0 = all.  When the space is larger,
    #: the surrogate model (or, lacking data, a seeded shuffle) picks
    #: which candidates enter the race at all.
    initial_candidates: int = 0
    #: planner RNG seed (rung sampling; threaded into every stochastic
    #: choice — planning is deterministic given the spec and this seed)
    seed: int = 0
    #: workload size multiplier
    scale: float = 1.0
    #: trace-jitter seed of every candidate evaluation
    trace_seed: int = 0
    #: full-fidelity trace accesses per core (the final rung)
    max_accesses_per_core: int = 50_000
    #: simulated cores; None = 8
    num_cores: int | None = None
    #: timing-replay engine (bit-identical either way; execution-only)
    engine: str = "vectorized"
    #: default worker processes (overridable at :func:`run_plan`)
    jobs: int = 1
    #: default on-disk result-cache directory (None = no cache)
    cache_dir: str | None = None
    #: result-cache backend stack (``sharded`` | ``memory[:N]`` |
    #: ``readthrough:PATH``; execution-only — every backend is
    #: bit-identical)
    cache_backend: str | None = None
    #: memory-mapped trace store directory (see ``ExperimentSpec``)
    trace_store: str | None = None

    def __post_init__(self) -> None:
        for name, kind in (("designs", str), ("avr_toggles", str),
                           ("constraints", str), ("pareto_metrics", str)):
            object.__setattr__(
                self, name, tuple(kind(v) for v in getattr(self, name))
            )
        for name in ("thresholds_scales", "t2_thresholds"):
            object.__setattr__(
                self, name, tuple(float(v) for v in getattr(self, name))
            )
        object.__setattr__(
            self, "approx_line_bytes",
            tuple(int(v) for v in self.approx_line_bytes),
        )
        if self.workload not in WORKLOADS:
            raise ValueError(
                f"unknown workload {self.workload!r}; available: "
                f"{', '.join(sorted(WORKLOADS))}"
            )
        if not self.designs:
            raise ValueError("a plan needs at least one base design")
        resolve_designs(self.designs)  # fail fast with suggestions
        if not self.thresholds_scales:
            raise ValueError("a plan needs at least one thresholds_scale")
        if self.objective not in METRICS:
            raise ValueError(
                f"unknown objective {self.objective!r}; expected one of {METRICS}"
            )
        for metric in self.pareto_metrics:
            if metric not in METRICS:
                raise ValueError(
                    f"unknown pareto metric {metric!r}; expected one of {METRICS}"
                )
        if not self.pareto_metrics:
            raise ValueError("a plan needs at least one pareto metric")
        for toggle in self.avr_toggles:
            if toggle not in AVR_TOGGLEABLE:
                raise ValueError(
                    f"unknown AVR toggle {toggle!r}; expected one of "
                    f"{AVR_TOGGLEABLE}"
                )
        for text in self.constraints:
            Constraint.parse(text)
        if self.eta < 2:
            raise ValueError(f"eta must be >= 2, got {self.eta}")
        if self.budget < 0 or self.min_fidelity < 0 or self.initial_candidates < 0:
            raise ValueError("budget, min_fidelity and initial_candidates "
                             "must be >= 0 (0 = unbounded/derived/all)")
        if self.max_accesses_per_core < 1:
            raise ValueError("max_accesses_per_core must be >= 1")
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {self.jobs}")

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------
    #: execution-only fields outside the plan's identity (mirrors
    #: ``ExperimentSpec``: both engines are bit-identical, and the
    #: label/worker/cache settings cannot change what is planned)
    _NON_IDENTITY_FIELDS = frozenset(
        {"name", "jobs", "cache_dir", "cache_backend", "engine", "trace_store"}
    )

    def content_hash(self) -> str:
        """Stable SHA-256 of the plan's identity (memoized per spec)."""
        cached = self.__dict__.get("_content_hash")
        if cached is not None:
            return cached  # type: ignore[no-any-return]
        identity = tuple(
            (f.name, getattr(self, f.name))
            for f in fields(self)
            if f.name not in self._NON_IDENTITY_FIELDS
        )
        digest = content_key("plan", identity)
        object.__setattr__(self, "_content_hash", digest)
        return digest

    # ------------------------------------------------------------------
    # derived views
    # ------------------------------------------------------------------
    def parsed_constraints(self) -> tuple[Constraint, ...]:
        """The ``constraints`` texts as :class:`Constraint` values."""
        return tuple(Constraint.parse(text) for text in self.constraints)

    def resolved_cores(self) -> int:
        """Machine width of every candidate evaluation."""
        return self.num_cores if self.num_cores is not None else 8

    # ------------------------------------------------------------------
    # serialization (the ExperimentSpec file idiom)
    # ------------------------------------------------------------------
    def to_mapping(self) -> dict[str, Any]:
        """Plain-scalar mapping form (tuples as lists, None omitted)."""
        out: dict[str, Any] = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if value is None:
                continue
            out[f.name] = list(value) if isinstance(value, tuple) else value
        return out

    @classmethod
    def from_mapping(cls, mapping: dict[str, Any]) -> "PlanSpec":
        """Build a spec from a mapping, rejecting unknown keys."""
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(mapping) - known)
        if unknown:
            raise ValueError(
                f"unknown plan spec keys {unknown}; "
                f"expected a subset of {sorted(known)}"
            )
        return cls(**mapping)

    def to_file(self, path: str | Path) -> Path:
        """Write the spec as TOML (default) or JSON, by extension."""
        from ..experiment import dump_flat_toml

        path = Path(path)
        mapping = self.to_mapping()
        if path.suffix == ".json":
            text = json.dumps(mapping, indent=2) + "\n"
        else:
            text = dump_flat_toml(mapping)
        path.write_text(text)
        return path

    @classmethod
    def from_file(cls, path: str | Path) -> "PlanSpec":
        """Load a spec from a ``.toml`` or ``.json`` file."""
        from ..experiment import load_spec_mapping

        return cls.from_mapping(load_spec_mapping(path))
