"""Cheap numpy surrogate: predict a candidate's objective from cache.

Before the halving loop spends a single simulation, the engine
harvests every (candidate, fidelity) outcome that previous sweeps and
plans already left in the result cache (see
:meth:`~repro.planner.engine.Planner._harvest`) and fits this linear
least-squares model to them.  The surrogate then *seeds* rung 0 — when
``initial_candidates`` caps the starting population, the candidates
predicted best enter the race first — and is deliberately never
trusted for anything the measurements themselves decide (promotion and
the final front use real evaluations only), so a bad fit can waste
probes but cannot corrupt the plan.

Features are simple declarative properties of a candidate plus the
log-fidelity, fitted with :func:`numpy.linalg.lstsq`; everything is
deterministic, and the one stochastic fallback (no cached data at all)
lives in the engine behind an explicitly threaded
:class:`numpy.random.Generator`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .space import Candidate

__all__ = ["Surrogate", "candidate_features"]

#: default T2 stand-in when a candidate uses workload-default thresholds
_DEFAULT_T2 = 0.01


def candidate_features(
    candidate: Candidate, fidelity: int, full_fidelity: int
) -> np.ndarray:
    """Feature vector of one (candidate, fidelity) evaluation."""
    design = candidate.design
    t2 = candidate.t2 if candidate.t2 is not None else _DEFAULT_T2
    line_fraction = (
        design.approx_line_bytes / 64.0
        if design.approx_line_bytes is not None
        else 1.0
    )
    return np.array(
        [
            1.0,
            design.thresholds_scale,
            math.log10(max(t2, 1e-6)),
            line_fraction,
            1.0 if design.llc == "avr" else 0.0,
            1.0 if design.approximator == "truncate" else 0.0,
            1.0 if design.approximator == "dganger" else 0.0,
            float(len(design.avr_options)),
            math.log2(max(fidelity, 1) / max(full_fidelity, 1)),
        ],
        dtype=np.float64,
    )


@dataclass(frozen=True)
class Surrogate:
    """A fitted linear model ``features -> objective value``."""

    coef: np.ndarray
    #: how many harvested points the fit consumed (reporting only)
    n_points: int

    @classmethod
    def fit(
        cls, features: list[np.ndarray], values: list[float]
    ) -> "Surrogate | None":
        """Least-squares fit; ``None`` when the system is too thin.

        Requires at least as many points as features — an underdetermined
        fit would interpolate noise and silently reorder rung 0, so the
        engine falls back to its seeded shuffle instead.
        """
        if not features or len(features) != len(values):
            return None
        matrix = np.stack(features)
        if matrix.shape[0] < matrix.shape[1]:
            return None
        coef, *_ = np.linalg.lstsq(
            matrix, np.asarray(values, dtype=np.float64), rcond=None
        )
        return cls(coef=coef, n_points=matrix.shape[0])

    def predict(self, features: np.ndarray) -> float:
        """Predicted objective value for one feature vector."""
        return float(features @ self.coef)
