"""Cost-model-guided design planner.

Searches the :class:`~repro.designs.DesignSpec` parameter space for
configurations optimizing a target metric ("minimize DRAM traffic
subject to an output-error budget") via multi-fidelity successive
halving plus Pareto-front selection, instead of the exhaustive
full-fidelity sweep grid.  Every candidate evaluation decomposes into
ordinary sweep job units sharing the on-disk result cache, so plans
compose with — and pre-prune — sweeps and experiments of the same
configurations.  Exposed on the CLI as ``repro plan``.
"""

from .engine import CandidateOutcome, PlanResult, PlanStats, RungResult, run_plan
from .halving import Rung, rank_candidates, rung_schedule
from .pareto import metric_matrix, nondominated_mask, nondominated_rank
from .space import Candidate, enumerate_candidates
from .spec import AVR_TOGGLEABLE, MAXIMIZE, METRICS, Constraint, PlanSpec
from .surrogate import Surrogate, candidate_features

__all__ = [
    "AVR_TOGGLEABLE",
    "Candidate",
    "CandidateOutcome",
    "Constraint",
    "MAXIMIZE",
    "METRICS",
    "PlanResult",
    "PlanSpec",
    "PlanStats",
    "Rung",
    "RungResult",
    "Surrogate",
    "candidate_features",
    "enumerate_candidates",
    "metric_matrix",
    "nondominated_mask",
    "nondominated_rank",
    "rank_candidates",
    "run_plan",
    "rung_schedule",
]
