"""Downsampling compression and interpolated reconstruction (paper §3.3).

A 1 KB memory block holds 256 32-bit values.  Compression replaces each
sub-block of 16 values with its average, producing a 16-value summary
(exactly one cacheline → 16:1).  Two placement variants are attempted:

* **1D**: the block is a linear array; sub-blocks are 16 consecutive
  values; reconstruction linearly interpolates between segment centers.
* **2D**: the block is a 16 x 16 square; sub-blocks are 4 x 4 tiles;
  reconstruction bilinearly interpolates between tile centers (Fig. 5).

All arithmetic is fixed point (int32 values, int64 intermediates) to
mirror the integer hardware datapath.  Every function is vectorized
over a batch axis: inputs have shape ``(nblocks, 256)``.

Index/weight tables are precomputed in half-unit integer coordinates so
interpolation is exact integer math with power-of-two divisions, as a
hardware implementation would do.
"""

from __future__ import annotations

import numpy as np

from ..common.constants import (
    BLOCK_SIDE_2D,
    SUBBLOCK_VALUES,
    SUMMARY_VALUES,
    TILE_SIDE_2D,
    TILES_PER_SIDE_2D,
    VALUES_PER_BLOCK,
)


def _build_1d_tables() -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Left/right summary indices and right-weights for 1D reconstruction.

    Segment ``i`` covers positions ``[16i, 16i+15]`` with center at
    ``16i + 7.5``.  In half-units (x2), centers sit at ``32i + 15`` and
    positions at ``2p``; neighbor centers are 32 half-units apart, so
    the right-weight numerator ``d`` is in ``[-15, 47]`` and the
    division is a shift by 5 (negative / >32 weights extrapolate past
    the outermost centers).
    """
    pos = 2 * np.arange(VALUES_PER_BLOCK)
    centers = 32 * np.arange(SUMMARY_VALUES) + 15
    left = np.clip((pos - 15) // 32, 0, SUMMARY_VALUES - 2)
    right = left + 1
    # d < 0 before the first center and d > 32 past the last one:
    # linear *extrapolation* from the nearest center pair.  Clamping
    # instead would flatten every block's first/last half-segment,
    # turning the edges of any sloped series into systematic outliers.
    d = pos - centers[left]
    return left.astype(np.intp), right.astype(np.intp), d.astype(np.int64)


def _build_2d_tables() -> tuple[np.ndarray, ...]:
    """Index/weight tables for bilinear 2D reconstruction.

    Tile ``(i, j)`` covers rows ``[4i, 4i+3]`` with center row
    ``4i + 1.5`` (8i + 3 in half-units); positions are ``2r``.  Centers
    are 8 half-units apart so per-axis weights are in ``[-3, 11]`` and
    the combined bilinear division is a shift by 6.
    """
    coord = 2 * np.arange(BLOCK_SIDE_2D)
    centers = 8 * np.arange(TILES_PER_SIDE_2D) + 3
    low = np.clip((coord - 3) // 8, 0, TILES_PER_SIDE_2D - 2)
    high = low + 1
    # Negative / >8 weights extrapolate past the edge tile centers,
    # mirroring the 1D tables (see _build_1d_tables).
    d = coord - centers[low]

    rows = np.repeat(np.arange(BLOCK_SIDE_2D), BLOCK_SIDE_2D)
    cols = np.tile(np.arange(BLOCK_SIDE_2D), BLOCK_SIDE_2D)
    r_lo, r_hi, r_d = low[rows], high[rows], d[rows]
    c_lo, c_hi, c_d = low[cols], high[cols], d[cols]
    # Flatten (tile_row, tile_col) -> summary index in row-major order.
    idx00 = r_lo * TILES_PER_SIDE_2D + c_lo
    idx01 = r_lo * TILES_PER_SIDE_2D + c_hi
    idx10 = r_hi * TILES_PER_SIDE_2D + c_lo
    idx11 = r_hi * TILES_PER_SIDE_2D + c_hi
    return (
        idx00.astype(np.intp),
        idx01.astype(np.intp),
        idx10.astype(np.intp),
        idx11.astype(np.intp),
        r_d.astype(np.int64),
        c_d.astype(np.int64),
    )


_L1D, _R1D, _D1D = _build_1d_tables()
_I00, _I01, _I10, _I11, _RD, _CD = _build_2d_tables()


def _check_blocks(blocks: np.ndarray) -> np.ndarray:
    blocks = np.asarray(blocks)
    if blocks.ndim != 2 or blocks.shape[1] != VALUES_PER_BLOCK:
        raise ValueError(
            f"expected shape (nblocks, {VALUES_PER_BLOCK}), got {blocks.shape}"
        )
    return blocks.astype(np.int64, copy=False)


def downsample_1d(blocks: np.ndarray) -> np.ndarray:
    """Average each run of 16 consecutive values -> (nblocks, 16) int32."""
    blocks = _check_blocks(blocks)
    sums = blocks.reshape(-1, SUMMARY_VALUES, SUBBLOCK_VALUES).sum(axis=2)
    return ((sums + SUBBLOCK_VALUES // 2) >> 4).astype(np.int32)


def downsample_2d(blocks: np.ndarray) -> np.ndarray:
    """Average each 4x4 tile of the 16x16 view -> (nblocks, 16) int32."""
    blocks = _check_blocks(blocks)
    grid = blocks.reshape(-1, TILES_PER_SIDE_2D, TILE_SIDE_2D, TILES_PER_SIDE_2D, TILE_SIDE_2D)
    sums = grid.sum(axis=(2, 4))
    return ((sums + SUBBLOCK_VALUES // 2) >> 4).reshape(-1, SUMMARY_VALUES).astype(np.int32)


def reconstruct_1d(summaries: np.ndarray) -> np.ndarray:
    """Linear interpolation of 1D summaries -> (nblocks, 256) int32."""
    s = np.asarray(summaries, dtype=np.int64)
    if s.ndim != 2 or s.shape[1] != SUMMARY_VALUES:
        raise ValueError(f"expected shape (nblocks, {SUMMARY_VALUES}), got {s.shape}")
    left, right = s[:, _L1D], s[:, _R1D]
    out = (left * (32 - _D1D) + right * _D1D + 16) >> 5
    # Edge extrapolation can overshoot the fixed-point range slightly;
    # the hardware datapath saturates.
    return np.clip(out, -(2**31), 2**31 - 1).astype(np.int32)


def reconstruct_2d(summaries: np.ndarray) -> np.ndarray:
    """Bilinear interpolation of 2D summaries -> (nblocks, 256) int32."""
    s = np.asarray(summaries, dtype=np.int64)
    if s.ndim != 2 or s.shape[1] != SUMMARY_VALUES:
        raise ValueError(f"expected shape (nblocks, {SUMMARY_VALUES}), got {s.shape}")
    v00, v01 = s[:, _I00], s[:, _I01]
    v10, v11 = s[:, _I10], s[:, _I11]
    top = v00 * (8 - _CD) + v01 * _CD
    bot = v10 * (8 - _CD) + v11 * _CD
    out = (top * (8 - _RD) + bot * _RD + 32) >> 6
    return np.clip(out, -(2**31), 2**31 - 1).astype(np.int32)
