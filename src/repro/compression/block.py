"""Compressed memory-block container and its byte-level image (Fig. 2a).

A compressed block occupies 1-8 cachelines of its 16-cacheline slot in
main memory:

* cacheline 0 — the 16-value summary (int32 fixed point, exponent-biased);
* cacheline 1, first half — the 256-bit outlier bitmap (only present
  when there are outliers);
* the packed 32-bit outlier values follow, in block order;
* the remaining cachelines of the 1 KB slot stay free for lazily
  evicted uncompressed cachelines.

``method`` and ``bias`` live in the block's CMT entry, not in the block
image, so unpacking requires them as arguments — exactly as the
hardware consults the CMT before decompressing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..common.constants import (
    BITMAP_BYTES,
    CACHELINE_BYTES,
    SUMMARY_VALUES,
    VALUE_BYTES,
    VALUES_PER_BLOCK,
)
from ..common.types import CompressionMethod
from .outliers import compressed_size_cachelines, pack_bitmap, unpack_bitmap


@dataclass
class CompressedBlock:
    """In-memory representation of one compressed 1 KB block."""

    method: CompressionMethod
    bias: int
    summary: np.ndarray  # (16,) int32
    outlier_mask: np.ndarray = field(
        default_factory=lambda: np.zeros(VALUES_PER_BLOCK, dtype=bool)
    )
    outlier_bits: np.ndarray = field(
        default_factory=lambda: np.zeros(0, dtype=np.uint32)
    )  # raw 32-bit images of outlier values, in block order

    def __post_init__(self) -> None:
        self.summary = np.asarray(self.summary, dtype=np.int32)
        if self.summary.shape != (SUMMARY_VALUES,):
            raise ValueError(f"summary must have shape ({SUMMARY_VALUES},)")
        self.outlier_mask = np.asarray(self.outlier_mask, dtype=bool)
        if self.outlier_mask.shape != (VALUES_PER_BLOCK,):
            raise ValueError(f"outlier_mask must have shape ({VALUES_PER_BLOCK},)")
        self.outlier_bits = np.asarray(self.outlier_bits, dtype=np.uint32)
        if int(self.outlier_mask.sum()) != self.outlier_bits.size:
            raise ValueError(
                f"bitmap marks {int(self.outlier_mask.sum())} outliers but "
                f"{self.outlier_bits.size} values supplied"
            )
        if self.method == CompressionMethod.UNCOMPRESSED:
            raise ValueError("a CompressedBlock cannot have method UNCOMPRESSED")

    @property
    def outlier_count(self) -> int:
        return int(self.outlier_bits.size)

    @property
    def size_cachelines(self) -> int:
        """Cachelines this block occupies in its memory slot (1-8)."""
        return int(compressed_size_cachelines(np.array([self.outlier_count]))[0])

    @property
    def free_cachelines(self) -> int:
        """Cachelines left in the 1 KB slot for lazy evictions."""
        from ..common.constants import BLOCK_CACHELINES

        return BLOCK_CACHELINES - self.size_cachelines

    def pack(self) -> bytes:
        """Serialize to the byte image stored in main memory."""
        size = self.size_cachelines
        buf = np.zeros(size * CACHELINE_BYTES, dtype=np.uint8)
        buf[:CACHELINE_BYTES] = self.summary.view(np.uint8)
        if self.outlier_count:
            bitmap = pack_bitmap(self.outlier_mask[None, :])[0]
            buf[CACHELINE_BYTES : CACHELINE_BYTES + BITMAP_BYTES] = bitmap
            start = CACHELINE_BYTES + BITMAP_BYTES
            raw = self.outlier_bits.view(np.uint8)
            buf[start : start + raw.size] = raw
        return buf.tobytes()

    @classmethod
    def unpack(
        cls,
        data: bytes,
        method: CompressionMethod,
        bias: int,
        size_cachelines: int,
    ) -> "CompressedBlock":
        """Rebuild a block from its byte image plus its CMT metadata."""
        if size_cachelines < 1:
            raise ValueError("compressed block needs at least one cacheline")
        if len(data) < size_cachelines * CACHELINE_BYTES:
            raise ValueError(
                f"image too short: {len(data)} bytes for {size_cachelines} CLs"
            )
        buf = np.frombuffer(data, dtype=np.uint8, count=size_cachelines * CACHELINE_BYTES)
        summary = buf[:CACHELINE_BYTES].view(np.int32).copy()
        if size_cachelines == 1:
            return cls(method=method, bias=bias, summary=summary)
        bitmap = buf[CACHELINE_BYTES : CACHELINE_BYTES + BITMAP_BYTES]
        mask = unpack_bitmap(bitmap[None, :])[0]
        count = int(mask.sum())
        start = CACHELINE_BYTES + BITMAP_BYTES
        bits = buf[start : start + count * VALUE_BYTES].view(np.uint32).copy()
        return cls(
            method=method, bias=bias, summary=summary,
            outlier_mask=mask, outlier_bits=bits,
        )
