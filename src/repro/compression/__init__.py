"""AVR compression: downsampling, outliers, block format, pipelines."""

from .block import CompressedBlock
from .compressor import AVRCompressor, BatchCompressionResult
from .downsample import (
    downsample_1d,
    downsample_2d,
    reconstruct_1d,
    reconstruct_2d,
)
from .errors import mean_relative_error, relative_error
from .lossless import (
    EncodedLine,
    compression_ratio as bdi_compression_ratio,
    decode_line,
    encode_line,
    stacked_ratio,
)
from .outliers import (
    block_average_error,
    compressed_size_cachelines,
    detect_outliers,
    max_outliers_for_size,
    pack_bitmap,
    unpack_bitmap,
)
from .truncate import TRUNCATE_RATIO, truncate_roundtrip, truncate_values

__all__ = [
    "AVRCompressor",
    "BatchCompressionResult",
    "CompressedBlock",
    "EncodedLine",
    "bdi_compression_ratio",
    "decode_line",
    "encode_line",
    "stacked_ratio",
    "TRUNCATE_RATIO",
    "block_average_error",
    "compressed_size_cachelines",
    "detect_outliers",
    "downsample_1d",
    "downsample_2d",
    "max_outliers_for_size",
    "mean_relative_error",
    "pack_bitmap",
    "reconstruct_1d",
    "reconstruct_2d",
    "relative_error",
    "truncate_roundtrip",
    "truncate_values",
    "unpack_bitmap",
]
