"""Lossless cacheline compression stacked on top of AVR (paper §4.1).

The paper treats lossless techniques as orthogonal: "the downsampled
values and outliers of an AVR compressed block could be further
compressed in a lossless way".  This module implements Base-Delta-
Immediate (BDI, Pekhimenko et al., PACT'12) — the canonical low-latency
hardware scheme — for 64-byte cachelines, plus a helper that measures
the *stacked* ratio of BDI applied to AVR-compressed block images.

Encodings attempted per line, smallest wins:

* ``zero``      — all bytes zero (1 B)
* ``repeat``    — one repeated 8-byte value (8 B)
* ``base8-dN``  — 8-byte base + eight N-byte deltas, N ∈ {1, 2, 4}
* ``base4-dN``  — 4-byte base + sixteen N-byte deltas, N ∈ {1, 2}
* ``raw``       — incompressible (64 B)

Compression and decompression are exact (bit-for-bit), verified by the
roundtrip property tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..common.constants import CACHELINE_BYTES

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .compressor import AVRCompressor

#: encoding name -> (base_bytes, delta_bytes); None markers for the
#: special cases handled separately.
_BDI_VARIANTS: tuple[tuple[str, int, int], ...] = (
    ("base8-d1", 8, 1),
    ("base8-d2", 8, 2),
    ("base8-d4", 8, 4),
    ("base4-d1", 4, 1),
    ("base4-d2", 4, 2),
)

#: metadata cost per compressed line (encoding tag), in bytes
_TAG_BYTES = 1


@dataclass(frozen=True)
class EncodedLine:
    """One losslessly encoded 64-byte line."""

    encoding: str
    size_bytes: int
    base: int = 0
    deltas: tuple[int, ...] = ()

    @property
    def compressed(self) -> bool:
        return self.encoding != "raw"


def _words(line: np.ndarray, width: int) -> np.ndarray:
    """View a 64-byte line as unsigned integers of ``width`` bytes."""
    dtype = {1: np.uint8, 2: np.uint16, 4: np.uint32, 8: np.uint64}[width]
    return line.view(dtype)


def _fits(deltas: np.ndarray, delta_bytes: int) -> bool:
    """Signed deltas representable in ``delta_bytes``?"""
    bound = 1 << (8 * delta_bytes - 1)
    return bool((deltas >= -bound).all() and (deltas < bound).all())


def encode_line(line: np.ndarray) -> EncodedLine:
    """Encode one 64-byte cacheline with the best BDI variant."""
    line = np.ascontiguousarray(line, dtype=np.uint8)
    if line.shape != (CACHELINE_BYTES,):
        raise ValueError(f"expected ({CACHELINE_BYTES},) bytes, got {line.shape}")

    if not line.any():
        return EncodedLine("zero", _TAG_BYTES)

    words8 = _words(line, 8)
    if (words8 == words8[0]).all():
        return EncodedLine(
            "repeat", _TAG_BYTES + 8, base=int(words8[0])
        )

    best: EncodedLine | None = None
    for name, base_bytes, delta_bytes in _BDI_VARIANTS:
        words = _words(line, base_bytes).astype(np.int64)
        # Values are unsigned words; compute signed deltas vs the first.
        deltas = words - words[0]
        if not _fits(deltas, delta_bytes):
            continue
        size = _TAG_BYTES + base_bytes + delta_bytes * words.size
        if size < CACHELINE_BYTES and (best is None or size < best.size_bytes):
            best = EncodedLine(
                name, size, base=int(words[0]), deltas=tuple(int(d) for d in deltas)
            )
    if best is not None:
        return best
    return EncodedLine("raw", CACHELINE_BYTES)


def decode_line(encoded: EncodedLine, raw_fallback: np.ndarray | None = None) -> np.ndarray:
    """Exactly reconstruct the 64-byte line from its encoding.

    ``raw`` encodings carry no payload here; callers keep the original
    line and pass it as ``raw_fallback`` (as the hardware stores the
    uncompressed line verbatim).
    """
    if encoded.encoding == "raw":
        if raw_fallback is None:
            raise ValueError("raw encoding needs the stored original line")
        return np.array(raw_fallback, dtype=np.uint8, copy=True)
    out = np.zeros(CACHELINE_BYTES, dtype=np.uint8)
    if encoded.encoding == "zero":
        return out
    if encoded.encoding == "repeat":
        out.view(np.uint64)[:] = np.uint64(encoded.base)
        return out
    name = encoded.encoding
    base_bytes = int(name[4])
    dtype = {4: np.uint32, 8: np.uint64}[base_bytes]
    # Python-int modular arithmetic: exact for any 64-bit base/delta
    # combination (numpy int64 would overflow on large unsigned bases).
    mask = (1 << (8 * base_bytes)) - 1
    words = [(encoded.base + d) & mask for d in encoded.deltas]
    out.view(dtype)[:] = np.array(words, dtype=np.uint64).astype(dtype)
    return out


def line_sizes(data: bytes | np.ndarray) -> np.ndarray:
    """BDI-compressed size (bytes) of every 64-byte line in ``data``."""
    raw = np.frombuffer(bytes(data), dtype=np.uint8)
    nlines = raw.size // CACHELINE_BYTES
    sizes = np.empty(nlines, dtype=np.int32)
    for i in range(nlines):
        line = raw[i * CACHELINE_BYTES : (i + 1) * CACHELINE_BYTES]
        sizes[i] = encode_line(line).size_bytes
    return sizes


def compression_ratio(data: bytes | np.ndarray) -> float:
    """Aggregate lossless ratio over the cachelines of ``data``."""
    sizes = line_sizes(data)
    if sizes.size == 0:
        return 1.0
    return sizes.size * CACHELINE_BYTES / float(sizes.sum())


def stacked_ratio(
    blocks: np.ndarray, compressor: "AVRCompressor"
) -> dict[str, float]:
    """AVR x BDI stacking study over ``(nblocks, 256)`` float32 data.

    Returns the AVR-only ratio, the BDI-only ratio (on the raw data),
    and the stacked ratio (BDI applied to the AVR-compressed images —
    summaries, bitmaps and outliers), demonstrating the paper's
    orthogonality claim.
    """
    from ..common.constants import BLOCK_BYTES

    nblocks = blocks.shape[0]
    avr_bytes = 0
    stacked_bytes = 0
    for i in range(nblocks):
        block, _ = compressor.compress_block(blocks[i])
        if block is None:
            image = np.ascontiguousarray(blocks[i], dtype=np.float32).tobytes()
        else:
            image = block.pack()
        avr_bytes += len(image)
        stacked_bytes += int(line_sizes(image).sum())
    raw_bytes = nblocks * BLOCK_BYTES
    return {
        "avr_ratio": raw_bytes / avr_bytes if avr_bytes else 1.0,
        "bdi_ratio": compression_ratio(
            np.ascontiguousarray(blocks, dtype=np.float32).tobytes()
        ),
        "stacked_ratio": raw_bytes / stacked_bytes if stacked_bytes else 1.0,
    }
