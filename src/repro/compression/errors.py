"""Error metrics used by the compressor and by the output-quality tables."""

from __future__ import annotations

import numpy as np


def relative_error(
    original: np.ndarray, approx: np.ndarray, eps: float = 1e-30
) -> np.ndarray:
    """Element-wise relative error ``|a - o| / |o|``.

    Where the original is (near) zero the error is measured against
    ``eps`` so that an exactly-preserved zero scores 0 and any deviation
    scores large (and will be treated as an outlier / real error).
    """
    original = np.asarray(original, dtype=np.float64)
    approx = np.asarray(approx, dtype=np.float64)
    denom = np.maximum(np.abs(original), eps)
    with np.errstate(invalid="ignore"):
        return np.abs(approx - original) / denom


def mean_relative_error(
    original: np.ndarray, approx: np.ndarray, floor_fraction: float = 1e-3
) -> float:
    """The paper's output-quality metric: mean of per-value relative errors.

    Per-value relative error is ill-defined where the reference value is
    (near) zero, so denominators are floored at ``floor_fraction`` of
    the reference's mean magnitude: deviations on effectively-zero
    values are measured against that scale floor instead of blowing up.
    Runaway outputs still register as huge errors (numerator-driven),
    preserving the paper's ">100%" failure cases.
    """
    original = np.asarray(original, dtype=np.float64).ravel()
    approx = np.asarray(approx, dtype=np.float64).ravel()
    if original.size == 0:
        return 0.0
    if original.shape != approx.shape:
        raise ValueError(f"shape mismatch: {original.shape} vs {approx.shape}")
    magnitudes = np.abs(original)
    scale = float(magnitudes.mean()) if np.isfinite(magnitudes.mean()) else 1.0
    floor = max(floor_fraction * scale, 1e-30)
    denom = np.maximum(magnitudes, floor)
    err = np.abs(approx - original) / denom
    # Guard against NaN/Inf poisoning the mean (e.g. runaway outputs):
    # count non-finite entries as 100% error each, as a runaway would.
    err = np.where(np.isfinite(err), err, 1.0)
    return float(err.mean())
