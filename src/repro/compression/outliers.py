"""Outlier detection, bitmap handling and compressed-size computation.

After downsampling + reconstruction, each value is checked against the
per-value threshold T1.  Failing values become *outliers*: stored
verbatim in the compressed block behind a 256-bit location bitmap
(half a cacheline).  The per-block average error of the non-outlier
values is then checked against T2.

Three check modes are provided:

* ``"hardware"`` — the paper's single-cycle float comparison: signs and
  exponents must match exactly and the mantissa difference must stay
  below the N-th most significant mantissa bit (error < 1/2^N), with
  N derived from T1.  The block average error is the mean of the
  mantissa differences of non-outliers, normalized to a relative error.
* ``"relative"`` — an exact relative-error comparison (reference
  implementation of the same criterion).
* ``"hybrid"`` (default) — passes a value if it passes the float check
  *or* its absolute error is within T1 of the block's value scale.
  The second disjunct models the fixed-point datapath: AVR compares
  original and reconstructed values as per-block-biased fixed-point
  numbers ("for fixed point numbers a subtraction and a subsequent
  comparison would be required"), and a fixed-point subtraction is an
  *absolute* comparison at the block's magnitude.  Without it, any
  block containing near-zero values (secondary velocity components,
  signed fields crossing zero) would be all-outliers even when the
  reconstruction is essentially exact — contradicting the paper's
  16:1 ratios on exactly such data.
"""

from __future__ import annotations

import numpy as np

from ..common import bitops
from ..common.constants import (
    BITMAP_BYTES,
    CACHELINE_BYTES,
    MAX_COMPRESSED_CACHELINES,
    VALUE_BYTES,
    VALUES_PER_BLOCK,
)
from ..common.types import ErrorThresholds
from .errors import relative_error

CHECK_MODES = ("hardware", "relative", "hybrid")


def _block_scale(original: np.ndarray) -> np.ndarray:
    """Per-block value scale: the largest finite magnitude, as a column.

    This is the range the fixed-point conversion is biased to, so it is
    the natural unit of a fixed-point subtract-and-compare.
    """
    mags = np.abs(np.asarray(original, dtype=np.float64))
    mags = np.where(np.isfinite(mags), mags, 0.0)
    return np.maximum(mags.max(axis=1, keepdims=True), 1e-30)


def detect_outliers(
    original: np.ndarray,
    reconstructed: np.ndarray,
    thresholds: ErrorThresholds,
    mode: str = "hybrid",
) -> np.ndarray:
    """Boolean mask (nblocks, 256): True where a value is an outlier."""
    if mode not in CHECK_MODES:
        raise ValueError(f"unknown check mode {mode!r}; expected one of {CHECK_MODES}")
    if mode in ("hardware", "hybrid"):
        n = bitops.n_msbit_for_threshold(thresholds.t1)
        ok = bitops.mantissa_error_within(
            np.asarray(original, np.float32), np.asarray(reconstructed, np.float32), n
        )
        if mode == "hybrid":
            abs_err = np.abs(
                np.asarray(reconstructed, np.float64) - np.asarray(original, np.float64)
            )
            ok = ok | (abs_err <= thresholds.t1 * _block_scale(original))
        return ~ok
    return relative_error(original, reconstructed) > thresholds.t1


def block_average_error(
    original: np.ndarray,
    reconstructed: np.ndarray,
    outliers: np.ndarray,
    mode: str = "hybrid",
) -> np.ndarray:
    """Average relative error per block over *non-outlier* values.

    Returns an (nblocks,) float array.  Blocks where every value is an
    outlier score 0 (no approximated values remain; the size check will
    reject them anyway).  In hybrid mode each value's error is the
    smaller of its relative error and its block-scaled absolute error,
    mirroring the fixed-point comparison path.
    """
    if mode not in CHECK_MODES:
        raise ValueError(f"unknown check mode {mode!r}; expected one of {CHECK_MODES}")
    if mode == "hardware":
        # Non-outliers have identical sign and exponent, so the error is
        # the mantissa difference scaled by the implicit-leading-one
        # significand (~2^23), matching the paper's adder tree.
        om = bitops.mantissa_bits(np.asarray(original, np.float32)).astype(np.int64)
        am = bitops.mantissa_bits(np.asarray(reconstructed, np.float32)).astype(np.int64)
        err = np.abs(om - am) / float(1 << 23)
    else:
        err = relative_error(original, reconstructed)
        if mode == "hybrid":
            abs_err = np.abs(
                np.asarray(reconstructed, np.float64) - np.asarray(original, np.float64)
            )
            err = np.minimum(err, abs_err / _block_scale(original))
    keep = ~outliers
    counts = keep.sum(axis=1)
    sums = np.where(keep, err, 0.0).sum(axis=1)
    return np.where(counts > 0, sums / np.maximum(counts, 1), 0.0)


def compressed_size_cachelines(outlier_counts: np.ndarray) -> np.ndarray:
    """Cachelines needed for summary + bitmap + outliers, per block.

    With zero outliers the compressed block is the summary cacheline
    alone.  Otherwise the half-cacheline bitmap and the packed 32-bit
    outliers follow, rounded up to whole cachelines.  Sizes above
    :data:`MAX_COMPRESSED_CACHELINES` mean the compression attempt fails.
    """
    counts = np.asarray(outlier_counts, dtype=np.int64)
    payload = CACHELINE_BYTES + BITMAP_BYTES + VALUE_BYTES * counts
    size = -(-payload // CACHELINE_BYTES)  # ceil division
    return np.where(counts == 0, 1, size).astype(np.int32)


def pack_bitmap(outliers: np.ndarray) -> np.ndarray:
    """Pack a (nblocks, 256) boolean mask into (nblocks, 32) bytes."""
    outliers = np.asarray(outliers, dtype=bool)
    if outliers.ndim != 2 or outliers.shape[1] != VALUES_PER_BLOCK:
        raise ValueError(f"expected (nblocks, {VALUES_PER_BLOCK}), got {outliers.shape}")
    packed = np.packbits(outliers, axis=1)
    assert packed.shape[1] == BITMAP_BYTES
    return packed


def unpack_bitmap(packed: np.ndarray) -> np.ndarray:
    """Inverse of :func:`pack_bitmap`."""
    packed = np.asarray(packed, dtype=np.uint8)
    if packed.ndim != 2 or packed.shape[1] != BITMAP_BYTES:
        raise ValueError(f"expected (nblocks, {BITMAP_BYTES}), got {packed.shape}")
    return np.unpackbits(packed, axis=1).astype(bool)


def max_outliers_for_size(size_cachelines: int = MAX_COMPRESSED_CACHELINES) -> int:
    """Largest outlier count that still fits in ``size_cachelines``."""
    budget = size_cachelines * CACHELINE_BYTES - CACHELINE_BYTES - BITMAP_BYTES
    return max(0, budget // VALUE_BYTES)
