"""The AVR compressor/decompressor pipeline (paper §3.3, Figure 4).

The batch API (:meth:`AVRCompressor.compress_blocks`) processes an
``(nblocks, 256)`` array in one vectorized pass: exponent biasing,
float-to-fixed conversion, both downsampling variants (1D and 2D) in
parallel, reconstruction, outlier detection and the T1/T2 error checks.
It is the hot path of the functional simulation layer and never loops
over individual values.

The scalar API (:meth:`compress_block` / :meth:`decompress_block`)
wraps it for single blocks and returns/accepts the byte-accurate
:class:`~repro.compression.block.CompressedBlock`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..common import bitops
from ..common.constants import BLOCK_CACHELINES, MAX_COMPRESSED_CACHELINES, VALUES_PER_BLOCK
from ..common.types import CompressionMethod, DataType, ErrorThresholds
from ..fixedpoint.bias import BIAS_FIELD_MAX, BIAS_FIELD_MIN, TARGET_MAX_EXPONENT
from ..fixedpoint.convert import DEFAULT_FORMAT, FixedPointFormat
from .block import CompressedBlock
from .downsample import downsample_1d, downsample_2d, reconstruct_1d, reconstruct_2d
from .errors import relative_error
from .outliers import (
    CHECK_MODES,
    block_average_error,
    compressed_size_cachelines,
    detect_outliers,
)


@dataclass
class BatchCompressionResult:
    """Per-block outcome of a batch compression pass.

    ``reconstructed`` holds the values a consumer would read back after
    a round trip through memory: the interpolated approximation with
    outliers restored verbatim, or the original values where the block
    failed to compress.
    """

    success: np.ndarray            # (B,) bool
    method: np.ndarray             # (B,) uint8 (CompressionMethod values)
    bias: np.ndarray               # (B,) int16
    size_cachelines: np.ndarray    # (B,) int32; BLOCK_CACHELINES where failed
    outlier_count: np.ndarray      # (B,) int32
    avg_error: np.ndarray          # (B,) float64 over non-outliers
    reconstructed: np.ndarray      # (B, 256) same dtype as input
    summaries: np.ndarray          # (B, 16) int32 fixed point
    outlier_mask: np.ndarray       # (B, 256) bool

    @property
    def nblocks(self) -> int:
        return int(self.success.size)

    @property
    def compression_ratio(self) -> float:
        """Aggregate ratio: original cachelines / stored cachelines.

        An empty batch stores nothing and saves nothing — its ratio is
        the neutral ``1.0``, not ``inf`` (which is reserved for the
        impossible nonzero-blocks/zero-storage case and would otherwise
        poison downstream means and table formatting).
        """
        if not self.nblocks:
            return 1.0
        stored = int(self.size_cachelines.sum())
        return self.nblocks * BLOCK_CACHELINES / stored if stored else float("inf")


#: the downsampling variants attempted in parallel by default
DEFAULT_METHODS = (
    CompressionMethod.DOWNSAMPLE_1D,
    CompressionMethod.DOWNSAMPLE_2D,
)

_METHOD_KERNELS = {
    CompressionMethod.DOWNSAMPLE_1D: (downsample_1d, reconstruct_1d),
    CompressionMethod.DOWNSAMPLE_2D: (downsample_2d, reconstruct_2d),
}


class AVRCompressor:
    """Vectorized model of the AVR compressor/decompressor module.

    ``methods`` restricts the placement variants attempted (ablation of
    the parallel method selection); ``enable_bias`` disables exponent
    biasing (ablation of §3.3's biasing stage).
    """

    def __init__(
        self,
        thresholds: ErrorThresholds | None = None,
        fmt: FixedPointFormat = DEFAULT_FORMAT,
        check_mode: str = "hybrid",
        methods: tuple[CompressionMethod, ...] = DEFAULT_METHODS,
        enable_bias: bool = True,
    ) -> None:
        self.thresholds = thresholds or ErrorThresholds()
        self.fmt = fmt
        if check_mode not in CHECK_MODES:
            # Validate eagerly: the float path would only raise deep
            # inside the first compress_blocks call, and the FIXED32
            # path never consults the mode at all — a typo would be
            # silently ignored there.
            raise ValueError(
                f"unknown check mode {check_mode!r}; expected one of {CHECK_MODES}"
            )
        self.check_mode = check_mode
        if not methods or any(m not in _METHOD_KERNELS for m in methods):
            raise ValueError(f"methods must be non-empty downsampling variants, got {methods}")
        self.methods = tuple(methods)
        self.enable_bias = enable_bias

    # ------------------------------------------------------------------
    # biasing (vectorized over blocks)
    # ------------------------------------------------------------------
    def _choose_biases(self, blocks: np.ndarray) -> np.ndarray:
        """Per-block exponent bias, 0 where biasing is skipped."""
        exps = bitops.exponent_bits(blocks)  # (B, 256) int16
        special = (exps == bitops.EXP_MAX).any(axis=1)
        nonzero = exps > 0
        has_nonzero = nonzero.any(axis=1)
        maxe = np.where(nonzero, exps, np.int16(-1)).max(axis=1).astype(np.int32)
        mine = np.where(nonzero, exps, np.int16(999)).min(axis=1).astype(np.int32)
        bias = TARGET_MAX_EXPONENT - maxe
        valid = (
            has_nonzero
            & ~special
            & (mine + bias >= 1)
            & (maxe + bias <= 254)
            & (bias >= BIAS_FIELD_MIN)
            & (bias <= BIAS_FIELD_MAX)
        )
        return np.where(valid, bias, 0).astype(np.int16)

    def _to_fixed(self, blocks: np.ndarray, bias: np.ndarray) -> np.ndarray:
        """Bias and convert float32 blocks to fixed point (saturating)."""
        biased = np.ldexp(blocks.astype(np.float64), bias[:, None])
        scaled = np.rint(biased * self.fmt.scale)
        clipped = np.clip(
            np.nan_to_num(scaled, nan=0.0, posinf=self.fmt.max_int, neginf=self.fmt.min_int),
            self.fmt.min_int,
            self.fmt.max_int,
        )
        return clipped.astype(np.int32)

    def _from_fixed(self, fixed: np.ndarray, bias: np.ndarray) -> np.ndarray:
        """Convert fixed point back to float32 and remove the bias."""
        values = fixed.astype(np.float64) / self.fmt.scale
        return np.ldexp(values, -bias[:, None]).astype(np.float32)

    # ------------------------------------------------------------------
    # batch compression
    # ------------------------------------------------------------------
    def compress_blocks(
        self, blocks: np.ndarray, dtype: DataType = DataType.FLOAT32
    ) -> BatchCompressionResult:
        """Compress every row of an ``(nblocks, 256)`` array."""
        blocks = np.asarray(blocks)
        if blocks.ndim != 2 or blocks.shape[1] != VALUES_PER_BLOCK:
            raise ValueError(
                f"expected (nblocks, {VALUES_PER_BLOCK}), got {blocks.shape}"
            )
        if dtype == DataType.FLOAT32:
            return self._compress_float(blocks.astype(np.float32, copy=False))
        return self._compress_fixed(blocks.astype(np.int32, copy=False))

    def _compress_float(self, blocks: np.ndarray) -> BatchCompressionResult:
        if self.enable_bias:
            bias = self._choose_biases(blocks)
        else:
            bias = np.zeros(blocks.shape[0], dtype=np.int16)
        fixed = self._to_fixed(blocks, bias)

        candidates = []
        for method in self.methods:
            down, recon = _METHOD_KERNELS[method]
            summary = down(fixed)
            recon_f = self._from_fixed(recon(summary), bias)
            mask = detect_outliers(blocks, recon_f, self.thresholds, self.check_mode)
            counts = mask.sum(axis=1).astype(np.int32)
            sizes = compressed_size_cachelines(counts)
            avg = block_average_error(blocks, recon_f, mask, self.check_mode)
            candidates.append((method, summary, recon_f, mask, counts, sizes, avg))

        return self._select_and_finalize(blocks, bias, candidates)

    def _compress_fixed(self, blocks: np.ndarray) -> BatchCompressionResult:
        """Fixed-point path: no biasing or format conversion, relative check."""
        bias = np.zeros(blocks.shape[0], dtype=np.int16)
        as_float = blocks.astype(np.float64)

        candidates = []
        for method in self.methods:
            down, recon = _METHOD_KERNELS[method]
            summary = down(blocks)
            recon_i = recon(summary)
            err = relative_error(as_float, recon_i.astype(np.float64))
            mask = err > self.thresholds.t1
            counts = mask.sum(axis=1).astype(np.int32)
            sizes = compressed_size_cachelines(counts)
            keep = ~mask
            kcount = np.maximum(keep.sum(axis=1), 1)
            avg = np.where(keep, err, 0.0).sum(axis=1) / kcount
            candidates.append((method, summary, recon_i, mask, counts, sizes, avg))

        return self._select_and_finalize(blocks, bias, candidates)

    def _select_and_finalize(
        self, blocks: np.ndarray, bias: np.ndarray, candidates: list
    ) -> BatchCompressionResult:
        """Pick the best variant per block and apply the T2/size checks.

        Preference: smaller compressed size, ties broken on average
        error (all variants are computed in parallel in hardware).
        """
        m1, s1, r1, o1, c1, z1, e1 = candidates[0]
        method = np.full(blocks.shape[0], np.uint8(m1))
        summaries, recon, mask = s1, r1, o1
        counts, sizes, avg = c1, z1.astype(np.int32), e1
        for m2, s2, r2, o2, c2, z2, e2 in candidates[1:]:
            use2 = (z2 < sizes) | ((z2 == sizes) & (e2 < avg))
            method = np.where(use2, np.uint8(m2), method)
            summaries = np.where(use2[:, None], s2, summaries)
            recon = np.where(use2[:, None], r2, recon)
            mask = np.where(use2[:, None], o2, mask)
            counts = np.where(use2, c2, counts)
            sizes = np.where(use2, z2, sizes).astype(np.int32)
            avg = np.where(use2, e2, avg)

        success = (sizes <= MAX_COMPRESSED_CACHELINES) & (avg <= self.thresholds.t2)
        sizes = np.where(success, sizes, BLOCK_CACHELINES).astype(np.int32)
        method = np.where(success, method, np.uint8(CompressionMethod.UNCOMPRESSED))
        bias = np.where(success, bias, 0).astype(np.int16)

        # Round-trip view: approximated values with outliers restored,
        # originals where compression failed.
        reconstructed = np.where(mask | ~success[:, None], blocks, recon)
        counts = np.where(success, counts, 0).astype(np.int32)
        mask = mask & success[:, None]

        return BatchCompressionResult(
            success=success,
            method=method.astype(np.uint8),
            bias=bias,
            size_cachelines=sizes,
            outlier_count=counts,
            avg_error=avg,
            reconstructed=reconstructed,
            summaries=summaries.astype(np.int32),
            outlier_mask=mask,
        )

    # ------------------------------------------------------------------
    # batch decompression
    # ------------------------------------------------------------------
    def decompress_blocks(
        self,
        summaries: np.ndarray,
        methods: np.ndarray,
        biases: np.ndarray,
        dtype: DataType = DataType.FLOAT32,
    ) -> np.ndarray:
        """Reconstruct ``(nblocks, 256)`` values from summaries.

        Outlier overlay is the caller's job (the decompressor places
        outliers from the bitmap *after* this reconstruction, Fig. 4).
        """
        summaries = np.asarray(summaries, dtype=np.int32)
        methods = np.asarray(methods)
        biases = np.asarray(biases, dtype=np.int16)
        recon = np.empty((summaries.shape[0], VALUES_PER_BLOCK), dtype=np.int32)
        is1d = methods == CompressionMethod.DOWNSAMPLE_1D
        is2d = methods == CompressionMethod.DOWNSAMPLE_2D
        if not bool(np.all(is1d | is2d)):
            raise ValueError("decompress_blocks requires all blocks compressed")
        if np.any(is1d):
            recon[is1d] = reconstruct_1d(summaries[is1d])
        if np.any(is2d):
            recon[is2d] = reconstruct_2d(summaries[is2d])
        if dtype == DataType.FIXED32:
            return recon
        return self._from_fixed(recon, biases)

    # ------------------------------------------------------------------
    # scalar convenience API
    # ------------------------------------------------------------------
    def compress_block(
        self, values: np.ndarray, dtype: DataType = DataType.FLOAT32
    ) -> tuple[CompressedBlock | None, np.ndarray]:
        """Compress one 256-value block.

        Returns ``(block, reconstructed)``; ``block`` is None when the
        compression attempt failed (stored uncompressed).
        """
        values = np.asarray(values).reshape(1, VALUES_PER_BLOCK)
        res = self.compress_blocks(values, dtype)
        recon = res.reconstructed[0]
        if not bool(res.success[0]):
            return None, recon
        mask = res.outlier_mask[0]
        if dtype == DataType.FLOAT32:
            raw = values[0].astype(np.float32).view(np.uint32)
        else:
            raw = values[0].astype(np.int32).view(np.uint32)
        block = CompressedBlock(
            method=CompressionMethod(int(res.method[0])),
            bias=int(res.bias[0]),
            summary=res.summaries[0],
            outlier_mask=mask,
            outlier_bits=raw[mask],
        )
        return block, recon

    def decompress_block(
        self, block: CompressedBlock, dtype: DataType = DataType.FLOAT32
    ) -> np.ndarray:
        """Reconstruct one block, overlaying its stored outliers."""
        recon = self.decompress_blocks(
            block.summary[None, :],
            np.array([block.method]),
            np.array([block.bias]),
            dtype,
        )[0]
        if block.outlier_count:
            if dtype == DataType.FLOAT32:
                recon[block.outlier_mask] = block.outlier_bits.view(np.float32)
            else:
                recon[block.outlier_mask] = block.outlier_bits.view(np.int32)
        return recon
