"""The Truncate comparison design (paper §4.1).

Truncate compresses approximate float32 values to half width by
dropping the 16 least-significant bits (as in Concise loads/stores,
Proteus and GPU link compression [21, 22, 42]).  The surviving 16 bits
are sign + exponent + the top 7 mantissa bits, so the compression ratio
is a flat 2:1 and the worst-case relative error is ~2^-8.
"""

from __future__ import annotations

import numpy as np

from ..common import bitops

#: Mantissa bits kept by the 16-bit truncated format.
KEPT_MANTISSA_BITS = 7

#: Truncate's fixed compression ratio.
TRUNCATE_RATIO = 2.0


def truncate_values(values: np.ndarray) -> np.ndarray:
    """Round-trip values through the truncated 16-bit representation."""
    return bitops.truncate_mantissa(
        np.asarray(values, dtype=np.float32), KEPT_MANTISSA_BITS
    )


def truncate_roundtrip(array: np.ndarray) -> np.ndarray:
    """Apply truncation to an arbitrarily-shaped float array (same shape)."""
    values = np.asarray(array, dtype=np.float32)
    return truncate_values(values.ravel()).reshape(values.shape)


def max_truncation_error() -> float:
    """Worst-case relative error introduced by dropping 16 mantissa bits."""
    return float(2.0 ** -(KEPT_MANTISSA_BITS + 1))
