"""Private per-core cache stack (L1 + L2).

Filters the core's access stream before it reaches the shared LLC.
Victims cascade outward: every L1 victim — clean or dirty — is
installed in L2 (an exclusive-style victim fill that preserves the
dirty flag), and a dirty L2 victim is handed to the LLC layer by the
caller.  Clean L2 victims are simply dropped: the LLC already holds
(or can refetch) their data.
"""

from __future__ import annotations

from ..common.config import SystemConfig
from .base import SetAssocCache


class PrivateCaches:
    """L1 + L2 for one core."""

    def __init__(self, config: SystemConfig) -> None:
        self.l1 = SetAssocCache(config.l1)
        self.l2 = SetAssocCache(config.l2)

    def access(self, addr: int, write: bool) -> tuple[int, bool, list[tuple[int, bool]]]:
        """Run one access through L1 and L2.

        Returns ``(latency_cycles, needs_llc, l2_writebacks)`` where
        ``l2_writebacks`` lists dirty lines evicted from L2 that must
        be handled by the LLC level.
        """
        writebacks: list[tuple[int, bool]] = []
        hit, victim = self.l1.access(addr, write)
        latency = self.l1.latency
        if hit:
            return latency, False, writebacks
        if victim is not None:
            # Every L1 victim falls into L2, keeping its dirty flag.
            # (Installing only dirty victims would make clean lines
            # vanish from the private stack entirely, so re-reads would
            # escalate straight to the LLC.)
            l2_victim = self.l2.insert(victim[0], dirty=victim[1])
            if l2_victim is not None and l2_victim[1]:
                writebacks.append(l2_victim)

        hit2, victim2 = self.l2.access(addr, False)
        latency += self.l2.latency
        if victim2 is not None and victim2[1]:
            writebacks.append(victim2)
        return latency, not hit2, writebacks
