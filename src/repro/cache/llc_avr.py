"""The AVR Last Level Cache (paper §3.4, §3.5, Figures 6-8).

A decoupled sectored cache that co-locates uncompressed cachelines
(UCLs) and compressed memory sub-blocks (CMSs).  The model keeps the
paper's placement rules — UCLs index like a conventional cache, the
CMSs of a block occupy consecutive sets starting at the block's tag
index, and UCLs/CMSs compete equally for data-array entries under LRU —
and implements the full request (Fig. 7) and eviction (Fig. 8) flows:
DBUF hits, compressed hits, lazy writebacks, fetch+recompress, the
badly-compressed-block skip counters, and PFE-guided prefetch of
decompressed lines.

Compressed block sizes come from a static per-block size map measured
by the functional layer, so the timing simulation reflects the real
data's compressibility without re-running the compressor per event.
"""

from __future__ import annotations

from typing import Callable

from ..common.config import CacheConfig
from ..common.constants import (
    BLOCK_BYTES,
    BLOCK_CACHELINES,
    CACHELINE_BYTES,
    COMPRESS_LATENCY_CYCLES,
    DECOMPRESS_LATENCY_CYCLES,
)
from ..common.stats import StatCounter
from ..memory.dram import DRAM
from .cmt import CMT
from .dbuf import DBUF

#: data-array entry keys: UCLs are plain line numbers (int); CMSs are
#: ("C", block_number, subblock_offset) tuples.
CMSKey = tuple[str, int, int]


class AVRLLC:
    """Shared AVR LLC + DBUF + CMT + compressor latency accounting."""

    def __init__(
        self,
        config: CacheConfig,
        dram: DRAM,
        block_size_of: Callable[[int], int],
        is_approx: Callable[[int], bool],
        enable_dbuf: bool = True,
        enable_lazy_eviction: bool = True,
        enable_skip_counters: bool = True,
        enable_cms_lru_refresh: bool = True,
        pfe_threshold: int | None = None,
    ) -> None:
        """The four ``enable_*`` flags ablate the paper's §3
        optimizations one by one; ``pfe_threshold`` overrides the PFE
        policy (None keeps the paper's half-block threshold)."""
        self.num_sets = config.num_sets
        self.ways = config.ways
        self.latency = config.latency_cycles
        self.dram = dram
        self.block_size_of = block_size_of
        self.is_approx = is_approx
        self.enable_dbuf = enable_dbuf
        self.enable_lazy_eviction = enable_lazy_eviction
        self.enable_skip_counters = enable_skip_counters
        self.enable_cms_lru_refresh = enable_cms_lru_refresh
        self._sets: list[dict] = [dict() for _ in range(self.num_sets)]
        from .dbuf import PFE_THRESHOLD

        self.dbuf = DBUF(PFE_THRESHOLD if pfe_threshold is None else pfe_threshold)
        self.cmt = CMT()
        self.stats = StatCounter()

    # ------------------------------------------------------------------
    # address helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _line_no(addr: int) -> int:
        return addr // CACHELINE_BYTES

    @staticmethod
    def _block_no(addr: int) -> int:
        return addr // BLOCK_BYTES

    def _ucl_set(self, line_no: int) -> int:
        return line_no % self.num_sets

    def _cms_set(self, block_no: int, off: int) -> int:
        return (block_no + off) % self.num_sets

    # ------------------------------------------------------------------
    # data-array plumbing
    # ------------------------------------------------------------------
    def _touch(self, set_idx: int, key, dirty: bool = False) -> bool:
        """Refresh LRU of an existing entry; returns True if present."""
        cset = self._sets[set_idx]
        if key not in cset:
            return False
        prev = cset.pop(key)
        cset[key] = prev or dirty
        return True

    def _insert(self, set_idx: int, key, dirty: bool) -> None:
        """Insert an entry, running the eviction flow on the victim."""
        cset = self._sets[set_idx]
        if key in cset:
            prev = cset.pop(key)
            cset[key] = prev or dirty
            return
        while len(cset) >= self.ways:
            victim_key = next(iter(cset))
            victim_dirty = cset.pop(victim_key)
            self._handle_victim(victim_key, victim_dirty)
        cset[key] = dirty

    def _cms_keys(self, block_no: int, size: int) -> list[tuple[int, CMSKey]]:
        return [
            (self._cms_set(block_no, i), ("C", block_no, i)) for i in range(size)
        ]

    def _block_cms_present(self, block_no: int) -> int:
        """Number of CMS entries of this block present (0 if none).

        CMS0 presence implies the block's compressed image is resident
        (the paper allocates/evicts a block's CMSs as a unit).
        """
        key = ("C", block_no, 0)
        if key in self._sets[self._cms_set(block_no, 0)]:
            size, _ = self._block_static_size(block_no)
            return size
        return 0

    def _block_static_size(self, block_no: int) -> tuple[int, int]:
        block_addr = block_no * BLOCK_BYTES
        size = self.block_size_of(block_addr)
        return size, block_addr

    def _touch_block_cms(self, block_no: int) -> None:
        """Refresh the block's CMS recency when one of its UCLs is
        accessed (paper §3.4: "the CMS LRU bits are updated when any
        UCL of the block is accessed")."""
        if not self.enable_cms_lru_refresh:
            return
        if ("C", block_no, 0) not in self._sets[self._cms_set(block_no, 0)]:
            return
        size, _ = self._block_static_size(block_no)
        for set_idx, key in self._cms_keys(block_no, size):
            self._touch(set_idx, key)

    def _dram(self, addr: int, lines: int, write: bool, approx: bool) -> int:
        """DRAM access tagged with the approx/exact traffic split."""
        self.stats.add("bytes_approx" if approx else "bytes_exact", lines * 64)
        return self.dram.access(addr, lines, write=write)

    # ------------------------------------------------------------------
    # victim (eviction) flows — paper Figure 8
    # ------------------------------------------------------------------
    def _handle_victim(self, key, dirty: bool) -> None:
        if isinstance(key, tuple):  # CMS victim: evict the whole block
            _, block_no, _ = key
            self._evict_compressed_block(block_no, dirty)
            return
        if not dirty:
            return
        addr = key * CACHELINE_BYTES
        if not self.is_approx(addr):
            self._dram(addr, 1, write=True, approx=False)
            self.stats.add("exact_writebacks")
            return
        self._evict_dirty_approx_ucl(addr)

    def _evict_compressed_block(self, block_no: int, first_dirty: bool) -> None:
        """Evicting any CMS evicts all CMSs of the block (paper §3.4)."""
        size, block_addr = self._block_static_size(block_no)
        dirty = first_dirty
        for off in range(BLOCK_CACHELINES):  # defensive: sweep all offsets
            key = ("C", block_no, off)
            state = self._sets[self._cms_set(block_no, off)].pop(key, None)
            if state:
                dirty = True
        if dirty:
            # Decompress, overlay dirty UCLs, recompress, write to memory.
            self.stats.add("decompressions")
            self.stats.add("compressions")
            self._dram(block_addr, size, write=True, approx=True)
            entry, cached = self.cmt.lookup(block_addr, size)
            if not cached:
                self.dram.transfer_partial(self.cmt.miss_traffic_bytes(), write=False)
            entry.record_success(size)
            entry.lazy_count = 0
        self.stats.add("cms_block_evictions")

    def _evict_dirty_approx_ucl(self, addr: int) -> None:
        block_no = self._block_no(addr)
        size, block_addr = self._block_static_size(block_no)

        if self._block_cms_present(block_no):
            # Recompress in place: block read from LLC, updated, stored back.
            self.stats.add("evict_recompress")
            self.stats.add("decompressions")
            self.stats.add("compressions")
            for set_idx, key in self._cms_keys(block_no, self._block_cms_present(block_no)):
                self._touch(set_idx, key, dirty=True)
            return

        entry, cached = self.cmt.lookup(addr, size)
        if not cached:
            self.dram.transfer_partial(self.cmt.miss_traffic_bytes(), write=False)

        if entry.compressed:
            if self.enable_lazy_eviction and entry.lazy_possible():
                self.stats.add("evict_lazy_writeback")
                entry.lazy_count += 1
                self._dram(addr, 1, write=True, approx=True)
                return
            # Space exhausted: fetch block + lazy lines, merge, recompress.
            self.stats.add("evict_fetch_recompress")
            self.stats.add("decompressions")
            self.stats.add("compressions")
            self._dram(block_addr, entry.size_cachelines + entry.lazy_count, False, True)
            self._dram(block_addr, size, write=True, approx=True)
            entry.record_success(size)
            entry.lazy_count = 0
            return

        # Block is uncompressed in memory: consult the skip counters.
        skip = self.enable_skip_counters and entry.should_skip_recompression()
        if size < BLOCK_CACHELINES and not skip:
            # Attempt compression (succeeds: the data is compressible).
            self.stats.add("evict_fetch_recompress")
            self.stats.add("compressions")
            self._dram(block_addr, BLOCK_CACHELINES, False, True)
            self._dram(block_addr, size, write=True, approx=True)
            entry.record_success(size)
            return
        # Attempt fails or is skipped: plain uncompressed writeback.
        self.stats.add("evict_uncompressed_writeback")
        if size >= BLOCK_CACHELINES:
            if skip:
                entry.record_skip()
            else:
                self.stats.add("compressions")  # the failed attempt
                entry.record_failure()
        self._dram(addr, 1, write=True, approx=True)

    # ------------------------------------------------------------------
    # request flow — paper Figure 7
    # ------------------------------------------------------------------
    def read(self, addr: int, count_breakdown: bool = True) -> int:
        """Handle an LLC read request; returns its latency in cycles."""
        approx = self.is_approx(addr)
        line_no = self._line_no(addr)

        if approx and self.enable_dbuf and self.dbuf.serve(addr):
            if count_breakdown:
                self.stats.add("req_hit_dbuf")
            self.stats.add("llc_hits")
            # A block access: refresh the block's CMS recency too.
            self._touch_block_cms(self._block_no(addr))
            # The served line is also written into the LLC.
            self._insert(self._ucl_set(line_no), line_no, dirty=False)
            return self.latency

        if self._touch(self._ucl_set(line_no), line_no):
            if approx:
                if count_breakdown:
                    self.stats.add("req_hit_uncompressed")
                self._touch_block_cms(self._block_no(addr))
            self.stats.add("llc_hits")
            return self.latency

        if approx:
            block_no = self._block_no(addr)
            cms_size = self._block_cms_present(block_no)
            if cms_size:
                # Compressed hit: read the CMSs, decompress, fill DBUF.
                if count_breakdown:
                    self.stats.add("req_hit_compressed")
                self.stats.add("llc_hits")
                self.stats.add("decompressions")
                for set_idx, key in self._cms_keys(block_no, cms_size):
                    self._touch(set_idx, key)
                self._load_dbuf(block_no, addr)
                self._insert(self._ucl_set(line_no), line_no, dirty=False)
                return self.latency + cms_size + DECOMPRESS_LATENCY_CYCLES

            # Full miss on approximate data.
            if count_breakdown:
                self.stats.add("req_miss")
            self.stats.add("llc_misses")
            return self._miss_approx(addr, block_no, line_no)

        # Exact data miss: conventional line fetch.
        self.stats.add("llc_misses")
        latency = self._dram(addr, 1, write=False, approx=False)
        self._insert(self._ucl_set(line_no), line_no, dirty=False)
        return self.latency + latency

    def _miss_approx(self, addr: int, block_no: int, line_no: int) -> int:
        size, block_addr = self._block_static_size(block_no)
        entry, cached = self.cmt.lookup(addr, size)
        if not cached:
            self.dram.transfer_partial(self.cmt.miss_traffic_bytes(), write=False)

        if not entry.compressed:
            # Uncompressed block: fetch just the requested line.
            latency = self._dram(addr, 1, write=False, approx=True)
            self._insert(self._ucl_set(line_no), line_no, dirty=False)
            return self.latency + latency

        # Fetch compressed block (+ any lazily evicted lines) from memory.
        lines = entry.size_cachelines + entry.lazy_count
        latency = self._dram(block_addr, lines, write=False, approx=True)
        self.stats.add("decompressions")
        dirty = False
        if entry.lazy_count:
            # Merged lazy lines: block recompressed on chip, marked dirty.
            self.stats.add("compressions")
            entry.lazy_count = 0
            entry.record_success(size)
            dirty = True
        for set_idx, key in self._cms_keys(block_no, entry.size_cachelines):
            self._insert(set_idx, key, dirty)
        self._load_dbuf(block_no, addr)
        self._insert(self._ucl_set(line_no), line_no, dirty=False)
        return self.latency + latency + DECOMPRESS_LATENCY_CYCLES

    def _load_dbuf(self, block_no: int, addr: int) -> None:
        line_off = (addr % BLOCK_BYTES) // CACHELINE_BYTES
        old_block = self.dbuf.block_addr
        prefetch = self.dbuf.load(block_no * BLOCK_BYTES, line_off)
        if prefetch and old_block is not None:
            self.stats.add("pfe_prefetches", len(prefetch))
            for off in prefetch:
                line = self._line_no(old_block + off * CACHELINE_BYTES)
                self._insert(self._ucl_set(line), line, dirty=False)

    def writeback(self, addr: int) -> int:
        """Accept a dirty line falling out of a core's L2."""
        line_no = self._line_no(addr)
        self.dbuf.note_requested(addr)
        if self.is_approx(addr):
            self._touch_block_cms(self._block_no(addr))
        self._insert(self._ucl_set(line_no), line_no, dirty=True)
        return self.latency

    # ------------------------------------------------------------------
    @property
    def mpki_misses(self) -> int:
        return int(self.stats["llc_misses"])
